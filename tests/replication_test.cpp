// Server-side sequential-consistency protocol (paper Section 4).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "client/handler.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::replication {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

/// Manual testbed: sequencer + primaries + secondaries + direct client
/// handlers (no workload driver), with fast deterministic service times.
struct Fixture {
  explicit Fixture(std::size_t primaries, std::size_t secondaries,
                   std::uint64_t seed = 1,
                   sim::Duration lazy_interval = seconds(2),
                   sim::Duration service = milliseconds(10))
      : sim(seed),
        network(sim, std::make_unique<sim::NormalDuration>(
                         milliseconds(1), std::chrono::microseconds(300))) {
    auto add_replica = [&](bool primary) {
      auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
      ReplicaConfig config;
      config.service_time = std::make_shared<sim::FixedDuration>(service);
      config.lazy_update_interval = lazy_interval;
      replicas.push_back(std::make_unique<ReplicaServer>(
          sim, *endpoint, groups, primary,
          std::make_unique<VersionedRegister>(), std::move(config)));
      endpoints.push_back(std::move(endpoint));
    };
    add_replica(true);  // sequencer (first primary-group joiner)
    for (std::size_t i = 0; i < primaries; ++i) add_replica(true);
    for (std::size_t i = 0; i < secondaries; ++i) add_replica(false);

    for (std::size_t i = 0; i < replicas.size(); ++i) {
      sim.after(milliseconds(10 * (i + 1)), [this, i] { replicas[i]->start(); });
    }
  }

  client::ClientHandler& add_client() {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    client::ClientConfig config;
    clients.push_back(std::make_unique<client::ClientHandler>(
        sim, *endpoint, groups, std::move(config)));
    endpoints.push_back(std::move(endpoint));
    auto& handler = *clients.back();
    handler.start();
    return handler;
  }

  void settle(sim::Duration d = seconds(2)) { sim.run_for(d); }

  ReplicaServer& sequencer() { return *replicas[0]; }

  sim::Simulator sim;
  net::LoopbackTransport network;
  gcs::Directory directory;
  ServiceGroups groups = ServiceGroups::for_service(1);
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<ReplicaServer>> replicas;
  std::vector<std::unique_ptr<client::ClientHandler>> clients;
};

core::QoSSpec loose_qos(core::Staleness a = 100) {
  return {.staleness_threshold = a,
          .deadline = seconds(1),
          .min_probability = 0.5};
}

TEST(Roles, SequencerIsFirstPrimaryJoiner) {
  Fixture f(2, 2);
  f.settle();
  EXPECT_TRUE(f.sequencer().is_sequencer());
  EXPECT_FALSE(f.replicas[1]->is_sequencer());
  EXPECT_TRUE(f.replicas[1]->is_primary());
  EXPECT_FALSE(f.replicas[3]->is_primary());
}

TEST(Roles, LazyPublisherIsLastPrimaryMember) {
  Fixture f(2, 2);
  f.settle();
  EXPECT_FALSE(f.sequencer().is_lazy_publisher());
  EXPECT_FALSE(f.replicas[1]->is_lazy_publisher());
  EXPECT_TRUE(f.replicas[2]->is_lazy_publisher());
}

TEST(Updates, CommittedByAllPrimariesInOrder) {
  Fixture f(3, 2);
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    client.update(std::make_shared<RegisterBump>(),
                  [&](const client::UpdateOutcome&) { ++done; });
  }
  f.settle(seconds(5));
  EXPECT_EQ(done, 10);
  for (std::size_t i = 0; i <= 3; ++i) {
    EXPECT_EQ(f.replicas[i]->csn(), 10u) << "primary " << i;
    EXPECT_EQ(f.replicas[i]->gsn(), 10u);
    EXPECT_EQ(f.replicas[i]->stats().gsn_conflicts, 0u);
  }
}

TEST(Updates, SequencerAssignsMonotoneGsns) {
  Fixture f(2, 1);
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  for (int i = 0; i < 5; ++i) {
    client.update(std::make_shared<RegisterBump>(), {});
  }
  f.settle(seconds(3));
  EXPECT_EQ(f.sequencer().stats().gsn_assigned, 5u);
  EXPECT_EQ(f.sequencer().gsn(), 5u);
}

TEST(Updates, SecondariesDoNotCommitDirectly) {
  Fixture f(2, 2, 1, /*lazy_interval=*/std::chrono::hours(1));
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  for (int i = 0; i < 4; ++i) client.update(std::make_shared<RegisterBump>(), {});
  f.settle(seconds(3));
  // With lazy updates effectively disabled, secondaries stay at csn 0 even
  // though they saw the GSN broadcasts.
  EXPECT_EQ(f.replicas[3]->csn(), 0u);
  EXPECT_EQ(f.replicas[3]->stats().updates_committed, 0u);
  EXPECT_EQ(f.replicas[3]->gsn(), 4u);
}

TEST(Reads, GsnBroadcastDoesNotAdvanceGsn) {
  Fixture f(2, 1);
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  int replies = 0;
  for (int i = 0; i < 5; ++i) {
    client.read(std::make_shared<RegisterRead>(), loose_qos(),
                [&](const client::ReadOutcome&) { ++replies; });
  }
  f.settle(seconds(3));
  EXPECT_EQ(replies, 5);
  EXPECT_EQ(f.sequencer().gsn(), 0u);  // reads never advance the GSN
}

TEST(Reads, SequencerNeverServicesReads) {
  Fixture f(2, 2);
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  for (int i = 0; i < 10; ++i) {
    client.read(std::make_shared<RegisterRead>(), loose_qos(), {});
  }
  f.settle(seconds(3));
  EXPECT_EQ(f.sequencer().stats().reads_served, 0u);
}

TEST(Reads, FreshSecondaryServesWithinThreshold) {
  Fixture f(1, 3, 1, /*lazy=*/milliseconds(500));
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  // One update, give the lazy publisher time to propagate.
  client.update(std::make_shared<RegisterBump>(), {});
  f.settle(seconds(2));
  int served_stale = 0;
  client.read(std::make_shared<RegisterRead>(),
              loose_qos(/*a=*/0),  // must be fully fresh
              [&](const client::ReadOutcome& o) {
                served_stale = static_cast<int>(o.staleness);
              });
  f.settle(seconds(2));
  std::uint64_t secondary_reads = 0;
  for (std::size_t i = 2; i < f.replicas.size(); ++i) {
    secondary_reads += f.replicas[i]->stats().reads_served;
  }
  EXPECT_GT(secondary_reads, 0u);
  EXPECT_EQ(served_stale, 0);
}

TEST(Reads, DeferredReadWaitsForLazyUpdate) {
  // Long lazy interval + strict threshold: a secondary must defer.
  Fixture f(0, 2, 1, /*lazy=*/seconds(2));
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  // Updates make the secondaries stale (only the sequencer is primary, so
  // reads can only be served by secondaries).
  for (int i = 0; i < 3; ++i) client.update(std::make_shared<RegisterBump>(), {});
  f.settle(milliseconds(300));
  bool deferred = false;
  core::Staleness staleness = 999;
  client.read(std::make_shared<RegisterRead>(), loose_qos(/*a=*/0),
              [&](const client::ReadOutcome& o) {
                deferred = o.deferred;
                staleness = o.staleness;
              });
  f.settle(seconds(5));
  EXPECT_TRUE(deferred);
  EXPECT_EQ(staleness, 0u);
  std::uint64_t deferred_count = f.replicas[1]->stats().deferred_reads +
                                 f.replicas[2]->stats().deferred_reads;
  EXPECT_GT(deferred_count, 0u);
}

TEST(Reads, ReplyStalenessNeverExceedsThreshold) {
  Fixture f(2, 3, 3, /*lazy=*/seconds(1));
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  std::vector<core::Staleness> observed;
  int pending = 0;
  for (int i = 0; i < 20; ++i) {
    ++pending;
    client.update(std::make_shared<RegisterBump>(), {});
    client.read(std::make_shared<RegisterRead>(),
                loose_qos(/*a=*/2),
                [&](const client::ReadOutcome& o) {
                  observed.push_back(o.staleness);
                  --pending;
                });
  }
  f.settle(seconds(20));
  EXPECT_EQ(pending, 0);
  for (const auto s : observed) EXPECT_LE(s, 2u);
}

TEST(LazyPropagation, SecondariesCatchUpPeriodically) {
  Fixture f(1, 2, 1, /*lazy=*/milliseconds(500));
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  for (int i = 0; i < 6; ++i) client.update(std::make_shared<RegisterBump>(), {});
  f.settle(seconds(3));
  for (std::size_t i = 2; i < f.replicas.size(); ++i) {
    EXPECT_EQ(f.replicas[i]->csn(), 6u) << "secondary " << i;
    EXPECT_GT(f.replicas[i]->stats().lazy_updates_installed, 0u);
  }
}

TEST(LazyPropagation, IntervalTunableAtRuntime) {
  Fixture f(1, 1, 1, /*lazy=*/std::chrono::hours(1));
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  client.update(std::make_shared<RegisterBump>(), {});
  f.settle(seconds(2));
  EXPECT_EQ(f.replicas[2]->csn(), 0u);  // nothing propagated yet
  // The lazy publisher is the last primary member (index 1).
  f.replicas[1]->set_lazy_update_interval(milliseconds(200));
  f.settle(seconds(2));
  EXPECT_EQ(f.replicas[2]->csn(), 1u);
}

TEST(Dedup, ClientRetryDoesNotDoubleCommit) {
  // Drop some messages so the client retries; every retry must be
  // deduplicated by RequestId.
  Fixture f(2, 1, 5);
  f.settle();
  f.network.set_loss_probability(0.25);
  auto& client = f.add_client();
  f.settle(seconds(2));
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    client.update(std::make_shared<RegisterBump>(),
                  [&](const client::UpdateOutcome&) { ++done; });
  }
  f.settle(seconds(30));
  f.network.set_loss_probability(0.0);
  f.settle(seconds(10));
  EXPECT_EQ(done, 10);
  for (std::size_t i = 0; i <= 2; ++i) {
    EXPECT_EQ(f.replicas[i]->csn(), 10u) << "primary " << i;
    EXPECT_EQ(f.replicas[i]->stats().gsn_conflicts, 0u);
    // The register counts every applied update: double-commit would show.
    if (i > 0) {
      const auto& reg =
          dynamic_cast<const VersionedRegister&>(f.replicas[i]->object());
      EXPECT_EQ(reg.value(), 10u);
    }
  }
}

TEST(PerfPublication, ClientsLearnServiceTimes) {
  Fixture f(2, 2);
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  for (int i = 0; i < 10; ++i) {
    client.read(std::make_shared<RegisterRead>(), loose_qos(), {});
  }
  f.settle(seconds(5));
  // Histories exist for the replicas that served reads.
  std::size_t with_history = 0;
  for (std::size_t i = 1; i < f.replicas.size(); ++i) {
    const auto* h = client.repository().find_history(f.replicas[i]->id());
    if (h != nullptr && h->has_samples()) ++with_history;
  }
  EXPECT_GT(with_history, 0u);
}

TEST(PerfPublication, LazyInfoReachesStalenessEstimator) {
  Fixture f(1, 1, 1, /*lazy=*/milliseconds(500));
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  for (int i = 0; i < 4; ++i) client.update(std::make_shared<RegisterBump>(), {});
  f.settle(seconds(3));
  EXPECT_GT(client.repository().arrival_rate(), 0.0);
  EXPECT_EQ(client.repository().lazy_period(), milliseconds(500));
}

TEST(GroupInfo, ClientLearnsRoles) {
  Fixture f(2, 3);
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  ASSERT_TRUE(client.ready());
  const auto& roles = client.repository().roles();
  EXPECT_EQ(roles.sequencer, f.sequencer().id());
  EXPECT_EQ(roles.primaries.size(), 2u);
  EXPECT_EQ(roles.secondaries.size(), 3u);
  EXPECT_EQ(roles.lazy_publisher, f.replicas[2]->id());
}

// Sequential consistency property: with several concurrent clients, every
// primary applies exactly the same number of updates, and the replicated
// register (which counts applications) agrees everywhere.
class SequentialConsistencyProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SequentialConsistencyProperty, PrimariesAgree) {
  Fixture f(3, 2, GetParam());
  f.settle();
  std::vector<client::ClientHandler*> clients;
  for (int c = 0; c < 3; ++c) clients.push_back(&f.add_client());
  f.settle(seconds(1));
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    for (auto* c : clients) {
      c->update(std::make_shared<RegisterBump>(),
                [&](const client::UpdateOutcome&) { ++done; });
    }
  }
  f.settle(seconds(10));
  EXPECT_EQ(done, 24);
  for (std::size_t i = 0; i <= 3; ++i) {
    EXPECT_EQ(f.replicas[i]->csn(), 24u) << "primary " << i;
    const auto& reg =
        dynamic_cast<const VersionedRegister&>(f.replicas[i]->object());
    EXPECT_EQ(reg.value(), 24u) << "primary " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequentialConsistencyProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace aqueduct::replication
