// Paper Section 7 extensions: priority/cost mapping and admission control.
#include <gtest/gtest.h>

#include <chrono>

#include "client/admission.hpp"
#include "core/priority.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

// --- PriorityMapper ----------------------------------------------------------

TEST(PriorityMapper, DefaultsAreMonotone) {
  const core::PriorityMapper mapper;
  EXPECT_LT(mapper.probability_for(core::Priority::kLow),
            mapper.probability_for(core::Priority::kNormal));
  EXPECT_LT(mapper.probability_for(core::Priority::kNormal),
            mapper.probability_for(core::Priority::kHigh));
  EXPECT_LT(mapper.probability_for(core::Priority::kHigh),
            mapper.probability_for(core::Priority::kCritical));
}

TEST(PriorityMapper, OverridePerService) {
  core::PriorityMapper mapper;
  mapper.set_probability(core::Priority::kLow, 0.33);
  EXPECT_DOUBLE_EQ(mapper.probability_for(core::Priority::kLow), 0.33);
}

TEST(PriorityMapper, BuildsValidQoS) {
  const core::PriorityMapper mapper;
  const auto qos = mapper.to_qos(core::Priority::kHigh, 2, milliseconds(150));
  EXPECT_NO_THROW(qos.validate());
  EXPECT_DOUBLE_EQ(qos.min_probability, 0.9);
  EXPECT_EQ(qos.staleness_threshold, 2u);
}

TEST(PriorityMapper, CostMappingIsLinearAndClamped) {
  const core::PriorityMapper mapper;
  EXPECT_DOUBLE_EQ(mapper.probability_for_cost(0.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(mapper.probability_for_cost(100.0, 100.0), 0.99);
  EXPECT_NEAR(mapper.probability_for_cost(50.0, 100.0), 0.745, 1e-9);
  // Out-of-range cost clamps, never exceeds the ceiling.
  EXPECT_DOUBLE_EQ(mapper.probability_for_cost(500.0, 100.0), 0.99);
  EXPECT_DOUBLE_EQ(mapper.probability_for_cost(-5.0, 100.0), 0.5);
}

TEST(PriorityMapper, RejectsInvalidProbability) {
  core::PriorityMapper mapper;
  EXPECT_THROW(mapper.set_probability(core::Priority::kLow, 0.0),
               InvariantViolation);
  EXPECT_THROW(mapper.set_probability(core::Priority::kLow, 1.5),
               InvariantViolation);
}

// --- AdmissionController -------------------------------------------------------

client::InfoRepository repo_with_pool(int primaries, double immediate_cdf) {
  client::InfoRepository repo(20, milliseconds(1));
  replication::GroupInfo info;
  info.epoch = 1;
  info.sequencer = net::NodeId{1};
  for (int i = 0; i < primaries; ++i) {
    info.primaries.push_back(net::NodeId{static_cast<std::uint32_t>(2 + i)});
  }
  repo.record_group_info(info);
  // Give every primary a history whose CDF at 100 ms equals
  // `immediate_cdf` (service 50ms with probability immediate_cdf, 500ms
  // otherwise; gateway 0).
  for (const auto id : info.primaries) {
    const int hits = static_cast<int>(immediate_cdf * 20);
    for (int i = 0; i < 20; ++i) {
      replication::PerfPublication p;
      p.replica = id;
      p.has_sample = true;
      p.ts = i < hits ? milliseconds(50) : milliseconds(500);
      repo.record_publication(p, sim::kEpoch);
    }
  }
  return repo;
}

core::QoSSpec qos(double pc) {
  return {.staleness_threshold = 2,
          .deadline = milliseconds(100),
          .min_probability = pc};
}

TEST(AdmissionController, EmptyPoolRejects) {
  client::InfoRepository repo(20, milliseconds(1));
  const client::AdmissionController admission;
  const auto decision = admission.evaluate(repo, qos(0.5), sim::kEpoch);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.available_replicas, 0u);
}

TEST(AdmissionController, AdmitsAchievableSpec) {
  const auto repo = repo_with_pool(4, 0.8);
  const client::AdmissionController admission;
  const auto decision = admission.evaluate(repo, qos(0.9), sim::kEpoch + seconds(1));
  // Three replicas beyond the excluded best: 1 - 0.2^3 = 0.992 >= 0.9.
  EXPECT_TRUE(decision.admitted);
  EXPECT_NEAR(decision.achievable_probability, 0.992, 1e-9);
  EXPECT_EQ(decision.available_replicas, 4u);
}

TEST(AdmissionController, RejectsUnachievableSpec) {
  const auto repo = repo_with_pool(2, 0.5);
  const client::AdmissionController admission;
  // One replica after exclusion: P = 0.5 < 0.9.
  const auto decision = admission.evaluate(repo, qos(0.9), sim::kEpoch + seconds(1));
  EXPECT_FALSE(decision.admitted);
  EXPECT_NEAR(decision.achievable_probability, 0.5, 1e-9);
}

TEST(AdmissionController, HeadroomTightensTheBar) {
  const auto repo = repo_with_pool(3, 0.7);
  // Two replicas after exclusion: 1 - 0.09 = 0.91.
  const client::AdmissionController no_headroom(0.0);
  EXPECT_TRUE(no_headroom.evaluate(repo, qos(0.9), sim::kEpoch + seconds(1)).admitted);
  const client::AdmissionController strict(0.05);
  EXPECT_FALSE(strict.evaluate(repo, qos(0.9), sim::kEpoch + seconds(1)).admitted);
}

TEST(AdmissionController, WithoutFailureAllowanceCountsAll) {
  const auto repo = repo_with_pool(2, 0.5);
  const client::AdmissionController lenient(0.0, /*tolerate_one_failure=*/false);
  // Both replicas count: 1 - 0.25 = 0.75.
  const auto decision = lenient.evaluate(repo, qos(0.7), sim::kEpoch + seconds(1));
  EXPECT_TRUE(decision.admitted);
  EXPECT_NEAR(decision.achievable_probability, 0.75, 1e-9);
}

TEST(AdmissionController, MorePoolAdmitsMore) {
  const client::AdmissionController admission;
  const auto small = admission.evaluate(repo_with_pool(2, 0.6), qos(0.95),
                                        sim::kEpoch + seconds(1));
  const auto large = admission.evaluate(repo_with_pool(8, 0.6), qos(0.95),
                                        sim::kEpoch + seconds(1));
  EXPECT_FALSE(small.admitted);
  EXPECT_TRUE(large.admitted);
  EXPECT_GT(large.achievable_probability, small.achievable_probability);
}

}  // namespace
}  // namespace aqueduct
