#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/check.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aqueduct::sim {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_sec(seconds(3)), 3.0);
  EXPECT_EQ(from_ms(1.5), std::chrono::microseconds(1500));
  EXPECT_EQ(from_sec(0.25), milliseconds(250));
}

TEST(Time, Format) {
  EXPECT_EQ(format(std::chrono::nanoseconds(5)), "5ns");
  EXPECT_EQ(format(milliseconds(100)), "100.000ms");
  EXPECT_EQ(format(seconds(61)), "61.000s");
}

TEST(EventQueue, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.after(milliseconds(30), [&] { order.push_back(3); });
  sim.after(milliseconds(10), [&] { order.push_back(1); });
  sim.after(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.after(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.after(milliseconds(5), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(handle));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  Simulator sim;
  auto handle = sim.after(milliseconds(5), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(handle));
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  Simulator sim;
  auto handle = sim.after(milliseconds(5), [] {});
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_FALSE(sim.cancel(handle));
}

TEST(EventQueue, EmptyHandleCancelIsNoop) {
  Simulator sim;
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(sim.cancel(handle));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen{};
  sim.after(milliseconds(42), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, kEpoch + milliseconds(42));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.after(milliseconds(10), [&] { ++fired; });
  sim.after(milliseconds(30), [&] { ++fired; });
  sim.run_until(kEpoch + milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), kEpoch + milliseconds(20));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForAdvancesEvenWithoutEvents) {
  Simulator sim;
  sim.run_for(seconds(5));
  EXPECT_EQ(sim.now(), kEpoch + seconds(5));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.after(milliseconds(1), recurse);
  };
  sim.after(milliseconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), kEpoch + milliseconds(5));
}

TEST(Simulator, StopBreaksRun) {
  Simulator sim;
  int fired = 0;
  sim.after(milliseconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.after(milliseconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.after(milliseconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.at(kEpoch + milliseconds(5), [] {}), InvariantViolation);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.after(milliseconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

// --- randomness --------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitStreamsDiffer) {
  Rng parent(1);
  Rng a(parent.split()), b(parent.split());
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(1000) == b.uniform_int(1000)) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(Rng, NormalDurationTruncatesAtFloor) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Duration d =
        rng.normal_duration(milliseconds(1), milliseconds(100));
    EXPECT_GE(d, Duration::zero());
  }
}

TEST(Rng, NormalMeanApproximatelyCorrect) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(100.0, 10.0);
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  Duration total = Duration::zero();
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.exponential_duration(milliseconds(50));
  EXPECT_NEAR(to_ms(total) / n, 50.0, 2.0);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  long total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.poisson(4.0);
  EXPECT_NEAR(static_cast<double>(total) / n, 4.0, 0.1);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_int(7), 7u);
}

TEST(DurationDistributions, FixedAlwaysSame) {
  FixedDuration dist(milliseconds(3));
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dist.sample(rng), milliseconds(3));
  EXPECT_EQ(dist.mean(), milliseconds(3));
}

TEST(DurationDistributions, EmpiricalSamplesFromSet) {
  EmpiricalDuration dist({milliseconds(1), milliseconds(2), milliseconds(3)});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Duration d = dist.sample(rng);
    EXPECT_TRUE(d == milliseconds(1) || d == milliseconds(2) ||
                d == milliseconds(3));
  }
  EXPECT_EQ(dist.mean(), milliseconds(2));
}

TEST(DurationDistributions, NormalMeanReported) {
  NormalDuration dist(milliseconds(100), milliseconds(50));
  EXPECT_EQ(dist.mean(), milliseconds(100));
}

// Determinism across the whole simulator: same seed, same trajectory.
TEST(Simulator, FullyDeterministic) {
  auto trace = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<double> values;
    for (int i = 0; i < 20; ++i) {
      sim.after(milliseconds(i * 3), [&] { values.push_back(sim.rng().uniform()); });
    }
    sim.run();
    return values;
  };
  EXPECT_EQ(trace(5), trace(5));
  EXPECT_NE(trace(5), trace(6));
}

}  // namespace
}  // namespace aqueduct::sim
