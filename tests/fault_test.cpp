// Fault-schedule DSL and dependability-manager unit tests.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "fault/dependability.hpp"
#include "fault/schedule.hpp"
#include "net/loopback.hpp"
#include "sim/check.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::fault {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

TEST(FaultSchedule, EventsSortedByTime) {
  FaultSchedule s;
  s.restart(1, seconds(10));
  s.crash(2, seconds(3));
  s.crash(1, seconds(5));
  const auto events = s.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(events[0].replica, 2u);
  EXPECT_EQ(events[1].at, seconds(5));
  EXPECT_EQ(events[2].kind, FaultKind::kRestart);
}

TEST(FaultSchedule, RandomIsDeterministicPerSeed) {
  RandomFaultParams params;
  params.crash_candidates = 5;
  params.min_crashes = 1;
  params.max_crashes = 3;
  const auto a = FaultSchedule::random(99, params).events();
  const auto b = FaultSchedule::random(99, params).events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].replica, b[i].replica);
  }
  // Different seeds produce a different plan for at least one of a few
  // tries (kind, victim, or timing).
  bool diverged = false;
  for (std::uint64_t seed = 100; seed < 104 && !diverged; ++seed) {
    const auto c = FaultSchedule::random(seed, params).events();
    diverged = c.size() != a.size();
    for (std::size_t i = 0; !diverged && i < c.size(); ++i) {
      diverged = c[i].at != a[i].at || c[i].replica != a[i].replica;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultSchedule, RandomPairsEveryCrashWithALaterRestart) {
  RandomFaultParams params;
  params.crash_candidates = 4;
  params.min_crashes = 2;
  params.max_crashes = 2;
  const auto events = FaultSchedule::random(5, params).events();
  std::size_t crashes = 0, restarts = 0;
  for (const auto& e : events) {
    if (e.kind == FaultKind::kCrash) ++crashes;
    if (e.kind == FaultKind::kRestart) ++restarts;
  }
  EXPECT_EQ(crashes, restarts);
  EXPECT_GE(crashes, 1u);
}

TEST(FaultSchedule, GrayBuildersEmitPairedHeals) {
  FaultSchedule s;
  s.degrade_link(0, 2, milliseconds(3), milliseconds(1), 0.05, seconds(5),
                 seconds(4));
  s.partial_partition(1, 4, seconds(6), seconds(5));
  s.duplicate_storm(0.2, seconds(2), seconds(3));
  s.reorder(0.3, milliseconds(40), seconds(2), seconds(3));
  s.throttle_link(0, 3, milliseconds(2), seconds(4), seconds(2));

  const auto events = s.events();
  auto count = [&](FaultKind kind) {
    std::size_t n = 0;
    for (const auto& e : events) n += e.kind == kind;
    return n;
  };
  // Each bounded fault carries its own end: degrade/partition restore the
  // link, storm/reorder/throttle re-arm with a zero knob.
  EXPECT_EQ(count(FaultKind::kHealLink), 2u);
  EXPECT_EQ(count(FaultKind::kDuplicateStorm), 2u);
  EXPECT_EQ(count(FaultKind::kReorder), 2u);
  EXPECT_EQ(count(FaultKind::kThrottleLink), 2u);
  for (const auto& e : events) {
    if (e.kind == FaultKind::kDuplicateStorm && e.at == seconds(5)) {
      EXPECT_DOUBLE_EQ(e.probability, 0.0);
    }
    if (e.kind == FaultKind::kHealLink && e.at == seconds(9)) {
      EXPECT_EQ(e.replica, 0u);
      EXPECT_EQ(e.peer, 2u);
    }
  }
}

TEST(FaultSchedule, WanTopologyDegradesOnlyCrossRegionLinks) {
  FaultSchedule s;
  // Replicas 0,1 in region 0; replicas 2,3 in region 1. Asymmetric matrix:
  // region 0 → 1 is 30ms, region 1 → 0 is 50ms.
  FaultSchedule::WanLink to1{milliseconds(30), milliseconds(5)};
  FaultSchedule::WanLink to0{milliseconds(50), milliseconds(5)};
  s.wan_topology({0, 0, 1, 1},
                 {{{}, to1},
                  {to0, {}}},
                 seconds(1));

  const auto events = s.events();
  ASSERT_EQ(events.size(), 8u) << "2x2 cross-region ordered pairs";
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, FaultKind::kDegradeLink);
    const bool from_r0 = e.replica < 2;
    const bool to_r0 = e.peer < 2;
    EXPECT_NE(from_r0, to_r0) << "intra-region links must stay LAN-local";
    EXPECT_EQ(e.latency_mean, from_r0 ? milliseconds(30) : milliseconds(50));
  }
}

TEST(FaultApply, GrayKindsRequireGraySupportAndFailLoudly) {
  sim::Simulator sim(1);
  net::LoopbackTransport network(sim, std::make_unique<sim::FixedDuration>(
                                milliseconds(1)));
  FaultSchedule s;
  s.duplicate_storm(0.2, seconds(1));

  FaultTargets targets;
  targets.node_id = [](std::size_t) { return net::NodeId{1}; };
  targets.num_replicas = 4;
  targets.network = &network;  // crash-era only: supports_gray_faults false
  EXPECT_THROW(apply(s, sim, std::move(targets)), InvariantViolation);

  FaultTargets none;
  none.node_id = [](std::size_t) { return net::NodeId{1}; };
  none.num_replicas = 4;
  none.network = nullptr;
  EXPECT_THROW(apply(s, sim, std::move(none)), InvariantViolation);
}

TEST(FaultApply, GrayEventsDriveChaosKnobsAtScheduledTimes) {
  sim::Simulator sim(1);
  auto transport = net::make_chaos_transport(net::make_loopback_transport(
      sim, std::make_unique<sim::FixedDuration>(milliseconds(1))));
  net::FaultInjection* fi = transport->fault_injection();
  ASSERT_NE(fi, nullptr);

  FaultSchedule s;
  s.degrade_link(0, 1, milliseconds(2), milliseconds(1), 0.25, seconds(2),
                 seconds(3));

  FaultTargets targets;
  targets.node_id = [](std::size_t i) {
    return net::NodeId{static_cast<std::uint32_t>(i + 1)};
  };
  targets.num_replicas = 2;
  targets.network = fi;
  apply(s, sim, std::move(targets));

  sim.run_for(seconds(1));
  EXPECT_DOUBLE_EQ(fi->loss_probability(net::NodeId{1}, net::NodeId{2}), 0.0);
  sim.run_for(seconds(2));
  EXPECT_DOUBLE_EQ(fi->loss_probability(net::NodeId{1}, net::NodeId{2}), 0.25);
  sim.run_for(seconds(3));  // past the paired heal_link at t=5s
  EXPECT_DOUBLE_EQ(fi->loss_probability(net::NodeId{1}, net::NodeId{2}), 0.0);
}

TEST(FaultApply, FiresCallbacksAtScheduledTimes) {
  sim::Simulator sim(1);
  net::LoopbackTransport network(sim, std::make_unique<sim::FixedDuration>(
                                milliseconds(1)));
  std::vector<std::pair<std::size_t, sim::TimePoint>> crashes, restarts;

  FaultSchedule s;
  s.crash_restart(2, seconds(3), seconds(8));
  s.loss(0.5, seconds(1));

  FaultTargets targets;
  targets.crash = [&](std::size_t i) { crashes.emplace_back(i, sim.now()); };
  targets.restart = [&](std::size_t i) { restarts.emplace_back(i, sim.now()); };
  targets.node_id = [](std::size_t) { return net::NodeId{1}; };
  targets.network = &network;
  apply(s, sim, std::move(targets));

  sim.run_for(seconds(2));
  EXPECT_TRUE(crashes.empty());
  EXPECT_DOUBLE_EQ(network.loss_probability(net::NodeId{1}, net::NodeId{2}),
                   0.5);
  sim.run_for(seconds(10));
  ASSERT_EQ(crashes.size(), 1u);
  ASSERT_EQ(restarts.size(), 1u);
  EXPECT_EQ(crashes[0].first, 2u);
  EXPECT_EQ(crashes[0].second, sim::kEpoch + seconds(3));
  EXPECT_EQ(restarts[0].second, sim::kEpoch + seconds(8));
}

struct FakeFleet {
  std::vector<bool> alive;
  std::vector<std::pair<std::size_t, sim::TimePoint>> restarts;

  DependabilityManager::Hooks hooks(sim::Simulator& sim) {
    DependabilityManager::Hooks h;
    h.num_replicas = [this] { return alive.size(); };
    h.alive = [this](std::size_t i) { return alive[i]; };
    h.restart = [this, &sim](std::size_t i) {
      alive[i] = true;
      restarts.emplace_back(i, sim.now());
    };
    return h;
  }
};

TEST(DependabilityManager, RestartsDeadReplicaWithinBoundedLatency) {
  sim::Simulator sim(1);
  obs::Observability obs;
  FakeFleet fleet{.alive = {true, true, true}};

  DependabilityConfig config;
  config.poll_period = milliseconds(500);
  config.restart_latency = seconds(1);
  DependabilityManager dm(sim, obs, config, fleet.hooks(sim));
  dm.start();

  sim.at(sim::kEpoch + seconds(2), [&] { fleet.alive[1] = false; });
  sim.run_for(seconds(6));

  ASSERT_EQ(fleet.restarts.size(), 1u);
  EXPECT_EQ(fleet.restarts[0].first, 1u);
  // Detection within one poll period, then the configured restart latency.
  EXPECT_LE(fleet.restarts[0].second,
            sim::kEpoch + seconds(2) + config.poll_period +
                config.restart_latency + milliseconds(1));
  EXPECT_TRUE(fleet.alive[1]);
  EXPECT_EQ(dm.stats().restarts_issued, 1u);
  EXPECT_GE(dm.stats().deficits_observed, 1u);
  EXPECT_GT(dm.stats().polls, 0u);
}

TEST(DependabilityManager, TargetLevelToleratesSomeDeadReplicas) {
  sim::Simulator sim(1);
  obs::Observability obs;
  FakeFleet fleet{.alive = {true, true, true, true}};

  DependabilityConfig config;
  config.target_level = 3;  // content with 3 of 4 alive
  config.poll_period = milliseconds(500);
  DependabilityManager dm(sim, obs, config, fleet.hooks(sim));
  dm.start();

  sim.at(sim::kEpoch + seconds(1), [&] { fleet.alive[0] = false; });
  sim.run_for(seconds(4));
  EXPECT_TRUE(fleet.restarts.empty());  // still at target

  sim.at(sim.now(), [&] { fleet.alive[2] = false; });
  sim.run_for(seconds(4));
  ASSERT_EQ(fleet.restarts.size(), 1u);  // one restart regains the target
  EXPECT_EQ(dm.stats().restarts_issued, 1u);
}

TEST(DependabilityManager, MaxRestartsCapsIntervention) {
  sim::Simulator sim(1);
  obs::Observability obs;
  FakeFleet fleet{.alive = {true, true}};

  DependabilityConfig config;
  config.poll_period = milliseconds(500);
  config.restart_latency = milliseconds(500);
  config.max_restarts = 0;
  DependabilityManager dm(sim, obs, config, fleet.hooks(sim));
  dm.start();

  sim.at(sim::kEpoch + seconds(1), [&] { fleet.alive[0] = false; });
  sim.run_for(seconds(5));
  EXPECT_TRUE(fleet.restarts.empty());
  EXPECT_GE(dm.stats().deficits_observed, 1u);
  EXPECT_EQ(dm.stats().restarts_issued, 0u);
}

}  // namespace
}  // namespace aqueduct::fault
