// Fault-schedule DSL and dependability-manager unit tests.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "fault/dependability.hpp"
#include "fault/schedule.hpp"
#include "net/loopback.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::fault {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

TEST(FaultSchedule, EventsSortedByTime) {
  FaultSchedule s;
  s.restart(1, seconds(10));
  s.crash(2, seconds(3));
  s.crash(1, seconds(5));
  const auto events = s.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(events[0].replica, 2u);
  EXPECT_EQ(events[1].at, seconds(5));
  EXPECT_EQ(events[2].kind, FaultKind::kRestart);
}

TEST(FaultSchedule, RandomIsDeterministicPerSeed) {
  RandomFaultParams params;
  params.crash_candidates = 5;
  params.min_crashes = 1;
  params.max_crashes = 3;
  const auto a = FaultSchedule::random(99, params).events();
  const auto b = FaultSchedule::random(99, params).events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].replica, b[i].replica);
  }
  // Different seeds produce a different plan for at least one of a few
  // tries (kind, victim, or timing).
  bool diverged = false;
  for (std::uint64_t seed = 100; seed < 104 && !diverged; ++seed) {
    const auto c = FaultSchedule::random(seed, params).events();
    diverged = c.size() != a.size();
    for (std::size_t i = 0; !diverged && i < c.size(); ++i) {
      diverged = c[i].at != a[i].at || c[i].replica != a[i].replica;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultSchedule, RandomPairsEveryCrashWithALaterRestart) {
  RandomFaultParams params;
  params.crash_candidates = 4;
  params.min_crashes = 2;
  params.max_crashes = 2;
  const auto events = FaultSchedule::random(5, params).events();
  std::size_t crashes = 0, restarts = 0;
  for (const auto& e : events) {
    if (e.kind == FaultKind::kCrash) ++crashes;
    if (e.kind == FaultKind::kRestart) ++restarts;
  }
  EXPECT_EQ(crashes, restarts);
  EXPECT_GE(crashes, 1u);
}

TEST(FaultApply, FiresCallbacksAtScheduledTimes) {
  sim::Simulator sim(1);
  net::LoopbackTransport network(sim, std::make_unique<sim::FixedDuration>(
                                milliseconds(1)));
  std::vector<std::pair<std::size_t, sim::TimePoint>> crashes, restarts;

  FaultSchedule s;
  s.crash_restart(2, seconds(3), seconds(8));
  s.loss(0.5, seconds(1));

  FaultTargets targets;
  targets.crash = [&](std::size_t i) { crashes.emplace_back(i, sim.now()); };
  targets.restart = [&](std::size_t i) { restarts.emplace_back(i, sim.now()); };
  targets.node_id = [](std::size_t) { return net::NodeId{1}; };
  targets.network = &network;
  apply(s, sim, std::move(targets));

  sim.run_for(seconds(2));
  EXPECT_TRUE(crashes.empty());
  EXPECT_DOUBLE_EQ(network.loss_probability(net::NodeId{1}, net::NodeId{2}),
                   0.5);
  sim.run_for(seconds(10));
  ASSERT_EQ(crashes.size(), 1u);
  ASSERT_EQ(restarts.size(), 1u);
  EXPECT_EQ(crashes[0].first, 2u);
  EXPECT_EQ(crashes[0].second, sim::kEpoch + seconds(3));
  EXPECT_EQ(restarts[0].second, sim::kEpoch + seconds(8));
}

struct FakeFleet {
  std::vector<bool> alive;
  std::vector<std::pair<std::size_t, sim::TimePoint>> restarts;

  DependabilityManager::Hooks hooks(sim::Simulator& sim) {
    DependabilityManager::Hooks h;
    h.num_replicas = [this] { return alive.size(); };
    h.alive = [this](std::size_t i) { return alive[i]; };
    h.restart = [this, &sim](std::size_t i) {
      alive[i] = true;
      restarts.emplace_back(i, sim.now());
    };
    return h;
  }
};

TEST(DependabilityManager, RestartsDeadReplicaWithinBoundedLatency) {
  sim::Simulator sim(1);
  obs::Observability obs;
  FakeFleet fleet{.alive = {true, true, true}};

  DependabilityConfig config;
  config.poll_period = milliseconds(500);
  config.restart_latency = seconds(1);
  DependabilityManager dm(sim, obs, config, fleet.hooks(sim));
  dm.start();

  sim.at(sim::kEpoch + seconds(2), [&] { fleet.alive[1] = false; });
  sim.run_for(seconds(6));

  ASSERT_EQ(fleet.restarts.size(), 1u);
  EXPECT_EQ(fleet.restarts[0].first, 1u);
  // Detection within one poll period, then the configured restart latency.
  EXPECT_LE(fleet.restarts[0].second,
            sim::kEpoch + seconds(2) + config.poll_period +
                config.restart_latency + milliseconds(1));
  EXPECT_TRUE(fleet.alive[1]);
  EXPECT_EQ(dm.stats().restarts_issued, 1u);
  EXPECT_GE(dm.stats().deficits_observed, 1u);
  EXPECT_GT(dm.stats().polls, 0u);
}

TEST(DependabilityManager, TargetLevelToleratesSomeDeadReplicas) {
  sim::Simulator sim(1);
  obs::Observability obs;
  FakeFleet fleet{.alive = {true, true, true, true}};

  DependabilityConfig config;
  config.target_level = 3;  // content with 3 of 4 alive
  config.poll_period = milliseconds(500);
  DependabilityManager dm(sim, obs, config, fleet.hooks(sim));
  dm.start();

  sim.at(sim::kEpoch + seconds(1), [&] { fleet.alive[0] = false; });
  sim.run_for(seconds(4));
  EXPECT_TRUE(fleet.restarts.empty());  // still at target

  sim.at(sim.now(), [&] { fleet.alive[2] = false; });
  sim.run_for(seconds(4));
  ASSERT_EQ(fleet.restarts.size(), 1u);  // one restart regains the target
  EXPECT_EQ(dm.stats().restarts_issued, 1u);
}

TEST(DependabilityManager, MaxRestartsCapsIntervention) {
  sim::Simulator sim(1);
  obs::Observability obs;
  FakeFleet fleet{.alive = {true, true}};

  DependabilityConfig config;
  config.poll_period = milliseconds(500);
  config.restart_latency = milliseconds(500);
  config.max_restarts = 0;
  DependabilityManager dm(sim, obs, config, fleet.hooks(sim));
  dm.start();

  sim.at(sim::kEpoch + seconds(1), [&] { fleet.alive[0] = false; });
  sim.run_for(seconds(5));
  EXPECT_TRUE(fleet.restarts.empty());
  EXPECT_GE(dm.stats().deficits_observed, 1u);
  EXPECT_EQ(dm.stats().restarts_issued, 0u);
}

}  // namespace
}  // namespace aqueduct::fault
