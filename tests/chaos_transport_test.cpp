// ChaosTransport conformance suite: the gray-failure decorator contract,
// run against both backends it can wrap (loopback under a SimExecutor,
// UDP sockets under a RealTimeExecutor). The knobs behave identically
// regardless of the wrapped wire; determinism tests are loopback-only
// (real sockets introduce wall-clock nondeterminism by design).
//
// Suites are named Chaos* so the sanitizer CI jobs pick them up.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/chaos.hpp"
#include "net/loopback.hpp"
#include "net/transport.hpp"
#include "net/udp_transport.hpp"
#include "replication/messages.hpp"
#include "replication/objects.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/check.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;

struct Recorder final : net::Endpoint {
  std::vector<std::pair<net::NodeId, net::MessagePtr>> received;
  void on_message(net::NodeId from, net::MessagePtr msg) override {
    received.emplace_back(from, std::move(msg));
  }
  std::vector<std::string> keys() const {
    std::vector<std::string> out;
    for (const auto& [from, msg] : received) {
      if (auto put = net::message_cast<replication::KvPut>(msg)) {
        out.push_back(put->key);
      }
    }
    return out;
  }
};

net::MessagePtr make_payload(const std::string& key) {
  auto op = std::make_shared<replication::KvPut>();
  op->key = key;
  op->value = "v";
  return op;
}

/// A two-node chaos-wrapped transport. `a_fault()` is the FaultInjection
/// surface governing the A → B direction (the sender side's transport).
class ChaosRig {
 public:
  virtual ~ChaosRig() = default;
  virtual net::Transport& a_side() = 0;
  virtual net::Transport& b_side() = 0;
  virtual net::FaultInjection& a_fault() {
    return *a_side().fault_injection();
  }
  virtual net::NodeId node_a() const = 0;
  virtual net::NodeId node_b() const = 0;
  virtual void pump() = 0;
};

class ChaosLoopbackRig final : public ChaosRig {
 public:
  ChaosLoopbackRig(Recorder& a, Recorder& b, std::uint64_t seed = 7)
      : exec_(runtime::make_executor(runtime::Kind::kSim, seed)) {
    transport_ = net::make_chaos_transport(net::make_loopback_transport(
        *exec_, std::make_unique<sim::FixedDuration>(milliseconds(1))));
    a_ = transport_->attach(a);
    b_ = transport_->attach(b);
  }

  net::Transport& a_side() override { return *transport_; }
  net::Transport& b_side() override { return *transport_; }
  net::NodeId node_a() const override { return a_; }
  net::NodeId node_b() const override { return b_; }
  void pump() override {
    exec_->run_until(exec_->now() + milliseconds(200));
  }
  runtime::Executor& exec() { return *exec_; }

 private:
  std::unique_ptr<runtime::Executor> exec_;
  std::unique_ptr<net::Transport> transport_;
  net::NodeId a_;
  net::NodeId b_;
};

class ChaosUdpRig final : public ChaosRig {
 public:
  ChaosUdpRig(Recorder& a, Recorder& b)
      : exec_(runtime::make_executor(runtime::Kind::kRealTime, 7)) {
    replication::register_wire_codecs();
    net::UdpConfig ca;
    ca.local_id = net::NodeId{1};
    net::UdpConfig cb;
    cb.local_id = net::NodeId{2};
    auto ta = std::make_unique<net::UdpTransport>(*exec_, ca);
    auto tb = std::make_unique<net::UdpTransport>(*exec_, cb);
    ta->add_peer({net::NodeId{2}, "127.0.0.1", tb->local_port()});
    tb->add_peer({net::NodeId{1}, "127.0.0.1", ta->local_port()});
    ta_ = net::make_chaos_transport(std::move(ta));
    tb_ = net::make_chaos_transport(std::move(tb));
    a_ = ta_->attach(a);
    b_ = tb_->attach(b);
  }

  net::Transport& a_side() override { return *ta_; }
  net::Transport& b_side() override { return *tb_; }
  net::NodeId node_a() const override { return a_; }
  net::NodeId node_b() const override { return b_; }
  void pump() override {
    exec_->run_until(exec_->now() + milliseconds(200));
  }

 private:
  std::unique_ptr<runtime::Executor> exec_;
  std::unique_ptr<net::Transport> ta_;
  std::unique_ptr<net::Transport> tb_;
  net::NodeId a_;
  net::NodeId b_;
};

enum class Backend { kLoopback, kUdp };

std::unique_ptr<ChaosRig> make_rig(Backend backend, Recorder& a, Recorder& b) {
  if (backend == Backend::kLoopback) {
    return std::make_unique<ChaosLoopbackRig>(a, b);
  }
  return std::make_unique<ChaosUdpRig>(a, b);
}

class ChaosConformanceTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ChaosConformanceTest, WrapsBackendAndReportsGraySupport) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  net::FaultInjection* fi = rig->a_side().fault_injection();
  ASSERT_NE(fi, nullptr) << "a chaos-wrapped transport must inject faults";
  EXPECT_TRUE(fi->supports_gray_faults());
  EXPECT_TRUE(rig->a_side().is_attached(rig->node_a()));
  EXPECT_TRUE(rig->b_side().is_attached(rig->node_b()));
}

TEST_P(ChaosConformanceTest, NoKnobsPassesThroughWithSenderIdentity) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  rig->a_side().send(rig->node_a(), rig->node_b(), make_payload("k1"));
  rig->pump();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, rig->node_a());
  EXPECT_EQ(b.keys(), std::vector<std::string>{"k1"});
  const net::TransportStats ts = rig->a_side().stats();
  EXPECT_EQ(ts.messages_duplicated, 0u);
  EXPECT_EQ(ts.messages_reordered, 0u);
  EXPECT_EQ(ts.messages_delayed, 0u);
}

TEST_P(ChaosConformanceTest, CertainLossDropsAndCounts) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  rig->a_fault().set_loss_probability(1.0);
  for (int i = 0; i < 5; ++i) {
    rig->a_side().send(rig->node_a(), rig->node_b(), make_payload("k"));
  }
  rig->pump();

  EXPECT_TRUE(b.received.empty());
  const net::TransportStats ts = rig->a_side().stats();
  EXPECT_EQ(ts.messages_dropped_loss, 5u);
  EXPECT_EQ(ts.messages_sent, 5u)
      << "chaos drops still count as send attempts";
}

TEST_P(ChaosConformanceTest, LinkLossIsDirectional) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  rig->a_fault().set_link_loss(rig->node_a(), rig->node_b(), 1.0);
  rig->a_side().send(rig->node_a(), rig->node_b(), make_payload("dropped"));
  // The reverse direction is governed by B's sending transport (the same
  // object for the loopback rig) and must stay clean.
  rig->b_side().send(rig->node_b(), rig->node_a(), make_payload("returned"));
  rig->pump();

  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(a.keys(), std::vector<std::string>{"returned"});
}

TEST_P(ChaosConformanceTest, CertainDuplicationDeliversTwice) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  rig->a_fault().set_duplicate_probability(1.0);
  for (int i = 0; i < 3; ++i) {
    rig->a_side().send(rig->node_a(), rig->node_b(), make_payload("k"));
  }
  rig->pump();

  EXPECT_EQ(b.received.size(), 6u);
  EXPECT_EQ(rig->a_side().stats().messages_duplicated, 3u);
}

TEST_P(ChaosConformanceTest, PartialPartitionBlackholesOnlyThePair) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  rig->a_fault().partial_partition(rig->node_a(), rig->node_b());
  rig->a_side().send(rig->node_a(), rig->node_b(), make_payload("gone"));
  rig->pump();
  EXPECT_TRUE(b.received.empty());
  EXPECT_GE(rig->a_side().stats().messages_dropped_partition, 1u);

  rig->a_fault().heal_link(rig->node_a(), rig->node_b());
  rig->a_side().send(rig->node_a(), rig->node_b(), make_payload("back"));
  rig->pump();
  EXPECT_EQ(b.keys(), std::vector<std::string>{"back"});
}

TEST_P(ChaosConformanceTest, HealGrayResetsEveryKnob) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  net::FaultInjection& fi = rig->a_fault();
  fi.set_loss_probability(1.0);
  fi.set_link_loss(rig->node_a(), rig->node_b(), 1.0);
  fi.set_duplicate_probability(1.0);
  fi.set_reorder_probability(1.0);
  fi.partial_partition(rig->node_a(), rig->node_b());
  fi.heal_gray();

  rig->a_side().send(rig->node_a(), rig->node_b(), make_payload("clean"));
  rig->pump();
  EXPECT_EQ(b.keys(), std::vector<std::string>{"clean"});
  EXPECT_EQ(b.received.size(), 1u) << "heal_gray must clear duplication";
}

INSTANTIATE_TEST_SUITE_P(Backends, ChaosConformanceTest,
                         ::testing::Values(Backend::kLoopback, Backend::kUdp),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kLoopback
                                      ? "Loopback"
                                      : "Udp";
                         });

// ---------------------------------------------------------------------------
// Loopback-only: virtual-time behaviors and seeded determinism
// ---------------------------------------------------------------------------

TEST(ChaosLoopbackTest, ExtraDelayDefersDeliveryAndCounts) {
  Recorder a, b;
  ChaosLoopbackRig rig(a, b);
  rig.a_fault().set_default_delay(
      std::make_unique<sim::FixedDuration>(milliseconds(50)));
  rig.a_side().send(rig.node_a(), rig.node_b(), make_payload("late"));

  rig.exec().run_until(rig.exec().now() + milliseconds(20));
  EXPECT_TRUE(b.received.empty()) << "the extra delay must hold the message";
  rig.exec().run_until(rig.exec().now() + milliseconds(60));
  EXPECT_EQ(b.keys(), std::vector<std::string>{"late"});
  EXPECT_EQ(rig.a_side().stats().messages_delayed, 1u);
}

TEST(ChaosLoopbackTest, LinkDelayOverridesDefault) {
  Recorder a, b;
  ChaosLoopbackRig rig(a, b);
  rig.a_fault().set_default_delay(
      std::make_unique<sim::FixedDuration>(milliseconds(100)));
  rig.a_fault().set_link_delay(
      rig.node_a(), rig.node_b(),
      std::make_unique<sim::FixedDuration>(milliseconds(10)));
  rig.a_side().send(rig.node_a(), rig.node_b(), make_payload("fast"));
  rig.exec().run_until(rig.exec().now() + milliseconds(30));
  EXPECT_EQ(b.keys(), std::vector<std::string>{"fast"})
      << "the per-link distribution must shadow the default";
}

TEST(ChaosLoopbackTest, ReorderLetsLaterSendsOvertake) {
  Recorder a, b;
  ChaosLoopbackRig rig(a, b);
  rig.a_fault().set_reorder_window(milliseconds(80));
  rig.a_fault().set_reorder_probability(1.0);
  for (int i = 0; i < 10; ++i) {
    rig.a_side().send(rig.node_a(), rig.node_b(),
                      make_payload("k" + std::to_string(i)));
  }
  rig.pump();

  ASSERT_EQ(b.received.size(), 10u);
  EXPECT_EQ(rig.a_side().stats().messages_reordered, 10u);
  std::vector<std::string> sent;
  for (int i = 0; i < 10; ++i) sent.push_back("k" + std::to_string(i));
  EXPECT_NE(b.keys(), sent)
      << "uniform holdbacks over an 80ms window must produce an overtake";
}

TEST(ChaosLoopbackTest, ThrottleSerializesTheLink) {
  Recorder a, b;
  ChaosLoopbackRig rig(a, b);
  rig.a_fault().set_link_throttle(rig.node_a(), rig.node_b(),
                                  milliseconds(30));
  for (int i = 0; i < 3; ++i) {
    rig.a_side().send(rig.node_a(), rig.node_b(), make_payload("k"));
  }
  // First copy goes out immediately; the rest one min_gap apart.
  rig.exec().run_until(rig.exec().now() + milliseconds(10));
  EXPECT_EQ(b.received.size(), 1u);
  rig.exec().run_until(rig.exec().now() + milliseconds(30));
  EXPECT_EQ(b.received.size(), 2u);
  rig.exec().run_until(rig.exec().now() + milliseconds(30));
  EXPECT_EQ(b.received.size(), 3u);
}

TEST(ChaosLoopbackTest, SameSeedReplaysIdenticalDecisions) {
  const auto run = [](std::uint64_t seed) {
    Recorder a, b;
    ChaosLoopbackRig rig(a, b, seed);
    rig.a_fault().set_loss_probability(0.4);
    rig.a_fault().set_duplicate_probability(0.3);
    rig.a_fault().set_reorder_probability(0.5);
    for (int i = 0; i < 60; ++i) {
      rig.a_side().send(rig.node_a(), rig.node_b(),
                        make_payload("k" + std::to_string(i)));
    }
    rig.pump();
    return b.keys();
  };

  const std::vector<std::string> first = run(11);
  EXPECT_EQ(first, run(11)) << "same seed must replay the same drops, "
                               "duplicates, and delivery order";
  EXPECT_NE(first, run(12)) << "a different seed must explore a different "
                               "failure pattern";
}

TEST(ChaosLoopbackTest, StatsAggregateInnerAndChaosCounters) {
  Recorder a, b;
  ChaosLoopbackRig rig(a, b);
  rig.a_fault().set_duplicate_probability(1.0);
  rig.a_side().send(rig.node_a(), rig.node_b(), make_payload("k"));
  rig.pump();

  const net::TransportStats ts = rig.a_side().stats();
  EXPECT_EQ(ts.messages_sent, 2u) << "original + injected duplicate";
  EXPECT_EQ(ts.messages_delivered, 2u);
  EXPECT_EQ(ts.messages_duplicated, 1u);
  EXPECT_GT(ts.bytes_sent, 0u);
}

// ---------------------------------------------------------------------------
// The crash-era backends must refuse gray knobs loudly, not silently no-op.
// ---------------------------------------------------------------------------

TEST(ChaosLoopbackTest, BareLoopbackRejectsGrayKnobs) {
  auto exec = runtime::make_executor(runtime::Kind::kSim, 7);
  auto transport = net::make_loopback_transport(
      *exec, std::make_unique<sim::FixedDuration>(milliseconds(1)));
  net::FaultInjection* fi = transport->fault_injection();
  ASSERT_NE(fi, nullptr);
  EXPECT_FALSE(fi->supports_gray_faults());
  EXPECT_THROW(fi->set_duplicate_probability(0.5), InvariantViolation);
  EXPECT_THROW(fi->set_reorder_probability(0.5), InvariantViolation);
  EXPECT_THROW(fi->partial_partition(net::NodeId{1}, net::NodeId{2}),
               InvariantViolation);
  EXPECT_THROW(fi->heal_gray(), InvariantViolation);
}

}  // namespace
}  // namespace aqueduct
