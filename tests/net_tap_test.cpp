// Message-level tracing at the transport layer, observed through the
// obs::TraceSink pipeline (transport.tracing() is the per-simulation hub).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/loopback.hpp"
#include "obs/trace.hpp"
#include "runtime/sim_executor.hpp"

namespace aqueduct::net {
namespace {

using std::chrono::milliseconds;

struct PingMsg final : Message {
  std::string type_name() const override { return "test.ping"; }
  std::size_t wire_size() const override { return 100; }
};

struct NullEndpoint final : Endpoint {
  void on_message(NodeId, MessagePtr) override {}
};

struct RecordingSink final : obs::TraceSink {
  std::vector<obs::MessageEvent> events;
  void on_message(const obs::MessageEvent& e) override { events.push_back(e); }
};

TEST(NetworkTrace, ObservesDeliveriesAndDrops) {
  runtime::SimExecutor sim(1);
  LoopbackTransport network(sim, std::make_unique<sim::FixedDuration>(milliseconds(1)));
  NullEndpoint a, b;
  const NodeId ida = network.attach(a);
  const NodeId idb = network.attach(b);

  RecordingSink sink;
  network.tracing().add(&sink);

  network.send(ida, idb, std::make_shared<PingMsg>());
  network.partition({ida}, {idb});
  network.send(ida, idb, std::make_shared<PingMsg>());
  network.heal();
  sim.run();

  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].type_name, "test.ping");
  EXPECT_EQ(sink.events[0].wire_size, 100u);
  EXPECT_TRUE(sink.events[0].dropped.empty());
  EXPECT_EQ(sink.events[0].from, ida);
  EXPECT_EQ(sink.events[0].to, idb);
  EXPECT_EQ(sink.events[1].dropped, "partition");
  network.tracing().remove(&sink);
}

TEST(NetworkTrace, LossEventsTagged) {
  runtime::SimExecutor sim(2);
  LoopbackTransport network(sim, std::make_unique<sim::FixedDuration>(milliseconds(1)));
  NullEndpoint a, b;
  const NodeId ida = network.attach(a);
  const NodeId idb = network.attach(b);
  network.set_loss_probability(1.0);
  RecordingSink sink;
  network.tracing().add(&sink);
  for (int i = 0; i < 5; ++i) network.send(ida, idb, std::make_shared<PingMsg>());
  sim.run();
  int losses = 0;
  for (const auto& e : sink.events) {
    if (e.dropped == "loss") ++losses;
  }
  EXPECT_EQ(losses, 5);
  network.tracing().remove(&sink);
}

TEST(NetworkTrace, RemovedSinkStopsObserving) {
  runtime::SimExecutor sim(3);
  LoopbackTransport network(sim, std::make_unique<sim::FixedDuration>(milliseconds(1)));
  NullEndpoint a, b;
  const NodeId ida = network.attach(a);
  const NodeId idb = network.attach(b);
  RecordingSink sink;
  network.tracing().add(&sink);
  network.send(ida, idb, std::make_shared<PingMsg>());
  network.tracing().remove(&sink);
  network.send(ida, idb, std::make_shared<PingMsg>());
  sim.run();
  EXPECT_EQ(sink.events.size(), 1u);
  // With no sinks the hub is inactive and the send path skips event
  // assembly entirely.
  EXPECT_FALSE(network.tracing().active());
}

}  // namespace
}  // namespace aqueduct::net
