#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::net {
namespace {

using std::chrono::milliseconds;

struct PingMsg final : Message {
  std::string type_name() const override { return "test.ping"; }
  std::size_t wire_size() const override { return 100; }
};

struct NullEndpoint final : Endpoint {
  void on_message(NodeId, MessagePtr) override {}
};

TEST(NetworkTap, ObservesDeliveriesAndDrops) {
  sim::Simulator sim(1);
  Network network(sim, std::make_unique<sim::FixedDuration>(milliseconds(1)));
  NullEndpoint a, b;
  const NodeId ida = network.attach(a);
  const NodeId idb = network.attach(b);

  std::vector<TraceEvent> events;
  network.set_tap([&](const TraceEvent& e) { events.push_back(e); });

  network.send(ida, idb, std::make_shared<PingMsg>());
  network.partition({ida}, {idb});
  network.send(ida, idb, std::make_shared<PingMsg>());
  network.heal();
  sim.run();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type_name, "test.ping");
  EXPECT_EQ(events[0].wire_size, 100u);
  EXPECT_TRUE(events[0].dropped.empty());
  EXPECT_EQ(events[0].from, ida);
  EXPECT_EQ(events[0].to, idb);
  EXPECT_EQ(events[1].dropped, "partition");
}

TEST(NetworkTap, LossEventsTagged) {
  sim::Simulator sim(2);
  Network network(sim, std::make_unique<sim::FixedDuration>(milliseconds(1)));
  NullEndpoint a, b;
  const NodeId ida = network.attach(a);
  const NodeId idb = network.attach(b);
  network.set_loss_probability(1.0);
  int losses = 0;
  network.set_tap([&](const TraceEvent& e) {
    if (e.dropped == "loss") ++losses;
  });
  for (int i = 0; i < 5; ++i) network.send(ida, idb, std::make_shared<PingMsg>());
  sim.run();
  EXPECT_EQ(losses, 5);
}

TEST(NetworkTap, RemovableAndReplaceable) {
  sim::Simulator sim(3);
  Network network(sim, std::make_unique<sim::FixedDuration>(milliseconds(1)));
  NullEndpoint a, b;
  const NodeId ida = network.attach(a);
  const NodeId idb = network.attach(b);
  int count = 0;
  network.set_tap([&](const TraceEvent&) { ++count; });
  network.send(ida, idb, std::make_shared<PingMsg>());
  network.set_tap(nullptr);
  network.send(ida, idb, std::make_shared<PingMsg>());
  sim.run();
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace aqueduct::net
