// Group-communication substrate: reliable FIFO multicast, views, p2p.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::gcs {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

struct TextMsg final : net::Message {
  explicit TextMsg(std::string t) : text(std::move(t)) {}
  std::string text;
  std::string type_name() const override { return "test.text"; }
};

net::MessagePtr text(const std::string& t) { return std::make_shared<TextMsg>(t); }

std::string text_of(const net::MessagePtr& msg) {
  auto t = net::message_cast<TextMsg>(msg);
  return t ? t->text : "?";
}

constexpr GroupId kGroup{42};

/// N processes in one group over a jittery network.
struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed = 1,
                   sim::Duration jitter = milliseconds(2), Config config = {})
      : sim(seed),
        network(sim, std::make_unique<sim::NormalDuration>(milliseconds(2), jitter)) {
    for (std::size_t i = 0; i < n; ++i) {
      endpoints.push_back(std::make_unique<Endpoint>(sim, network, directory, config));
      auto& member = endpoints[i]->member(kGroup);
      member.set_on_deliver([this, i](net::NodeId from, const net::MessagePtr& msg) {
        delivered[i].emplace_back(from, text_of(msg));
      });
      member.set_on_view([this, i](const View& v) { views[i].push_back(v); });
    }
  }

  /// Joins all members, staggered, and settles.
  void join_all() {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      sim.after(milliseconds(5), [this, i] { endpoints[i]->member(kGroup).join(); });
      sim.run_for(milliseconds(50));
    }
    settle();
  }

  void settle(sim::Duration d = seconds(2)) { sim.run_for(d); }

  Member& member(std::size_t i) { return endpoints[i]->member(kGroup); }

  /// Messages (as text) member i delivered from `from`, in order.
  std::vector<std::string> from_sender(std::size_t i, net::NodeId from) const {
    std::vector<std::string> out;
    auto it = delivered.find(i);
    if (it == delivered.end()) return out;
    for (const auto& [sender, msg] : it->second) {
      if (sender == from) out.push_back(msg);
    }
    return out;
  }

  sim::Simulator sim;
  net::LoopbackTransport network;
  Directory directory;
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  std::map<std::size_t, std::vector<std::pair<net::NodeId, std::string>>> delivered;
  std::map<std::size_t, std::vector<View>> views;
};

TEST(GcsJoin, FirstJoinerBootstrapsSingleton) {
  Fixture f(1);
  f.member(0).join();
  f.settle(milliseconds(10));
  EXPECT_TRUE(f.member(0).joined());
  EXPECT_EQ(f.member(0).view().size(), 1u);
  EXPECT_TRUE(f.member(0).is_leader());
  ASSERT_EQ(f.views[0].size(), 1u);
  EXPECT_EQ(f.views[0][0].id, 1u);
}

TEST(GcsJoin, AllMembersConvergeToOneView) {
  Fixture f(5);
  f.join_all();
  const View& reference = f.member(0).view();
  EXPECT_EQ(reference.size(), 5u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(f.member(i).view().id, reference.id) << "member " << i;
    EXPECT_EQ(f.member(i).view().members, reference.members);
  }
}

TEST(GcsJoin, LeaderIsFirstJoiner) {
  Fixture f(3);
  f.join_all();
  EXPECT_TRUE(f.member(0).is_leader());
  EXPECT_FALSE(f.member(1).is_leader());
  EXPECT_EQ(f.member(1).view().leader(), f.member(0).self());
}

TEST(GcsJoin, DoubleJoinRejected) {
  Fixture f(1);
  f.member(0).join();
  f.settle(milliseconds(10));
  EXPECT_THROW(f.member(0).join(), InvariantViolation);
}

TEST(GcsMulticast, ReachesEveryMemberIncludingSelf) {
  Fixture f(4);
  f.join_all();
  f.member(1).multicast(text("hello"));
  f.settle();
  for (std::size_t i = 0; i < 4; ++i) {
    const auto msgs = f.from_sender(i, f.member(1).self());
    ASSERT_EQ(msgs.size(), 1u) << "member " << i;
    EXPECT_EQ(msgs[0], "hello");
  }
}

TEST(GcsMulticast, FifoPerSenderDespiteJitter) {
  Fixture f(3, /*seed=*/9, /*jitter=*/milliseconds(3));
  f.join_all();
  for (int i = 0; i < 50; ++i) {
    f.member(0).multicast(text("a" + std::to_string(i)));
    f.member(1).multicast(text("b" + std::to_string(i)));
  }
  f.settle();
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t sender = 0; sender < 2; ++sender) {
      const auto msgs = f.from_sender(m, f.member(sender).self());
      ASSERT_EQ(msgs.size(), 50u);
      const char prefix = sender == 0 ? 'a' : 'b';
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(msgs[i], prefix + std::to_string(i));
      }
    }
  }
}

TEST(GcsMulticast, ReliableUnderMessageLoss) {
  Fixture f(3, /*seed=*/5);
  f.join_all();
  f.network.set_loss_probability(0.2);
  for (int i = 0; i < 30; ++i) f.member(0).multicast(text("m" + std::to_string(i)));
  f.settle(seconds(10));  // NACK/heartbeat repair needs a few rounds
  for (std::size_t m = 0; m < 3; ++m) {
    const auto msgs = f.from_sender(m, f.member(0).self());
    ASSERT_EQ(msgs.size(), 30u) << "member " << m;
    for (int i = 0; i < 30; ++i) EXPECT_EQ(msgs[i], "m" + std::to_string(i));
  }
  EXPECT_GT(f.member(0).stats().retransmissions +
                f.member(1).stats().nacks_sent +
                f.member(2).stats().nacks_sent,
            0u);
}

TEST(GcsMulticast, NoDuplicatesUnderRetransmission) {
  Fixture f(3, 11);
  f.join_all();
  f.network.set_loss_probability(0.3);
  for (int i = 0; i < 20; ++i) f.member(0).multicast(text("x" + std::to_string(i)));
  f.settle(seconds(10));
  f.network.set_loss_probability(0.0);
  f.settle(seconds(5));
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(f.from_sender(m, f.member(0).self()).size(), 20u);
  }
}

TEST(GcsP2p, DeliveredOnlyToDestination) {
  Fixture f(3);
  f.join_all();
  f.member(0).send_to(f.member(2).self(), text("secret"));
  f.settle();
  EXPECT_TRUE(f.from_sender(1, f.member(0).self()).empty());
  const auto msgs = f.from_sender(2, f.member(0).self());
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0], "secret");
}

TEST(GcsP2p, FifoPerChannel) {
  Fixture f(2, 13, milliseconds(3));
  f.join_all();
  for (int i = 0; i < 40; ++i) {
    f.member(0).send_to(f.member(1).self(), text("p" + std::to_string(i)));
  }
  f.settle();
  const auto msgs = f.from_sender(1, f.member(0).self());
  ASSERT_EQ(msgs.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(msgs[i], "p" + std::to_string(i));
}

TEST(GcsP2p, ReliableUnderLoss) {
  Fixture f(2, 17);
  f.join_all();
  f.network.set_loss_probability(0.25);
  for (int i = 0; i < 25; ++i) {
    f.member(0).send_to(f.member(1).self(), text("q" + std::to_string(i)));
  }
  f.settle(seconds(10));
  EXPECT_EQ(f.from_sender(1, f.member(0).self()).size(), 25u);
}

TEST(GcsP2p, SendToSelfDelivers) {
  Fixture f(2);
  f.join_all();
  f.member(0).send_to(f.member(0).self(), text("me"));
  f.settle(milliseconds(100));
  const auto msgs = f.from_sender(0, f.member(0).self());
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0], "me");
}

TEST(GcsP2p, SendToSet) {
  Fixture f(4);
  f.join_all();
  f.member(0).send_to_set({f.member(1).self(), f.member(3).self()}, text("s"));
  f.settle();
  EXPECT_EQ(f.from_sender(1, f.member(0).self()).size(), 1u);
  EXPECT_TRUE(f.from_sender(2, f.member(0).self()).empty());
  EXPECT_EQ(f.from_sender(3, f.member(0).self()).size(), 1u);
}

TEST(GcsStability, SentBuffersGarbageCollected) {
  Fixture f(3);
  f.join_all();
  for (int i = 0; i < 100; ++i) f.member(0).multicast(text("g" + std::to_string(i)));
  // Several heartbeat rounds: acks propagate, stability prunes buffers.
  f.settle(seconds(5));
  EXPECT_EQ(f.member(0).stats().mcasts_sent, 100u);
  // All members delivered everything; further multicasts still work.
  f.member(0).multicast(text("after-gc"));
  f.settle();
  EXPECT_EQ(f.from_sender(2, f.member(0).self()).back(), "after-gc");
}

TEST(GcsLeave, GracefulLeaveShrinksView) {
  Fixture f(3);
  f.join_all();
  f.member(2).leave();
  f.settle(seconds(3));
  EXPECT_EQ(f.member(0).view().size(), 2u);
  EXPECT_FALSE(f.member(0).view().contains(f.member(2).self()));
  EXPECT_FALSE(f.member(2).joined());
}

TEST(GcsLeave, LeaderLeavingHandsOver) {
  Fixture f(3);
  f.join_all();
  f.member(0).leave();
  f.settle(seconds(3));
  EXPECT_EQ(f.member(1).view().size(), 2u);
  EXPECT_TRUE(f.member(1).is_leader());
}

TEST(GcsViews, ViewIdsMonotonic) {
  Fixture f(4);
  f.join_all();
  for (const auto& [i, vs] : f.views) {
    for (std::size_t k = 1; k < vs.size(); ++k) {
      EXPECT_GT(vs[k].id, vs[k - 1].id) << "member " << i;
    }
  }
}

TEST(GcsViews, RankAndContains) {
  Fixture f(3);
  f.join_all();
  const View& v = f.member(0).view();
  EXPECT_EQ(v.rank_of(v.members[0]), 0u);
  EXPECT_EQ(v.rank_of(v.members[2]), 2u);
  EXPECT_TRUE(v.contains(v.members[1]));
  EXPECT_FALSE(v.contains(net::NodeId{999}));
}

TEST(GcsViews, SendBeforeJoinBuffersUntilInstalled) {
  Fixture f(2);
  f.member(0).join();
  f.settle(milliseconds(50));
  // Member 1 requested a join and immediately multicasts; the message must
  // go out once its first view is installed.
  f.member(1).join();
  f.member(1).multicast(text("early"));
  f.settle(seconds(3));
  const auto msgs = f.from_sender(0, f.member(1).self());
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0], "early");
}

TEST(GcsDirectory, ClaimThenLookup) {
  Directory dir;
  EXPECT_FALSE(dir.lookup(GroupId{1}).has_value());
  EXPECT_FALSE(dir.claim_or_get(GroupId{1}, net::NodeId{5}).has_value());
  auto coordinator = dir.claim_or_get(GroupId{1}, net::NodeId{6});
  ASSERT_TRUE(coordinator.has_value());
  EXPECT_EQ(*coordinator, net::NodeId{5});
  dir.update(GroupId{1}, net::NodeId{7});
  EXPECT_EQ(*dir.lookup(GroupId{1}), net::NodeId{7});
}

TEST(GcsGroups, IndependentGroupsDoNotInterfere) {
  sim::Simulator sim(1);
  net::LoopbackTransport network(sim, std::make_unique<sim::FixedDuration>(milliseconds(1)));
  Directory directory;
  Endpoint a(sim, network, directory), b(sim, network, directory);
  std::vector<std::string> got_g1, got_g2;
  const GroupId g1{1}, g2{2};
  a.member(g1).set_on_deliver([&](net::NodeId, const net::MessagePtr& m) {
    got_g1.push_back(text_of(m));
  });
  a.member(g2).set_on_deliver([&](net::NodeId, const net::MessagePtr& m) {
    got_g2.push_back(text_of(m));
  });
  a.member(g1).join();
  a.member(g2).join();
  sim.run_for(milliseconds(100));
  b.member(g1).join();
  b.member(g2).join();
  sim.run_for(seconds(2));
  b.member(g1).multicast(text("one"));
  b.member(g2).multicast(text("two"));
  sim.run_for(seconds(1));
  ASSERT_EQ(got_g1.size(), 1u);
  ASSERT_EQ(got_g2.size(), 1u);
  EXPECT_EQ(got_g1[0], "one");
  EXPECT_EQ(got_g2[0], "two");
}

// Property sweep: FIFO + completeness for random member counts and loss.
class GcsReliabilityProperty
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {};

TEST_P(GcsReliabilityProperty, AllDeliverAllInOrder) {
  const auto [members, loss, seed] = GetParam();
  Fixture f(members, seed);
  f.join_all();
  f.network.set_loss_probability(loss);
  const int per_sender = 15;
  for (int i = 0; i < per_sender; ++i) {
    for (int s = 0; s < members; ++s) {
      f.member(s).multicast(text(std::to_string(s) + ":" + std::to_string(i)));
    }
  }
  f.network.set_loss_probability(loss);
  f.settle(seconds(15));
  for (int m = 0; m < members; ++m) {
    for (int s = 0; s < members; ++s) {
      const auto msgs = f.from_sender(m, f.member(s).self());
      ASSERT_EQ(msgs.size(), static_cast<std::size_t>(per_sender))
          << "member " << m << " from sender " << s;
      for (int i = 0; i < per_sender; ++i) {
        EXPECT_EQ(msgs[i], std::to_string(s) + ":" + std::to_string(i));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GcsReliabilityProperty,
    ::testing::Values(std::tuple{2, 0.0, 1ull}, std::tuple{3, 0.1, 2ull},
                      std::tuple{4, 0.0, 3ull}, std::tuple{4, 0.2, 4ull},
                      std::tuple{6, 0.05, 5ull}, std::tuple{8, 0.0, 6ull}));

}  // namespace
}  // namespace aqueduct::gcs
