// runtime::PeriodicTask semantics on both executors.
//
// The drift contract under test: firings are anchored to the grid
// `start + initial_delay + k * period`, never to `last_fire + period`.
// Under the simulator callbacks take zero virtual time so the anchored
// schedule is indistinguishable from the naive one; under the real-time
// executor a slow callback must not skew the grid, and slots the clock
// has already passed are skipped rather than queued as a backlog.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/periodic_task.hpp"
#include "runtime/sim_executor.hpp"

namespace aqueduct::runtime {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

std::string kind_name(const ::testing::TestParamInfo<Kind>& info) {
  return info.param == Kind::kSim ? "Sim" : "RealTime";
}

TEST(PeriodicTask, FiresAtPeriod) {
  SimExecutor sim;
  int fired = 0;
  PeriodicTask task(sim, milliseconds(100), [&] { ++fired; });
  task.start();
  sim.run_until(kEpoch + milliseconds(450));
  EXPECT_EQ(fired, 4);
  task.stop();
  sim.run_until(kEpoch + seconds(1));
  EXPECT_EQ(fired, 4);
}

TEST(PeriodicTask, InitialDelayRespected) {
  SimExecutor sim;
  std::vector<TimePoint> times;
  PeriodicTask task(sim, milliseconds(100), milliseconds(10),
                    [&] { times.push_back(sim.now()); });
  task.start();
  sim.run_until(kEpoch + milliseconds(250));
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], kEpoch + milliseconds(10));
  EXPECT_EQ(times[1], kEpoch + milliseconds(110));
}

TEST(PeriodicTask, StartIsIdempotent) {
  SimExecutor sim;
  int fired = 0;
  PeriodicTask task(sim, milliseconds(100), [&] { ++fired; });
  task.start();
  task.start();
  sim.run_until(kEpoch + milliseconds(150));
  EXPECT_EQ(fired, 1);
}

TEST(PeriodicTask, DestructorStops) {
  SimExecutor sim;
  int fired = 0;
  {
    PeriodicTask task(sim, milliseconds(10), [&] { ++fired; });
    task.start();
  }
  sim.run_until(kEpoch + milliseconds(100));
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicTask, AnchoredGridExactUnderSim) {
  // Under virtual time the grid is exact: firing k lands on
  // start + initial_delay + k * period with no accumulation whatsoever.
  SimExecutor sim;
  std::vector<TimePoint> times;
  PeriodicTask task(sim, milliseconds(7), milliseconds(3),
                    [&] { times.push_back(sim.now()); });
  sim.after(milliseconds(1), [&] { task.start(); });
  sim.run_until(kEpoch + milliseconds(100));
  ASSERT_GE(times.size(), 5u);
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_EQ(times[k], kEpoch + milliseconds(1) + milliseconds(3) +
                            milliseconds(7) * static_cast<int>(k));
  }
}

class PeriodicTaskOnBoth : public ::testing::TestWithParam<Kind> {};

TEST_P(PeriodicTaskOnBoth, StopFromInsideCallback) {
  auto exec = make_executor(GetParam(), 1);
  int fired = 0;
  PeriodicTask task(*exec, milliseconds(5), [&] {
    if (++fired == 3) task.stop();
  });
  task.start();
  exec->run_for(milliseconds(100));
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(task.running());
}

TEST_P(PeriodicTaskOnBoth, StopPreventsFurtherFirings) {
  auto exec = make_executor(GetParam(), 1);
  int fired = 0;
  PeriodicTask task(*exec, milliseconds(5), [&] { ++fired; });
  task.start();
  exec->run_for(milliseconds(12));
  task.stop();
  const int at_stop = fired;
  exec->run_for(milliseconds(30));
  EXPECT_EQ(fired, at_stop);
}

INSTANTIATE_TEST_SUITE_P(AllRuntimes, PeriodicTaskOnBoth,
                         ::testing::Values(Kind::kSim, Kind::kRealTime),
                         kind_name);

TEST(PeriodicTaskRealTime, SlowCallbackDoesNotSkewTheGrid) {
  // Naive `last_fire + period` rescheduling would drift by the callback
  // cost every firing (~+10 ms each here, ~30 ms by the fourth). Anchored
  // firings stay within scheduling jitter of the k * 50 ms grid.
  RealTimeExecutor exec;
  const auto period = milliseconds(50);
  std::vector<Duration> offsets;
  TimePoint start{};
  PeriodicTask task(exec, period, [&] {
    offsets.push_back(exec.now() - start);
    std::this_thread::sleep_for(milliseconds(10));
    if (offsets.size() == 4) exec.stop();
  });
  start = exec.now();
  task.start();
  exec.run_until(exec.now() + seconds(5));
  ASSERT_EQ(offsets.size(), 4u);
  for (std::size_t k = 0; k < offsets.size(); ++k) {
    const Duration expected = period * static_cast<int>(k + 1);
    EXPECT_GE(offsets[k], expected);
    EXPECT_LT(offsets[k] - expected, milliseconds(25))
        << "firing " << k << " drifted off the anchored grid";
  }
}

TEST(PeriodicTaskRealTime, OverrunningCallbackSkipsSlotsInsteadOfBacklogging) {
  // A callback slower than its period fires once per *completed* slot:
  // with a 10 ms period and a ~25 ms callback, 120 ms of wall time allows
  // at most ~5 firings — nowhere near the 12 a queued backlog would give.
  RealTimeExecutor exec;
  int fired = 0;
  PeriodicTask task(exec, milliseconds(10), [&] {
    ++fired;
    std::this_thread::sleep_for(milliseconds(25));
  });
  task.start();
  exec.run_until(exec.now() + milliseconds(120));
  task.stop();
  EXPECT_GE(fired, 2);
  EXPECT_LE(fired, 6);
}

}  // namespace
}  // namespace aqueduct::runtime
