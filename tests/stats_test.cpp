#include "harness/stats.hpp"

#include <gtest/gtest.h>

namespace aqueduct::harness {
namespace {

TEST(BinomialCiNormal, ZeroTrials) {
  const auto ci = binomial_ci_normal(0, 0);
  EXPECT_DOUBLE_EQ(ci.point, 0.0);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.upper, 0.0);
}

TEST(BinomialCiNormal, PointEstimateCorrect) {
  const auto ci = binomial_ci_normal(25, 100);
  EXPECT_DOUBLE_EQ(ci.point, 0.25);
  EXPECT_LT(ci.lower, 0.25);
  EXPECT_GT(ci.upper, 0.25);
}

TEST(BinomialCiNormal, KnownHalfWidth) {
  // p=0.5, n=100: half-width = 1.96 * sqrt(0.25/100) = 0.098.
  const auto ci = binomial_ci_normal(50, 100);
  EXPECT_NEAR(ci.upper - ci.point, 0.098, 1e-3);
  EXPECT_NEAR(ci.point - ci.lower, 0.098, 1e-3);
}

TEST(BinomialCiNormal, ClampedToUnitInterval) {
  const auto lo = binomial_ci_normal(0, 10);
  EXPECT_DOUBLE_EQ(lo.lower, 0.0);
  const auto hi = binomial_ci_normal(10, 10);
  EXPECT_DOUBLE_EQ(hi.upper, 1.0);
}

TEST(BinomialCiNormal, ShrinksWithSampleSize) {
  const auto small = binomial_ci_normal(5, 20);
  const auto large = binomial_ci_normal(250, 1000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(BinomialCiWilson, CoversPointEstimate) {
  const auto ci = binomial_ci_wilson(3, 50);
  EXPECT_DOUBLE_EQ(ci.point, 0.06);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
}

TEST(BinomialCiWilson, NonDegenerateAtZeroSuccesses) {
  // Unlike the normal approximation, Wilson gives a non-zero upper bound
  // for 0 successes.
  const auto ci = binomial_ci_wilson(0, 50);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_GT(ci.upper, 0.0);
}

TEST(Summarize, EmptyInput) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicMoments) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Summarize, SingleValueHasZeroStddev) {
  const auto s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 9.9);
}

}  // namespace
}  // namespace aqueduct::harness
