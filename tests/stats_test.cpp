#include "harness/stats.hpp"

#include <gtest/gtest.h>

namespace aqueduct::harness {
namespace {

TEST(BinomialCiNormal, ZeroTrials) {
  const auto ci = binomial_ci_normal(0, 0);
  EXPECT_DOUBLE_EQ(ci.point, 0.0);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.upper, 0.0);
}

TEST(BinomialCiNormal, PointEstimateCorrect) {
  const auto ci = binomial_ci_normal(25, 100);
  EXPECT_DOUBLE_EQ(ci.point, 0.25);
  EXPECT_LT(ci.lower, 0.25);
  EXPECT_GT(ci.upper, 0.25);
}

TEST(BinomialCiNormal, KnownHalfWidth) {
  // p=0.5, n=100: half-width = 1.96 * sqrt(0.25/100) = 0.098.
  const auto ci = binomial_ci_normal(50, 100);
  EXPECT_NEAR(ci.upper - ci.point, 0.098, 1e-3);
  EXPECT_NEAR(ci.point - ci.lower, 0.098, 1e-3);
}

TEST(BinomialCiNormal, ClampedToUnitInterval) {
  const auto lo = binomial_ci_normal(0, 10);
  EXPECT_DOUBLE_EQ(lo.lower, 0.0);
  const auto hi = binomial_ci_normal(10, 10);
  EXPECT_DOUBLE_EQ(hi.upper, 1.0);
}

TEST(BinomialCiNormal, ShrinksWithSampleSize) {
  const auto small = binomial_ci_normal(5, 20);
  const auto large = binomial_ci_normal(250, 1000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(BinomialCiWilson, CoversPointEstimate) {
  const auto ci = binomial_ci_wilson(3, 50);
  EXPECT_DOUBLE_EQ(ci.point, 0.06);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
}

TEST(BinomialCiWilson, NonDegenerateAtZeroSuccesses) {
  // Unlike the normal approximation, Wilson gives a non-zero upper bound
  // for 0 successes.
  const auto ci = binomial_ci_wilson(0, 50);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_GT(ci.upper, 0.0);
}

TEST(BinomialCiWilson, ZeroSuccessesSmallN) {
  // Closed form at p̂=0: upper = (z²/n) / (1 + z²/n).
  const auto ci = binomial_ci_wilson(0, 10);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  const double z2n = 1.96 * 1.96 / 10.0;
  EXPECT_NEAR(ci.upper, z2n / (1.0 + z2n), 1e-12);
  EXPECT_LT(ci.upper, 1.0);
}

TEST(BinomialCiWilson, AllSuccessesSmallN) {
  // Closed form at p̂=1: lower = 1 / (1 + z²/n), upper = 1.
  const auto ci = binomial_ci_wilson(10, 10);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  const double z2n = 1.96 * 1.96 / 10.0;
  EXPECT_NEAR(ci.lower, 1.0 / (1.0 + z2n), 1e-12);
  EXPECT_NEAR(ci.upper, 1.0, 1e-12);
}

TEST(BinomialCiWilson, ZeroTrials) {
  const auto ci = binomial_ci_wilson(0, 0);
  EXPECT_DOUBLE_EQ(ci.point, 0.0);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.upper, 0.0);
}

TEST(Summarize, EmptyInput) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicMoments) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Summarize, SingleValueHasZeroStddev) {
  const auto s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 9.9);
}

TEST(Percentile, SingleElementIsThatElementAtEveryQuantile) {
  const std::vector<double> v = {42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 42.0);
}

TEST(Percentile, UnsortedInputGivesSameResultAsSorted) {
  const std::vector<double> shuffled = {9.0, 2.0, 7.0, 1.0, 8.0,
                                        3.0, 6.0, 4.0, 5.0, 0.0};
  const std::vector<double> sorted = {0.0, 1.0, 2.0, 3.0, 4.0,
                                      5.0, 6.0, 7.0, 8.0, 9.0};
  for (const double q : {0.0, 0.1, 0.37, 0.5, 0.9, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile(shuffled, q), percentile(sorted, q)) << q;
  }
}

}  // namespace
}  // namespace aqueduct::harness
