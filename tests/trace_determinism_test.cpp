// Regression guard: tracing must be a pure observer of the simulation.
// The same seed must produce a byte-identical JSONL event stream across
// runs — any divergence means either the exporter leaked wall-clock /
// address-dependent state into the output, or subscribing a sink perturbed
// the simulation itself.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>

#include "harness/scenario.hpp"
#include "obs/export.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;

harness::ScenarioConfig small_config(std::uint64_t seed) {
  harness::ScenarioConfig config;
  config.seed = seed;
  config.num_primaries = 2;
  config.num_secondaries = 2;
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 2,
              .deadline = milliseconds(200),
              .min_probability = 0.9},
      .request_delay = milliseconds(250),
      .num_requests = 30,
  });
  return config;
}

std::string run_traced(std::uint64_t seed) {
  harness::Scenario scenario(small_config(seed));
  std::ostringstream os;
  obs::JsonLinesSink sink(os);
  scenario.observability().trace.add(&sink);
  scenario.run();
  scenario.observability().trace.remove(&sink);
  return os.str();
}

TEST(TraceDeterminism, SameSeedSameBytes) {
  const std::string first = run_traced(7);
  const std::string second = run_traced(7);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(TraceDeterminism, DifferentSeedDiverges) {
  EXPECT_NE(run_traced(7), run_traced(8));
}

TEST(TraceDeterminism, TracingDoesNotPerturbTheSimulation) {
  // Identical scenario, with and without a subscribed sink: the simulated
  // outcome (events executed, final time, client stats) must match.
  harness::Scenario untraced(small_config(3));
  auto results_untraced = untraced.run();

  harness::Scenario traced(small_config(3));
  std::ostringstream os;
  obs::JsonLinesSink sink(os);
  traced.observability().trace.add(&sink);
  auto results_traced = traced.run();
  traced.observability().trace.remove(&sink);

  EXPECT_EQ(untraced.executor().events_executed(),
            traced.executor().events_executed());
  EXPECT_EQ(untraced.executor().now(), traced.executor().now());
  ASSERT_EQ(results_untraced.size(), results_traced.size());
  EXPECT_EQ(results_untraced[0].stats.reads_completed,
            results_traced[0].stats.reads_completed);
  EXPECT_EQ(results_untraced[0].stats.timing_failures,
            results_traced[0].stats.timing_failures);
  EXPECT_EQ(results_untraced[0].read_response_times,
            results_traced[0].read_response_times);
}

}  // namespace
}  // namespace aqueduct
