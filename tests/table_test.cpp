#include "harness/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/check.hpp"

namespace aqueduct::harness {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 23    |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowSizeMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantViolation);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(0.5), "0.500");
}

}  // namespace
}  // namespace aqueduct::harness
