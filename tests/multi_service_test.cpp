// Multiple replicated services sharing one LAN (paper Figure 2: a client
// gateway talks to service A with the TOTAL handler and service B with
// the FIFO handler simultaneously).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "client/fifo_handler.hpp"
#include "client/handler.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/fifo.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

TEST(MultiService, TwoSequentialServicesAreIsolated) {
  sim::Simulator sim(3);
  net::LoopbackTransport network(sim, std::make_unique<sim::NormalDuration>(
                                milliseconds(1), std::chrono::microseconds(200)));
  gcs::Directory directory;
  const auto groups_a = replication::ServiceGroups::for_service(1);
  const auto groups_b = replication::ServiceGroups::for_service(2);

  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas;
  auto add = [&](const replication::ServiceGroups& groups, bool primary) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    replication::ReplicaConfig config;
    config.service_time = std::make_shared<sim::FixedDuration>(milliseconds(10));
    config.lazy_update_interval = seconds(1);
    replicas.push_back(std::make_unique<replication::ReplicaServer>(
        sim, *endpoint, groups, primary,
        std::make_unique<replication::KeyValueStore>(), std::move(config)));
    endpoints.push_back(std::move(endpoint));
  };
  for (const auto* groups : {&groups_a, &groups_b}) {
    add(*groups, true);
    add(*groups, true);
    add(*groups, false);
  }
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    sim.after(milliseconds(10 * (i + 1)), [&, i] { replicas[i]->start(); });
  }

  auto ep_a = std::make_unique<gcs::Endpoint>(sim, network, directory);
  client::ClientHandler client_a(sim, *ep_a, groups_a, {});
  client_a.start();
  auto ep_b = std::make_unique<gcs::Endpoint>(sim, network, directory);
  client::ClientHandler client_b(sim, *ep_b, groups_b, {});
  client_b.start();
  sim.run_for(seconds(2));

  auto put = [&](client::ClientHandler& c, const std::string& v) {
    auto op = std::make_shared<replication::KvPut>();
    op->key = "k";
    op->value = v;
    c.update(op, {});
  };
  put(client_a, "from-a");
  put(client_b, "from-b");
  sim.run_for(seconds(1));

  auto read = [&](client::ClientHandler& c, std::string& out) {
    auto op = std::make_shared<replication::KvGet>();
    op->key = "k";
    c.read(op,
           {.staleness_threshold = 5,
            .deadline = seconds(1),
            .min_probability = 0.5},
           [&out](const client::ReadOutcome& o) {
             auto result = net::message_cast<replication::KvResult>(o.result);
             if (result && result->value) out = *result->value;
           });
  };
  std::string got_a, got_b;
  read(client_a, got_a);
  read(client_b, got_b);
  sim.run_for(seconds(2));

  EXPECT_EQ(got_a, "from-a");
  EXPECT_EQ(got_b, "from-b");
  // Each service committed exactly its own update.
  EXPECT_EQ(replicas[0]->csn(), 1u);
  EXPECT_EQ(replicas[3]->csn(), 1u);
}

TEST(MultiService, SequentialAndFifoHandlersCoexist) {
  // One client process talks TOTAL to service A and FIFO to service B
  // through the same gateway endpoint — the paper's Figure 2 picture.
  sim::Simulator sim(9);
  net::LoopbackTransport network(sim, std::make_unique<sim::NormalDuration>(
                                milliseconds(1), std::chrono::microseconds(200)));
  gcs::Directory directory;
  const auto groups_a = replication::ServiceGroups::for_service(1);
  const auto groups_b = replication::ServiceGroups::for_service(2);

  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<replication::ReplicaServer>> seq_replicas;
  std::vector<std::unique_ptr<replication::FifoReplicaServer>> fifo_replicas;
  for (int i = 0; i < 3; ++i) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    replication::ReplicaConfig config;
    config.service_time = std::make_shared<sim::FixedDuration>(milliseconds(10));
    seq_replicas.push_back(std::make_unique<replication::ReplicaServer>(
        sim, *endpoint, groups_a, i < 2,
        std::make_unique<replication::SharedDocument>(), std::move(config)));
    endpoints.push_back(std::move(endpoint));
  }
  for (int i = 0; i < 3; ++i) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    replication::FifoReplicaConfig config;
    config.service_time = std::make_shared<sim::FixedDuration>(milliseconds(10));
    fifo_replicas.push_back(std::make_unique<replication::FifoReplicaServer>(
        sim, *endpoint, groups_b, i < 2,
        std::make_unique<replication::SharedDocument>(), std::move(config)));
    endpoints.push_back(std::move(endpoint));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    sim.after(milliseconds(10 * (i + 1)), [&, i] { seq_replicas[i]->start(); });
    sim.after(milliseconds(10 * (i + 4)), [&, i] { fifo_replicas[i]->start(); });
  }

  // Single client endpoint, two handlers — one per service, as an AQuA
  // gateway hosts one handler per contacted service.
  auto client_endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
  client::ClientHandler total_handler(sim, *client_endpoint, groups_a, {});
  client::FifoClientHandler fifo_handler(sim, *client_endpoint, groups_b);
  total_handler.start();
  fifo_handler.start();
  sim.run_for(seconds(2));

  auto append = [](const std::string& line) {
    auto op = std::make_shared<replication::DocAppend>();
    op->line = line;
    return op;
  };
  total_handler.update(append("sequential-doc"), {});
  fifo_handler.update(append("fifo-doc"), {});
  sim.run_for(seconds(1));

  std::string total_line, fifo_line;
  total_handler.read(std::make_shared<replication::DocRead>(),
                     {.staleness_threshold = 2,
                      .deadline = seconds(1),
                      .min_probability = 0.5},
                     [&](const client::ReadOutcome& o) {
                       auto doc = net::message_cast<replication::DocContents>(o.result);
                       if (doc && !doc->lines.empty()) total_line = doc->lines[0];
                     });
  fifo_handler.read(std::make_shared<replication::DocRead>(),
                    {.staleness_threshold = 0,
                     .deadline = seconds(1),
                     .min_probability = 0.5},
                    /*read_your_writes=*/true,
                    [&](const client::FifoReadOutcome& o) {
                      auto doc = net::message_cast<replication::DocContents>(o.result);
                      if (doc && !doc->lines.empty()) fifo_line = doc->lines[0];
                    });
  sim.run_for(seconds(2));

  EXPECT_EQ(total_line, "sequential-doc");
  EXPECT_EQ(fifo_line, "fifo-doc");
}

}  // namespace
}  // namespace aqueduct
