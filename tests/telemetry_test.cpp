// Tests for the telemetry pipeline (src/obs/snapshot, src/obs/sinks): the
// periodic snapshotter's grid and delta semantics, the JSONL and Prometheus
// exporters, and the determinism contract — under SimExecutor, the same
// scenario + seed yields a byte-identical JSONL series, run after run and
// across sweep thread counts.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/snapshot.hpp"
#include "runner/plans.hpp"
#include "runner/sweep.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/time.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// Histogram::exponential_bounds
// ---------------------------------------------------------------------------

TEST(ExponentialBounds, GeometricProgression) {
  const auto b = obs::Histogram::exponential_bounds(1.0, 2.0, 5);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 4.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
  EXPECT_DOUBLE_EQ(b[4], 16.0);
}

TEST(ExponentialBounds, StrictlyIncreasing) {
  const auto b = obs::Histogram::exponential_bounds(0.1, 1.38, 40);
  ASSERT_EQ(b.size(), 40u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
}

TEST(ExponentialBounds, DefaultLatencyBoundsUseIt) {
  EXPECT_EQ(obs::default_latency_bounds_ms(),
            obs::Histogram::exponential_bounds(0.1, 1.38, 40));
  // Spans sub-millisecond to tens of seconds.
  const auto b = obs::default_latency_bounds_ms();
  EXPECT_LT(b.front(), 1.0);
  EXPECT_GT(b.back(), 10000.0);
}

// ---------------------------------------------------------------------------
// MetricsSnapshotter: periodic grid + delta semantics
// ---------------------------------------------------------------------------

/// Collects snapshots in memory for inspection.
class CaptureSink final : public obs::SnapshotSink {
 public:
  void on_snapshot(const obs::MetricsSnapshot& snap) override {
    snaps.push_back(snap);
  }
  std::vector<obs::MetricsSnapshot> snaps;
};

std::uint64_t counter_value(
    const std::vector<std::pair<std::string, std::uint64_t>>& pairs,
    const std::string& name) {
  for (const auto& [n, v] : pairs)
    if (n == name) return v;
  return 0;
}

TEST(MetricsSnapshotter, PeriodicGridUnderSim) {
  runtime::SimExecutor exec(1);
  obs::MetricsRegistry reg;
  obs::MetricsSnapshotter snapshotter(exec, reg, sim::from_ms(100));
  CaptureSink sink;
  snapshotter.add_sink(&sink);
  snapshotter.start();
  exec.run_for(sim::from_ms(1000));
  snapshotter.stop();
  // Anchored grid: captures at t = 100, 200, ..., 1000 ms.
  ASSERT_EQ(sink.snaps.size(), 10u);
  for (std::size_t i = 0; i < sink.snaps.size(); ++i) {
    EXPECT_EQ(sink.snaps[i].seq, i);
    EXPECT_EQ(sink.snaps[i].at, sim::from_ms(100.0 * (i + 1)));
  }
  EXPECT_EQ(snapshotter.snapshots(), 10u);
}

TEST(MetricsSnapshotter, CounterDeltasDiffAdjacentSnapshots) {
  runtime::SimExecutor exec(1);
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("reads");
  obs::MetricsSnapshotter snapshotter(exec, reg, sim::from_ms(10));
  CaptureSink sink;
  snapshotter.add_sink(&sink);

  c.inc(5);
  snapshotter.start();
  exec.run_for(sim::from_ms(10));  // snapshot 0: cumulative 5, delta 5
  c.inc(3);
  exec.run_for(sim::from_ms(10));  // snapshot 1: cumulative 8, delta 3
  exec.run_for(sim::from_ms(10));  // snapshot 2: cumulative 8, delta 0
  snapshotter.stop();

  ASSERT_EQ(sink.snaps.size(), 3u);
  EXPECT_EQ(counter_value(sink.snaps[0].counters, "reads"), 5u);
  EXPECT_EQ(counter_value(sink.snaps[0].counter_deltas, "reads"), 5u);
  EXPECT_EQ(counter_value(sink.snaps[1].counters, "reads"), 8u);
  EXPECT_EQ(counter_value(sink.snaps[1].counter_deltas, "reads"), 3u);
  EXPECT_EQ(counter_value(sink.snaps[2].counters, "reads"), 8u);
  EXPECT_EQ(counter_value(sink.snaps[2].counter_deltas, "reads"), 0u);
}

TEST(MetricsSnapshotter, HistogramBucketsAreCumulative) {
  runtime::SimExecutor exec(1);
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {10.0, 100.0});
  obs::MetricsSnapshotter snapshotter(exec, reg, sim::from_ms(10));
  CaptureSink sink;
  snapshotter.add_sink(&sink);
  snapshotter.start();
  h.observe(5.0);
  exec.run_for(sim::from_ms(10));
  h.observe(50.0);
  exec.run_for(sim::from_ms(10));
  snapshotter.stop();

  ASSERT_EQ(sink.snaps.size(), 2u);
  const auto& first = sink.snaps[0].histograms.at(0).second;
  const auto& second = sink.snaps[1].histograms.at(0).second;
  EXPECT_EQ(first.count, 1u);
  EXPECT_EQ(second.count, 2u);  // cumulative, not per-interval
  ASSERT_EQ(second.buckets.size(), 3u);
  EXPECT_EQ(second.buckets[0], 1u);
  EXPECT_EQ(second.buckets[1], 1u);
  EXPECT_EQ(second.buckets[2], 0u);
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

TEST(JsonlSnapshotSink, BoundsEmittedOnlyOnFirstAppearance) {
  runtime::SimExecutor exec(1);
  obs::MetricsRegistry reg;
  reg.histogram("lat", {1.0, 2.0}).observe(1.5);
  obs::MetricsSnapshotter snapshotter(exec, reg, sim::from_ms(10));
  std::ostringstream out;
  obs::JsonlSnapshotSink sink(out);
  snapshotter.add_sink(&sink);
  snapshotter.start();
  exec.run_for(sim::from_ms(20));
  snapshotter.stop();
  EXPECT_EQ(sink.lines(), 2u);

  std::istringstream lines(out.str());
  std::string line1, line2;
  ASSERT_TRUE(std::getline(lines, line1));
  ASSERT_TRUE(std::getline(lines, line2));
  EXPECT_NE(line1.find("\"bounds\""), std::string::npos);
  EXPECT_EQ(line2.find("\"bounds\""), std::string::npos);
  EXPECT_NE(line2.find("\"buckets\""), std::string::npos);
  EXPECT_NE(line1.find("\"type\":\"metrics\""), std::string::npos);
}

TEST(PrometheusTextSink, ExpositionFormat) {
  obs::MetricsRegistry reg;
  reg.counter("client.reads").inc(7);
  reg.gauge("queue.depth").set(2.5);
  obs::Histogram& h = reg.histogram("read.latency_ms", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);

  obs::MetricsSnapshot snap = reg.snapshot();
  std::ostringstream os;
  obs::PrometheusTextSink::write_text(os, snap);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE aqueduct_client_reads counter"),
            std::string::npos);
  EXPECT_NE(text.find("aqueduct_client_reads 7"), std::string::npos);
  EXPECT_NE(text.find("aqueduct_queue_depth 2.5"), std::string::npos);
  // Buckets are cumulative in `le`, with +Inf equal to the total count.
  EXPECT_NE(text.find("aqueduct_read_latency_ms_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("aqueduct_read_latency_ms_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("aqueduct_read_latency_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("aqueduct_read_latency_ms_count 3"), std::string::npos);
}

TEST(PrometheusTextSink, NameSanitization) {
  EXPECT_EQ(obs::PrometheusTextSink::prometheus_name("client.reads"),
            "aqueduct_client_reads");
  EXPECT_EQ(obs::PrometheusTextSink::prometheus_name("sla.c1.spec0.rate"),
            "aqueduct_sla_c1_spec0_rate");
  EXPECT_EQ(obs::PrometheusTextSink::prometheus_name("a-b c:d"),
            "aqueduct_a_b_c:d");
}

TEST(DigestFnv1a64, KnownVectors) {
  // Reference vectors for 64-bit FNV-1a.
  EXPECT_EQ(obs::digest_fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(obs::digest_fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(obs::digest_fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// ---------------------------------------------------------------------------
// Determinism: scenario + seed => byte-identical JSONL
// ---------------------------------------------------------------------------

harness::ScenarioConfig small_config(std::uint64_t seed) {
  harness::ScenarioConfig config;
  config.seed = seed;
  config.num_primaries = 2;
  config.num_secondaries = 1;
  config.service_mean = milliseconds(20);
  config.service_std = milliseconds(5);
  config.drain = milliseconds(250);
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 2,
              .deadline = milliseconds(150),
              .min_probability = 0.9},
      .request_delay = milliseconds(25),
      .num_requests = 40,
  });
  return config;
}

std::string run_with_telemetry(std::uint64_t seed) {
  harness::Scenario scenario(small_config(seed));
  std::ostringstream jsonl;
  obs::JsonlSnapshotSink sink(jsonl);
  scenario.enable_telemetry(sim::from_ms(100)).add_sink(&sink);
  scenario.run();
  EXPECT_GT(scenario.telemetry()->snapshots(), 0u);
  return jsonl.str();
}

TEST(TelemetryDeterminism, SameSeedSameBytes) {
  const std::string a = run_with_telemetry(42);
  const std::string b = run_with_telemetry(42);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(TelemetryDeterminism, DifferentSeedsDiverge) {
  EXPECT_NE(run_with_telemetry(42), run_with_telemetry(43));
}

TEST(TelemetryDeterminism, EnablingTelemetryDoesNotPerturbTheRun) {
  // Snapshot callbacks read metrics but never touch protocol state or the
  // RNG, so the client-visible outcome must be identical with and without
  // the pipeline attached.
  harness::Scenario plain(small_config(42));
  const auto plain_results = plain.run();

  harness::Scenario instrumented(small_config(42));
  std::ostringstream jsonl;
  obs::JsonlSnapshotSink sink(jsonl);
  instrumented.enable_telemetry(sim::from_ms(100)).add_sink(&sink);
  const auto instrumented_results = instrumented.run();

  ASSERT_EQ(plain_results.size(), instrumented_results.size());
  for (std::size_t i = 0; i < plain_results.size(); ++i) {
    EXPECT_EQ(plain_results[i].stats.reads_completed,
              instrumented_results[i].stats.reads_completed);
    EXPECT_EQ(plain_results[i].stats.timing_failures,
              instrumented_results[i].stats.timing_failures);
  }
}

// The sweep rollup: every plan unit now reports a telemetry digest, and the
// merged JSON (digest included) must stay a pure function of the spec.
TEST(TelemetryDeterminism, SweepDigestInvariantAcrossThreadCounts) {
  const runner::Plan* plan = runner::find_plan("fig4_adaptivity");
  ASSERT_NE(plan, nullptr);
  const auto spec1 = runner::make_spec(*plan, 1, 3, 1, /*requests=*/30);
  const auto spec2 = runner::make_spec(*plan, 1, 3, 2, /*requests=*/30);
  const auto json1 = runner::sweep_json(spec1, runner::run_sweep(spec1));
  const auto json2 = runner::sweep_json(spec2, runner::run_sweep(spec2));
  EXPECT_EQ(json1, json2);
  EXPECT_NE(json1.find("telemetry_digest"), std::string::npos);
  EXPECT_NE(json1.find("telemetry_snapshots"), std::string::npos);
}

}  // namespace
}  // namespace aqueduct
