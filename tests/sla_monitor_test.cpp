// Unit suite for the SlaMonitor (src/obs/sla): the live check of the
// paper's per-client QoS contract <a, d, Pc(d)>.
//
// The pivotal property: a violation fires at exactly the read where the
// Wilson lower bound of the windowed timing-failure rate first exceeds the
// budget 1 - Pc(d) — computed independently here through
// harness::binomial_ci_wilson, which shares the one Wilson formula in the
// repo (obs::wilson_interval) by delegation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/stats.hpp"
#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "obs/sla.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;

const net::NodeId kClient1{1};
const net::NodeId kClient2{2};

obs::SlaSpec strict_spec() {
  return obs::SlaSpec{.staleness_threshold = 1,
                      .deadline = milliseconds(150),
                      .min_probability = 0.9};
}

obs::SlaSpec relaxed_spec() {
  return obs::SlaSpec{.staleness_threshold = 4,
                      .deadline = milliseconds(250),
                      .min_probability = 0.5};
}

sim::TimePoint at_ms(double ms) { return sim::kEpoch + sim::from_ms(ms); }

/// Captures SlaEvents from the hub.
class EventCapture final : public obs::TraceSink {
 public:
  void on_sla(const obs::SlaEvent& e) override { events.push_back(e); }
  std::vector<obs::SlaEvent> events;
};

struct Fixture {
  obs::MetricsRegistry metrics;
  obs::TraceHub trace;
  EventCapture capture;

  Fixture() { trace.add(&capture); }
};

// ---------------------------------------------------------------------------
// wilson_interval
// ---------------------------------------------------------------------------

TEST(WilsonInterval, MatchesHarnessFormula) {
  // harness::binomial_ci_wilson delegates to obs::wilson_interval; both
  // ends must agree bit-for-bit for every (successes, trials) pair the
  // recovery bench gate might see.
  for (std::uint64_t trials : {1u, 7u, 50u, 1000u}) {
    for (std::uint64_t s = 0; s <= trials; s += (trials > 10 ? 7 : 1)) {
      const auto ours = obs::wilson_interval(s, trials);
      const auto theirs = harness::binomial_ci_wilson(s, trials);
      EXPECT_EQ(ours.lower, theirs.lower) << s << "/" << trials;
      EXPECT_EQ(ours.upper, theirs.upper) << s << "/" << trials;
      EXPECT_EQ(ours.point, theirs.point) << s << "/" << trials;
    }
  }
}

TEST(WilsonInterval, ZeroTrialsIsVacuous) {
  const auto ci = obs::wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.point, 0.0);
}

// ---------------------------------------------------------------------------
// Violation boundary
// ---------------------------------------------------------------------------

TEST(SlaMonitor, NoVerdictBelowMinSamples) {
  Fixture f;
  obs::SlaMonitor monitor(f.metrics, f.trace,
                          {.window = 50, .min_samples = 10});
  // 9 straight failures: catastrophic evidence, but below min_samples no
  // verdict may fire.
  for (int i = 0; i < 9; ++i) {
    monitor.record_read(kClient1, strict_spec(), at_ms(i * 10.0),
                        /*timing_failure=*/true, /*staleness=*/0,
                        /*attempts=*/2);
  }
  const auto statuses = monitor.statuses(at_ms(100));
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_FALSE(statuses[0].violating);
  EXPECT_EQ(monitor.total_violations(), 0u);
  EXPECT_TRUE(f.capture.events.empty());
}

TEST(SlaMonitor, ViolationFiresExactlyAtTheWilsonCrossing) {
  Fixture f;
  const obs::SlaConfig config{.window = 200, .z = 1.96, .min_samples = 10};
  obs::SlaMonitor monitor(f.metrics, f.trace, config);
  const obs::SlaSpec spec = strict_spec();  // budget = 1 - 0.9 = 0.1
  const double budget = 1.0 - spec.min_probability;

  // Interleave 1 failure per 4 reads (25% rate, above the 10% budget, so
  // the lower bound must cross eventually). Find the exact read where the
  // independently computed Wilson lower bound first exceeds the budget
  // with >= min_samples in the window.
  std::uint64_t failures = 0;
  std::size_t expected_crossing = 0;
  for (std::size_t n = 1; n <= 100; ++n) {
    const bool fail = (n % 4 == 0);
    if (fail) ++failures;
    const auto ci = harness::binomial_ci_wilson(failures, n, config.z);
    if (n >= config.min_samples && ci.lower > budget) {
      expected_crossing = n;
      break;
    }
  }
  ASSERT_GT(expected_crossing, 0u) << "pattern never crosses — bad test";

  failures = 0;
  for (std::size_t n = 1; n <= expected_crossing; ++n) {
    const bool fail = (n % 4 == 0);
    monitor.record_read(kClient1, spec, at_ms(n * 10.0), fail,
                        /*staleness=*/fail ? 0 : 1, /*attempts=*/1);
    const bool violating = monitor.statuses(at_ms(n * 10.0))[0].violating;
    if (n < expected_crossing) {
      EXPECT_FALSE(violating) << "fired early at read " << n;
    } else {
      EXPECT_TRUE(violating) << "did not fire at read " << n;
    }
  }
  EXPECT_EQ(monitor.total_violations(), 1u);
  ASSERT_EQ(f.capture.events.size(), 1u);
  const auto& e = f.capture.events[0];
  EXPECT_TRUE(e.violating);
  EXPECT_EQ(e.client, kClient1);
  EXPECT_EQ(e.window_reads, expected_crossing);
  EXPECT_GT(e.wilson_lower, budget);
  EXPECT_DOUBLE_EQ(e.budget, budget);
  // The violation transition bumped the shared counter.
  EXPECT_EQ(f.metrics.counter("sla.violations").value(), 1u);
}

TEST(SlaMonitor, WindowEvictionClearsTheViolation) {
  Fixture f;
  obs::SlaMonitor monitor(f.metrics, f.trace,
                          {.window = 20, .min_samples = 10});
  const obs::SlaSpec spec = strict_spec();

  // 20 straight failures: deep violation.
  double t = 0;
  for (int i = 0; i < 20; ++i) {
    monitor.record_read(kClient1, spec, at_ms(t += 10), true, 0, 3);
  }
  EXPECT_TRUE(monitor.statuses(at_ms(t))[0].violating);
  EXPECT_EQ(monitor.total_violations(), 1u);

  // 20 straight successes evict every failure from the ring; the lower
  // bound collapses to 0 and the pair must recover.
  for (int i = 0; i < 20; ++i) {
    monitor.record_read(kClient1, spec, at_ms(t += 10), false, 1, 1);
  }
  const auto status = monitor.statuses(at_ms(t))[0];
  EXPECT_FALSE(status.violating);
  EXPECT_EQ(status.window_failures, 0u);
  EXPECT_EQ(status.window_reads, 20u);
  EXPECT_EQ(status.total_reads, 40u);
  // One entry transition + one recovery transition, violations stays 1.
  EXPECT_EQ(monitor.total_violations(), 1u);
  ASSERT_EQ(f.capture.events.size(), 2u);
  EXPECT_TRUE(f.capture.events[0].violating);
  EXPECT_FALSE(f.capture.events[1].violating);
}

// ---------------------------------------------------------------------------
// Bookkeeping
// ---------------------------------------------------------------------------

TEST(SlaMonitor, PairsAreTrackedPerClientAndSpec) {
  Fixture f;
  obs::SlaMonitor monitor(f.metrics, f.trace);
  monitor.record_read(kClient1, strict_spec(), at_ms(10), false, 0, 1);
  monitor.record_read(kClient1, relaxed_spec(), at_ms(20), true, 2, 2);
  monitor.record_read(kClient2, strict_spec(), at_ms(30), false, 1, 1);
  EXPECT_EQ(monitor.num_tracked(), 3u);

  const auto statuses = monitor.statuses(at_ms(40));
  ASSERT_EQ(statuses.size(), 3u);
  // Ordered by (client, spec_index).
  EXPECT_EQ(statuses[0].client, kClient1);
  EXPECT_EQ(statuses[0].spec_index, 0u);
  EXPECT_EQ(statuses[0].spec, strict_spec());
  EXPECT_EQ(statuses[1].client, kClient1);
  EXPECT_EQ(statuses[1].spec_index, 1u);
  EXPECT_EQ(statuses[1].spec, relaxed_spec());
  EXPECT_EQ(statuses[2].client, kClient2);
  EXPECT_EQ(statuses[2].spec_index, 0u);
  // Independent windows.
  EXPECT_EQ(statuses[0].window_failures, 0u);
  EXPECT_EQ(statuses[1].window_failures, 1u);
  // last_read_age = now - last record time.
  EXPECT_EQ(statuses[2].last_read_age, sim::from_ms(10));
}

TEST(SlaMonitor, RollingAveragesAndMaxStaleness) {
  Fixture f;
  obs::SlaMonitor monitor(f.metrics, f.trace, {.window = 4});
  const obs::SlaSpec spec = relaxed_spec();
  monitor.record_read(kClient1, spec, at_ms(10), false, 1, 1);
  monitor.record_read(kClient1, spec, at_ms(20), false, 3, 2);
  monitor.record_read(kClient1, spec, at_ms(30), false, 2, 1);
  auto s = monitor.statuses(at_ms(30))[0];
  EXPECT_DOUBLE_EQ(s.avg_staleness, 2.0);
  EXPECT_DOUBLE_EQ(s.avg_attempts, 4.0 / 3.0);
  EXPECT_EQ(s.max_staleness, 3u);

  // Two more reads evict the first (window 4): staleness {3,2,0,4}.
  monitor.record_read(kClient1, spec, at_ms(40), false, 0, 1);
  monitor.record_read(kClient1, spec, at_ms(50), false, 4, 3);
  s = monitor.statuses(at_ms(50))[0];
  EXPECT_EQ(s.window_reads, 4u);
  EXPECT_DOUBLE_EQ(s.avg_staleness, 9.0 / 4.0);
  EXPECT_EQ(s.max_staleness, 4u);
}

TEST(SlaMonitor, GaugesMirrorTheWindowState) {
  Fixture f;
  obs::SlaMonitor monitor(f.metrics, f.trace,
                          {.window = 10, .min_samples = 2});
  const obs::SlaSpec spec = strict_spec();
  monitor.record_read(kClient1, spec, at_ms(10), true, 0, 1);
  monitor.record_read(kClient1, spec, at_ms(20), true, 0, 1);

  ASSERT_TRUE(f.metrics.contains("sla.c1.spec0.failure_rate"));
  EXPECT_DOUBLE_EQ(f.metrics.gauge("sla.c1.spec0.failure_rate").value(), 1.0);
  EXPECT_GT(f.metrics.gauge("sla.c1.spec0.wilson_lower").value(), 0.1);
  EXPECT_DOUBLE_EQ(f.metrics.gauge("sla.c1.spec0.violating").value(), 1.0);
  EXPECT_DOUBLE_EQ(f.metrics.gauge("sla.c1.spec0.avg_staleness").value(), 0.0);
  EXPECT_DOUBLE_EQ(f.metrics.gauge("sla.c1.spec0.avg_attempts").value(), 1.0);
}

}  // namespace
}  // namespace aqueduct
