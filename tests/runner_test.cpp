// Determinism and fault-tolerance suite for the parallel sweep engine.
//
// The engine's contract (runner/sweep.hpp): a sweep's merged output is a
// pure function of the SweepSpec — byte-identical JSON for any thread
// count, with a `threads = 1` run as the oracle — and a throwing unit
// becomes a failed row, never a hung or torn sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/stats.hpp"
#include "obs/metrics.hpp"
#include "runner/plans.hpp"
#include "runner/sweep.hpp"

namespace aqueduct {
namespace {

/// Synthetic unit body: a cheap, fully deterministic function of the seed
/// that exercises values, counters, and samples.
runner::SeedRecord synthetic_run(const runner::Unit& unit) {
  runner::SeedRecord rec;
  rec.value("phase", static_cast<double>(unit.seed % 7) / 7.0);
  rec.counter("failures", unit.seed % 3);
  rec.counter("trials", 10 + unit.seed % 5);
  std::vector<double> samples;
  for (std::uint64_t i = 0; i < 20; ++i) {
    samples.push_back(std::fmod(static_cast<double>(unit.seed * 37 + i * 11),
                                100.0));
  }
  rec.sample("latency", std::move(samples));
  return rec;
}

runner::SweepSpec synthetic_spec(std::size_t units, std::size_t threads) {
  runner::SweepSpec spec;
  spec.name = "synthetic";
  spec.threads = threads;
  for (std::size_t i = 0; i < units; ++i) {
    spec.units.push_back(runner::Unit{
        .label = "seed_" + std::to_string(100 + i),
        .seed = 100 + i,
        .point = 0,
    });
  }
  spec.run = synthetic_run;
  spec.binomials = {{"failure_rate", "failures", "trials"}};
  return spec;
}

TEST(SweepDeterminism, ByteIdenticalJsonAcrossThreadCounts) {
  const auto oracle_spec = synthetic_spec(10, 1);
  const auto oracle =
      runner::sweep_json(oracle_spec, runner::run_sweep(oracle_spec));
  for (const std::size_t threads : {2, 8}) {
    const auto spec = synthetic_spec(10, threads);
    const auto json = runner::sweep_json(spec, runner::run_sweep(spec));
    EXPECT_EQ(oracle, json) << "threads=" << threads;
  }
}

// The real thing: full scenario runs (simulator, network, GCS, replicas)
// through the chaos plan must also be thread-count invariant — this is
// the shared-nothing audit as an executable check. Hidden cross-run state
// (a process-wide counter, a shared RNG) would show up here as divergent
// bytes even when no data race is detected.
TEST(SweepDeterminism, ScenarioPlanByteIdenticalAcrossThreadCounts) {
  const runner::Plan* plan = runner::find_plan("chaos");
  ASSERT_NE(plan, nullptr);
  const auto spec1 = runner::make_spec(*plan, 1, 4, 1, /*requests=*/40);
  const auto spec4 = runner::make_spec(*plan, 1, 4, 4, /*requests=*/40);
  const auto json1 = runner::sweep_json(spec1, runner::run_sweep(spec1));
  const auto json4 = runner::sweep_json(spec4, runner::run_sweep(spec4));
  EXPECT_EQ(json1, json4);
}

TEST(SweepDeterminism, MergeOrderFollowsUnitOrderNotCompletionOrder) {
  // Make early units slow: if the merge followed completion order, rows
  // would come back reversed under parallelism.
  runner::SweepSpec spec = synthetic_spec(8, 8);
  spec.run = [](const runner::Unit& unit) {
    if (unit.seed < 104) {
      // Busy-wait long enough that later (cheap) units finish first.
      volatile double sink = 0.0;
      for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i);
    }
    return synthetic_run(unit);
  };
  const auto result = runner::run_sweep(spec);
  ASSERT_EQ(result.rows.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(result.rows[i].counter_or_zero("trials"), 10 + (100 + i) % 5)
        << "row " << i;
  }
}

TEST(SweepFaults, ThrowingUnitBecomesFailedRowNotTornSweep) {
  runner::SweepSpec spec = synthetic_spec(10, 4);
  spec.run = [](const runner::Unit& unit) {
    if (unit.seed == 103) {
      throw std::runtime_error("worker crash on seed 103");
    }
    return synthetic_run(unit);
  };
  const auto result = runner::run_sweep(spec);
  ASSERT_EQ(result.rows.size(), 10u);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_FALSE(result.all_ok());
  EXPECT_FALSE(result.rows[3].ok);
  EXPECT_EQ(result.rows[3].error, "worker crash on seed 103");
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(result.rows[i].ok) << "row " << i;
  }
  // Failed rows are excluded from pooled aggregates.
  std::uint64_t expected_trials = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (i != 3) expected_trials += 10 + (100 + i) % 5;
  }
  EXPECT_EQ(result.pooled_counter_or_zero("trials"), expected_trials);
}

TEST(SweepFaults, FailedRowsSerializeDeterministically) {
  const auto make = [](std::size_t threads) {
    runner::SweepSpec spec = synthetic_spec(10, threads);
    spec.run = [](const runner::Unit& unit) {
      if (unit.seed % 2 == 0) {
        throw std::runtime_error("boom seed " + std::to_string(unit.seed));
      }
      return synthetic_run(unit);
    };
    return spec;
  };
  const auto spec1 = make(1);
  const auto spec8 = make(8);
  EXPECT_EQ(runner::sweep_json(spec1, runner::run_sweep(spec1)),
            runner::sweep_json(spec8, runner::run_sweep(spec8)));
}

TEST(SweepAggregation, PooledCountersBinomialsAndPercentiles) {
  const auto spec = synthetic_spec(10, 2);
  const auto result = runner::run_sweep(spec);

  std::uint64_t failures = 0, trials = 0;
  std::vector<double> all_samples;
  for (const auto& unit : spec.units) {
    const auto rec = synthetic_run(unit);
    failures += rec.counter_or_zero("failures");
    trials += rec.counter_or_zero("trials");
    all_samples.insert(all_samples.end(), rec.samples[0].second.begin(),
                       rec.samples[0].second.end());
  }
  EXPECT_EQ(result.pooled_counter_or_zero("failures"), failures);
  EXPECT_EQ(result.pooled_counter_or_zero("trials"), trials);

  ASSERT_EQ(result.binomials.size(), 1u);
  const auto expected = harness::binomial_ci_wilson(failures, trials);
  EXPECT_DOUBLE_EQ(result.binomials[0].ci.lower, expected.lower);
  EXPECT_DOUBLE_EQ(result.binomials[0].ci.upper, expected.upper);

  ASSERT_EQ(result.samples.size(), 1u);
  EXPECT_EQ(result.samples[0].count, all_samples.size());
  EXPECT_DOUBLE_EQ(result.samples[0].quantiles[0],
                   harness::percentile(all_samples, 0.50));
  EXPECT_DOUBLE_EQ(result.samples[0].quantiles[2],
                   harness::percentile(all_samples, 0.99));
}

TEST(SweepProgress, MetricsGaugesAndCallbackReachTotals) {
  obs::MetricsRegistry metrics;
  runner::SweepOptions opts;
  opts.metrics = &metrics;
  opts.progress_interval = std::chrono::milliseconds(1);
  std::size_t last_done = 0, calls = 0;
  opts.on_progress = [&](std::size_t done, std::size_t, std::size_t total) {
    EXPECT_LE(done, total);
    last_done = done;
    ++calls;
  };
  const auto spec = synthetic_spec(6, 3);
  const auto result = runner::run_sweep(spec, opts);
  EXPECT_EQ(result.rows.size(), 6u);
  EXPECT_GE(calls, 2u);  // at least the initial and final publishes
  EXPECT_EQ(last_done, 6u);
  EXPECT_EQ(metrics.gauge("sweep_units_total").value(), 6.0);
  EXPECT_EQ(metrics.gauge("sweep_units_done").value(), 6.0);
  EXPECT_EQ(metrics.gauge("sweep_units_failed").value(), 0.0);
  EXPECT_GE(metrics.gauge("sweep_wall_seconds").value(), 0.0);
}

TEST(SweepThreads, ResolveAndClamp) {
  EXPECT_GE(runner::resolve_threads(0), 1u);
  EXPECT_EQ(runner::resolve_threads(5), 5u);
  // More threads than units: the pool is clamped to the unit count.
  const auto spec = synthetic_spec(2, 16);
  EXPECT_EQ(runner::run_sweep(spec).threads_used, 2u);
}

TEST(SweepPlans, RegistryExposesEveryPlanWithRunBody) {
  ASSERT_FALSE(runner::plans().empty());
  for (const runner::Plan& plan : runner::plans()) {
    EXPECT_TRUE(static_cast<bool>(plan.run)) << plan.name;
    EXPECT_FALSE(plan.points.empty()) << plan.name;
    EXPECT_EQ(runner::find_plan(plan.name), &plan);
  }
  EXPECT_EQ(runner::find_plan("no_such_plan"), nullptr);
  // make_spec fans point-major with stable labels.
  const runner::Plan* fi = runner::find_plan("failure_injection");
  ASSERT_NE(fi, nullptr);
  const auto spec = runner::make_spec(*fi, 7, 3, 2);
  ASSERT_EQ(spec.units.size(), fi->points.size() * 3);
  EXPECT_EQ(spec.units[0].label, "baseline seed_7");
  EXPECT_EQ(spec.units[1].seed, 8u);
  EXPECT_EQ(spec.units[3].point, 1u);
}

}  // namespace
}  // namespace aqueduct
