// Client-side gateway handler: timing-failure detection, QoS alarm,
// retries, abandonment, measurement bookkeeping (paper Section 5.4).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "client/handler.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::client {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

struct Fixture {
  explicit Fixture(std::uint64_t seed = 1,
                   sim::Duration service = milliseconds(50))
      : sim(seed),
        network(sim, std::make_unique<sim::NormalDuration>(
                         milliseconds(1), std::chrono::microseconds(200))) {
    auto add_replica = [&](bool primary) {
      auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
      replication::ReplicaConfig config;
      config.service_time = std::make_shared<sim::FixedDuration>(service);
      config.lazy_update_interval = seconds(1);
      replicas.push_back(std::make_unique<replication::ReplicaServer>(
          sim, *endpoint, groups, primary,
          std::make_unique<replication::VersionedRegister>(), std::move(config)));
      endpoints.push_back(std::move(endpoint));
    };
    add_replica(true);   // sequencer
    add_replica(true);   // primary
    add_replica(true);   // primary
    add_replica(false);  // secondary
    add_replica(false);  // secondary
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      sim.after(milliseconds(10 * (i + 1)), [this, i] { replicas[i]->start(); });
    }
  }

  ClientHandler& add_client(ClientConfig config = {}) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    clients.push_back(std::make_unique<ClientHandler>(sim, *endpoint, groups,
                                                      std::move(config)));
    endpoints.push_back(std::move(endpoint));
    clients.back()->start();
    return *clients.back();
  }

  void settle(sim::Duration d = seconds(2)) { sim.run_for(d); }

  sim::Simulator sim;
  net::LoopbackTransport network;
  gcs::Directory directory;
  replication::ServiceGroups groups = replication::ServiceGroups::for_service(1);
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas;
  std::vector<std::unique_ptr<ClientHandler>> clients;
};

core::QoSSpec qos(int deadline_ms, double pc = 0.5, core::Staleness a = 10) {
  return {.staleness_threshold = a,
          .deadline = milliseconds(deadline_ms),
          .min_probability = pc};
}

TEST(ClientHandler, RequestsQueueUntilRolesArrive) {
  Fixture f;
  auto& client = f.add_client();
  EXPECT_FALSE(client.ready());
  int replies = 0;
  client.read(std::make_shared<replication::RegisterRead>(), qos(500),
              [&](const ReadOutcome&) { ++replies; });
  f.settle(seconds(3));
  EXPECT_TRUE(client.ready());
  EXPECT_EQ(replies, 1);
}

TEST(ClientHandler, ReadDeliversFirstReplyResult) {
  Fixture f;
  auto& client = f.add_client();
  f.settle();
  client.update(std::make_shared<replication::RegisterBump>(), {});
  f.settle(seconds(1));
  std::uint64_t value = 0;
  client.read(std::make_shared<replication::RegisterRead>(), qos(500),
              [&](const ReadOutcome& o) {
                auto v = net::message_cast<replication::RegisterValue>(o.result);
                ASSERT_NE(v, nullptr);
                value = v->value;
              });
  f.settle(seconds(1));
  EXPECT_EQ(value, 1u);
}

TEST(ClientHandler, TimingFailureWhenDeadlineTooTight) {
  // Service takes 50ms; a 10ms deadline cannot be met.
  Fixture f;
  auto& client = f.add_client();
  f.settle();
  ReadOutcome outcome;
  client.read(std::make_shared<replication::RegisterRead>(), qos(10),
              [&](const ReadOutcome& o) { outcome = o; });
  f.settle(seconds(2));
  EXPECT_TRUE(outcome.timing_failure);
  EXPECT_GT(outcome.response_time, milliseconds(10));
  EXPECT_EQ(client.stats().timing_failures, 1u);
}

TEST(ClientHandler, NoTimingFailureWithGenerousDeadline) {
  Fixture f;
  auto& client = f.add_client();
  f.settle();
  ReadOutcome outcome;
  outcome.timing_failure = true;
  client.read(std::make_shared<replication::RegisterRead>(), qos(1000),
              [&](const ReadOutcome& o) { outcome = o; });
  f.settle(seconds(2));
  EXPECT_FALSE(outcome.timing_failure);
  EXPECT_EQ(client.stats().timing_failures, 0u);
}

TEST(ClientHandler, QoSAlarmFiresWhenObservedRateTooLow) {
  Fixture f;
  auto& client = f.add_client();
  f.settle();
  double reported = -1.0;
  client.set_qos_alarm([&](double failure_rate) { reported = failure_rate; });
  // Pc = 0.9 but an impossible 10ms deadline: every read fails.
  for (int i = 0; i < 5; ++i) {
    client.read(std::make_shared<replication::RegisterRead>(), qos(10, 0.9), {});
  }
  f.settle(seconds(3));
  EXPECT_GT(reported, 0.9);
}

TEST(ClientHandler, AlarmSilentWhenQoSMet) {
  Fixture f;
  auto& client = f.add_client();
  f.settle();
  bool fired = false;
  client.set_qos_alarm([&](double) { fired = true; });
  for (int i = 0; i < 5; ++i) {
    client.read(std::make_shared<replication::RegisterRead>(), qos(1000, 0.5), {});
  }
  f.settle(seconds(3));
  EXPECT_FALSE(fired);
}

TEST(ClientHandler, StatsAggregateCorrectly) {
  Fixture f;
  auto& client = f.add_client();
  f.settle();
  for (int i = 0; i < 4; ++i) {
    client.update(std::make_shared<replication::RegisterBump>(), {});
    client.read(std::make_shared<replication::RegisterRead>(), qos(1000), {});
  }
  f.settle(seconds(3));
  const auto& stats = client.stats();
  EXPECT_EQ(stats.reads_issued, 4u);
  EXPECT_EQ(stats.reads_completed, 4u);
  EXPECT_EQ(stats.updates_issued, 4u);
  EXPECT_EQ(stats.updates_completed, 4u);
  EXPECT_GT(stats.avg_replicas_selected(), 0.0);
  EXPECT_GT(stats.avg_response_time(), sim::Duration::zero());
}

TEST(ClientHandler, RetriesWhenAllSelectedReplicasCrash) {
  Fixture f;
  ClientConfig config;
  config.retry_timeout = milliseconds(500);
  auto& client = f.add_client(std::move(config));
  f.settle();
  // Warm up histories so selection picks few replicas.
  for (int i = 0; i < 6; ++i) {
    client.read(std::make_shared<replication::RegisterRead>(), qos(1000), {});
  }
  f.settle(seconds(5));
  // Crash every non-sequencer replica except one primary: any read that
  // selected a crashed replica must be retried and still complete.
  f.replicas[2]->crash();
  f.replicas[3]->crash();
  f.replicas[4]->crash();
  f.sim.run_for(seconds(8));  // failure detection + reconfiguration
  int replies = 0;
  for (int i = 0; i < 5; ++i) {
    client.read(std::make_shared<replication::RegisterRead>(), qos(1000), [&](const ReadOutcome&) { ++replies; });
  }
  f.settle(seconds(20));
  EXPECT_EQ(replies, 5);
}

TEST(ClientHandler, AbandonsAfterMaxRetries) {
  Fixture f;
  ClientConfig config;
  config.retry_timeout = milliseconds(300);
  config.max_retries = 2;
  auto& client = f.add_client(std::move(config));
  f.settle();
  // Crash everything that could answer reads (all but the sequencer).
  for (std::size_t i = 1; i < f.replicas.size(); ++i) f.replicas[i]->crash();
  ReadOutcome outcome;
  int called = 0;
  client.read(std::make_shared<replication::RegisterRead>(), qos(200),
              [&](const ReadOutcome& o) {
                outcome = o;
                ++called;
              });
  f.settle(seconds(20));
  EXPECT_EQ(called, 1);
  EXPECT_EQ(outcome.result, nullptr);
  EXPECT_TRUE(outcome.timing_failure);
  EXPECT_EQ(client.stats().reads_abandoned, 1u);
}

TEST(ClientHandler, RetriesCountedInSelectionAccounting) {
  // Every retry runs Algorithm 1 afresh, so replicas_selected_total and
  // selection_attempts must grow on each attempt, not just attempt 0.
  Fixture f;
  ClientConfig config;
  config.retry_timeout = milliseconds(300);
  config.max_retries = 2;
  auto& client = f.add_client(std::move(config));
  f.settle();
  // Crash everything that could answer reads: the single read below then
  // exercises the initial transmission plus both retries.
  for (std::size_t i = 1; i < f.replicas.size(); ++i) f.replicas[i]->crash();
  client.read(std::make_shared<replication::RegisterRead>(), qos(200), {});
  f.settle(seconds(20));
  const auto& stats = client.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.selection_attempts, 3u);  // initial + 2 retries
  // Each attempt selected at least one replica, and the average is over
  // attempts, not reads.
  EXPECT_GE(stats.replicas_selected_total, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_replicas_selected(),
                   static_cast<double>(stats.replicas_selected_total) / 3.0);
}

TEST(ClientHandler, ErtUpdatedOnReplies) {
  Fixture f;
  auto& client = f.add_client();
  f.settle();
  client.read(std::make_shared<replication::RegisterRead>(), qos(1000), {});
  f.settle(seconds(2));
  // Some replica has a recent last_reply_at.
  bool any_recent = false;
  for (std::size_t i = 1; i < f.replicas.size(); ++i) {
    const auto* h = client.repository().find_history(f.replicas[i]->id());
    if (h && h->last_reply_at > sim::kEpoch) any_recent = true;
  }
  EXPECT_TRUE(any_recent);
}

TEST(ClientHandler, GatewayDelayMeasuredPositiveAndSmall) {
  Fixture f;
  auto& client = f.add_client();
  f.settle();
  for (int i = 0; i < 5; ++i) {
    client.read(std::make_shared<replication::RegisterRead>(), qos(1000), {});
  }
  f.settle(seconds(3));
  for (std::size_t i = 1; i < f.replicas.size(); ++i) {
    const auto* h = client.repository().find_history(f.replicas[i]->id());
    if (h == nullptr || !h->gateway_delay()) continue;
    // Two-way gateway delay ~ 2 x 1ms network latency; must not include
    // the 50ms service time (that is what the t1 piggyback removes).
    EXPECT_LT(*h->gateway_delay(), milliseconds(20));
  }
}

TEST(ClientHandler, SelectionMetadataReported) {
  Fixture f;
  auto& client = f.add_client();
  f.settle();
  // Warm up.
  for (int i = 0; i < 8; ++i) {
    client.read(std::make_shared<replication::RegisterRead>(), qos(1000), {});
  }
  f.settle(seconds(5));
  ReadOutcome outcome;
  client.read(std::make_shared<replication::RegisterRead>(), qos(300, 0.8),
              [&](const ReadOutcome& o) { outcome = o; });
  f.settle(seconds(2));
  EXPECT_GT(outcome.replicas_selected, 0u);
  EXPECT_TRUE(outcome.selection_satisfied);
  EXPECT_GE(outcome.predicted_probability, 0.8);
}

}  // namespace
}  // namespace aqueduct::client
