// Dynamic membership: replicas joining a running service (paper Section 3:
// group sizes are a tuning knob — this exercises growing the secondary
// tier at runtime), plus network partitions shorter than the suspicion
// timeout.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "client/handler.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

struct Fixture {
  explicit Fixture(std::uint64_t seed = 1)
      : sim(seed),
        network(sim, std::make_unique<sim::NormalDuration>(
                         milliseconds(1), std::chrono::microseconds(300))) {}

  replication::ReplicaServer& add_replica(bool primary,
                                          sim::Duration lazy = seconds(1)) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    replication::ReplicaConfig config;
    config.service_time = std::make_shared<sim::FixedDuration>(milliseconds(10));
    config.lazy_update_interval = lazy;
    replicas.push_back(std::make_unique<replication::ReplicaServer>(
        sim, *endpoint, groups, primary,
        std::make_unique<replication::VersionedRegister>(), std::move(config)));
    endpoints.push_back(std::move(endpoint));
    return *replicas.back();
  }

  client::ClientHandler& add_client() {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    clients.push_back(std::make_unique<client::ClientHandler>(
        sim, *endpoint, groups, client::ClientConfig{}));
    endpoints.push_back(std::move(endpoint));
    clients.back()->start();
    return *clients.back();
  }

  sim::Simulator sim;
  net::LoopbackTransport network;
  gcs::Directory directory;
  replication::ServiceGroups groups = replication::ServiceGroups::for_service(1);
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas;
  std::vector<std::unique_ptr<client::ClientHandler>> clients;
};

TEST(DynamicMembership, LateSecondaryCatchesUpViaLazyUpdate) {
  Fixture f;
  f.add_replica(true);   // sequencer
  f.add_replica(true);   // primary (becomes lazy publisher)
  f.add_replica(false);  // secondary from the start
  for (std::size_t i = 0; i < 3; ++i) {
    f.sim.after(milliseconds(10 * (i + 1)), [&, i] { f.replicas[i]->start(); });
  }
  auto& client = f.add_client();
  f.sim.run_for(seconds(2));

  // Build up state before the newcomer exists.
  for (int i = 0; i < 5; ++i) {
    client.update(std::make_shared<replication::RegisterBump>(), {});
  }
  f.sim.run_for(seconds(3));

  // A new secondary joins the running service.
  auto& newcomer = f.add_replica(false);
  newcomer.start();
  f.sim.run_for(seconds(4));  // join + next lazy propagation

  EXPECT_EQ(newcomer.csn(), 5u);
  const auto& reg =
      dynamic_cast<const replication::VersionedRegister&>(newcomer.object());
  EXPECT_EQ(reg.value(), 5u);
  EXPECT_GT(newcomer.stats().lazy_updates_installed, 0u);
}

TEST(DynamicMembership, LateSecondaryServesReads) {
  Fixture f;
  f.add_replica(true);
  f.add_replica(true);
  for (std::size_t i = 0; i < 2; ++i) {
    f.sim.after(milliseconds(10 * (i + 1)), [&, i] { f.replicas[i]->start(); });
  }
  auto& client = f.add_client();
  f.sim.run_for(seconds(2));
  client.update(std::make_shared<replication::RegisterBump>(), {});
  f.sim.run_for(seconds(2));

  auto& newcomer = f.add_replica(false);
  newcomer.start();
  f.sim.run_for(seconds(4));

  // Enough reads that the (least-recently-used, unknown-history) newcomer
  // gets selected.
  int replies = 0;
  for (int i = 0; i < 10; ++i) {
    client.read(std::make_shared<replication::RegisterRead>(),
                {.staleness_threshold = 5,
                 .deadline = seconds(1),
                 .min_probability = 0.5},
                [&](const client::ReadOutcome&) { ++replies; });
  }
  f.sim.run_for(seconds(5));
  EXPECT_EQ(replies, 10);
  EXPECT_GT(newcomer.stats().reads_served, 0u);
}

TEST(DynamicMembership, GroupInfoReflectsNewSecondary) {
  Fixture f;
  f.add_replica(true);
  f.add_replica(true);
  f.add_replica(false);
  for (std::size_t i = 0; i < 3; ++i) {
    f.sim.after(milliseconds(10 * (i + 1)), [&, i] { f.replicas[i]->start(); });
  }
  auto& client = f.add_client();
  f.sim.run_for(seconds(2));
  ASSERT_TRUE(client.ready());
  EXPECT_EQ(client.repository().roles().secondaries.size(), 1u);

  auto& newcomer = f.add_replica(false);
  newcomer.start();
  f.sim.run_for(seconds(3));
  EXPECT_EQ(client.repository().roles().secondaries.size(), 2u);
}

TEST(DynamicMembership, ShortPartitionHealsWithoutViewChange) {
  Fixture f;
  f.add_replica(true);
  f.add_replica(true);
  f.add_replica(false);
  for (std::size_t i = 0; i < 3; ++i) {
    f.sim.after(milliseconds(10 * (i + 1)), [&, i] { f.replicas[i]->start(); });
  }
  auto& client = f.add_client();
  f.sim.run_for(seconds(2));

  // Partition the secondary away for less than the suspicion timeout
  // (1.5 s default): traffic to it drops, but no view change happens.
  std::vector<net::NodeId> others = {f.replicas[0]->id(), f.replicas[1]->id(),
                                     client.id()};
  f.network.partition({f.replicas[2]->id()}, others);
  f.sim.run_for(milliseconds(800));
  f.network.heal();
  f.sim.run_for(seconds(3));

  // The secondary is still a member everywhere (no spurious suspicion).
  ASSERT_TRUE(client.ready());
  EXPECT_EQ(client.repository().roles().secondaries.size(), 1u);

  // And the service still works end to end.
  int replies = 0;
  client.update(std::make_shared<replication::RegisterBump>(), {});
  client.read(std::make_shared<replication::RegisterRead>(),
              {.staleness_threshold = 5,
               .deadline = seconds(1),
               .min_probability = 0.5},
              [&](const client::ReadOutcome&) { ++replies; });
  f.sim.run_for(seconds(3));
  EXPECT_EQ(replies, 1);
}

TEST(DynamicMembership, PartitionDuringUpdatesRepairsByRetransmission) {
  Fixture f(5);
  f.add_replica(true);
  f.add_replica(true);
  f.add_replica(true);
  for (std::size_t i = 0; i < 3; ++i) {
    f.sim.after(milliseconds(10 * (i + 1)), [&, i] { f.replicas[i]->start(); });
  }
  auto& client = f.add_client();
  f.sim.run_for(seconds(2));

  // Cut one primary off briefly while updates flow; the GCS NACK repair
  // must bring it back in sync after the heal.
  f.network.partition({f.replicas[2]->id()},
                      {f.replicas[0]->id(), f.replicas[1]->id(), client.id()});
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    client.update(std::make_shared<replication::RegisterBump>(),
                  [&](const client::UpdateOutcome&) { ++done; });
  }
  f.sim.run_for(milliseconds(700));
  f.network.heal();
  f.sim.run_for(seconds(5));

  EXPECT_EQ(done, 5);
  EXPECT_EQ(f.replicas[2]->csn(), 5u);
  EXPECT_EQ(f.replicas[2]->stats().gsn_conflicts, 0u);
}

}  // namespace
}  // namespace aqueduct
