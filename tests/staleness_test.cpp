#include "core/staleness.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"

namespace aqueduct::core {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

// --- poisson_cdf -----------------------------------------------------------

TEST(PoissonCdf, ZeroMeanIsCertain) {
  EXPECT_DOUBLE_EQ(poisson_cdf(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_cdf(0.0, 5), 1.0);
}

TEST(PoissonCdf, MatchesClosedFormSmallCases) {
  // P(N <= 0) = e^-m.
  EXPECT_NEAR(poisson_cdf(1.0, 0), std::exp(-1.0), 1e-12);
  // P(N <= 1) = e^-m (1 + m).
  EXPECT_NEAR(poisson_cdf(2.0, 1), std::exp(-2.0) * 3.0, 1e-12);
  // P(N <= 2) = e^-m (1 + m + m^2/2).
  EXPECT_NEAR(poisson_cdf(0.5, 2), std::exp(-0.5) * (1 + 0.5 + 0.125), 1e-12);
}

TEST(PoissonCdf, MonotoneInThreshold) {
  double prev = 0.0;
  for (std::uint64_t a = 0; a < 20; ++a) {
    const double c = poisson_cdf(5.0, a);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

TEST(PoissonCdf, DecreasingInMean) {
  double prev = 1.0;
  for (double mean = 0.5; mean < 10.0; mean += 0.5) {
    const double c = poisson_cdf(mean, 3);
    EXPECT_LE(c, prev + 1e-12);
    prev = c;
  }
}

TEST(PoissonCdf, StableForLargeMeans) {
  // Direct summation of (m^n / n!) e^-m overflows/underflows naively;
  // the log-space implementation must survive.
  const double c = poisson_cdf(2000.0, 1900);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 0.5);  // 1900 < mean, so below the median
  const double c2 = poisson_cdf(2000.0, 2100);
  EXPECT_GT(c2, 0.5);
  EXPECT_LE(c2, 1.0);
}

TEST(PoissonCdf, AgreesWithMonteCarlo) {
  sim::Rng rng(99);
  const double mean = 3.0;
  const std::uint64_t a = 2;
  int within = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    if (static_cast<std::uint64_t>(rng.poisson(mean)) <= a) ++within;
  }
  const double empirical = static_cast<double>(within) / trials;
  EXPECT_NEAR(poisson_cdf(mean, a), empirical, 0.01);
}

// --- ArrivalRateEstimator ---------------------------------------------------

TEST(ArrivalRateEstimator, NoDataIsZero) {
  ArrivalRateEstimator est(10);
  EXPECT_FALSE(est.has_data());
  EXPECT_DOUBLE_EQ(est.rate_per_second(), 0.0);
}

TEST(ArrivalRateEstimator, SumsOverWindow) {
  ArrivalRateEstimator est(10);
  est.record(5, seconds(1));
  est.record(15, seconds(3));
  // 20 updates over 4 seconds.
  EXPECT_NEAR(est.rate_per_second(), 5.0, 1e-9);
}

TEST(ArrivalRateEstimator, WindowEvictsOldSamples) {
  ArrivalRateEstimator est(2);
  est.record(100, seconds(1));  // will be evicted
  est.record(2, seconds(1));
  est.record(2, seconds(1));
  EXPECT_NEAR(est.rate_per_second(), 2.0, 1e-9);
}

TEST(ArrivalRateEstimator, ZeroElapsedGuard) {
  ArrivalRateEstimator est(4);
  est.record(3, seconds(0));
  EXPECT_DOUBLE_EQ(est.rate_per_second(), 0.0);
}

// --- LazyIntervalTracker -----------------------------------------------------

TEST(LazyIntervalTracker, NoDataYieldsZero) {
  LazyIntervalTracker tracker;
  EXPECT_FALSE(tracker.has_data());
  EXPECT_EQ(tracker.elapsed_since_lazy_update(sim::kEpoch + seconds(5)),
            sim::Duration::zero());
}

TEST(LazyIntervalTracker, TracksElapsedSincePublication) {
  LazyIntervalTracker tracker;
  const sim::TimePoint received = sim::kEpoch + seconds(10);
  tracker.record(/*t_l_at_publish=*/seconds(1), /*period=*/seconds(4), received);
  // 0.5s after the broadcast: t_l = 1 + 0.5 = 1.5s.
  EXPECT_EQ(tracker.elapsed_since_lazy_update(received + milliseconds(500)),
            milliseconds(1500));
}

TEST(LazyIntervalTracker, WrapsModuloPeriod) {
  LazyIntervalTracker tracker;
  const sim::TimePoint received = sim::kEpoch + seconds(10);
  tracker.record(seconds(3), seconds(4), received);
  // 2s later: (3 + 2) mod 4 = 1s — a lazy update happened in between.
  EXPECT_EQ(tracker.elapsed_since_lazy_update(received + seconds(2)), seconds(1));
}

TEST(LazyIntervalTracker, FreshBroadcastResets) {
  LazyIntervalTracker tracker;
  tracker.record(seconds(3), seconds(4), sim::kEpoch + seconds(10));
  tracker.record(seconds(0), seconds(4), sim::kEpoch + seconds(12));
  EXPECT_EQ(tracker.elapsed_since_lazy_update(sim::kEpoch + seconds(13)),
            seconds(1));
}

// --- staleness models --------------------------------------------------------

TEST(PoissonStalenessModel, FreshStateIsCertain) {
  const PoissonStalenessModel model(1.0);
  EXPECT_DOUBLE_EQ(model.staleness_factor(2, sim::Duration::zero()), 1.0);
}

TEST(PoissonStalenessModel, DecaysWithElapsedTime) {
  const PoissonStalenessModel model(1.0);
  double prev = 1.0;
  for (int s = 1; s <= 10; ++s) {
    const double f = model.staleness_factor(2, seconds(s));
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(PoissonStalenessModel, HigherThresholdHigherFactor) {
  const PoissonStalenessModel model(2.0);
  EXPECT_LT(model.staleness_factor(1, seconds(2)),
            model.staleness_factor(4, seconds(2)));
}

TEST(EmpiricalStalenessModel, NoGapsMeansNoStaleness) {
  const EmpiricalStalenessModel model({}, 1);
  EXPECT_DOUBLE_EQ(model.staleness_factor(2, seconds(10)), 1.0);
}

TEST(EmpiricalStalenessModel, AgreesWithPoissonOnExponentialGaps) {
  // Feed the empirical model exponential inter-arrival gaps; it should
  // approximate the Poisson model built from the same rate.
  sim::Rng rng(4242);
  const double rate = 1.5;  // per second
  std::vector<sim::Duration> gaps;
  for (int i = 0; i < 500; ++i) {
    gaps.push_back(sim::from_sec(rng.exponential(rate)));
  }
  const EmpiricalStalenessModel empirical(gaps, 7, 5000);
  const PoissonStalenessModel poisson(rate);
  for (const double t : {0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(empirical.staleness_factor(2, sim::from_sec(t)),
                poisson.staleness_factor(2, sim::from_sec(t)), 0.05)
        << "t_l = " << t;
  }
}

class StalenessFactorSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(StalenessFactorSweep, FactorIsAProbability) {
  const auto [rate, elapsed_s] = GetParam();
  const PoissonStalenessModel model(rate);
  const double f = model.staleness_factor(3, seconds(elapsed_s));
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndTimes, StalenessFactorSweep,
    ::testing::Combine(::testing::Values(0.1, 0.5, 1.0, 5.0, 20.0),
                       ::testing::Values(0, 1, 2, 8, 60)));

}  // namespace
}  // namespace aqueduct::core
