// The paper's request model (Section 2): method-name-based classification
// of invocations into read-only vs update operations.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "client/proxy.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::client {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

struct Fixture {
  Fixture()
      : sim(5),
        network(sim, std::make_unique<sim::NormalDuration>(
                         milliseconds(1), std::chrono::microseconds(200))) {
    auto add_replica = [&](bool primary) {
      auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
      replication::ReplicaConfig config;
      config.service_time = std::make_shared<sim::FixedDuration>(milliseconds(10));
      config.lazy_update_interval = seconds(1);
      replicas.push_back(std::make_unique<replication::ReplicaServer>(
          sim, *endpoint, groups, primary,
          std::make_unique<replication::KeyValueStore>(), std::move(config)));
      endpoints.push_back(std::move(endpoint));
    };
    add_replica(true);
    add_replica(true);
    add_replica(false);
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      sim.after(milliseconds(10 * (i + 1)), [this, i] { replicas[i]->start(); });
    }
    client_endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    handler = std::make_unique<ClientHandler>(sim, *client_endpoint, groups,
                                              ClientConfig{});
    handler->start();
    sim.run_for(seconds(2));
  }

  core::ReadOnlyRegistry kv_registry() {
    core::ReadOnlyRegistry registry;
    registry.declare_read_only("get");
    return registry;
  }

  sim::Simulator sim;
  net::LoopbackTransport network;
  gcs::Directory directory;
  replication::ServiceGroups groups = replication::ServiceGroups::for_service(1);
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas;
  std::unique_ptr<gcs::Endpoint> client_endpoint;
  std::unique_ptr<ClientHandler> handler;
};

core::QoSSpec default_qos() {
  return {.staleness_threshold = 2,
          .deadline = milliseconds(500),
          .min_probability = 0.5};
}

TEST(ServiceProxy, DeclaredMethodRoutesAsRead) {
  Fixture f;
  ServiceProxy proxy(*f.handler, f.kv_registry(), default_qos());
  // Populate.
  auto put = std::make_shared<replication::KvPut>();
  put->key = "k";
  put->value = "v";
  proxy.invoke("put", put, {});
  f.sim.run_for(seconds(1));

  InvokeOutcome outcome;
  auto get = std::make_shared<replication::KvGet>();
  get->key = "k";
  proxy.invoke("get", get, [&](const InvokeOutcome& o) { outcome = o; });
  f.sim.run_for(seconds(1));

  EXPECT_TRUE(outcome.was_read);
  auto result = net::message_cast<replication::KvResult>(outcome.result);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(*result->value, "v");
  // Reads never advance the GSN; the single put is the only update.
  EXPECT_EQ(f.replicas[0]->gsn(), 1u);
  EXPECT_EQ(f.handler->stats().reads_completed, 1u);
  EXPECT_EQ(f.handler->stats().updates_completed, 1u);
}

TEST(ServiceProxy, ReadOutcomeFieldsSurviveConversion) {
  // InvokeOutcome is built via the converting constructor; the read-path
  // details (responder, |K|, deferred flag) must come through intact.
  Fixture f;
  ServiceProxy proxy(*f.handler, f.kv_registry(), default_qos());
  auto put = std::make_shared<replication::KvPut>();
  put->key = "k";
  put->value = "v";
  proxy.invoke("put", put, {});
  f.sim.run_for(seconds(1));

  InvokeOutcome outcome;
  auto get = std::make_shared<replication::KvGet>();
  get->key = "k";
  proxy.invoke("get", get, [&](const InvokeOutcome& o) { outcome = o; });
  f.sim.run_for(seconds(1));

  EXPECT_TRUE(outcome.was_read);
  EXPECT_TRUE(outcome.responder.valid());
  EXPECT_GE(outcome.replicas_selected, 1u);
  EXPECT_GT(outcome.response_time, sim::Duration::zero());

  // The update path defaults the read-only fields.
  InvokeOutcome update_outcome;
  auto put2 = std::make_shared<replication::KvPut>();
  put2->key = "k";
  put2->value = "w";
  proxy.invoke("put", put2,
               [&](const InvokeOutcome& o) { update_outcome = o; });
  f.sim.run_for(seconds(1));
  EXPECT_FALSE(update_outcome.was_read);
  EXPECT_FALSE(update_outcome.responder.valid());
  EXPECT_EQ(update_outcome.replicas_selected, 0u);
}

TEST(ServiceProxy, UndeclaredMethodIsAnUpdate) {
  // "If an operation is not specified as read-only, then our middleware
  // considers it to be an update operation" — even if it happens to be a
  // semantically read-like call the client forgot to declare.
  Fixture f;
  ServiceProxy proxy(*f.handler, core::ReadOnlyRegistry{}, default_qos());
  InvokeOutcome outcome;
  auto put = std::make_shared<replication::KvPut>();
  put->key = "a";
  put->value = "1";
  proxy.invoke("put", put, [&](const InvokeOutcome& o) { outcome = o; });
  f.sim.run_for(seconds(1));
  EXPECT_FALSE(outcome.was_read);
  EXPECT_EQ(f.handler->stats().updates_completed, 1u);
  EXPECT_EQ(f.handler->stats().reads_completed, 0u);
}

TEST(ServiceProxy, PerCallQoSOverridesDefault) {
  Fixture f;
  ServiceProxy proxy(*f.handler, f.kv_registry(), default_qos());
  const core::QoSSpec impossible{.staleness_threshold = 2,
                                 .deadline = milliseconds(1),
                                 .min_probability = 0.5};
  InvokeOutcome outcome;
  auto get = std::make_shared<replication::KvGet>();
  get->key = "k";
  proxy.invoke("get", get, impossible,
               [&](const InvokeOutcome& o) { outcome = o; });
  f.sim.run_for(seconds(2));
  EXPECT_TRUE(outcome.was_read);
  EXPECT_TRUE(outcome.timing_failure);  // 1 ms deadline can't be met
}

TEST(ServiceProxy, ExposesClassification) {
  Fixture f;
  ServiceProxy proxy(*f.handler, f.kv_registry(), default_qos());
  EXPECT_TRUE(proxy.is_read_only("get"));
  EXPECT_FALSE(proxy.is_read_only("put"));
  EXPECT_FALSE(proxy.is_read_only("getOrCreate"));
}

TEST(ServiceProxy, RejectsInvalidDefaultQoS) {
  Fixture f;
  core::QoSSpec bad{.staleness_threshold = 0,
                    .deadline = sim::Duration::zero(),
                    .min_probability = 0.5};
  EXPECT_THROW(ServiceProxy(*f.handler, f.kv_registry(), bad),
               InvariantViolation);
}

}  // namespace
}  // namespace aqueduct::client
