// Group-communication failure handling: crash detection, view changes,
// leader failover, virtual synchrony across membership changes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::gcs {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

struct TextMsg final : net::Message {
  explicit TextMsg(std::string t) : text(std::move(t)) {}
  std::string text;
  std::string type_name() const override { return "test.text"; }
};

net::MessagePtr text(const std::string& t) { return std::make_shared<TextMsg>(t); }

constexpr GroupId kGroup{7};

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed = 1)
      : sim(seed),
        network(sim,
                std::make_unique<sim::NormalDuration>(milliseconds(2), milliseconds(1))) {
    for (std::size_t i = 0; i < n; ++i) {
      endpoints.push_back(std::make_unique<Endpoint>(sim, network, directory));
      auto& member = endpoints[i]->member(kGroup);
      member.set_on_deliver([this, i](net::NodeId from, const net::MessagePtr& msg) {
        auto t = net::message_cast<TextMsg>(msg);
        delivered[i].emplace_back(from, t ? t->text : "?");
      });
      member.set_on_view([this, i](const View& v) { views[i].push_back(v); });
    }
  }

  void join_all() {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      sim.after(milliseconds(5), [this, i] { endpoints[i]->member(kGroup).join(); });
      sim.run_for(milliseconds(50));
    }
    sim.run_for(seconds(2));
  }

  Member& member(std::size_t i) { return endpoints[i]->member(kGroup); }

  sim::Simulator sim;
  net::LoopbackTransport network;
  Directory directory;
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  std::map<std::size_t, std::vector<std::pair<net::NodeId, std::string>>> delivered;
  std::map<std::size_t, std::vector<View>> views;
};

TEST(GcsFailure, CrashedMemberRemovedFromView) {
  Fixture f(4);
  f.join_all();
  const net::NodeId crashed = f.member(3).self();
  f.endpoints[3]->crash();
  f.sim.run_for(seconds(6));  // suspect_timeout + flush
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(f.member(i).view().size(), 3u) << "member " << i;
    EXPECT_FALSE(f.member(i).view().contains(crashed));
  }
}

TEST(GcsFailure, LeaderCrashElectsNext) {
  Fixture f(4);
  f.join_all();
  ASSERT_TRUE(f.member(0).is_leader());
  f.endpoints[0]->crash();
  f.sim.run_for(seconds(6));
  EXPECT_TRUE(f.member(1).is_leader());
  EXPECT_EQ(f.member(2).view().leader(), f.member(1).self());
  EXPECT_EQ(f.member(3).view().leader(), f.member(1).self());
}

TEST(GcsFailure, SurvivorsShareTheSameViewHistoryTail) {
  Fixture f(5);
  f.join_all();
  f.endpoints[2]->crash();
  f.sim.run_for(seconds(6));
  const View last = f.member(0).view();
  for (std::size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_EQ(f.member(i).view().id, last.id);
    EXPECT_EQ(f.member(i).view().members, last.members);
  }
}

TEST(GcsFailure, MulticastContinuesAfterCrash) {
  Fixture f(4);
  f.join_all();
  f.endpoints[1]->crash();
  f.sim.run_for(seconds(6));
  f.delivered.clear();
  f.member(0).multicast(text("post-crash"));
  f.sim.run_for(seconds(2));
  for (std::size_t i : {0u, 2u, 3u}) {
    bool got = false;
    for (const auto& [from, msg] : f.delivered[i]) got |= (msg == "post-crash");
    EXPECT_TRUE(got) << "member " << i;
  }
}

TEST(GcsFailure, VirtualSynchrony_SurvivorsAgreeOnDeliveredSet) {
  // The crashed sender's in-flight multicasts must be delivered at all
  // survivors or at none (flush redistributes unstable messages).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Fixture f(4, seed);
    f.join_all();
    f.network.set_loss_probability(0.15);
    for (int i = 0; i < 10; ++i) {
      f.member(1).multicast(text("v" + std::to_string(i)));
    }
    // Crash the sender almost immediately: some messages are unstable.
    f.sim.after(milliseconds(3), [&] { f.endpoints[1]->crash(); });
    f.sim.run_for(seconds(10));
    f.network.set_loss_probability(0.0);
    f.sim.run_for(seconds(5));

    auto delivered_from = [&](std::size_t m) {
      std::set<std::string> out;
      for (const auto& [from, msg] : f.delivered[m]) {
        if (from == f.member(1).self()) out.insert(msg);
      }
      return out;
    };
    const auto set0 = delivered_from(0);
    EXPECT_EQ(set0, delivered_from(2)) << "seed " << seed;
    EXPECT_EQ(set0, delivered_from(3)) << "seed " << seed;
    // And FIFO prefix property: delivered set is a prefix {v0..vk}.
    std::size_t k = 0;
    for (; k < 10; ++k) {
      if (!set0.contains("v" + std::to_string(k))) break;
    }
    EXPECT_EQ(set0.size(), k) << "not a prefix, seed " << seed;
  }
}

TEST(GcsFailure, CoordinatorCrashDuringChurnRecovers) {
  Fixture f(5);
  f.join_all();
  // Crash a member, and the coordinator shortly after it starts the view
  // change; the next-ranked member must take over.
  f.endpoints[4]->crash();
  f.sim.run_for(milliseconds(1600));  // suspicion about to fire
  f.endpoints[0]->crash();
  f.sim.run_for(seconds(10));
  for (std::size_t i : {1u, 2u, 3u}) {
    EXPECT_EQ(f.member(i).view().size(), 3u) << "member " << i;
    EXPECT_TRUE(f.member(i).is_leader() == (i == 1));
  }
}

TEST(GcsFailure, JoinAfterCrashWorks) {
  Fixture f(4);
  f.join_all();
  f.endpoints[2]->crash();
  f.sim.run_for(seconds(6));
  // A new process joins the shrunken group.
  auto fresh = std::make_unique<Endpoint>(f.sim, f.network, f.directory);
  bool joined_view = false;
  auto& member = fresh->member(kGroup);
  member.set_on_view([&](const View& v) { joined_view = v.contains(member.self()); });
  member.join();
  f.sim.run_for(seconds(3));
  EXPECT_TRUE(joined_view);
  EXPECT_EQ(f.member(0).view().size(), 4u);
}

TEST(GcsFailure, CrashedEndpointStopsProcessing) {
  Fixture f(2);
  f.join_all();
  f.endpoints[1]->crash();
  EXPECT_TRUE(f.endpoints[1]->crashed());
  f.member(0).multicast(text("x"));
  f.sim.run_for(seconds(2));
  EXPECT_TRUE(f.delivered[1].empty() ||
              f.delivered[1].back().second != "x");
}

TEST(GcsFailure, SequentialCrashesDownToOne) {
  Fixture f(4);
  f.join_all();
  for (std::size_t i = 0; i < 3; ++i) {
    f.endpoints[i]->crash();
    f.sim.run_for(seconds(8));
  }
  EXPECT_TRUE(f.member(3).joined());
  EXPECT_EQ(f.member(3).view().size(), 1u);
  EXPECT_TRUE(f.member(3).is_leader());
}

TEST(GcsFailure, NoFlushGapsWithoutSenderCrash) {
  // flush_gaps counts messages lost despite the flush; with only receiver
  // crashes (never the sender), it must stay zero.
  Fixture f(4);
  f.join_all();
  for (int i = 0; i < 20; ++i) f.member(0).multicast(text("s" + std::to_string(i)));
  f.endpoints[3]->crash();
  f.sim.run_for(seconds(8));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(f.member(i).stats().flush_gaps, 0u) << "member " << i;
  }
}

// ---------------------------------------------------------------------------
// Gray-failure eviction: a *live* member the failure detector ejects (its
// links to part of the group are dead, but the coordinator can still reach
// it) must receive the excluding install and fire on_eviction, so its
// owner can reincarnate it. A full crash never triggers the callback.
// ---------------------------------------------------------------------------

struct ChaosFixture {
  explicit ChaosFixture(std::size_t n, std::uint64_t seed = 1) : sim(seed) {
    network = net::make_chaos_transport(net::make_loopback_transport(
        sim, std::make_unique<sim::NormalDuration>(milliseconds(2),
                                                   milliseconds(1))));
    for (std::size_t i = 0; i < n; ++i) {
      endpoints.push_back(std::make_unique<Endpoint>(sim, *network, directory));
      auto& member = endpoints[i]->member(kGroup);
      member.set_on_view([this, i](const View& v) { views[i].push_back(v); });
      member.set_on_eviction([this, i] { evicted.push_back(i); });
    }
  }

  void join_all() {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      sim.after(milliseconds(5), [this, i] { endpoints[i]->member(kGroup).join(); });
      sim.run_for(milliseconds(50));
    }
    sim.run_for(seconds(2));
  }

  Member& member(std::size_t i) { return endpoints[i]->member(kGroup); }

  sim::Simulator sim;
  std::unique_ptr<net::Transport> network;
  Directory directory;
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  std::map<std::size_t, std::vector<View>> views;
  std::vector<std::size_t> evicted;
};

TEST(GcsFailure, PartiallyPartitionedMemberIsEvictedAndNotified) {
  ChaosFixture f(4);
  f.join_all();
  ASSERT_EQ(f.member(0).view().size(), 4u);

  // Cut only the 1 ↔ 2 pair; both stay reachable from the coordinator.
  f.network->fault_injection()->partial_partition(f.member(1).self(),
                                                  f.member(2).self());
  f.sim.run_for(seconds(8));  // suspicion + view change + install

  ASSERT_FALSE(f.evicted.empty())
      << "the ejected live member must learn of its eviction";
  for (const std::size_t i : f.evicted) {
    EXPECT_TRUE(i == 1 || i == 2) << "only the partitioned pair is suspect";
    EXPECT_FALSE(f.member(i).joined());
  }
  // Survivors agree on a view that excludes every evictee.
  for (const std::size_t i : f.evicted) {
    EXPECT_FALSE(f.member(0).view().contains(f.member(i).self()));
  }
  EXPECT_GE(f.member(0).view().size(), 2u);
}

TEST(GcsFailure, CrashedMemberNeverFiresEviction) {
  ChaosFixture f(4);
  f.join_all();
  f.endpoints[3]->crash();
  f.sim.run_for(seconds(8));
  EXPECT_TRUE(f.evicted.empty())
      << "a fail-stop crash must not look like a gray eviction";
}

TEST(GcsFailure, VoluntaryLeaveDoesNotFireEviction) {
  ChaosFixture f(4);
  f.join_all();
  f.member(3).leave();
  f.sim.run_for(seconds(4));
  EXPECT_FALSE(f.member(3).joined());
  EXPECT_TRUE(f.evicted.empty());
  EXPECT_EQ(f.member(0).view().size(), 3u);
}

}  // namespace
}  // namespace aqueduct::gcs
