#include "client/repository.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace aqueduct::client {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

replication::PerfPublication sample(std::uint32_t replica, int ts_ms,
                                    int tq_ms = 0, int tb_ms = 0,
                                    bool deferred = false) {
  replication::PerfPublication p;
  p.replica = net::NodeId{replica};
  p.has_sample = true;
  p.ts = milliseconds(ts_ms);
  p.tq = milliseconds(tq_ms);
  p.tb = milliseconds(tb_ms);
  p.deferred = deferred;
  return p;
}

replication::GroupInfo roles(std::uint64_t epoch = 1) {
  replication::GroupInfo info;
  info.epoch = epoch;
  info.sequencer = net::NodeId{1};
  info.primaries = {net::NodeId{2}, net::NodeId{3}};
  info.secondaries = {net::NodeId{4}, net::NodeId{5}};
  info.lazy_publisher = net::NodeId{3};
  return info;
}

TEST(InfoRepository, StartsWithoutRoles) {
  InfoRepository repo(20, milliseconds(1));
  EXPECT_FALSE(repo.has_roles());
  EXPECT_TRUE(repo.candidates({.staleness_threshold = 1,
                               .deadline = milliseconds(100),
                               .min_probability = 0.5},
                              sim::kEpoch)
                  .empty());
}

TEST(InfoRepository, StaleGroupInfoIgnored) {
  InfoRepository repo(20, milliseconds(1));
  repo.record_group_info(roles(5));
  auto old = roles(3);
  old.sequencer = net::NodeId{99};
  repo.record_group_info(old);
  EXPECT_EQ(repo.roles().epoch, 5u);
  EXPECT_EQ(repo.roles().sequencer, net::NodeId{1});
}

TEST(InfoRepository, CandidatesCoverPrimariesAndSecondaries) {
  InfoRepository repo(20, milliseconds(1));
  repo.record_group_info(roles());
  const auto candidates = repo.candidates({.staleness_threshold = 1,
                                           .deadline = milliseconds(100),
                                           .min_probability = 0.5},
                                          sim::kEpoch + seconds(1));
  ASSERT_EQ(candidates.size(), 4u);  // sequencer excluded
  int primaries = 0;
  for (const auto& c : candidates) {
    EXPECT_NE(c.id, net::NodeId{1});
    if (c.is_primary) ++primaries;
  }
  EXPECT_EQ(primaries, 2);
}

TEST(InfoRepository, UnknownReplicaHasZeroCdfAndMaxErt) {
  InfoRepository repo(20, milliseconds(1));
  repo.record_group_info(roles());
  const sim::TimePoint now = sim::kEpoch + seconds(10);
  for (const auto& c : repo.candidates({.staleness_threshold = 1,
                                        .deadline = seconds(10),
                                        .min_probability = 0.5},
                                       now)) {
    EXPECT_DOUBLE_EQ(c.immediate_cdf, 0.0);
    EXPECT_EQ(c.ert, now - sim::kEpoch);
  }
}

TEST(InfoRepository, PublicationsFeedTheModel) {
  InfoRepository repo(20, milliseconds(1));
  repo.record_group_info(roles());
  for (int i = 0; i < 10; ++i) {
    repo.record_publication(sample(2, 50), sim::kEpoch + milliseconds(i));
  }
  repo.record_reply(net::NodeId{2}, milliseconds(1), sim::kEpoch + seconds(1));
  const auto candidates = repo.candidates({.staleness_threshold = 1,
                                           .deadline = milliseconds(60),
                                           .min_probability = 0.5},
                                          sim::kEpoch + seconds(2));
  const auto it = std::find_if(candidates.begin(), candidates.end(),
                               [](const auto& c) { return c.id == net::NodeId{2}; });
  ASSERT_NE(it, candidates.end());
  EXPECT_DOUBLE_EQ(it->immediate_cdf, 1.0);  // 50ms + 1ms gateway <= 60ms
  EXPECT_EQ(it->ert, seconds(1));
}

TEST(InfoRepository, DeferredSampleFillsLazyWaitWindow) {
  InfoRepository repo(20, milliseconds(1));
  repo.record_group_info(roles());
  repo.record_publication(sample(4, 50, 0, 700, /*deferred=*/true), sim::kEpoch);
  repo.record_reply(net::NodeId{4}, milliseconds(1), sim::kEpoch);
  const auto candidates = repo.candidates({.staleness_threshold = 1,
                                           .deadline = milliseconds(100),
                                           .min_probability = 0.5},
                                          sim::kEpoch + seconds(1));
  const auto it = std::find_if(candidates.begin(), candidates.end(),
                               [](const auto& c) { return c.id == net::NodeId{4}; });
  ASSERT_NE(it, candidates.end());
  EXPECT_DOUBLE_EQ(it->immediate_cdf, 1.0);
  EXPECT_DOUBLE_EQ(it->deferred_cdf, 0.0);  // 50 + 700 > 100
}

TEST(InfoRepository, StaleFactorDefaultsToOne) {
  InfoRepository repo(20, milliseconds(1));
  EXPECT_DOUBLE_EQ(repo.stale_factor(2, sim::kEpoch + seconds(1)), 1.0);
}

TEST(InfoRepository, StaleFactorUsesLazyBroadcasts) {
  InfoRepository repo(20, milliseconds(1));
  replication::PerfPublication p;
  p.replica = net::NodeId{3};
  p.lazy = replication::LazyInfo{.n_u = 4,
                                 .t_u = seconds(2),
                                 .n_l = 2,
                                 .t_l = seconds(1),
                                 .period = seconds(4)};
  repo.record_publication(p, sim::kEpoch + seconds(10));
  EXPECT_NEAR(repo.arrival_rate(), 2.0, 1e-9);
  // At +1s: t_l = 1 + 1 = 2s, mean = 4 => P(N <= 2) for Poisson(4).
  const double factor = repo.stale_factor(2, sim::kEpoch + seconds(11));
  EXPECT_NEAR(factor, core::poisson_cdf(4.0, 2), 1e-9);
  // Larger threshold, larger factor.
  EXPECT_GT(repo.stale_factor(8, sim::kEpoch + seconds(11)), factor);
}

TEST(InfoRepository, GatewayDelayKeepsLatestOnly) {
  InfoRepository repo(20, milliseconds(1));
  repo.record_reply(net::NodeId{2}, milliseconds(5), sim::kEpoch);
  repo.record_reply(net::NodeId{2}, milliseconds(9), sim::kEpoch + seconds(1));
  const auto* h = repo.find_history(net::NodeId{2});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(*h->gateway_delay(), milliseconds(9));
  EXPECT_EQ(h->last_reply_at, sim::kEpoch + seconds(1));
}

TEST(InfoRepository, WindowSizeRespected) {
  InfoRepository repo(3, milliseconds(1));
  for (int i = 0; i < 10; ++i) {
    repo.record_publication(sample(2, 10 * (i + 1)), sim::kEpoch);
  }
  const auto* h = repo.find_history(net::NodeId{2});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->service.size(), 3u);
  EXPECT_EQ(h->service.values().front(), milliseconds(80));
}

TEST(RepositoryChurn, EvictsDepartedIncarnations) {
  InfoRepository repo(8, milliseconds(1));
  repo.record_group_info(roles(1));
  repo.record_publication(sample(2, 50), sim::kEpoch);
  repo.record_publication(sample(4, 60), sim::kEpoch);
  ASSERT_NE(repo.find_history(net::NodeId{4}), nullptr);

  // Epoch 2: secondary n4 is gone (crashed), everyone else unchanged.
  auto info = roles(2);
  info.secondaries = {net::NodeId{5}};
  repo.record_group_info(info);

  EXPECT_EQ(repo.find_history(net::NodeId{4}), nullptr);
  EXPECT_NE(repo.find_history(net::NodeId{2}), nullptr);
  EXPECT_EQ(repo.churn_stats().histories_evicted, 1u);
}

TEST(RepositoryChurn, WarmsUpRebornReplicaFromPublisherHistory) {
  InfoRepository repo(8, milliseconds(1));
  repo.record_group_info(roles(1));
  // The lazy publisher (n3) has samples the newcomer can inherit.
  repo.record_publication(sample(3, 40, 10), sim::kEpoch);
  repo.record_publication(sample(3, 50, 12), sim::kEpoch);

  // Epoch 2: n6 appears (a reborn replica under a fresh NodeId).
  auto info = roles(2);
  info.secondaries = {net::NodeId{4}, net::NodeId{5}, net::NodeId{6}};
  repo.record_group_info(info);

  const auto* warmed = repo.find_history(net::NodeId{6});
  ASSERT_NE(warmed, nullptr);
  EXPECT_TRUE(warmed->has_samples());
  EXPECT_EQ(warmed->service.size(), 2u);
  // Link-local state is genuinely unknown and stays empty.
  EXPECT_EQ(warmed->last_reply_at, sim::kEpoch);
  EXPECT_EQ(repo.churn_stats().replicas_warmed, 1u);

  // The warmed newcomer gets non-zero CDFs, so Algorithm 1 can pick it.
  const auto candidates = repo.candidates({.staleness_threshold = 2,
                                           .deadline = milliseconds(200),
                                           .min_probability = 0.5},
                                          sim::kEpoch + seconds(1));
  bool found = false;
  for (const auto& c : candidates) {
    if (c.id == net::NodeId{6}) {
      found = true;
      EXPECT_GT(c.immediate_cdf, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RepositoryChurn, NoWarmupAtBootOrWithoutPublisherSamples) {
  InfoRepository repo(8, milliseconds(1));
  // Boot: first role map never seeds histories (publisher has none, and
  // boot behaviour must be unchanged).
  repo.record_group_info(roles(1));
  EXPECT_EQ(repo.churn_stats().replicas_warmed, 0u);
  EXPECT_EQ(repo.find_history(net::NodeId{2}), nullptr);

  // A newcomer while the publisher is still sample-less: no seeding.
  auto info = roles(2);
  info.secondaries = {net::NodeId{4}, net::NodeId{5}, net::NodeId{6}};
  repo.record_group_info(info);
  EXPECT_EQ(repo.churn_stats().replicas_warmed, 0u);
  EXPECT_EQ(repo.find_history(net::NodeId{6}), nullptr);
}

}  // namespace
}  // namespace aqueduct::client
