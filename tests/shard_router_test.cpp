// Router + sharded-scenario correctness: objects partitioned across
// independent replica groups behind one substrate.
//
// What must hold after any sharded run:
//   * placement — no replica's store ever holds a key the ShardMap places
//     on another shard (an update that crossed group boundaries would be
//     the sharding bug);
//   * per-shard agreement — GSN conflicts stay zero and the committed
//     prefix converges within each shard, independently of the others;
//   * routing — the router's per-shard tallies account for every request,
//     and its key placement agrees with the scenario's ShardMap.
// The fault DSL addresses replicas by stable (shard, slot) identity:
// SlotRef targeting must land on exactly the addressed replica, and plain
// slot indices keep meaning shard 0 (the pre-shard schedules).
// The chaos-grade version of all of this runs through the `hot_shard`
// plan: hot shard and correlated rack failure on a 16-shard pool, with the
// pooled violation counters required to stay zero.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "fault/schedule.hpp"
#include "harness/scenario.hpp"
#include "replication/objects.hpp"
#include "runner/plans.hpp"
#include "runner/sweep.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

harness::ScenarioConfig sharded_config(std::uint64_t seed,
                                       std::size_t shards) {
  harness::ScenarioConfig config;
  config.seed = seed;
  config.num_shards = shards;
  config.num_primaries = 1;
  config.num_secondaries = 1;
  config.lazy_update_interval = seconds(2);
  for (int c = 0; c < 2; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 2,
                .deadline = milliseconds(250),
                .min_probability = 0.5},
        .request_delay = milliseconds(200),
        .num_requests = 40,
        .num_keys = 32,
    });
  }
  return config;
}

/// Every key in every replica's store must hash to that replica's shard.
void expect_no_cross_shard_keys(harness::Scenario& scenario) {
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    const auto& store = dynamic_cast<const replication::KeyValueStore&>(
        scenario.replica(i).object());
    for (const auto& [key, value] : store.entries()) {
      EXPECT_EQ(scenario.shard_map().shard_for(key), scenario.shard_of(i))
          << "replica " << i << " holds foreign key " << key;
    }
  }
}

/// GSN conflicts zero everywhere; committed prefix converged per shard.
void expect_per_shard_agreement(harness::Scenario& scenario) {
  const std::size_t sps = scenario.servers_per_shard();
  for (std::size_t shard = 0; shard < scenario.num_shards(); ++shard) {
    std::uint64_t max_csn = 0;
    for (std::size_t slot = 0; slot < sps; ++slot) {
      const auto& replica = scenario.replica(scenario.slot_index(shard, slot));
      EXPECT_EQ(replica.stats().gsn_conflicts, 0u)
          << "shard " << shard << " slot " << slot;
      if (replica.crashed() || !replica.is_primary() || replica.recovering()) {
        continue;
      }
      max_csn = std::max(max_csn, replica.csn());
    }
    for (std::size_t slot = 1; slot < sps; ++slot) {
      const auto& replica = scenario.replica(scenario.slot_index(shard, slot));
      if (replica.crashed() || !replica.is_primary() || replica.recovering()) {
        continue;
      }
      EXPECT_GE(replica.csn() + 2, max_csn)
          << "shard " << shard << " slot " << slot << " diverged";
    }
  }
}

TEST(ShardRouter, PartitionedRunRoutesAndAgreesPerShard) {
  harness::Scenario scenario(sharded_config(/*seed=*/5, /*shards=*/4));
  const auto results = scenario.run();

  // Liveness: every read completed or was abandoned.
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_completed + r.stats.reads_abandoned, 20u);
    EXPECT_EQ(r.stats.staleness_violations, 0u);
  }

  expect_no_cross_shard_keys(scenario);
  expect_per_shard_agreement(scenario);

  for (std::size_t w = 0; w < scenario.num_workloads(); ++w) {
    auto& workload = scenario.workload(w);
    const auto& router = workload.router();
    ASSERT_EQ(router.num_shards(), 4u);
    // The router and the scenario must agree on placement — they share
    // one seeded map.
    for (int k = 0; k < 32; ++k) {
      const std::string key = "k" + std::to_string(k);
      EXPECT_EQ(router.shard_for(key), scenario.shard_map().shard_for(key));
    }
    // Per-shard tallies account for every routed request.
    std::uint64_t routed = 0;
    for (std::size_t s = 0; s < 4; ++s) {
      routed += router.route_stats(s).reads_routed +
                router.route_stats(s).updates_routed;
    }
    const auto stats = router.stats();
    EXPECT_GE(routed, stats.reads_completed + stats.updates_completed);
    EXPECT_GT(routed, 0u);
  }
}

TEST(ShardRouter, SlotRefFaultsTargetExactlyTheAddressedReplica) {
  harness::Scenario scenario(sharded_config(/*seed=*/9, /*shards=*/2));
  fault::FaultSchedule plan;
  // Shard 1 loses its secondary for good; shard 0's secondary bounces.
  // The plain slot index (no SlotRef wrapper) must keep meaning shard 0 —
  // pre-shard schedules compile and behave unchanged.
  plan.crash(fault::SlotRef{1, 2}, seconds(4));
  plan.crash_restart(/*replica=*/2, seconds(4), seconds(7));
  scenario.apply_faults(plan);
  scenario.run();

  EXPECT_TRUE(scenario.replica(scenario.slot_index(1, 2)).crashed());
  EXPECT_FALSE(scenario.replica(scenario.slot_index(0, 2)).crashed());
  EXPECT_EQ(scenario.incarnation(scenario.slot_index(0, 2)), 1u);
  EXPECT_EQ(scenario.incarnation(scenario.slot_index(1, 2)), 0u);
  // Nobody else was touched.
  for (std::size_t shard = 0; shard < 2; ++shard) {
    for (std::size_t slot = 0; slot < 2; ++slot) {
      EXPECT_FALSE(scenario.replica(scenario.slot_index(shard, slot)).crashed())
          << "shard " << shard << " slot " << slot;
      EXPECT_EQ(scenario.incarnation(scenario.slot_index(shard, slot)), 0u);
    }
  }

  // The shard that lost a secondary still agrees with itself, and no key
  // leaked across the groups while the faults were live.
  expect_no_cross_shard_keys(scenario);
  expect_per_shard_agreement(scenario);
}

TEST(ShardRouterChaos, HotShardAndCorrelatedRackLeakNothingAcrossShards) {
  // The chaos-grade run: the `hot_shard` plan's three points (uniform,
  // hot shard, correlated rack failure) on a 16-shard pool, three seeds
  // each, fanned across worker threads. Every agreement and placement
  // counter must stay zero on every row.
  const runner::Plan* plan = runner::find_plan("hot_shard");
  ASSERT_NE(plan, nullptr);
  const runner::SweepSpec spec =
      runner::make_spec(*plan, /*seed_begin=*/1, /*seed_count=*/3,
                        /*threads=*/4, /*requests=*/60);
  const runner::SweepResult result = runner::run_sweep(spec);

  ASSERT_EQ(result.rows.size(), 9u);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const runner::SeedRecord& row = result.rows[i];
    ASSERT_TRUE(row.ok) << spec.units[i].label << ": " << row.error;
    EXPECT_EQ(row.counter_or_zero("gsn_conflicts"), 0u) << spec.units[i].label;
    EXPECT_EQ(row.counter_or_zero("leaked_keys"), 0u) << spec.units[i].label;
    EXPECT_EQ(row.counter_or_zero("divergences"), 0u) << spec.units[i].label;
    EXPECT_EQ(row.counter_or_zero("csn_mismatches"), 0u)
        << spec.units[i].label;
    EXPECT_EQ(row.counter_or_zero("staleness_violations"), 0u)
        << spec.units[i].label;
  }
  EXPECT_EQ(result.pooled_counter_or_zero("violations"), 0u);
}

TEST(ShardRouterChaos, ScalingSweepHoldsInvariantsAtEveryWidth) {
  const runner::Plan* plan = runner::find_plan("shard_scaling");
  ASSERT_NE(plan, nullptr);
  const runner::SweepSpec spec =
      runner::make_spec(*plan, /*seed_begin=*/1, /*seed_count=*/2,
                        /*threads=*/4, /*requests=*/60);
  const runner::SweepResult result = runner::run_sweep(spec);

  ASSERT_EQ(result.rows.size(), 6u);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const runner::SeedRecord& row = result.rows[i];
    ASSERT_TRUE(row.ok) << spec.units[i].label << ": " << row.error;
    EXPECT_EQ(row.counter_or_zero("violations"), 0u) << spec.units[i].label;
    EXPECT_GT(row.counter_or_zero("reads_completed"), 0u)
        << spec.units[i].label;
  }
}

}  // namespace
}  // namespace aqueduct
