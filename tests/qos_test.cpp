#include "core/qos.hpp"

#include <gtest/gtest.h>

namespace aqueduct::core {
namespace {

TEST(StalenessOf, Basics) {
  EXPECT_EQ(staleness_of(10, 10), 0u);
  EXPECT_EQ(staleness_of(10, 7), 3u);
  // A replica can momentarily be ahead of the GSN it was told about
  // (e.g. a read GSN observed before a later commit): never negative.
  EXPECT_EQ(staleness_of(5, 9), 0u);
  EXPECT_EQ(staleness_of(0, 0), 0u);
}

TEST(QoSSpec, ValidatesDeadline) {
  QoSSpec spec{.staleness_threshold = 1,
               .deadline = sim::Duration::zero(),
               .min_probability = 0.5};
  EXPECT_THROW(spec.validate(), InvariantViolation);
}

TEST(QoSSpec, ValidatesProbabilityRange) {
  QoSSpec spec{.staleness_threshold = 1,
               .deadline = std::chrono::milliseconds(100),
               .min_probability = 0.0};
  EXPECT_THROW(spec.validate(), InvariantViolation);
  spec.min_probability = 1.5;
  EXPECT_THROW(spec.validate(), InvariantViolation);
  spec.min_probability = 1.0;
  EXPECT_NO_THROW(spec.validate());
}

TEST(QoSSpec, PaperExampleIsExpressible) {
  // "a copy of the document that is not more than 5 versions old within
  // 2.0 seconds with a probability of at least 0.7" (Section 2).
  const QoSSpec spec{.staleness_threshold = 5,
                     .deadline = std::chrono::seconds(2),
                     .min_probability = 0.7};
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.staleness_threshold, 5u);
}

TEST(ReadOnlyRegistry, ClassifiesMethods) {
  // The request model: clients declare read-only methods by name; anything
  // else is an update (Section 2).
  ReadOnlyRegistry registry;
  registry.declare_read_only("get_quote");
  registry.declare_read_only("read_document");
  EXPECT_TRUE(registry.is_read_only("get_quote"));
  EXPECT_TRUE(registry.is_read_only("read_document"));
  EXPECT_FALSE(registry.is_read_only("set_quote"));
  EXPECT_FALSE(registry.is_read_only(""));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ReadOnlyRegistry, DuplicateDeclarationIsIdempotent) {
  ReadOnlyRegistry registry;
  registry.declare_read_only("m");
  registry.declare_read_only("m");
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Ordering, Names) {
  EXPECT_EQ(to_string(Ordering::kSequential), "sequential");
  EXPECT_EQ(to_string(Ordering::kFifo), "fifo");
}

}  // namespace
}  // namespace aqueduct::core
