// Concurrency suite for the metrics instruments (src/obs/metrics).
//
// The telemetry contract: Counter/Gauge/Histogram writes are lock-free
// relaxed atomics safe from any thread, registration and iteration are
// mutex-guarded, and with all writers quiesced every count is exact — no
// lost updates. CI runs this suite under ThreadSanitizer (the TSan job's
// test filter includes "ConcurrentMetrics"), so a data race here is a
// build failure, not a flake.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/snapshot.hpp"

namespace aqueduct {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20000;

void run_threads(int n, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int t = 0; t < n; ++t) threads.emplace_back(body, t);
  for (auto& th : threads) th.join();
}

TEST(ConcurrentMetrics, CounterIncrementsAreExact) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("hits");
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) c.inc();
  });
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ConcurrentMetrics, CounterBulkIncrementsAreExact) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("bytes");
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) c.inc(3);
  });
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread * 3);
}

TEST(ConcurrentMetrics, GaugeAddIsExactUnderContention) {
  // Gauge::add is a CAS loop on an atomic<double>; integer-valued deltas
  // stay exact in doubles far beyond this total.
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("depth");
  run_threads(kThreads, [&](int t) {
    const double delta = (t % 2 == 0) ? 1.0 : -1.0;
    for (int i = 0; i < kOpsPerThread; ++i) g.add(delta);
  });
  EXPECT_DOUBLE_EQ(g.value(), 0.0);  // equal up/down writers cancel
}

TEST(ConcurrentMetrics, HistogramObservationsAreExact) {
  obs::Histogram h({1.0, 10.0, 100.0});
  run_threads(kThreads, [&](int t) {
    // Each thread hammers one bucket: t%4 selects underflow-most bucket,
    // the two middle ones, or overflow.
    const double v = (t % 4 == 0)   ? 0.5
                     : (t % 4 == 1) ? 5.0
                     : (t % 4 == 2) ? 50.0
                                    : 500.0;
    for (int i = 0; i < kOpsPerThread; ++i) h.observe(v);
  });
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(h.count(), total);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 4u);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, total);
  // kThreads=8 spreads evenly over the 4 values.
  for (std::uint64_t b : buckets) EXPECT_EQ(b, total / 4);
  EXPECT_DOUBLE_EQ(h.sum(), (0.5 + 5.0 + 50.0 + 500.0) * 2 * kOpsPerThread);
}

TEST(ConcurrentMetrics, RegistrationRacesResolveToOneInstrument) {
  obs::MetricsRegistry reg;
  std::vector<obs::Counter*> seen(kThreads, nullptr);
  run_threads(kThreads, [&](int t) {
    // All threads race to register the same name, then write through
    // whichever cell they got back.
    obs::Counter& c = reg.counter("shared");
    seen[t] = &c;
    for (int i = 0; i < kOpsPerThread; ++i) c.inc();
    // And each registers a private name, exercising map growth under
    // concurrent lookups.
    reg.counter("private." + std::to_string(t)).inc(t + 1);
  });
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("private." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(t) + 1);
  }
}

TEST(ConcurrentMetrics, SnapshotDuringWritesIsWellFormed) {
  // Snapshots under concurrent writers are eventually consistent, never
  // torn: every value read is one some writer actually published, and the
  // JSONL serialization stays structurally valid throughout.
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("reads");
  obs::Histogram& h = reg.histogram("lat", {1.0, 2.0});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      c.inc();
      h.observe(1.5);
    }
  });
  std::ostringstream out;
  obs::JsonlSnapshotSink sink(out);
  for (int i = 0; i < 200; ++i) {
    obs::MetricsSnapshot snap = reg.snapshot();
    snap.seq = static_cast<std::uint64_t>(i);
    sink.on_snapshot(snap);
    ASSERT_EQ(snap.counters.size(), 1u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    // Bucket sum never exceeds the count observed *after* the buckets were
    // read... ordering is relaxed, so only sanity-check non-tearing:
    // all observations land in the 1..2 bucket.
    const auto& hs = snap.histograms[0].second;
    ASSERT_EQ(hs.buckets.size(), 3u);
    EXPECT_EQ(hs.buckets[0], 0u);
    EXPECT_EQ(hs.buckets[2], 0u);
  }
  stop.store(true);
  writer.join();
  // Every line is one JSON object.
  std::istringstream lines(out.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(n, 200);
}

}  // namespace
}  // namespace aqueduct
