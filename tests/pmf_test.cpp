#include "core/pmf.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "sim/random.hpp"

namespace aqueduct::core {
namespace {

using std::chrono::milliseconds;

TEST(Pmf, EmptyByDefault) {
  Pmf pmf;
  EXPECT_TRUE(pmf.empty());
  EXPECT_EQ(pmf.support_size(), 0u);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(1000)), 0.0);
  EXPECT_DOUBLE_EQ(pmf.total_mass(), 0.0);
}

TEST(Pmf, PointMass) {
  const Pmf pmf = Pmf::point_mass(milliseconds(50));
  EXPECT_EQ(pmf.support_size(), 1u);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(49)), 0.0);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(50)), 1.0);
  EXPECT_EQ(pmf.mean(), milliseconds(50));
}

TEST(Pmf, FromSamplesRelativeFrequency) {
  const std::vector<sim::Duration> samples = {
      milliseconds(10), milliseconds(10), milliseconds(20), milliseconds(30)};
  const Pmf pmf = Pmf::from_samples(samples, milliseconds(1));
  EXPECT_EQ(pmf.support_size(), 3u);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(10)), 0.5);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(20)), 0.75);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(30)), 1.0);
}

TEST(Pmf, FromSamplesEmptyInput) {
  const Pmf pmf = Pmf::from_samples({}, milliseconds(1));
  EXPECT_TRUE(pmf.empty());
}

TEST(Pmf, BucketingMergesNearbySamples) {
  const std::vector<sim::Duration> samples = {
      std::chrono::microseconds(10100), std::chrono::microseconds(10900)};
  const Pmf pmf = Pmf::from_samples(samples, milliseconds(1));
  // Both land in the 10 ms bucket.
  EXPECT_EQ(pmf.support_size(), 1u);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(10)), 1.0);
}

TEST(Pmf, CdfIsMonotone) {
  const std::vector<sim::Duration> samples = {
      milliseconds(5), milliseconds(25), milliseconds(90), milliseconds(40)};
  const Pmf pmf = Pmf::from_samples(samples, milliseconds(1));
  double prev = -1.0;
  for (int d = 0; d <= 100; d += 5) {
    const double c = pmf.cdf(milliseconds(d));
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(Pmf, ConvolveWithPointMassShifts) {
  const std::vector<sim::Duration> samples = {milliseconds(10), milliseconds(20)};
  const Pmf base = Pmf::from_samples(samples, milliseconds(1));
  const Pmf shifted = base.convolve(Pmf::point_mass(milliseconds(5)));
  EXPECT_DOUBLE_EQ(shifted.cdf(milliseconds(14)), 0.0);
  EXPECT_DOUBLE_EQ(shifted.cdf(milliseconds(15)), 0.5);
  EXPECT_DOUBLE_EQ(shifted.cdf(milliseconds(25)), 1.0);
}

TEST(Pmf, ShiftMatchesPointMassConvolution) {
  const std::vector<sim::Duration> samples = {milliseconds(10), milliseconds(30)};
  const Pmf base = Pmf::from_samples(samples, milliseconds(1));
  const Pmf a = base.shift(milliseconds(7));
  const Pmf b = base.convolve(Pmf::point_mass(milliseconds(7)));
  ASSERT_EQ(a.support_size(), b.support_size());
  for (std::size_t i = 0; i < a.support_size(); ++i) {
    EXPECT_EQ(a.entries()[i].first, b.entries()[i].first);
    EXPECT_DOUBLE_EQ(a.entries()[i].second, b.entries()[i].second);
  }
}

TEST(Pmf, ConvolveEmptyYieldsEmpty) {
  const Pmf base = Pmf::point_mass(milliseconds(5));
  EXPECT_TRUE(base.convolve(Pmf{}).empty());
  EXPECT_TRUE(Pmf{}.convolve(base).empty());
}

TEST(Pmf, ConvolveTwoUniformPairs) {
  const std::vector<sim::Duration> x = {milliseconds(0), milliseconds(10)};
  const std::vector<sim::Duration> y = {milliseconds(0), milliseconds(10)};
  const Pmf conv = Pmf::from_samples(x, milliseconds(1))
                       .convolve(Pmf::from_samples(y, milliseconds(1)));
  // Sum of two fair {0,10} coins: 0 w.p. .25, 10 w.p. .5, 20 w.p. .25.
  EXPECT_DOUBLE_EQ(conv.cdf(milliseconds(0)), 0.25);
  EXPECT_DOUBLE_EQ(conv.cdf(milliseconds(10)), 0.75);
  EXPECT_DOUBLE_EQ(conv.cdf(milliseconds(20)), 1.0);
}

TEST(Pmf, QuantileInverseOfCdf) {
  const std::vector<sim::Duration> samples = {
      milliseconds(10), milliseconds(20), milliseconds(30), milliseconds(40)};
  const Pmf pmf = Pmf::from_samples(samples, milliseconds(1));
  EXPECT_EQ(pmf.quantile(0.25), milliseconds(10));
  EXPECT_EQ(pmf.quantile(0.5), milliseconds(20));
  EXPECT_EQ(pmf.quantile(1.0), milliseconds(40));
}

TEST(Pmf, MeanOfSamples) {
  const std::vector<sim::Duration> samples = {milliseconds(10), milliseconds(30)};
  const Pmf pmf = Pmf::from_samples(samples, milliseconds(1));
  EXPECT_EQ(pmf.mean(), milliseconds(20));
}

// --- property-style sweeps -------------------------------------------------

class PmfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PmfPropertyTest, MassSumsToOne) {
  sim::Rng rng(GetParam());
  std::vector<sim::Duration> samples;
  const std::size_t n = 1 + rng.uniform_int(40);
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(rng.normal_duration(milliseconds(100), milliseconds(50)));
  }
  const Pmf pmf = Pmf::from_samples(samples, milliseconds(1));
  EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-9);
}

TEST_P(PmfPropertyTest, ConvolutionMassAndMeanAdd) {
  sim::Rng rng(GetParam() * 31 + 7);
  auto draw = [&](std::size_t n) {
    std::vector<sim::Duration> samples;
    for (std::size_t i = 0; i < n; ++i) {
      samples.push_back(
          rng.normal_duration(milliseconds(80), milliseconds(40)));
    }
    return Pmf::from_samples(samples, milliseconds(1));
  };
  const Pmf a = draw(1 + rng.uniform_int(20));
  const Pmf b = draw(1 + rng.uniform_int(20));
  const Pmf conv = a.convolve(b);
  EXPECT_NEAR(conv.total_mass(), 1.0, 1e-9);
  // Means add (up to bucketing error of one resolution unit per operand).
  const double expected =
      static_cast<double>(a.mean().count() + b.mean().count());
  EXPECT_NEAR(static_cast<double>(conv.mean().count()), expected,
              2.0 * static_cast<double>(milliseconds(1).count()));
}

TEST_P(PmfPropertyTest, ConvolutionIsCommutative) {
  sim::Rng rng(GetParam() * 97 + 13);
  auto draw = [&](std::size_t n) {
    std::vector<sim::Duration> samples;
    for (std::size_t i = 0; i < n; ++i) {
      samples.push_back(rng.exponential_duration(milliseconds(50)));
    }
    return Pmf::from_samples(samples, milliseconds(1));
  };
  const Pmf a = draw(5 + rng.uniform_int(15));
  const Pmf b = draw(5 + rng.uniform_int(15));
  const Pmf ab = a.convolve(b);
  const Pmf ba = b.convolve(a);
  ASSERT_EQ(ab.support_size(), ba.support_size());
  for (std::size_t i = 0; i < ab.support_size(); ++i) {
    EXPECT_EQ(ab.entries()[i].first, ba.entries()[i].first);
    EXPECT_NEAR(ab.entries()[i].second, ba.entries()[i].second, 1e-12);
  }
}

TEST_P(PmfPropertyTest, CdfBoundsRespectSupport) {
  sim::Rng rng(GetParam() * 11 + 3);
  std::vector<sim::Duration> samples;
  for (std::size_t i = 0; i < 10; ++i) {
    samples.push_back(milliseconds(10 + 10 * rng.uniform_int(10)));
  }
  const Pmf pmf = Pmf::from_samples(samples, milliseconds(1));
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(9)), 0.0);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(1000)), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmfPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- prefix-sum cdf/quantile vs the pre-prefix linear scan -----------------

/// The original cdf(): a linear scan over the sparse entries, summing
/// masses at or below the deadline.
double scan_cdf(const Pmf& pmf, sim::Duration deadline) {
  double acc = 0.0;
  for (const auto& [value, mass] : pmf.entries()) {
    if (value > deadline) break;
    acc += mass;
  }
  return acc;
}

/// The original quantile(): accumulate in ascending order until the
/// running mass crosses p (same 1e-12 slack as the member function).
sim::Duration scan_quantile(const Pmf& pmf, double p) {
  double acc = 0.0;
  const auto entries = pmf.entries();
  for (const auto& [value, mass] : entries) {
    acc += mass;
    if (acc + 1e-12 >= p) return value;
  }
  return entries.back().first;
}

TEST(Pmf, PrefixCdfMatchesLinearScanBitForBit) {
  // The prefix array must reproduce the old scan exactly — same floating
  // additions in the same (ascending, nonzero-only) order — so memoized
  // CDFs stay bit-identical across the representation change.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Rng rng(seed * 17 + 5);
    auto draw = [&](std::size_t n, sim::Duration mean) {
      std::vector<sim::Duration> samples;
      for (std::size_t i = 0; i < n; ++i) {
        samples.push_back(rng.normal_duration(mean, mean / 2));
      }
      return Pmf::from_samples(samples, milliseconds(2));
    };
    const Pmf pmf = draw(4 + rng.uniform_int(30), milliseconds(80))
                        .convolve(draw(4 + rng.uniform_int(30), milliseconds(8)));
    ASSERT_FALSE(pmf.empty());
    // Probe every support point, the off-grid gaps next to it, and both
    // far tails. EXPECT_EQ on doubles: bitwise identity, no tolerance.
    for (const auto& [value, mass] : pmf.entries()) {
      EXPECT_EQ(pmf.cdf(value), scan_cdf(pmf, value));
      EXPECT_EQ(pmf.cdf(value - sim::Duration(1)),
                scan_cdf(pmf, value - sim::Duration(1)));
      EXPECT_EQ(pmf.cdf(value + sim::Duration(1)),
                scan_cdf(pmf, value + sim::Duration(1)));
    }
    EXPECT_EQ(pmf.cdf(pmf.min_value() - milliseconds(1)), 0.0);
    EXPECT_EQ(pmf.cdf(pmf.entries().back().first + milliseconds(1)),
              scan_cdf(pmf, pmf.entries().back().first + milliseconds(1)));
    for (const double p : {0.001, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      EXPECT_EQ(pmf.quantile(p), scan_quantile(pmf, p)) << "p=" << p;
    }
  }
}

// --- tail-truncation error bound (quantized pmfs, DESIGN.md) ---------------

class PmfTruncationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PmfTruncationProperty, CdfErrorStaysWithinEpsilonEverywhere) {
  sim::Rng rng(GetParam());
  auto draw = [&](std::size_t n, sim::Duration mean) {
    std::vector<sim::Duration> samples;
    for (std::size_t i = 0; i < n; ++i) {
      samples.push_back(rng.normal_duration(mean, mean));
    }
    return Pmf::from_samples(samples, milliseconds(1));
  };
  // A convolved pmf, like Eq. 5's S (+) W: long upper tail, uneven masses.
  const Pmf exact = draw(5 + rng.uniform_int(40), milliseconds(100))
                        .convolve(draw(5 + rng.uniform_int(40), milliseconds(20)));
  ASSERT_FALSE(exact.empty());

  for (const double epsilon : {1e-9, 1e-6, 1e-3, 0.01, 0.05}) {
    const Pmf truncated = exact.truncate_tail(epsilon);
    // Truncation only ever removes upper-tail mass, and never more than
    // epsilon of it.
    EXPECT_LE(truncated.total_mass(), exact.total_mass() + 1e-15);
    EXPECT_GE(truncated.total_mass(), exact.total_mass() - epsilon);
    EXPECT_LE(truncated.span(), exact.span());
    // At *every* deadline (all support points plus both tails) the
    // truncated CDF is within epsilon below the exact one, and never
    // above it — quantization can only under-credit a deadline.
    std::vector<sim::Duration> probes;
    probes.push_back(exact.min_value() - milliseconds(1));
    for (const auto& [value, mass] : exact.entries()) probes.push_back(value);
    probes.push_back(exact.entries().back().first + milliseconds(5));
    for (const sim::Duration d : probes) {
      const double want = exact.cdf(d);
      const double got = truncated.cdf(d);
      EXPECT_LE(got, want + 1e-12) << "deadline " << d.count();
      EXPECT_GE(got, want - epsilon - 1e-12) << "deadline " << d.count();
    }
  }

  // epsilon = 0 is the identity.
  const Pmf same = exact.truncate_tail(0.0);
  ASSERT_EQ(same.support_size(), exact.support_size());
  for (std::size_t i = 0; i < exact.support_size(); ++i) {
    EXPECT_EQ(same.entries()[i].first, exact.entries()[i].first);
    EXPECT_EQ(same.entries()[i].second, exact.entries()[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmfTruncationProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace aqueduct::core
