#include "core/sliding_window.hpp"

#include <gtest/gtest.h>

#include "sim/check.hpp"

namespace aqueduct::core {
namespace {

TEST(SlidingWindow, StartsEmpty) {
  SlidingWindow<int> w(3);
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(w.full());
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.capacity(), 3u);
}

TEST(SlidingWindow, FillsToCapacity) {
  SlidingWindow<int> w(3);
  w.push(1);
  w.push(2);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_FALSE(w.full());
  w.push(3);
  EXPECT_TRUE(w.full());
  EXPECT_EQ(w.values(), (std::vector<int>{1, 2, 3}));
}

TEST(SlidingWindow, EvictsOldestFirst) {
  SlidingWindow<int> w(3);
  for (int i = 1; i <= 5; ++i) w.push(i);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.values(), (std::vector<int>{3, 4, 5}));
}

TEST(SlidingWindow, NewestTracksLastPush) {
  SlidingWindow<int> w(2);
  w.push(10);
  EXPECT_EQ(w.newest(), 10);
  w.push(20);
  EXPECT_EQ(w.newest(), 20);
  w.push(30);
  EXPECT_EQ(w.newest(), 30);
  EXPECT_EQ(w.values(), (std::vector<int>{20, 30}));
}

TEST(SlidingWindow, ForEachVisitsAllStored) {
  SlidingWindow<int> w(4);
  for (int i = 0; i < 10; ++i) w.push(i);
  int sum = 0;
  w.for_each([&](int v) { sum += v; });
  EXPECT_EQ(sum, 6 + 7 + 8 + 9);
}

TEST(SlidingWindow, ClearResets) {
  SlidingWindow<int> w(2);
  w.push(1);
  w.push(2);
  w.push(3);
  w.clear();
  EXPECT_TRUE(w.empty());
  w.push(9);
  EXPECT_EQ(w.values(), (std::vector<int>{9}));
}

TEST(SlidingWindow, CapacityOneKeepsNewest) {
  SlidingWindow<int> w(1);
  for (int i = 0; i < 5; ++i) w.push(i);
  EXPECT_EQ(w.values(), (std::vector<int>{4}));
}

TEST(SlidingWindow, ZeroCapacityRejected) {
  EXPECT_THROW(SlidingWindow<int>(0), InvariantViolation);
}

TEST(SlidingWindow, VersionBumpsOnEveryMutation) {
  SlidingWindow<int> w(3);
  EXPECT_EQ(w.version(), 0u);
  w.push(1);
  EXPECT_EQ(w.version(), 1u);
  // Evicting pushes still count: the distribution changed.
  for (int i = 0; i < 5; ++i) w.push(i);
  EXPECT_EQ(w.version(), 6u);
  w.clear();
  EXPECT_EQ(w.version(), 7u);
  // Reads never bump the version.
  (void)w.values();
  (void)w.size();
  EXPECT_EQ(w.version(), 7u);
}

class SlidingWindowOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(SlidingWindowOrderProperty, ValuesAlwaysOldestFirst) {
  const int pushes = GetParam();
  SlidingWindow<int> w(7);
  for (int i = 0; i < pushes; ++i) w.push(i);
  const auto values = w.values();
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_EQ(values[i], values[i - 1] + 1);
  }
  if (!values.empty()) {
    EXPECT_EQ(values.back(), pushes - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(PushCounts, SlidingWindowOrderProperty,
                         ::testing::Values(1, 3, 6, 7, 8, 13, 20, 21, 100));

}  // namespace
}  // namespace aqueduct::core
