// Harness-level behaviours: heterogeneous speed factors, open-loop
// arrivals, workload accounting.
#include <gtest/gtest.h>

#include <chrono>

#include "harness/scenario.hpp"

namespace aqueduct::harness {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

ClientSpec basic_client(std::size_t requests, Arrival arrival = Arrival::kClosedLoop) {
  return ClientSpec{
      .qos = {.staleness_threshold = 4,
              .deadline = milliseconds(300),
              .min_probability = 0.5},
      .request_delay = milliseconds(300),
      .num_requests = requests,
      .arrival = arrival,
  };
}

TEST(HarnessSpeedFactors, FastReplicasServeFaster) {
  auto run_with = [](std::vector<double> speeds) {
    ScenarioConfig config;
    config.seed = 3;
    config.num_primaries = 2;
    config.num_secondaries = 2;
    config.speed_factors = std::move(speeds);
    // Staleness-insensitive reads: a faster pool also raises the
    // closed-loop update rate, and with a tight threshold that would add
    // deferral waits which mask the pure service-speed effect.
    auto spec = basic_client(120);
    spec.qos.staleness_threshold = 1000;
    config.clients.push_back(std::move(spec));
    Scenario scenario(std::move(config));
    auto results = scenario.run();
    return sim::to_ms(results[0].stats.avg_response_time());
  };
  // Everyone 4x faster => markedly lower read latency.
  const double slow = run_with({1, 1, 1, 1, 1});
  const double fast = run_with({1, 4, 4, 4, 4});
  EXPECT_LT(fast, slow * 0.6);
}

TEST(HarnessSpeedFactors, MissingEntriesDefaultToOne) {
  ScenarioConfig config;
  config.seed = 4;
  config.num_primaries = 2;
  config.num_secondaries = 2;
  config.speed_factors = {1.0};  // only the sequencer listed
  config.clients.push_back(basic_client(40));
  Scenario scenario(std::move(config));
  auto results = scenario.run();
  EXPECT_EQ(results[0].stats.reads_completed, 20u);
}

TEST(HarnessArrival, OpenLoopIssuesAllRequests) {
  ScenarioConfig config;
  config.seed = 5;
  config.clients.push_back(basic_client(60, Arrival::kOpenPoisson));
  Scenario scenario(std::move(config));
  auto results = scenario.run();
  EXPECT_EQ(results[0].stats.reads_issued, 30u);
  EXPECT_EQ(results[0].stats.updates_issued, 30u);
  EXPECT_EQ(results[0].stats.reads_completed + results[0].stats.reads_abandoned,
            30u);
}

TEST(HarnessArrival, OpenPeriodicFinishesInBoundedTime) {
  ScenarioConfig config;
  config.seed = 6;
  config.clients.push_back(basic_client(40, Arrival::kOpenPeriodic));
  Scenario scenario(std::move(config));
  auto results = scenario.run();
  EXPECT_EQ(results[0].stats.reads_completed, 20u);
  // 40 arrivals at 300 ms spacing start within 12 s; with boot and the
  // drain tail the run must stay well under a minute of simulated time.
  EXPECT_LT(scenario.executor().now(), sim::kEpoch + seconds(60));
}

TEST(HarnessArrival, OpenLoopIsFasterThanClosedLoopWallClock) {
  auto sim_time = [](Arrival arrival) {
    ScenarioConfig config;
    config.seed = 7;
    config.clients.push_back(basic_client(60, arrival));
    Scenario scenario(std::move(config));
    scenario.run();
    return scenario.executor().now() - sim::kEpoch;
  };
  // Closed loop waits for each completion; open loop overlaps requests.
  EXPECT_LT(sim_time(Arrival::kOpenPeriodic), sim_time(Arrival::kClosedLoop));
}

TEST(HarnessResults, ReadSamplesMatchCompletedReads) {
  ScenarioConfig config;
  config.seed = 8;
  config.clients.push_back(basic_client(50));
  Scenario scenario(std::move(config));
  auto results = scenario.run();
  EXPECT_EQ(results[0].read_response_times.size(),
            results[0].stats.reads_completed);
  EXPECT_EQ(results[0].reply_staleness.size(),
            results[0].stats.reads_completed);
}

}  // namespace
}  // namespace aqueduct::harness
