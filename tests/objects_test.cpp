#include "replication/objects.hpp"

#include <gtest/gtest.h>

namespace aqueduct::replication {
namespace {

template <typename T>
std::shared_ptr<const T> as(const net::MessagePtr& msg) {
  auto cast = net::message_cast<T>(msg);
  EXPECT_NE(cast, nullptr);
  return cast;
}

// --- KeyValueStore -----------------------------------------------------------

TEST(KeyValueStore, PutThenGet) {
  KeyValueStore store;
  auto put = std::make_shared<KvPut>();
  put->key = "k";
  put->value = "v";
  store.apply_update(put);
  auto get = std::make_shared<KvGet>();
  get->key = "k";
  const auto result = as<KvResult>(store.apply_read(get));
  ASSERT_TRUE(result->value.has_value());
  EXPECT_EQ(*result->value, "v");
  EXPECT_EQ(result->version, 1u);
}

TEST(KeyValueStore, MissingKeyIsEmpty) {
  KeyValueStore store;
  auto get = std::make_shared<KvGet>();
  get->key = "nope";
  const auto result = as<KvResult>(store.apply_read(get));
  EXPECT_FALSE(result->value.has_value());
}

TEST(KeyValueStore, VersionCountsUpdates) {
  KeyValueStore store;
  for (int i = 0; i < 5; ++i) {
    auto put = std::make_shared<KvPut>();
    put->key = "k" + std::to_string(i % 2);
    put->value = "v";
    store.apply_update(put);
  }
  EXPECT_EQ(store.version(), 5u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(KeyValueStore, SnapshotRoundTrip) {
  KeyValueStore a;
  for (int i = 0; i < 3; ++i) {
    auto put = std::make_shared<KvPut>();
    put->key = "k" + std::to_string(i);
    put->value = "v" + std::to_string(i);
    a.apply_update(put);
  }
  KeyValueStore b;
  b.install_snapshot(a.snapshot());
  EXPECT_EQ(b.version(), 3u);
  auto get = std::make_shared<KvGet>();
  get->key = "k1";
  EXPECT_EQ(*as<KvResult>(b.apply_read(get))->value, "v1");
}

TEST(KeyValueStore, RejectsForeignOps) {
  KeyValueStore store;
  EXPECT_THROW(store.apply_update(std::make_shared<DocAppend>()),
               InvariantViolation);
  EXPECT_THROW(store.apply_read(std::make_shared<DocRead>()),
               InvariantViolation);
  EXPECT_THROW(store.install_snapshot(std::make_shared<DocContents>()),
               InvariantViolation);
}

// --- SharedDocument ----------------------------------------------------------

TEST(SharedDocument, AppendsAreOrdered) {
  SharedDocument doc;
  for (const char* line : {"one", "two", "three"}) {
    auto append = std::make_shared<DocAppend>();
    append->line = line;
    doc.apply_update(append);
  }
  const auto contents = as<DocContents>(doc.apply_read(std::make_shared<DocRead>()));
  ASSERT_EQ(contents->lines.size(), 3u);
  EXPECT_EQ(contents->lines[0], "one");
  EXPECT_EQ(contents->lines[2], "three");
  EXPECT_EQ(contents->version, 3u);
}

TEST(SharedDocument, VersionIsLineCount) {
  SharedDocument doc;
  EXPECT_EQ(doc.version(), 0u);
  auto append = std::make_shared<DocAppend>();
  append->line = "x";
  doc.apply_update(append);
  EXPECT_EQ(doc.version(), 1u);
}

TEST(SharedDocument, SnapshotRoundTrip) {
  SharedDocument a;
  auto append = std::make_shared<DocAppend>();
  append->line = "alpha";
  a.apply_update(append);
  SharedDocument b;
  b.install_snapshot(a.snapshot());
  const auto contents = as<DocContents>(b.apply_read(std::make_shared<DocRead>()));
  ASSERT_EQ(contents->lines.size(), 1u);
  EXPECT_EQ(contents->lines[0], "alpha");
}

// --- StockTicker -------------------------------------------------------------

TEST(StockTicker, SetThenGet) {
  StockTicker ticker;
  auto set = std::make_shared<TickerSet>();
  set->symbol = "ACME";
  set->price = 42.5;
  ticker.apply_update(set);
  auto get = std::make_shared<TickerGet>();
  get->symbol = "ACME";
  const auto quote = as<TickerQuote>(ticker.apply_read(get));
  ASSERT_TRUE(quote->price.has_value());
  EXPECT_DOUBLE_EQ(*quote->price, 42.5);
}

TEST(StockTicker, UnknownSymbolHasNoPrice) {
  StockTicker ticker;
  auto get = std::make_shared<TickerGet>();
  get->symbol = "NOPE";
  EXPECT_FALSE(as<TickerQuote>(ticker.apply_read(get))->price.has_value());
}

TEST(StockTicker, SnapshotRoundTrip) {
  StockTicker a;
  auto set = std::make_shared<TickerSet>();
  set->symbol = "X";
  set->price = 1.0;
  a.apply_update(set);
  StockTicker b;
  b.install_snapshot(a.snapshot());
  EXPECT_EQ(b.version(), 1u);
}

// --- VersionedRegister --------------------------------------------------------

TEST(VersionedRegister, BumpIncrements) {
  VersionedRegister reg;
  reg.apply_update(std::make_shared<RegisterBump>());
  reg.apply_update(std::make_shared<RegisterBump>());
  const auto value =
      as<RegisterValue>(reg.apply_read(std::make_shared<RegisterRead>()));
  EXPECT_EQ(value->value, 2u);
}

TEST(VersionedRegister, SnapshotRoundTrip) {
  VersionedRegister a;
  for (int i = 0; i < 7; ++i) a.apply_update(std::make_shared<RegisterBump>());
  VersionedRegister b;
  b.install_snapshot(a.snapshot());
  EXPECT_EQ(b.value(), 7u);
}

TEST(VersionedRegister, UpdateReturnsNewValue) {
  VersionedRegister reg;
  const auto result = as<RegisterValue>(reg.apply_update(std::make_shared<RegisterBump>()));
  EXPECT_EQ(result->value, 1u);
}

}  // namespace
}  // namespace aqueduct::replication
