// Conformance suite for the runtime::Executor contract, run against both
// implementations. Everything here is part of the interface protocol code
// relies on: FIFO ordering of same-time events, cancellation semantics,
// stop()/resume, post(), and clock monotonicity. Sim-specific guarantees
// (exact virtual-time arithmetic, rng determinism of whole runs) are
// asserted only for Kind::kSim.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/sim_executor.hpp"
#include "sim/check.hpp"

namespace aqueduct::runtime {
namespace {

using std::chrono::milliseconds;

std::string kind_name(const ::testing::TestParamInfo<Kind>& info) {
  return info.param == Kind::kSim ? "Sim" : "RealTime";
}

class ExecutorConformance : public ::testing::TestWithParam<Kind> {
 protected:
  std::unique_ptr<Executor> make(std::uint64_t seed = 1) {
    return make_executor(GetParam(), seed);
  }
  bool is_sim() const { return GetParam() == Kind::kSim; }
};

TEST_P(ExecutorConformance, StartsAtEpochAndAdvances) {
  auto exec = make();
  // A real-time executor may have aged a little since construction, but
  // never runs backwards; the simulator sits exactly at the epoch.
  const TimePoint t0 = exec->now();
  EXPECT_GE(t0, kEpoch);
  if (is_sim()) EXPECT_EQ(t0, kEpoch);
  exec->run_for(milliseconds(5));
  EXPECT_GE(exec->now(), t0 + milliseconds(5));
  if (is_sim()) EXPECT_EQ(exec->now(), t0 + milliseconds(5));
}

TEST_P(ExecutorConformance, SameTimeEventsFireInSchedulingOrder) {
  auto exec = make();
  std::vector<int> order;
  const TimePoint t = exec->now() + milliseconds(5);
  for (int i = 0; i < 5; ++i) {
    exec->at(t, [i, &order] { order.push_back(i); });
  }
  exec->run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_P(ExecutorConformance, AfterNeverFiresEarly) {
  auto exec = make();
  const TimePoint scheduled_at = exec->now();
  TimePoint fired_at{};
  exec->after(milliseconds(10), [&] { fired_at = exec->now(); });
  exec->run();
  EXPECT_GE(fired_at, scheduled_at + milliseconds(10));
  if (is_sim()) EXPECT_EQ(fired_at, scheduled_at + milliseconds(10));
}

TEST_P(ExecutorConformance, NegativeDelayIsRejected) {
  auto exec = make();
  EXPECT_THROW(exec->after(milliseconds(-1), [] {}), InvariantViolation);
}

TEST_P(ExecutorConformance, CancelBeforeFirePreventsCallback) {
  auto exec = make();
  bool fired = false;
  TaskHandle h = exec->after(milliseconds(5), [&] { fired = true; });
  EXPECT_TRUE(exec->cancel(h));
  exec->run();
  EXPECT_FALSE(fired);
}

TEST_P(ExecutorConformance, CancelAfterFireReturnsFalse) {
  auto exec = make();
  TaskHandle h = exec->after(milliseconds(1), [] {});
  exec->run();
  EXPECT_FALSE(exec->cancel(h));
}

TEST_P(ExecutorConformance, CancelTwiceReturnsFalse) {
  auto exec = make();
  TaskHandle h = exec->after(milliseconds(5), [] {});
  EXPECT_TRUE(exec->cancel(h));
  EXPECT_FALSE(exec->cancel(h));
}

TEST_P(ExecutorConformance, CancelEmptyHandleReturnsFalse) {
  auto exec = make();
  EXPECT_FALSE(exec->cancel(TaskHandle{}));
}

TEST_P(ExecutorConformance, StopMidEventThenResume) {
  auto exec = make();
  int fired = 0;
  exec->after(milliseconds(1), [&] {
    ++fired;
    exec->stop();
  });
  exec->after(milliseconds(2), [&] { ++fired; });
  EXPECT_EQ(exec->run(), 1u);
  EXPECT_EQ(fired, 1);
  // run() resets the stop request; the remaining event is still queued.
  EXPECT_EQ(exec->run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST_P(ExecutorConformance, PostRunsCallback) {
  auto exec = make();
  bool ran = false;
  exec->post([&] { ran = true; });
  exec->run();
  EXPECT_TRUE(ran);
}

TEST_P(ExecutorConformance, PendingAndExecutedCounts) {
  auto exec = make();
  for (int i = 0; i < 3; ++i) exec->after(milliseconds(i + 1), [] {});
  EXPECT_EQ(exec->pending_events(), 3u);
  exec->run();
  EXPECT_EQ(exec->pending_events(), 0u);
  EXPECT_EQ(exec->events_executed(), 3u);
}

TEST_P(ExecutorConformance, RunUntilLeavesLaterTimersQueued) {
  auto exec = make();
  int fired = 0;
  exec->after(milliseconds(5), [&] { ++fired; });
  exec->after(milliseconds(500), [&] { ++fired; });
  exec->run_until(exec->now() + milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(exec->pending_events(), 1u);
}

TEST_P(ExecutorConformance, RngStreamIsSeedDeterministic) {
  // The seeded random source itself is reproducible on both executors
  // (only event *interleaving* is nondeterministic under real time).
  auto a = make(42);
  auto b = make(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a->rng().uniform(), b->rng().uniform());
  }
}

INSTANTIATE_TEST_SUITE_P(AllRuntimes, ExecutorConformance,
                         ::testing::Values(Kind::kSim, Kind::kRealTime),
                         kind_name);

// --- sim-only contract -------------------------------------------------------

TEST(SimExecutorContract, SchedulingIntoThePastThrows) {
  SimExecutor sim;
  sim.after(milliseconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.at(kEpoch + milliseconds(5), [] {}), InvariantViolation);
}

TEST(SimExecutorContract, FactoryProducesSimulator) {
  auto exec = make_executor(Kind::kSim, 7);
  EXPECT_NE(dynamic_cast<SimExecutor*>(exec.get()), nullptr);
  EXPECT_EQ(dynamic_cast<RealTimeExecutor*>(exec.get()), nullptr);
}

TEST(SimExecutorContract, KindNames) {
  EXPECT_STREQ(to_string(Kind::kSim), "sim");
  EXPECT_STREQ(to_string(Kind::kRealTime), "real-time");
}

// --- real-time-only contract -------------------------------------------------

TEST(RealTimeExecutorContract, FactoryProducesRealTime) {
  auto exec = make_executor(Kind::kRealTime, 7);
  EXPECT_NE(dynamic_cast<RealTimeExecutor*>(exec.get()), nullptr);
}

TEST(RealTimeExecutorContract, PastTimeIsClampedNotRejected) {
  RealTimeExecutor exec;
  bool fired = false;
  exec.at(kEpoch, [&] { fired = true; });  // construction time: already past
  exec.run();
  EXPECT_TRUE(fired);
}

TEST(RealTimeExecutorContract, CrossThreadPostWakesIdleLoop) {
  RealTimeExecutor exec;
  std::atomic<bool> ran{false};
  std::thread producer([&] {
    std::this_thread::sleep_for(milliseconds(20));
    exec.post([&] {
      ran = true;
      exec.stop();  // end the loop well before its deadline
    });
  });
  // Idle sleep with nothing queued: only the cross-thread post can get the
  // callback in. The generous deadline never matters unless the wake-up
  // logic is broken.
  exec.run_until(exec.now() + std::chrono::seconds(10));
  producer.join();
  EXPECT_TRUE(ran.load());
}

TEST(RealTimeExecutorContract, CrossThreadStopEndsRun) {
  RealTimeExecutor exec;
  std::thread stopper([&] {
    std::this_thread::sleep_for(milliseconds(20));
    exec.stop();
  });
  exec.run_until(exec.now() + std::chrono::seconds(10));
  stopper.join();
  EXPECT_LT(exec.now(), kEpoch + std::chrono::seconds(5));
}

}  // namespace
}  // namespace aqueduct::runtime
