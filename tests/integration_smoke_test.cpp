// End-to-end smoke: the paper's full stack (simulator, network, GCS,
// replicas, clients) boots, serves alternating writes/reads under QoS, and
// preserves the basic protocol invariants.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace aqueduct {
namespace {

harness::ScenarioConfig small_config() {
  harness::ScenarioConfig config;
  config.seed = 7;
  config.num_primaries = 2;
  config.num_secondaries = 3;
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 2,
              .deadline = std::chrono::milliseconds(200),
              .min_probability = 0.5},
      .request_delay = std::chrono::milliseconds(200),
      .num_requests = 40,
  });
  return config;
}

TEST(IntegrationSmoke, CompletesAllRequests) {
  harness::Scenario scenario(small_config());
  auto results = scenario.run();
  ASSERT_EQ(results.size(), 1u);
  const auto& stats = results[0].stats;
  EXPECT_EQ(stats.reads_issued, 20u);
  EXPECT_EQ(stats.updates_issued, 20u);
  EXPECT_EQ(stats.reads_completed + stats.reads_abandoned, 20u);
  EXPECT_EQ(stats.reads_abandoned, 0u);
  EXPECT_EQ(stats.updates_completed, 20u);
}

TEST(IntegrationSmoke, SequentialConsistencyAcrossPrimaries) {
  harness::Scenario scenario(small_config());
  scenario.run();
  // All primaries committed all 20 updates; GSN/CSN agree; no conflicts.
  for (std::size_t i = 0; i <= 2; ++i) {
    const auto& replica = scenario.replica(i);
    EXPECT_EQ(replica.csn(), 20u) << "replica " << i;
    EXPECT_EQ(replica.stats().gsn_conflicts, 0u) << "replica " << i;
  }
}

TEST(IntegrationSmoke, StalenessBoundHonored) {
  harness::Scenario scenario(small_config());
  auto results = scenario.run();
  EXPECT_EQ(results[0].stats.staleness_violations, 0u);
  for (const double s : results[0].reply_staleness) {
    EXPECT_LE(s, 2.0);
  }
}

}  // namespace
}  // namespace aqueduct
