// Replica recovery & re-integration tests.
//
// A scripted crash -> restart must restore the pre-crash replication
// level: the reborn replica (a fresh incarnation with a fresh NodeId)
// rejoins the service groups, synchronizes its state via transfer (primary)
// or lazy catch-up (secondary), is re-admitted to client selection, and
// serves requests again — with zero GSN conflicts, committed-prefix
// agreement among primaries, and no reply staler than the threshold.
// The primary-path invariants are asserted over 10 seeds.
#include <gtest/gtest.h>

#include <chrono>

#include "fault/dependability.hpp"
#include "fault/schedule.hpp"
#include "harness/scenario.hpp"
#include "replication/objects.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

harness::ScenarioConfig base_config(std::uint64_t seed) {
  harness::ScenarioConfig config;
  config.seed = seed;
  config.num_primaries = 2;
  config.num_secondaries = 2;
  config.lazy_update_interval = seconds(2);
  for (int c = 0; c < 2; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 2,
                .deadline = milliseconds(250),
                .min_probability = 0.5},
        .request_delay = milliseconds(150),
        .num_requests = 150,
    });
  }
  return config;
}

void expect_safety(harness::Scenario& scenario,
                   const std::vector<harness::ClientResult>& results,
                   std::uint64_t seed) {
  std::uint64_t max_csn = 0;
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    const auto& replica = scenario.replica(i);
    EXPECT_EQ(replica.stats().gsn_conflicts, 0u)
        << "replica " << i << " seed " << seed;
    if (!replica.crashed() && replica.is_primary() && !replica.recovering()) {
      // CSN == applied updates == store version (exactly-once commits,
      // including updates installed via state transfer).
      const auto& store =
          dynamic_cast<const replication::KeyValueStore&>(replica.object());
      EXPECT_EQ(store.version(), replica.csn())
          << "replica " << i << " seed " << seed;
      max_csn = std::max(max_csn, replica.csn());
    }
  }
  // Live primaries converge on the commit point once traffic drains;
  // allow only in-flight slack.
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    const auto& replica = scenario.replica(i);
    if (replica.crashed() || !replica.is_primary() || replica.recovering() ||
        i == scenario.index_sequencer()) {
      continue;
    }
    EXPECT_GE(replica.csn() + 2, max_csn)
        << "primary " << i << " diverged, seed " << seed;
  }
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_completed + r.stats.reads_abandoned, 75u)
        << "seed " << seed;
    EXPECT_EQ(r.stats.staleness_violations, 0u) << "seed " << seed;
  }
}

class RecoverySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoverySeeds, RebornPrimaryIsReadmittedAndConsistent) {
  const std::uint64_t seed = GetParam();
  harness::Scenario scenario(base_config(seed));
  const std::size_t victim = 1;  // a primary, not the sequencer
  const net::NodeId first_id = scenario.replica_node(victim);

  fault::FaultSchedule plan;
  plan.crash_restart(victim, seconds(8), seconds(14));
  scenario.apply_faults(plan);

  auto results = scenario.run();

  // The slot was reborn under a fresh incarnation and NodeId.
  EXPECT_EQ(scenario.incarnation(victim), 1u);
  EXPECT_NE(scenario.replica_node(victim), first_id);

  const auto& reborn = scenario.replica(victim);
  EXPECT_FALSE(reborn.crashed()) << "seed " << seed;
  EXPECT_FALSE(reborn.recovering()) << "seed " << seed;
  // The transfer barrier was raised and dropped (state synchronized) with
  // bounded time-to-rejoin.
  EXPECT_GE(reborn.stats().recoveries_completed, 1u) << "seed " << seed;
  ASSERT_GT(reborn.recovered_at(), sim::kEpoch);
  EXPECT_LE(reborn.recovered_at(), sim::kEpoch + seconds(24))
      << "seed " << seed;
  // Re-admission: clients selected the reborn replica and it served them.
  EXPECT_GT(reborn.stats().reads_served, 0u) << "seed " << seed;
  // It also rejoined the commit pipeline.
  EXPECT_GT(reborn.stats().updates_committed, 0u) << "seed " << seed;

  expect_safety(scenario, results, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoverySeeds,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Recovery, RebornSecondaryCatchesUpFromLazyUpdates) {
  harness::Scenario scenario(base_config(42));
  const std::size_t victim = 4;  // a secondary (0 seq, 1-2 primary, 3-4 sec)

  fault::FaultSchedule plan;
  plan.crash_restart(victim, seconds(8), seconds(14));
  scenario.apply_faults(plan);

  auto results = scenario.run();

  const auto& reborn = scenario.replica(victim);
  EXPECT_FALSE(reborn.crashed());
  EXPECT_FALSE(reborn.is_primary());
  EXPECT_FALSE(reborn.recovering());
  // Secondaries synchronize passively: the first lazy update ends recovery.
  EXPECT_GE(reborn.stats().recoveries_completed, 1u);
  EXPECT_GT(reborn.stats().lazy_updates_installed, 0u);
  EXPECT_GT(reborn.recovered_at(), sim::kEpoch);
  // Warm-up seeding re-admits it to selection without a cold start.
  EXPECT_GT(reborn.stats().reads_served, 0u);

  expect_safety(scenario, results, 42);
}

TEST(Recovery, SequencerCrashAndRebirthKeepsServiceConsistent) {
  harness::Scenario scenario(base_config(7));
  const std::size_t victim = 0;  // the sequencer itself

  fault::FaultSchedule plan;
  plan.crash_restart(victim, seconds(9), seconds(16));
  scenario.apply_faults(plan);

  auto results = scenario.run();

  const auto& reborn = scenario.replica(victim);
  EXPECT_FALSE(reborn.crashed());
  // Sequencing failed over to the next primary; the reborn ex-sequencer
  // rejoins as an ordinary primary (fresh id = last join rank).
  EXPECT_FALSE(reborn.is_sequencer());
  EXPECT_GE(reborn.stats().recoveries_completed, 1u);
  bool someone_sequences = false;
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    someone_sequences |= scenario.replica(i).is_sequencer();
  }
  EXPECT_TRUE(someone_sequences);

  expect_safety(scenario, results, 7);
}

TEST(Recovery, DependabilityManagerRestartsWithBoundedLatency) {
  harness::Scenario scenario(base_config(3));
  const std::size_t victim = 2;

  // Only a crash is scripted — the dependability manager must notice the
  // replication-level deficit and restart the slot itself.
  fault::FaultSchedule plan;
  plan.crash(victim, seconds(8));
  scenario.apply_faults(plan);

  fault::DependabilityConfig dm;
  dm.poll_period = milliseconds(500);
  dm.restart_latency = seconds(1);
  scenario.enable_dependability(dm);

  auto results = scenario.run();

  ASSERT_NE(scenario.dependability(), nullptr);
  EXPECT_GE(scenario.dependability()->stats().restarts_issued, 1u);
  EXPECT_GE(scenario.dependability()->stats().deficits_observed, 1u);
  EXPECT_EQ(scenario.incarnation(victim), 1u);

  const auto& reborn = scenario.replica(victim);
  EXPECT_FALSE(reborn.crashed());
  EXPECT_GE(reborn.stats().recoveries_completed, 1u);
  // Detection (<= poll) + restart_latency + rejoin/transfer, all bounded:
  // well under the scripted-outage test's window.
  EXPECT_GT(reborn.recovered_at(), sim::kEpoch);
  EXPECT_LE(reborn.recovered_at(), sim::kEpoch + seconds(20));

  expect_safety(scenario, results, 3);
}

TEST(Recovery, RepeatedRestartsOfTheSameSlotStaySafe) {
  harness::Scenario scenario(base_config(11));
  const std::size_t victim = 1;

  fault::FaultSchedule plan;
  plan.crash_restart(victim, seconds(6), seconds(10));
  plan.crash_restart(victim, seconds(16), seconds(20));
  scenario.apply_faults(plan);

  auto results = scenario.run();

  EXPECT_EQ(scenario.incarnation(victim), 2u);
  const auto& reborn = scenario.replica(victim);
  EXPECT_FALSE(reborn.crashed());
  EXPECT_GE(reborn.stats().recoveries_completed, 1u);

  expect_safety(scenario, results, 11);
}

}  // namespace
}  // namespace aqueduct
