// Chaos property suites: randomized message loss and replica crashes
// (plus crash-then-recover reincarnations) under a concurrent workload.
// Whatever happens, the core safety invariants must hold:
//   * no GSN is ever bound to two different requests (gsn_conflicts == 0);
//   * every pair of surviving primaries agrees on the committed prefix
//     (equal CSN implies equal replicated state, and the lower CSN is a
//     prefix of the higher);
//   * no reply is staler than the client's threshold;
//   * the replicated register counts each update exactly once (no
//     double-commit under retries, no lost commit for completed updates).
// Liveness (modulo abandonment): every request eventually completes or is
// abandoned — none hangs.
//
// The per-seed bodies live in the `chaos` / `chaos_recovery` plans
// (src/runner/plans.cpp) and distill every invariant into violation
// counters; this suite fans the seeds across worker threads through
// runner::run_sweep — the same multithreaded path sweep_cli uses, so the
// ThreadSanitizer CI lane exercises real concurrent scenario runs — and
// asserts that each seed's violation counters are zero.
#include <gtest/gtest.h>

#include "runner/plans.hpp"
#include "runner/sweep.hpp"

namespace aqueduct {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
constexpr std::size_t kSeeds = 12;
constexpr std::size_t kThreads = 4;

void run_chaos_plan(const char* plan_name) {
  const runner::Plan* plan = runner::find_plan(plan_name);
  ASSERT_NE(plan, nullptr) << plan_name;
  const runner::SweepSpec spec =
      runner::make_spec(*plan, kFirstSeed, kSeeds, kThreads);
  const runner::SweepResult result = runner::run_sweep(spec);

  ASSERT_EQ(result.rows.size(), kSeeds);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const runner::SeedRecord& row = result.rows[i];
    ASSERT_TRUE(row.ok) << spec.units[i].label << ": " << row.error;
    EXPECT_EQ(row.counter_or_zero("liveness_violations"), 0u)
        << spec.units[i].label;
    EXPECT_EQ(row.counter_or_zero("staleness_violations"), 0u)
        << spec.units[i].label;
    EXPECT_EQ(row.counter_or_zero("gsn_conflicts"), 0u)
        << spec.units[i].label;
    EXPECT_EQ(row.counter_or_zero("csn_mismatches"), 0u)
        << spec.units[i].label;
    EXPECT_EQ(row.counter_or_zero("divergences"), 0u) << spec.units[i].label;
  }
  EXPECT_EQ(result.pooled_counter_or_zero("violations"), 0u);
}

TEST(ChaosProperty, SafetyInvariantsHoldUnderCrashesAndLoss) {
  run_chaos_plan("chaos");
}

TEST(ChaosRecovery, SafetyInvariantsHoldAcrossReincarnations) {
  run_chaos_plan("chaos_recovery");
}

// Gray failures (chaos-wrapped transport): every seed layers reordering,
// duplication, loss, a degraded link, and a primary↔secondary partial
// partition — the failure detector may evict live replicas, which must
// rejoin and re-synchronize rather than diverge. Committed-prefix
// agreement, zero GSN conflicts, and zero staleness violations must
// survive all of it.
TEST(ChaosGrayFailure, SafetyInvariantsHoldUnderGrayFaults) {
  run_chaos_plan("gray_chaos");
}

// The gray_failure severity ladder must merge byte-identically for any
// worker-thread count (chaos decisions are seed-deterministic, so the
// whole sweep is too).
TEST(ChaosGrayFailure, SeverityLadderJsonIsThreadCountInvariant) {
  const runner::Plan* plan = runner::find_plan("gray_failure");
  ASSERT_NE(plan, nullptr);
  const runner::SweepSpec spec1 = runner::make_spec(*plan, 5, 3, 1, 40);
  const runner::SweepSpec spec8 = runner::make_spec(*plan, 5, 3, 8, 40);
  EXPECT_EQ(runner::sweep_json(spec1, runner::run_sweep(spec1)),
            runner::sweep_json(spec8, runner::run_sweep(spec8)));
}

}  // namespace
}  // namespace aqueduct
