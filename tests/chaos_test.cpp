// Chaos property test: randomized message loss and replica crashes under
// a concurrent workload. Whatever happens, the core safety invariants
// must hold:
//   * no GSN is ever bound to two different requests (gsn_conflicts == 0);
//   * every pair of surviving primaries agrees on the committed prefix
//     (equal CSN implies equal replicated state, and the lower CSN is a
//     prefix of the higher);
//   * no reply is staler than the client's threshold;
//   * the replicated register counts each update exactly once (no
//     double-commit under retries, no lost commit for completed updates).
// Liveness (modulo abandonment): every request eventually completes or is
// abandoned — none hangs.
#include <gtest/gtest.h>

#include <chrono>

#include "fault/schedule.hpp"
#include "harness/scenario.hpp"
#include "replication/objects.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

class ChaosProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosProperty, SafetyInvariantsHoldUnderCrashesAndLoss) {
  const std::uint64_t seed = GetParam();
  harness::ScenarioConfig config;
  config.seed = seed;
  config.num_primaries = 3;
  config.num_secondaries = 3;
  config.lazy_update_interval = seconds(2);
  // Aggressive GCS timers keep chaos runs short.
  for (int c = 0; c < 2; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 2,
                .deadline = milliseconds(200),
                .min_probability = 0.5},
        .request_delay = milliseconds(200),
        .num_requests = 80,
    });
  }
  harness::Scenario scenario(std::move(config));

  // Seed-derived chaos: 10% loss for a stretch, plus 1-2 crashes at
  // random times (never the last primary, so the service stays alive).
  sim::Rng chaos(seed * 7919 + 13);
  scenario.simulator().after(seconds(5), [&scenario] {
    scenario.network().set_loss_probability(0.10);
  });
  scenario.simulator().after(seconds(25), [&scenario] {
    scenario.network().set_loss_probability(0.0);
  });
  const std::size_t crashes = 1 + chaos.uniform_int(2);
  std::vector<std::size_t> crashed;
  for (std::size_t i = 0; i < crashes; ++i) {
    // Candidates: sequencer (0), primary 2, secondaries 4/5. Keep primary
    // 1 and secondary 6(3+3 → index 6 exists? replicas: 0 seq,1-3 prim,
    // 4-6 sec) — keep 1 and 6 alive.
    const std::size_t candidates[] = {0, 2, 3, 4, 5};
    const std::size_t victim = candidates[chaos.uniform_int(5)];
    if (std::find(crashed.begin(), crashed.end(), victim) != crashed.end()) {
      continue;
    }
    crashed.push_back(victim);
    scenario.schedule_crash(
        victim, sim::kEpoch + seconds(8 + 10 * static_cast<int>(i)));
  }

  auto results = scenario.run();

  // Liveness: nothing hangs.
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_completed + r.stats.reads_abandoned, 40u)
        << "seed " << seed;
    EXPECT_EQ(r.stats.staleness_violations, 0u) << "seed " << seed;
  }

  // Safety across surviving primaries.
  std::uint64_t max_csn = 0;
  for (std::size_t i = 0; i <= 3; ++i) {
    if (std::find(crashed.begin(), crashed.end(), i) != crashed.end()) continue;
    const auto& replica = scenario.replica(i);
    EXPECT_EQ(replica.stats().gsn_conflicts, 0u) << "seed " << seed;
    // CSN == applied updates == register value (exactly-once commits).
    const auto& store =
        dynamic_cast<const replication::KeyValueStore&>(replica.object());
    EXPECT_EQ(store.version(), replica.csn()) << "seed " << seed;
    max_csn = std::max(max_csn, replica.csn());
  }
  // Surviving primaries converge on the commit point once traffic drains
  // (the run() tail gives them time): allow only in-flight slack.
  for (std::size_t i = 1; i <= 3; ++i) {
    if (std::find(crashed.begin(), crashed.end(), i) != crashed.end()) continue;
    EXPECT_GE(scenario.replica(i).csn() + 2, max_csn)
        << "primary " << i << " diverged, seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// Crash-then-recover chaos: every crash is followed by a seed-derived
// restart, so safety must hold *across reincarnations* — a reborn replica
// must never fork the committed prefix, reuse a GSN, or serve stale state,
// and the run must still terminate.
class ChaosRecovery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosRecovery, SafetyInvariantsHoldAcrossReincarnations) {
  const std::uint64_t seed = GetParam();
  harness::ScenarioConfig config;
  config.seed = seed;
  config.num_primaries = 2;
  config.num_secondaries = 3;
  config.lazy_update_interval = seconds(2);
  for (int c = 0; c < 2; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 2,
                .deadline = milliseconds(200),
                .min_probability = 0.5},
        .request_delay = milliseconds(200),
        .num_requests = 80,
    });
  }
  harness::Scenario scenario(std::move(config));

  // Seed-derived crash/restart plan over every replica (the sequencer
  // included — restarts keep the service alive), plus a loss episode.
  fault::RandomFaultParams params;
  params.crash_candidates = scenario.num_replicas();
  params.min_crashes = 1;
  params.max_crashes = 2;
  params.earliest_crash = seconds(6);
  params.crash_spacing = seconds(10);
  params.min_outage = seconds(4);
  params.max_outage = seconds(10);
  params.loss_probability = 0.05;
  params.loss_from = seconds(5);
  params.loss_until = seconds(20);
  scenario.apply_faults(fault::FaultSchedule::random(seed * 7919 + 13, params));

  auto results = scenario.run();

  // Liveness: nothing hangs.
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_completed + r.stats.reads_abandoned, 40u)
        << "seed " << seed;
    EXPECT_EQ(r.stats.staleness_violations, 0u) << "seed " << seed;
  }

  // Safety across all replicas, original and reborn incarnations alike.
  std::uint64_t max_csn = 0;
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    const auto& replica = scenario.replica(i);
    EXPECT_EQ(replica.stats().gsn_conflicts, 0u) << "seed " << seed;
    if (replica.crashed() || !replica.is_primary() || replica.recovering()) {
      continue;
    }
    const auto& store =
        dynamic_cast<const replication::KeyValueStore&>(replica.object());
    EXPECT_EQ(store.version(), replica.csn()) << "seed " << seed;
    max_csn = std::max(max_csn, replica.csn());
  }
  for (std::size_t i = 1; i <= 2; ++i) {
    const auto& replica = scenario.replica(i);
    if (replica.crashed() || replica.recovering()) continue;
    EXPECT_GE(replica.csn() + 2, max_csn)
        << "primary " << i << " diverged, seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosRecovery,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace aqueduct
