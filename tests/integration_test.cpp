// Whole-system integration: the paper's workload shapes, QoS adaptivity,
// and end-to-end invariants on top of the full stack.
#include <gtest/gtest.h>

#include <chrono>

#include "harness/scenario.hpp"
#include "replication/objects.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

TEST(Integration, PaperScaleRunCompletes) {
  harness::ScenarioConfig config;
  config.seed = 21;
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 4,
              .deadline = milliseconds(200),
              .min_probability = 0.1},
      .request_delay = milliseconds(1000),
      .num_requests = 200,
  });
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 2,
              .deadline = milliseconds(140),
              .min_probability = 0.9},
      .request_delay = milliseconds(1000),
      .num_requests = 200,
  });
  harness::Scenario scenario(std::move(config));
  auto results = scenario.run();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_completed, 100u);
    EXPECT_EQ(r.stats.updates_completed, 100u);
    EXPECT_EQ(r.stats.staleness_violations, 0u);
  }
}

TEST(Integration, ObservedFailureRateWithinRequestedBound) {
  // The headline property (paper Section 6.1): the selected replica sets
  // keep the observed timing-failure probability within 1 - Pc.
  harness::ScenarioConfig config;
  config.seed = 23;
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 4,
              .deadline = milliseconds(200),
              .min_probability = 0.1},
      .request_delay = milliseconds(1000),
      .num_requests = 400,
  });
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 2,
              .deadline = milliseconds(160),
              .min_probability = 0.9},
      .request_delay = milliseconds(1000),
      .num_requests = 400,
  });
  harness::Scenario scenario(std::move(config));
  auto results = scenario.run();
  // Allow statistical slack of a few percentage points over 200 reads.
  EXPECT_LE(results[1].stats.timing_failure_probability(), 0.1 + 0.05);
}

TEST(Integration, StricterClientSelectsMoreReplicas) {
  harness::ScenarioConfig config;
  config.seed = 29;
  for (const double pc : {0.5, 0.95}) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 2,
                .deadline = milliseconds(120),
                .min_probability = pc},
        .request_delay = milliseconds(500),
        .num_requests = 200,
    });
  }
  harness::Scenario scenario(std::move(config));
  auto results = scenario.run();
  EXPECT_LT(results[0].stats.avg_replicas_selected(),
            results[1].stats.avg_replicas_selected());
}

TEST(Integration, LongerLazyIntervalIncreasesDeferrals) {
  auto run_with_lui = [](sim::Duration lui) {
    harness::ScenarioConfig config;
    config.seed = 31;
    config.lazy_update_interval = lui;
    // A read-heavy, tight-staleness client plus an update-heavy load.
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 1,
                .deadline = milliseconds(2000),
                .min_probability = 0.3},
        .request_delay = milliseconds(250),
        .num_requests = 300,
    });
    harness::Scenario scenario(std::move(config));
    auto results = scenario.run();
    return results[0].stats;
  };
  const auto short_lui = run_with_lui(milliseconds(500));
  const auto long_lui = run_with_lui(seconds(8));
  EXPECT_LT(short_lui.deferred_replies, long_lui.deferred_replies);
}

TEST(Integration, AllPrimariesConvergeToSameStore) {
  harness::ScenarioConfig config;
  config.seed = 37;
  config.num_primaries = 3;
  config.num_secondaries = 3;
  for (int c = 0; c < 3; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 3,
                .deadline = milliseconds(300),
                .min_probability = 0.5},
        .request_delay = milliseconds(200),
        .num_requests = 60,
    });
  }
  harness::Scenario scenario(std::move(config));
  scenario.run();
  // 3 clients x 30 updates each.
  const auto& reference = dynamic_cast<const replication::KeyValueStore&>(
      scenario.replica(1).object());
  EXPECT_EQ(reference.version(), 90u);
  for (std::size_t i = 0; i <= 3; ++i) {
    EXPECT_EQ(scenario.replica(i).csn(), 90u) << "primary " << i;
  }
  // Secondaries converge after the final lazy update (run() drains 2s,
  // LUI default 4s — allow them to be at most one interval behind).
  for (std::size_t i = 4; i < scenario.num_replicas(); ++i) {
    EXPECT_GE(scenario.replica(i).csn() + 30, 90u) << "secondary " << i;
  }
}

TEST(Integration, DeferredRepliesStillMeetStalenessBound) {
  harness::ScenarioConfig config;
  config.seed = 41;
  config.lazy_update_interval = seconds(6);
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 1,
              .deadline = seconds(10),  // allow deferrals to complete
              .min_probability = 0.2},
      .request_delay = milliseconds(300),
      .num_requests = 200,
  });
  harness::Scenario scenario(std::move(config));
  auto results = scenario.run();
  EXPECT_GT(results[0].stats.deferred_replies, 0u);
  EXPECT_EQ(results[0].stats.staleness_violations, 0u);
}

TEST(Integration, NetworkLoadScalesWithSelection) {
  auto run_with_pc = [](double pc) {
    harness::ScenarioConfig config;
    config.seed = 43;
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 4,
                .deadline = milliseconds(120),
                .min_probability = pc},
        .request_delay = milliseconds(500),
        .num_requests = 200,
    });
    harness::Scenario scenario(std::move(config));
    scenario.run();
    std::uint64_t reads_served = 0;
    for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
      reads_served += scenario.replica(i).stats().reads_served;
    }
    return reads_served;
  };
  // Looser probability -> smaller K -> fewer replica services consumed.
  EXPECT_LT(run_with_pc(0.3), run_with_pc(0.95));
}

TEST(Integration, GsnMatchesUpdateCountEverywhere) {
  harness::ScenarioConfig config;
  config.seed = 47;
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 2,
              .deadline = milliseconds(300),
              .min_probability = 0.5},
      .request_delay = milliseconds(200),
      .num_requests = 100,
  });
  harness::Scenario scenario(std::move(config));
  scenario.run();
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    EXPECT_EQ(scenario.replica(i).gsn(), 50u) << "replica " << i;
  }
}

}  // namespace
}  // namespace aqueduct
