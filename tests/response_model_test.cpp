#include "core/response_model.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "sim/random.hpp"

namespace aqueduct::core {
namespace {

using std::chrono::milliseconds;

PerfHistory filled_history(std::size_t window = 20) {
  PerfHistory h(window);
  // Service ~ {90, 100, 110} ms, queueing ~ {0, 10} ms, gateway 2 ms.
  for (std::size_t i = 0; i < window; ++i) {
    h.service.push(milliseconds(90 + 10 * (i % 3)));
    h.queueing.push(milliseconds(10 * (i % 2)));
    h.lazy_wait.push(milliseconds(500 + 100 * (i % 4)));
  }
  h.set_gateway_delay(milliseconds(2));
  h.last_reply_at = sim::kEpoch + std::chrono::seconds(1);
  return h;
}

TEST(ResponseTimeModel, EmptyHistoryGivesZeroCdf) {
  const ResponseTimeModel model;
  const PerfHistory h(10);
  EXPECT_DOUBLE_EQ(model.immediate_cdf(h, milliseconds(1000)), 0.0);
  EXPECT_DOUBLE_EQ(model.deferred_cdf(h, milliseconds(1000)), 0.0);
  EXPECT_TRUE(model.immediate_pmf(h).empty());
}

TEST(ResponseTimeModel, ImmediatePmfConvolvesServiceQueueGateway) {
  const ResponseTimeModel model;
  const PerfHistory h = filled_history();
  const Pmf pmf = model.immediate_pmf(h);
  ASSERT_FALSE(pmf.empty());
  // Min possible: 90 + 0 + 2 = 92 ms; max: 110 + 10 + 2 = 122 ms.
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(91)), 0.0);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(122)), 1.0);
  EXPECT_NEAR(sim::to_ms(pmf.mean()), 100.0 + 5.0 + 2.0, 1.5);
}

TEST(ResponseTimeModel, ImmediateCdfMonotoneInDeadline) {
  const ResponseTimeModel model;
  const PerfHistory h = filled_history();
  double prev = -1.0;
  for (int d = 80; d <= 130; d += 5) {
    const double c = model.immediate_cdf(h, milliseconds(d));
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(ResponseTimeModel, DeferredAddsLazyWait) {
  const ResponseTimeModel model;
  const PerfHistory h = filled_history();
  // Deferred responses include U >= 500 ms, so nothing lands before ~592 ms.
  EXPECT_DOUBLE_EQ(model.deferred_cdf(h, milliseconds(200)), 0.0);
  EXPECT_DOUBLE_EQ(model.deferred_cdf(h, milliseconds(2000)), 1.0);
  EXPECT_LE(model.deferred_cdf(h, milliseconds(700)),
            model.immediate_cdf(h, milliseconds(700)));
}

TEST(ResponseTimeModel, GatewayDelayUsesLatestValueOnly) {
  const ResponseTimeModel model;
  PerfHistory h = filled_history();
  const double before = model.immediate_cdf(h, milliseconds(105));
  h.set_gateway_delay(milliseconds(50));  // gateway got slower
  const double after = model.immediate_cdf(h, milliseconds(105));
  EXPECT_LT(after, before);
}

TEST(ResponseTimeModel, NoGatewaySampleStillWorks) {
  const ResponseTimeModel model;
  PerfHistory h(10);
  h.service.push(milliseconds(100));
  // No queueing or gateway data yet: pmf is just the service pmf.
  const Pmf pmf = model.immediate_pmf(h);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(100)), 1.0);
  EXPECT_DOUBLE_EQ(pmf.cdf(milliseconds(99)), 0.0);
}

TEST(ResponseTimeModel, DeferredFallbackUsedWithoutLazySamples) {
  const ResponseTimeModel model;
  PerfHistory h(10);
  h.service.push(milliseconds(100));
  EXPECT_DOUBLE_EQ(model.deferred_cdf(h, milliseconds(5000)), 0.0)
      << "no U samples and no fallback -> empty";
  const double with_fallback =
      model.deferred_cdf(h, milliseconds(5000), milliseconds(2000));
  EXPECT_DOUBLE_EQ(with_fallback, 1.0);
  EXPECT_DOUBLE_EQ(model.deferred_cdf(h, milliseconds(2000), milliseconds(2000)),
                   0.0)
      << "100ms service + 2000ms fallback exceeds the 2000ms deadline";
}

TEST(ResponseTimeModel, ResolutionControlsBucketing) {
  PerfHistory h(4);
  h.service.push(std::chrono::microseconds(100100));
  h.service.push(std::chrono::microseconds(100900));
  const ResponseTimeModel coarse(milliseconds(1));
  const ResponseTimeModel fine(std::chrono::microseconds(100));
  EXPECT_EQ(coarse.immediate_pmf(h).support_size(), 1u);
  EXPECT_EQ(fine.immediate_pmf(h).support_size(), 2u);
}

TEST(PerfHistoryTest, HasSamplesTracksServiceWindow) {
  PerfHistory h(5);
  EXPECT_FALSE(h.has_samples());
  h.service.push(milliseconds(10));
  EXPECT_TRUE(h.has_samples());
}

TEST(PerfHistoryTest, VersionCoversEveryDistributionInput) {
  // Equal versions must imply identical Eq. 5/6 distributions, so every
  // mutation that can change them bumps version(); last_reply_at (which
  // only feeds the ert sort) does not.
  PerfHistory h(5);
  const auto v0 = h.version();
  h.service.push(milliseconds(10));
  EXPECT_GT(h.version(), v0);
  const auto v1 = h.version();
  h.queueing.push(milliseconds(1));
  EXPECT_GT(h.version(), v1);
  const auto v2 = h.version();
  h.lazy_wait.push(milliseconds(500));
  EXPECT_GT(h.version(), v2);
  const auto v3 = h.version();
  h.set_gateway_delay(milliseconds(2));
  EXPECT_GT(h.version(), v3);
  const auto v4 = h.version();
  // Same value again still counts as a mutation event.
  h.set_gateway_delay(milliseconds(2));
  EXPECT_GT(h.version(), v4);
  const auto v5 = h.version();
  h.last_reply_at = sim::kEpoch + milliseconds(7);
  EXPECT_EQ(h.version(), v5);
}

TEST(ResponseTimeModel, DeferredFromImmediateMatchesDirect) {
  sim::Rng rng(11);
  PerfHistory h(10);
  for (int i = 0; i < 10; ++i) {
    h.service.push(rng.normal_duration(milliseconds(100), milliseconds(40)));
    h.queueing.push(rng.exponential_duration(milliseconds(5)));
    h.lazy_wait.push(rng.normal_duration(milliseconds(900), milliseconds(300)));
  }
  h.set_gateway_delay(milliseconds(1));
  const ResponseTimeModel model;
  const Pmf direct = model.deferred_pmf(h);
  const Pmf reused = model.deferred_from_immediate(model.immediate_pmf(h), h);
  EXPECT_EQ(direct.entries(), reused.entries());
}

// Statistical property: the model's CDF at d approximates the true
// probability P(S + W + G <= d) when the windows hold samples from the
// true distributions.
class ResponseModelAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResponseModelAccuracy, TracksTrueDistribution) {
  sim::Rng rng(GetParam());
  PerfHistory h(20);
  for (int i = 0; i < 20; ++i) {
    h.service.push(rng.normal_duration(milliseconds(100), milliseconds(50)));
    h.queueing.push(rng.exponential_duration(milliseconds(5)));
  }
  h.set_gateway_delay(milliseconds(1));
  const ResponseTimeModel model;
  const double predicted = model.immediate_cdf(h, milliseconds(140));

  // Monte-Carlo truth with fresh draws from the same distributions.
  int within = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto r = rng.normal_duration(milliseconds(100), milliseconds(50)) +
                   rng.exponential_duration(milliseconds(5)) + milliseconds(1);
    if (r <= milliseconds(140)) ++within;
  }
  const double truth = static_cast<double>(within) / trials;
  // A 20-sample window is noisy; allow a generous band.
  EXPECT_NEAR(predicted, truth, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseModelAccuracy,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace aqueduct::core
