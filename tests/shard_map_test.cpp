// Property suite for the seeded consistent-hash ring (shard/shard_map.hpp).
//
// The two properties the sharded scenarios lean on:
//   * balance — with 128 vnodes per shard the max/mean key load across
//     shards stays within a constant factor, for every seed (the routing
//     balance_ratio the shard_scaling bench reports rides on this);
//   * minimal remap — adding a shard moves keys only onto the new shard,
//     removing one moves only the keys it owned. Every other key keeps its
//     placement bit-for-bit, which is what makes rebalance scenarios
//     incremental rather than a full reshuffle.
// Placement must also be a pure function of (seed, shard set, key): two
// independently constructed maps agree everywhere.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "shard/shard_map.hpp"

namespace aqueduct::shard {
namespace {

std::vector<std::string> make_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back("k" + std::to_string(i));
  return keys;
}

std::vector<std::size_t> placements(const ShardMap& map,
                                    const std::vector<std::string>& keys) {
  std::vector<std::size_t> out;
  out.reserve(keys.size());
  for (const auto& k : keys) out.push_back(map.shard_for(k));
  return out;
}

TEST(ShardMap, PlacementIsAPureFunctionOfSeedAndShardSet) {
  const auto keys = make_keys(512);
  const ShardMap a(/*seed=*/7, /*num_shards=*/8);
  const ShardMap b(/*seed=*/7, /*num_shards=*/8);
  EXPECT_EQ(placements(a, keys), placements(b, keys));

  // A different seed is a different ring: some key must move (512 keys
  // across 8 shards collide with probability ~0 only under a broken hash).
  const ShardMap c(/*seed=*/8, /*num_shards=*/8);
  EXPECT_NE(placements(a, keys), placements(c, keys));
}

TEST(ShardMap, HashLookupMatchesKeyLookup) {
  const ShardMap map(/*seed=*/3, /*num_shards=*/16);
  for (const auto& key : make_keys(256)) {
    EXPECT_EQ(map.shard_for(key), map.shard_for_hash(map.key_hash(key)));
  }
}

TEST(ShardMapProperty, BalanceRatioBoundedOverTwentySeeds) {
  // 10k keys over 16 shards, 20 seeds: the max/mean load ratio must stay
  // within a constant factor. 128 vnodes give a relative spread of roughly
  // 1/sqrt(128) ~ 9%; 1.5x max/mean (and 0.5x min/mean) leaves generous
  // headroom while still catching a broken ring (a single-vnode ring
  // routinely exceeds 2x).
  constexpr std::size_t kShards = 16;
  const auto keys = make_keys(10000);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ShardMap map(seed, kShards);
    std::vector<std::size_t> load(kShards, 0);
    for (const auto& key : keys) ++load[map.shard_for(key)];
    std::size_t max_load = 0, min_load = keys.size();
    for (const std::size_t l : load) {
      max_load = std::max(max_load, l);
      min_load = std::min(min_load, l);
    }
    const double mean =
        static_cast<double>(keys.size()) / static_cast<double>(kShards);
    EXPECT_LT(static_cast<double>(max_load) / mean, 1.5) << "seed " << seed;
    EXPECT_GT(static_cast<double>(min_load) / mean, 0.5) << "seed " << seed;
  }
}

TEST(ShardMapProperty, AddShardMovesKeysOnlyOntoTheNewShard) {
  const auto keys = make_keys(20000);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ShardMap map(seed, /*num_shards=*/8);
    const auto before = placements(map, keys);
    const std::size_t added = map.add_shard();
    EXPECT_EQ(added, 8u);
    EXPECT_EQ(map.num_shards(), 9u);

    std::size_t moved = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::size_t now = map.shard_for(keys[i]);
      if (now != before[i]) {
        // Minimal remap: a moved key may only land on the new shard.
        EXPECT_EQ(now, added) << keys[i] << " seed " << seed;
        ++moved;
      }
    }
    // The new shard should take ~1/9 of the keys — neither nothing (ring
    // not extended) nor a reshuffle (hash not consistent).
    const double fraction =
        static_cast<double>(moved) / static_cast<double>(keys.size());
    EXPECT_GT(fraction, 0.04) << "seed " << seed;
    EXPECT_LT(fraction, 0.25) << "seed " << seed;
  }
}

TEST(ShardMapProperty, RemoveShardMovesOnlyItsOwnKeys) {
  const auto keys = make_keys(20000);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ShardMap map(seed, /*num_shards=*/8);
    const auto before = placements(map, keys);
    const std::size_t victim = seed % 8;
    map.remove_shard(victim);
    EXPECT_FALSE(map.contains(victim));
    EXPECT_EQ(map.num_shards(), 7u);

    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::size_t now = map.shard_for(keys[i]);
      EXPECT_NE(now, victim) << keys[i] << " seed " << seed;
      if (before[i] != victim) {
        // Survivors keep their placement bit-for-bit.
        EXPECT_EQ(now, before[i]) << keys[i] << " seed " << seed;
      }
    }
  }
}

TEST(ShardMap, RetiredIdsAreNeverReused) {
  ShardMap map(/*seed=*/11, /*num_shards=*/4);
  map.remove_shard(2);
  EXPECT_EQ(map.add_shard(), 4u);  // not 2
  EXPECT_FALSE(map.contains(2));
  EXPECT_TRUE(map.contains(4));
  EXPECT_EQ(map.shards(), (std::vector<std::size_t>{0, 1, 3, 4}));
}

}  // namespace
}  // namespace aqueduct::shard
