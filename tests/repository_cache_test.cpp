// Coherence and effectiveness of the InfoRepository response-time memo:
// cached CDFs must be bit-identical to a fresh uncached ResponseTimeModel
// under any interleaving of publications, replies, and deadline changes,
// and unchanged replicas must not pay for convolutions.
#include "client/repository.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <vector>

#include "core/pmf.hpp"
#include "core/response_model.hpp"
#include "sim/random.hpp"

namespace aqueduct::client {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

replication::PerfPublication sample(std::uint32_t replica, int ts_ms,
                                    int tq_ms = 0, int tb_ms = 0,
                                    bool deferred = false) {
  replication::PerfPublication p;
  p.replica = net::NodeId{replica};
  p.has_sample = true;
  p.ts = milliseconds(ts_ms);
  p.tq = milliseconds(tq_ms);
  p.tb = milliseconds(tb_ms);
  p.deferred = deferred;
  return p;
}

/// Role map with primaries {2..1+np} and secondaries {2+np..1+np+ns};
/// node 1 is the sequencer.
replication::GroupInfo roles(std::size_t np, std::size_t ns) {
  replication::GroupInfo info;
  info.epoch = 1;
  info.sequencer = net::NodeId{1};
  for (std::uint32_t i = 0; i < np; ++i) {
    info.primaries.push_back(net::NodeId{2 + i});
  }
  for (std::uint32_t i = 0; i < ns; ++i) {
    info.secondaries.push_back(net::NodeId{2 + static_cast<std::uint32_t>(np) + i});
  }
  info.lazy_publisher = info.primaries.front();
  return info;
}

core::QoSSpec qos(int deadline_ms) {
  return {.staleness_threshold = 2,
          .deadline = milliseconds(deadline_ms),
          .min_probability = 0.9};
}

TEST(RepositoryCache, SteadyStateQueriesAreAllHits) {
  InfoRepository repo(10, milliseconds(1));
  repo.record_group_info(roles(2, 2));
  for (std::uint32_t id = 2; id <= 5; ++id) {
    for (int i = 0; i < 10; ++i) {
      repo.record_publication(sample(id, 40 + i, 5), sim::kEpoch);
    }
    repo.record_reply(net::NodeId{id}, milliseconds(1), sim::kEpoch);
  }
  const sim::TimePoint now = sim::kEpoch + seconds(1);
  (void)repo.candidates(qos(100), now);  // warm the memo
  repo.reset_cache_stats();
  core::Pmf::reset_convolution_counter();
  const auto first = repo.candidates(qos(100), now);
  const auto second = repo.candidates(qos(100), now + seconds(1));
  EXPECT_EQ(repo.cache_stats().hits, 8u);  // 4 replicas x 2 queries
  EXPECT_EQ(repo.cache_stats().rebuilds, 0u);
  EXPECT_EQ(core::Pmf::convolutions_performed(), 0u);
  // Only ert (a function of `now`) may differ between the queries.
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].immediate_cdf, second[i].immediate_cdf);
    EXPECT_EQ(first[i].deferred_cdf, second[i].deferred_cdf);
  }
}

TEST(RepositoryCache, PublicationInvalidatesOnlyThatReplica) {
  InfoRepository repo(10, milliseconds(1));
  repo.record_group_info(roles(2, 2));
  for (std::uint32_t id = 2; id <= 5; ++id) {
    repo.record_publication(sample(id, 50, 5), sim::kEpoch);
  }
  (void)repo.candidates(qos(100), sim::kEpoch);
  repo.reset_cache_stats();
  core::Pmf::reset_convolution_counter();
  repo.record_publication(sample(3, 60, 5), sim::kEpoch + seconds(1));
  (void)repo.candidates(qos(100), sim::kEpoch + seconds(1));
  // The push was folded into replica 3's integer state in place, so its
  // next query rematerializes the pmfs without any convolution — and the
  // other three replicas are pure hits.
  EXPECT_EQ(repo.cache_stats().incremental_updates, 1u);
  EXPECT_EQ(repo.cache_stats().incremental_refreshes, 1u);  // replica 3 only
  EXPECT_EQ(repo.cache_stats().rebuilds, 0u);
  EXPECT_EQ(repo.cache_stats().hits, 3u);
  EXPECT_EQ(core::Pmf::convolutions_performed(), 0u);
}

TEST(RepositoryCache, GatewayUpdateInvalidates) {
  InfoRepository repo(10, milliseconds(1));
  repo.record_group_info(roles(1, 1));
  repo.record_publication(sample(2, 50), sim::kEpoch);
  repo.record_publication(sample(3, 50), sim::kEpoch);
  (void)repo.candidates(qos(100), sim::kEpoch);
  repo.reset_cache_stats();
  core::Pmf::reset_convolution_counter();
  repo.record_reply(net::NodeId{2}, milliseconds(3), sim::kEpoch + seconds(1));
  const auto candidates = repo.candidates(qos(52), sim::kEpoch + seconds(1));
  // A gateway change only shifts replica 2's materialized grid (the
  // integer state is untouched): no rebuild, no convolution. Replica 3
  // merely sees the new deadline.
  EXPECT_EQ(repo.cache_stats().incremental_refreshes, 1u);
  EXPECT_EQ(repo.cache_stats().rebuilds, 0u);
  EXPECT_EQ(repo.cache_stats().cdf_refreshes, 1u);
  EXPECT_EQ(core::Pmf::convolutions_performed(), 0u);
  // 50ms service + 3ms gateway > 52ms: the new gateway delay is visible.
  const auto it = std::find_if(candidates.begin(), candidates.end(),
                               [](const auto& c) { return c.id == net::NodeId{2}; });
  ASSERT_NE(it, candidates.end());
  EXPECT_DOUBLE_EQ(it->immediate_cdf, 0.0);
}

TEST(RepositoryCache, DeadlineChangeRefreshesCdfsWithoutConvolving) {
  InfoRepository repo(10, milliseconds(1));
  repo.record_group_info(roles(2, 2));
  for (std::uint32_t id = 2; id <= 5; ++id) {
    for (int i = 0; i < 10; ++i) {
      repo.record_publication(sample(id, 40 + 2 * i, 5), sim::kEpoch);
    }
  }
  (void)repo.candidates(qos(100), sim::kEpoch);
  repo.reset_cache_stats();
  core::Pmf::reset_convolution_counter();
  const auto tighter = repo.candidates(qos(50), sim::kEpoch);
  EXPECT_EQ(repo.cache_stats().cdf_refreshes, 4u);
  EXPECT_EQ(repo.cache_stats().rebuilds, 0u);
  EXPECT_EQ(core::Pmf::convolutions_performed(), 0u);
  // The refreshed CDFs match a fresh model exactly.
  const core::ResponseTimeModel model(milliseconds(1));
  for (const auto& c : tighter) {
    const core::PerfHistory* h = repo.find_history(c.id);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(c.immediate_cdf, model.immediate_cdf(*h, milliseconds(50)));
  }
}

TEST(RepositoryCache, DisabledCacheBypassesMemo) {
  InfoRepository repo(10, milliseconds(1));
  repo.set_cache_enabled(false);
  repo.record_group_info(roles(1, 1));
  repo.record_publication(sample(2, 50, 5), sim::kEpoch);
  repo.record_publication(sample(3, 50, 5), sim::kEpoch);
  core::Pmf::reset_convolution_counter();
  (void)repo.candidates(qos(100), sim::kEpoch);
  const auto after_first = core::Pmf::convolutions_performed();
  (void)repo.candidates(qos(100), sim::kEpoch);
  EXPECT_EQ(core::Pmf::convolutions_performed(), 2 * after_first)
      << "disabled cache must redo the convolutions every query";
  EXPECT_EQ(repo.cache_stats().lookups(), 0u);
}

// --- property: cached CDFs bit-identical to a fresh uncached model ---------

class CacheCoherenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheCoherenceProperty, MatchesFreshModelUnderRandomWorkload) {
  sim::Rng rng(GetParam());
  const std::size_t window = 4 + rng.uniform_int(8);
  const std::size_t np = 1 + rng.uniform_int(3);
  const std::size_t ns = 1 + rng.uniform_int(4);
  const std::uint32_t pool = static_cast<std::uint32_t>(np + ns);

  // Two repositories fed the identical event sequence: the subject (memo
  // on) and a control with the memo disabled.
  InfoRepository repo(window, milliseconds(1));
  InfoRepository control(window, milliseconds(1));
  control.set_cache_enabled(false);
  repo.record_group_info(roles(np, ns));
  control.record_group_info(roles(np, ns));

  const core::ResponseTimeModel fresh(milliseconds(1));
  sim::TimePoint now = sim::kEpoch;
  const int deadlines[] = {60, 100, 140, 200};

  for (int step = 0; step < 300; ++step) {
    now += milliseconds(1 + static_cast<int>(rng.uniform_int(50)));
    const std::uint32_t id = 2 + static_cast<std::uint32_t>(rng.uniform_int(pool));
    const double dice = rng.uniform();
    if (dice < 0.35) {
      const bool deferred = rng.bernoulli(0.4);
      const auto p = sample(id, 30 + static_cast<int>(rng.uniform_int(100)),
                            static_cast<int>(rng.uniform_int(20)),
                            deferred ? 300 + static_cast<int>(rng.uniform_int(700)) : 0,
                            deferred);
      repo.record_publication(p, now);
      control.record_publication(p, now);
    } else if (dice < 0.5) {
      const auto tg = milliseconds(1 + static_cast<int>(rng.uniform_int(10)));
      repo.record_reply(net::NodeId{id}, tg, now);
      control.record_reply(net::NodeId{id}, tg, now);
    } else if (dice < 0.6) {
      replication::PerfPublication p;
      p.replica = net::NodeId{2};
      p.lazy = replication::LazyInfo{
          .n_u = static_cast<std::uint32_t>(1 + rng.uniform_int(5)),
          .t_u = seconds(1 + static_cast<int>(rng.uniform_int(3))),
          .n_l = 1,
          .t_l = seconds(1),
          .period = seconds(2 + static_cast<int>(rng.uniform_int(4)))};
      repo.record_publication(p, now);
      control.record_publication(p, now);
    } else {
      const auto spec = qos(deadlines[rng.uniform_int(4)]);
      const auto cached = repo.candidates(spec, now);
      const auto uncached = control.candidates(spec, now);

      // Cached vs memo-disabled control: byte-identical rows.
      ASSERT_EQ(cached.size(), uncached.size());
      for (std::size_t i = 0; i < cached.size(); ++i) {
        EXPECT_EQ(cached[i].id, uncached[i].id);
        EXPECT_EQ(cached[i].immediate_cdf, uncached[i].immediate_cdf);
        EXPECT_EQ(cached[i].deferred_cdf, uncached[i].deferred_cdf);
        EXPECT_EQ(cached[i].ert, uncached[i].ert);
      }

      // Cached vs a from-scratch ResponseTimeModel over the live windows,
      // replicating candidates()' deferred-fallback rule.
      std::optional<sim::Duration> fallback_u;
      if (repo.lazy_period() > sim::Duration::zero()) {
        fallback_u = repo.lazy_period() / 2;
      }
      for (const auto& c : cached) {
        const core::PerfHistory* h = repo.find_history(c.id);
        if (h == nullptr) {
          EXPECT_EQ(c.immediate_cdf, 0.0);
          continue;
        }
        EXPECT_EQ(c.immediate_cdf, fresh.immediate_cdf(*h, spec.deadline));
        if (!c.is_primary) {
          EXPECT_EQ(c.deferred_cdf,
                    fresh.deferred_cdf(*h, spec.deadline, fallback_u));
        }
      }
    }
  }
  // The workload must actually have exercised the memo.
  EXPECT_GT(repo.cache_stats().lookups(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheCoherenceProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace aqueduct::client
