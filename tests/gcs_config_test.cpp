// Behavioural effects of the GCS tunables, plus mixed membership events.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::gcs {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

struct TextMsg final : net::Message {
  explicit TextMsg(std::string t) : text(std::move(t)) {}
  std::string text;
  std::string type_name() const override { return "test.text"; }
};

constexpr GroupId kGroup{3};

struct Fixture {
  explicit Fixture(std::size_t n, Config config, std::uint64_t seed = 1)
      : sim(seed),
        network(sim, std::make_unique<sim::NormalDuration>(
                         milliseconds(1), std::chrono::microseconds(300))) {
    for (std::size_t i = 0; i < n; ++i) {
      endpoints.push_back(
          std::make_unique<Endpoint>(sim, network, directory, config));
    }
  }

  void join_all() {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      sim.after(milliseconds(5), [this, i] { endpoints[i]->member(kGroup).join(); });
      sim.run_for(milliseconds(50));
    }
    sim.run_for(seconds(2));
  }

  sim::Simulator sim;
  net::LoopbackTransport network;
  Directory directory;
  std::vector<std::unique_ptr<Endpoint>> endpoints;
};

TEST(GcsConfig, ShorterSuspectTimeoutDetectsFaster) {
  auto detection_time = [](sim::Duration suspect_timeout) {
    Config config;
    config.suspect_timeout = suspect_timeout;
    Fixture f(3, config);
    f.join_all();
    const sim::TimePoint crash_at = f.sim.now();
    f.endpoints[2]->crash();
    // Run until the survivors install a 2-member view.
    while (f.endpoints[0]->member(kGroup).view().size() != 2 &&
           f.sim.now() < crash_at + seconds(60)) {
      f.sim.run_for(milliseconds(100));
    }
    return f.sim.now() - crash_at;
  };
  const auto fast = detection_time(milliseconds(600));
  const auto slow = detection_time(milliseconds(3000));
  EXPECT_LT(fast, slow);
  EXPECT_LT(fast, seconds(2));
}

TEST(GcsConfig, LongHeartbeatPeriodStillRepairsLoss) {
  Config config;
  config.heartbeat_period = milliseconds(800);
  config.suspect_timeout = seconds(5);
  Fixture f(3, config, 7);
  f.join_all();
  std::vector<std::string> got;
  f.endpoints[1]->member(kGroup).set_on_deliver(
      [&](net::NodeId, const net::MessagePtr& msg) {
        if (auto t = net::message_cast<TextMsg>(msg)) got.push_back(t->text);
      });
  f.network.set_loss_probability(0.3);
  for (int i = 0; i < 15; ++i) {
    f.endpoints[0]->member(kGroup).multicast(
        std::make_shared<TextMsg>(std::to_string(i)));
  }
  f.sim.run_for(seconds(20));  // slower ack/announce cadence needs longer
  ASSERT_EQ(got.size(), 15u);
  for (int i = 0; i < 15; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], std::to_string(i));
}

TEST(GcsConfig, JoinWhileMemberCrashesResolvesBoth) {
  Config config;
  Fixture f(4, config, 3);
  // Join only the first three.
  for (std::size_t i = 0; i < 3; ++i) {
    f.sim.after(milliseconds(5), [&, i] { f.endpoints[i]->member(kGroup).join(); });
    f.sim.run_for(milliseconds(50));
  }
  f.sim.run_for(seconds(2));
  // A member crashes and a new process joins at nearly the same time.
  f.endpoints[2]->crash();
  f.sim.after(milliseconds(200), [&] { f.endpoints[3]->member(kGroup).join(); });
  f.sim.run_for(seconds(8));
  const View& v = f.endpoints[0]->member(kGroup).view();
  EXPECT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.contains(f.endpoints[3]->id()));
  EXPECT_FALSE(v.contains(f.endpoints[2]->id()));
  EXPECT_EQ(f.endpoints[1]->member(kGroup).view().id, v.id);
  EXPECT_EQ(f.endpoints[3]->member(kGroup).view().id, v.id);
}

TEST(GcsConfig, RejoinAfterLeaveGetsFreshMembership) {
  Config config;
  Fixture f(3, config);
  f.join_all();
  f.endpoints[2]->member(kGroup).leave();
  f.sim.run_for(seconds(3));
  EXPECT_EQ(f.endpoints[0]->member(kGroup).view().size(), 2u);
  // A crashed/left process cannot rejoin with the same endpoint (a
  // recovered process is a new process) — model that with a new endpoint.
  auto reborn = std::make_unique<Endpoint>(f.sim, f.network, f.directory, config);
  reborn->member(kGroup).join();
  f.sim.run_for(seconds(3));
  EXPECT_EQ(f.endpoints[0]->member(kGroup).view().size(), 3u);
  EXPECT_TRUE(f.endpoints[0]->member(kGroup).view().contains(reborn->id()));
}

TEST(GcsConfig, StatsExposeProtocolActivity) {
  Config config;
  Fixture f(2, config, 5);
  f.join_all();
  for (int i = 0; i < 10; ++i) {
    f.endpoints[0]->member(kGroup).multicast(std::make_shared<TextMsg>("x"));
  }
  f.sim.run_for(seconds(2));
  const auto& sender = f.endpoints[0]->member(kGroup).stats();
  const auto& receiver = f.endpoints[1]->member(kGroup).stats();
  EXPECT_EQ(sender.mcasts_sent, 10u);
  EXPECT_GE(sender.delivered, 10u);   // self-delivery
  EXPECT_GE(receiver.delivered, 10u);
  EXPECT_GE(sender.view_changes, 1u);
}

}  // namespace
}  // namespace aqueduct::gcs
