// Transport conformance suite: the net::Transport contract, run against
// every backend. The loopback rig drives a SimExecutor (instant virtual
// time); the UDP rig wires two real sockets on ephemeral localhost ports
// under a RealTimeExecutor. Protocol layers depend only on the behaviors
// asserted here.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gcs/messages.hpp"
#include "net/loopback.hpp"
#include "net/transport.hpp"
#include "net/udp_transport.hpp"
#include "replication/objects.hpp"
#include "replication/messages.hpp"
#include "runtime/sim_executor.hpp"

namespace aqueduct {
namespace {

struct Recorder final : net::Endpoint {
  std::vector<std::pair<net::NodeId, net::MessagePtr>> received;
  void on_message(net::NodeId from, net::MessagePtr msg) override {
    received.emplace_back(from, std::move(msg));
  }
};

net::MessagePtr make_payload(const std::string& key, const std::string& value) {
  auto op = std::make_shared<replication::KvPut>();
  op->key = key;
  op->value = value;
  return op;
}

/// One two-node transport setup. `a_side()`/`b_side()` are the Transport
/// instances node A and node B send/receive through (the same object for
/// the loopback, one per process for UDP).
class TransportRig {
 public:
  virtual ~TransportRig() = default;
  virtual net::Transport& a_side() = 0;
  virtual net::Transport& b_side() = 0;
  virtual net::NodeId node_a() const = 0;
  virtual net::NodeId node_b() const = 0;
  /// Runs the event loop long enough for in-flight messages to land.
  virtual void pump() = 0;
};

class LoopbackRig final : public TransportRig {
 public:
  LoopbackRig(Recorder& a, Recorder& b)
      : exec_(runtime::make_executor(runtime::Kind::kSim, 7)),
        transport_(net::make_loopback_transport(
            *exec_, std::make_unique<sim::FixedDuration>(
                        std::chrono::milliseconds(1)))) {
    a_ = transport_->attach(a);
    b_ = transport_->attach(b);
  }

  net::Transport& a_side() override { return *transport_; }
  net::Transport& b_side() override { return *transport_; }
  net::NodeId node_a() const override { return a_; }
  net::NodeId node_b() const override { return b_; }
  void pump() override {
    exec_->run_until(exec_->now() + std::chrono::milliseconds(100));
  }

 private:
  std::unique_ptr<runtime::Executor> exec_;
  std::unique_ptr<net::Transport> transport_;
  net::NodeId a_;
  net::NodeId b_;
};

class UdpRig final : public TransportRig {
 public:
  UdpRig(Recorder& a, Recorder& b)
      : exec_(runtime::make_executor(runtime::Kind::kRealTime, 7)) {
    replication::register_wire_codecs();
    net::UdpConfig ca;
    ca.local_id = net::NodeId{1};
    net::UdpConfig cb;
    cb.local_id = net::NodeId{2};
    ta_ = std::make_unique<net::UdpTransport>(*exec_, ca);
    tb_ = std::make_unique<net::UdpTransport>(*exec_, cb);
    // Both bound ephemeral ports; now they can learn each other's address.
    ta_->add_peer({net::NodeId{2}, "127.0.0.1", tb_->local_port()});
    tb_->add_peer({net::NodeId{1}, "127.0.0.1", ta_->local_port()});
    a_ = ta_->attach(a);
    b_ = tb_->attach(b);
  }

  net::Transport& a_side() override { return *ta_; }
  net::Transport& b_side() override { return *tb_; }
  net::NodeId node_a() const override { return a_; }
  net::NodeId node_b() const override { return b_; }
  void pump() override {
    exec_->run_until(exec_->now() + std::chrono::milliseconds(150));
  }

  net::UdpTransport& raw_b() { return *tb_; }

 private:
  std::unique_ptr<runtime::Executor> exec_;
  std::unique_ptr<net::UdpTransport> ta_;
  std::unique_ptr<net::UdpTransport> tb_;
  net::NodeId a_;
  net::NodeId b_;
};

enum class Backend { kLoopback, kUdp };

std::unique_ptr<TransportRig> make_rig(Backend backend, Recorder& a,
                                       Recorder& b) {
  if (backend == Backend::kLoopback) {
    return std::make_unique<LoopbackRig>(a, b);
  }
  return std::make_unique<UdpRig>(a, b);
}

class TransportConformanceTest : public ::testing::TestWithParam<Backend> {};

TEST_P(TransportConformanceTest, AttachReportsAttached) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  EXPECT_TRUE(rig->a_side().is_attached(rig->node_a()));
  EXPECT_TRUE(rig->b_side().is_attached(rig->node_b()));
  EXPECT_NE(rig->node_a(), rig->node_b());
}

TEST_P(TransportConformanceTest, DeliversPayloadAndSenderIdentity) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  rig->a_side().send(rig->node_a(), rig->node_b(),
                     make_payload("k1", "hello"));
  rig->pump();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, rig->node_a());
  auto put = net::message_cast<replication::KvPut>(b.received[0].second);
  ASSERT_TRUE(put);
  EXPECT_EQ(put->key, "k1");
  EXPECT_EQ(put->value, "hello");
  EXPECT_TRUE(a.received.empty());
}

TEST_P(TransportConformanceTest, DeliveryCountersAdvance) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  for (int i = 0; i < 3; ++i) {
    rig->a_side().send(rig->node_a(), rig->node_b(), make_payload("k", "v"));
  }
  rig->pump();

  EXPECT_EQ(rig->a_side().stats().messages_sent, 3u);
  EXPECT_EQ(rig->b_side().stats().messages_delivered, 3u);
  EXPECT_GT(rig->a_side().stats().bytes_sent, 0u);
  EXPECT_EQ(rig->b_side().stats().decode_errors, 0u);
}

TEST_P(TransportConformanceTest, MulticastReachesEachDestination) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  rig->a_side().multicast(rig->node_a(), {rig->node_b()},
                          make_payload("k", "v"));
  rig->pump();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_P(TransportConformanceTest, SendToUnknownNodeIsDroppedNotFatal) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  rig->a_side().send(rig->node_a(), net::NodeId{999}, make_payload("k", "v"));
  rig->pump();

  EXPECT_TRUE(b.received.empty());
  const net::TransportStats sa = rig->a_side().stats();
  EXPECT_EQ(sa.messages_dropped_detached + sa.messages_dropped_unroutable, 1u)
      << "a send to an unknown destination must be counted as a drop";
}

TEST_P(TransportConformanceTest, DetachStopsDelivery) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  rig->b_side().detach(rig->node_b());
  EXPECT_FALSE(rig->b_side().is_attached(rig->node_b()));

  rig->a_side().send(rig->node_a(), rig->node_b(), make_payload("k", "v"));
  rig->pump();
  EXPECT_TRUE(b.received.empty());
}

TEST_P(TransportConformanceTest, OnlyLoopbackOffersFaultInjection) {
  Recorder a, b;
  auto rig = make_rig(GetParam(), a, b);
  if (GetParam() == Backend::kLoopback) {
    EXPECT_NE(rig->a_side().fault_injection(), nullptr);
  } else {
    EXPECT_EQ(rig->a_side().fault_injection(), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values(Backend::kLoopback, Backend::kUdp),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kLoopback
                                      ? "Loopback"
                                      : "Udp";
                         });

// ---------------------------------------------------------------------------
// UDP-specific behavior
// ---------------------------------------------------------------------------

TEST(UdpTransportTest, GarbageDatagramIsCountedAndDropped) {
  Recorder a, b;
  UdpRig rig(a, b);

  // Fire raw junk at B's socket from outside the transport.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_port = htons(rig.raw_b().local_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &dest.sin_addr), 1);
  const char junk[] = "definitely not an AQWF frame";
  ASSERT_GT(::sendto(fd, junk, sizeof(junk), 0,
                     reinterpret_cast<const sockaddr*>(&dest), sizeof(dest)),
            0);
  ::close(fd);

  rig.pump();
  EXPECT_GE(rig.b_side().stats().decode_errors, 1u);
  EXPECT_TRUE(b.received.empty());

  // The poisoned socket still carries well-formed traffic.
  rig.a_side().send(rig.node_a(), rig.node_b(), make_payload("k", "v"));
  rig.pump();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(UdpTransportTest, DatagramForAnotherNodeIsDropped) {
  Recorder a, b;
  UdpRig rig(a, b);
  // A's address book claims node 2 lives at B's port; send to node 2 but
  // from a transport whose envelope names a different destination: simplest
  // is to point a third id at B's port and send there.
  dynamic_cast<net::UdpTransport&>(rig.a_side())
      .add_peer({net::NodeId{77}, "127.0.0.1", rig.raw_b().local_port()});
  rig.a_side().send(rig.node_a(), net::NodeId{77}, make_payload("k", "v"));
  rig.pump();

  // B decoded the envelope fine but it was not the addressee.
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(rig.b_side().stats().messages_dropped_detached, 1u);
}

TEST(UdpTransportTest, RoundTripThroughRealSocketsPreservesNestedPayloads) {
  Recorder a, b;
  UdpRig rig(a, b);

  // A protocol-shaped message with a nested application payload: what the
  // gcs layer actually puts on the wire.
  auto data = std::make_shared<gcs::DataMsg>();
  data->group = gcs::GroupId{17};
  data->sender = rig.node_a();
  data->dest = rig.node_b();
  data->seq = 3;
  data->payload = make_payload("k9", "nested");
  rig.a_side().send(rig.node_a(), rig.node_b(), data);
  rig.pump();

  ASSERT_EQ(b.received.size(), 1u);
  auto got = net::message_cast<gcs::DataMsg>(b.received[0].second);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->group, gcs::GroupId{17});
  EXPECT_EQ(got->seq, 3u);
  auto nested = net::message_cast<replication::KvPut>(got->payload);
  ASSERT_TRUE(nested);
  EXPECT_EQ(nested->value, "nested");
}

}  // namespace
}  // namespace aqueduct
