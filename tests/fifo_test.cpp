// FIFO timed consistency handler (paper Figure 2: the framework hosts
// multiple ordering guarantees as pluggable handlers).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "client/fifo_handler.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/fifo.hpp"
#include "replication/objects.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::replication {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

struct Fixture {
  explicit Fixture(std::size_t primaries, std::size_t secondaries,
                   std::uint64_t seed = 1,
                   sim::Duration lazy_interval = seconds(1))
      : sim(seed),
        network(sim, std::make_unique<sim::NormalDuration>(
                         milliseconds(1), std::chrono::microseconds(300))) {
    auto add_replica = [&](bool primary) {
      auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
      FifoReplicaConfig config;
      config.service_time =
          std::make_shared<sim::FixedDuration>(milliseconds(10));
      config.lazy_update_interval = lazy_interval;
      replicas.push_back(std::make_unique<FifoReplicaServer>(
          sim, *endpoint, groups, primary,
          std::make_unique<SharedDocument>(), std::move(config)));
      endpoints.push_back(std::move(endpoint));
    };
    for (std::size_t i = 0; i < primaries; ++i) add_replica(true);
    for (std::size_t i = 0; i < secondaries; ++i) add_replica(false);
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      sim.after(milliseconds(10 * (i + 1)), [this, i] { replicas[i]->start(); });
    }
  }

  client::FifoClientHandler& add_client() {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    clients.push_back(std::make_unique<client::FifoClientHandler>(
        sim, *endpoint, groups));
    endpoints.push_back(std::move(endpoint));
    clients.back()->start();
    return *clients.back();
  }

  void settle(sim::Duration d = seconds(2)) { sim.run_for(d); }

  sim::Simulator sim;
  net::LoopbackTransport network;
  gcs::Directory directory;
  ServiceGroups groups = ServiceGroups::for_service(2);
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<FifoReplicaServer>> replicas;
  std::vector<std::unique_ptr<client::FifoClientHandler>> clients;
};

core::QoSSpec loose() {
  return {.staleness_threshold = 0,
          .deadline = seconds(2),
          .min_probability = 0.5};
}

std::shared_ptr<DocAppend> append(const std::string& line) {
  auto op = std::make_shared<DocAppend>();
  op->line = line;
  return op;
}

TEST(Fifo, UpdatesAppliedOnAllPrimaries) {
  Fixture f(3, 1);
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    client.update(append("p" + std::to_string(i)), [&](sim::Duration) { ++done; });
  }
  f.settle(seconds(3));
  EXPECT_EQ(done, 5);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(f.replicas[i]->stats().updates_applied, 5u) << "primary " << i;
    const auto& doc = dynamic_cast<const SharedDocument&>(f.replicas[i]->object());
    EXPECT_EQ(doc.version(), 5u);
  }
}

TEST(Fifo, PerClientOrderPreserved) {
  Fixture f(2, 0);
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  for (int i = 0; i < 10; ++i) client.update(append(std::to_string(i)), {});
  f.settle(seconds(3));
  // FIFO consistency: each primary applied this client's appends in issue
  // order.
  for (std::size_t r = 0; r < 2; ++r) {
    const auto& doc = dynamic_cast<const SharedDocument&>(f.replicas[r]->object());
    const auto contents =
        net::message_cast<DocContents>(doc.apply_read(std::make_shared<DocRead>()));
    ASSERT_EQ(contents->lines.size(), 10u);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(contents->lines[static_cast<std::size_t>(i)], std::to_string(i));
    }
  }
}

TEST(Fifo, ReadYourWritesOnPrimary) {
  Fixture f(2, 0);
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  client.update(append("mine"), {});
  std::size_t lines = 0;
  client.read(std::make_shared<DocRead>(), loose(), /*read_your_writes=*/true,
              [&](const client::FifoReadOutcome& o) {
                const auto contents = net::message_cast<DocContents>(o.result);
                lines = contents->lines.size();
              });
  f.settle(seconds(2));
  EXPECT_EQ(lines, 1u);
}

TEST(Fifo, ReadYourWritesDefersOnStaleSecondary) {
  Fixture f(1, 2, 1, /*lazy=*/seconds(1));
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  client.update(append("w"), {});
  f.sim.run_for(milliseconds(100));
  // Secondaries have not seen the lazy update yet; a read-your-writes read
  // served by one must defer (and still return the write).
  bool got = false;
  bool any_deferred = false;
  std::size_t lines = 0;
  for (int i = 0; i < 6; ++i) {
    client.read(std::make_shared<DocRead>(), loose(), true,
                [&](const client::FifoReadOutcome& o) {
                  got = true;
                  any_deferred |= o.deferred;
                  lines = net::message_cast<DocContents>(o.result)->lines.size();
                });
  }
  f.settle(seconds(5));
  EXPECT_TRUE(got);
  EXPECT_EQ(lines, 1u);
  std::uint64_t deferred = f.replicas[1]->stats().deferred_reads +
                           f.replicas[2]->stats().deferred_reads;
  // At least one read landed on a stale secondary and deferred (seed-
  // dependent but the selection sends to several replicas while histories
  // are empty).
  EXPECT_GT(deferred + (any_deferred ? 1 : 0), 0u);
}

TEST(Fifo, RelaxedReadServedImmediately) {
  Fixture f(1, 2, 1, /*lazy=*/std::chrono::hours(1));
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  client.update(append("w"), {});
  f.sim.run_for(milliseconds(200));
  // Without read-your-writes, even a fully stale secondary answers at
  // once (possibly with the old document).
  int replies = 0;
  client.read(std::make_shared<DocRead>(), loose(), /*read_your_writes=*/false,
              [&](const client::FifoReadOutcome& o) {
                ++replies;
                EXPECT_FALSE(o.deferred);
              });
  f.settle(seconds(2));
  EXPECT_EQ(replies, 1);
}

TEST(Fifo, SecondariesConvergeViaLazyUpdates) {
  Fixture f(2, 2, 1, /*lazy=*/milliseconds(500));
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  for (int i = 0; i < 6; ++i) client.update(append(std::to_string(i)), {});
  f.settle(seconds(3));
  for (std::size_t r = 2; r < 4; ++r) {
    const auto& doc = dynamic_cast<const SharedDocument&>(f.replicas[r]->object());
    EXPECT_EQ(doc.version(), 6u) << "secondary " << r;
    EXPECT_GT(f.replicas[r]->stats().lazy_updates_installed, 0u);
    EXPECT_EQ(f.replicas[r]->horizon_of(client.id()), 6u);  // seq of 6th update
  }
}

TEST(Fifo, TwoClientsInterleaveButKeepOwnOrder) {
  Fixture f(2, 0, 3);
  f.settle();
  auto& a = f.add_client();
  auto& b = f.add_client();
  f.settle(seconds(1));
  for (int i = 0; i < 8; ++i) {
    a.update(append("a" + std::to_string(i)), {});
    b.update(append("b" + std::to_string(i)), {});
  }
  f.settle(seconds(5));
  for (std::size_t r = 0; r < 2; ++r) {
    const auto& doc = dynamic_cast<const SharedDocument&>(f.replicas[r]->object());
    const auto contents =
        net::message_cast<DocContents>(doc.apply_read(std::make_shared<DocRead>()));
    ASSERT_EQ(contents->lines.size(), 16u);
    // Per-client subsequences are in order.
    int next_a = 0, next_b = 0;
    for (const auto& line : contents->lines) {
      if (line[0] == 'a') {
        EXPECT_EQ(line, "a" + std::to_string(next_a++));
      } else {
        EXPECT_EQ(line, "b" + std::to_string(next_b++));
      }
    }
    EXPECT_EQ(next_a, 8);
    EXPECT_EQ(next_b, 8);
  }
}

TEST(Fifo, TimingFailureDetected) {
  Fixture f(2, 1);
  f.settle();
  auto& client = f.add_client();
  f.settle(seconds(1));
  core::QoSSpec tight{.staleness_threshold = 0,
                      .deadline = milliseconds(1),
                      .min_probability = 0.5};
  bool failed = false;
  client.read(std::make_shared<DocRead>(), tight, false,
              [&](const client::FifoReadOutcome& o) { failed = o.timing_failure; });
  f.settle(seconds(2));
  EXPECT_TRUE(failed);
  EXPECT_EQ(client.stats().timing_failures, 1u);
}

TEST(Fifo, DuplicateRequestsDeduplicated) {
  Fixture f(2, 0, 7);
  f.settle();
  f.network.set_loss_probability(0.2);
  auto& client = f.add_client();
  f.settle(seconds(2));
  // The GCS retransmits under loss; replicas must not double-apply.
  for (int i = 0; i < 10; ++i) client.update(append(std::to_string(i)), {});
  f.settle(seconds(20));
  f.network.set_loss_probability(0.0);
  f.settle(seconds(5));
  for (std::size_t r = 0; r < 2; ++r) {
    const auto& doc = dynamic_cast<const SharedDocument&>(f.replicas[r]->object());
    EXPECT_EQ(doc.version(), 10u) << "primary " << r;
  }
}

}  // namespace
}  // namespace aqueduct::replication
