// Wire-codec round-trip suite: every registered message type must encode
// to a frame that decodes back to an equal message, byte for byte
// (encode(decode(bytes)) == bytes), and every malformed input must throw
// CodecError instead of crashing or silently misparsing.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gcs/messages.hpp"
#include "net/codec.hpp"
#include "net/message.hpp"
#include "replication/fifo.hpp"
#include "replication/messages.hpp"
#include "replication/objects.hpp"
#include "sim/random.hpp"

namespace aqueduct {
namespace {

net::MessagePtr make_kv_put() {
  auto op = std::make_shared<replication::KvPut>();
  op->key = "k3";
  op->value = "v-\x01\x02 with bytes";
  return op;
}

std::shared_ptr<const gcs::DataMsg> make_data_msg() {
  auto data = std::make_shared<gcs::DataMsg>();
  data->group = gcs::GroupId{17};
  data->is_mcast = false;
  data->sender = net::NodeId{3};
  data->dest = net::NodeId{9};
  data->seq = 41;
  data->view_sent = 6;
  data->payload = make_kv_put();
  return data;
}

/// One fully populated exemplar per registered wire type. Coverage is
/// enforced against CodecRegistry::global().ids(): adding a codec-enabled
/// message without extending this list fails the suite.
std::vector<net::MessagePtr> exemplars() {
  std::vector<net::MessagePtr> out;

  // ---- gcs (0x1*) ----
  out.push_back(make_data_msg());
  {
    auto m = std::make_shared<gcs::HeartbeatMsg>();
    m->group = gcs::GroupId{18};
    m->view = 4;
    m->my_mcast_seq = 100;
    m->my_p2p_seq = {{net::NodeId{2}, 7}, {net::NodeId{5}, 0}};
    m->mcast_acks = {{net::NodeId{1}, 99}};
    m->p2p_acks = {{net::NodeId{4}, 3}};
    out.push_back(m);
  }
  {
    auto m = std::make_shared<gcs::NackMsg>();
    m->group = gcs::GroupId{18};
    m->is_mcast = false;
    m->from_seq = 10;
    m->to_seq = 15;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<gcs::JoinMsg>();
    m->group = gcs::GroupId{19};
    out.push_back(m);
  }
  {
    auto m = std::make_shared<gcs::LeaveMsg>();
    m->group = gcs::GroupId{19};
    out.push_back(m);
  }
  {
    auto m = std::make_shared<gcs::SuspectMsg>();
    m->group = gcs::GroupId{17};
    m->suspect = net::NodeId{11};
    out.push_back(m);
  }
  {
    auto m = std::make_shared<gcs::ProposeMsg>();
    m->group = gcs::GroupId{17};
    m->proposal = 9;
    m->members = {net::NodeId{1}, net::NodeId{2}, net::NodeId{3}};
    out.push_back(m);
  }
  {
    auto m = std::make_shared<gcs::FlushMsg>();
    m->group = gcs::GroupId{17};
    m->proposal = 9;
    m->delivered = {{net::NodeId{1}, 12}, {net::NodeId{2}, 0}};
    m->held = {make_data_msg()};
    out.push_back(m);
  }
  {
    auto m = std::make_shared<gcs::InstallMsg>();
    m->group = gcs::GroupId{17};
    m->proposal = 10;
    m->view.group = gcs::GroupId{17};
    m->view.id = 10;
    m->view.members = {net::NodeId{1}, net::NodeId{3}};
    m->deliver_up_to = {{net::NodeId{1}, 12}};
    m->resolution = {make_data_msg()};
    out.push_back(m);
  }

  // ---- replication sequencer protocol (0x2*) ----
  {
    auto m = std::make_shared<replication::UpdateRequest>();
    m->id = {net::NodeId{21}, 5};
    m->op = make_kv_put();
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::ReadRequest>();
    m->id = {net::NodeId{21}, 6};
    auto op = std::make_shared<replication::KvGet>();
    op->key = "k3";
    m->op = op;
    m->staleness_threshold = 4;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::GsnAssign>();
    m->id = {net::NodeId{21}, 5};
    m->gsn = 77;
    m->is_update = true;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::Reply>();
    m->id = {net::NodeId{21}, 6};
    m->is_update = false;
    auto result = std::make_shared<replication::KvResult>();
    result->value = "v";
    result->version = 8;
    m->result = result;
    m->replica = net::NodeId{12};
    m->t1 = std::chrono::milliseconds(25);
    m->ts = std::chrono::milliseconds(20);
    m->tq = std::chrono::milliseconds(5);
    m->tb = sim::Duration::zero();
    m->deferred = true;
    m->staleness = 2;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::LazyUpdate>();
    m->csn = 8;
    auto snap = std::make_shared<replication::KvSnapshot>();
    snap->entries = {{"a", "1"}, {"b", "2"}};
    snap->version = 8;
    m->snapshot = snap;
    m->lazy_seq = 3;
    out.push_back(m);
  }
  out.push_back(std::make_shared<replication::StateRequest>());
  {
    auto m = std::make_shared<replication::StateSnapshot>();
    m->csn = 8;
    m->gsn = 9;
    auto snap = std::make_shared<replication::KvSnapshot>();
    snap->version = 8;
    m->snapshot = snap;
    m->committed = {{net::NodeId{21}, 5}, {net::NodeId{22}, 1}};
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::PerfPublication>();
    m->replica = net::NodeId{12};
    m->has_sample = true;
    m->ts = std::chrono::milliseconds(20);
    m->tq = std::chrono::milliseconds(5);
    m->tb = std::chrono::milliseconds(1);
    m->deferred = true;
    m->lazy = replication::LazyInfo{3, std::chrono::milliseconds(500), 2,
                                    std::chrono::milliseconds(900),
                                    std::chrono::milliseconds(500)};
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::GroupInfo>();
    m->epoch = 4;
    m->sequencer = net::NodeId{1};
    m->primaries = {net::NodeId{2}, net::NodeId{3}};
    m->secondaries = {net::NodeId{11}, net::NodeId{12}};
    m->lazy_publisher = net::NodeId{3};
    out.push_back(m);
  }

  // ---- FIFO handler (0x3*) ----
  {
    auto m = std::make_shared<replication::FifoUpdateRequest>();
    m->id = {net::NodeId{23}, 2};
    m->op = make_kv_put();
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::FifoReadRequest>();
    m->id = {net::NodeId{23}, 3};
    auto op = std::make_shared<replication::KvGet>();
    op->key = "k0";
    m->op = op;
    m->horizon = 2;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::FifoReply>();
    m->id = {net::NodeId{23}, 3};
    m->is_update = false;
    auto result = std::make_shared<replication::KvResult>();
    result->version = 2;
    m->result = result;
    m->replica = net::NodeId{2};
    m->t1 = std::chrono::milliseconds(30);
    m->deferred = true;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::FifoLazyUpdate>();
    auto snap = std::make_shared<replication::KvSnapshot>();
    snap->version = 2;
    m->snapshot = snap;
    m->horizons = {{net::NodeId{23}, 2}};
    m->lazy_seq = 1;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::FifoGroupInfo>();
    m->epoch = 2;
    m->primaries = {net::NodeId{2}};
    m->secondaries = {net::NodeId{11}};
    m->lazy_publisher = net::NodeId{2};
    out.push_back(m);
  }

  // ---- example replicated objects (0x4*) ----
  out.push_back(make_kv_put());
  {
    auto m = std::make_shared<replication::KvGet>();
    m->key = "k3";
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::KvResult>();
    m->value = std::nullopt;  // absent-optional branch
    m->version = 9;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::KvSnapshot>();
    m->entries = {{"x", ""}, {"", "y"}};  // empty strings survive framing
    m->version = 2;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::DocAppend>();
    m->line = "line one";
    out.push_back(m);
  }
  out.push_back(std::make_shared<replication::DocRead>());
  {
    auto m = std::make_shared<replication::DocContents>();
    m->lines = {"a", "b", "c"};
    m->version = 3;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::TickerSet>();
    m->symbol = "ACME";
    m->price = 101.25;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::TickerGet>();
    m->symbol = "ACME";
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::TickerQuote>();
    m->symbol = "ACME";
    m->price = 101.25;
    m->version = 1;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<replication::TickerSnapshot>();
    m->prices = {{"ACME", 101.25}, {"ZZZ", 0.5}};
    m->version = 2;
    out.push_back(m);
  }
  out.push_back(std::make_shared<replication::RegisterBump>());
  out.push_back(std::make_shared<replication::RegisterRead>());
  {
    auto m = std::make_shared<replication::RegisterValue>();
    m->value = 5;
    out.push_back(m);
  }

  return out;
}

class CodecTest : public ::testing::Test {
 protected:
  void SetUp() override { replication::register_wire_codecs(); }
};

TEST_F(CodecTest, ExemplarsCoverEveryRegisteredType) {
  std::set<net::WireTypeId> covered;
  for (const auto& m : exemplars()) {
    EXPECT_NE(m->wire_type(), 0u) << m->type_name();
    EXPECT_TRUE(covered.insert(m->wire_type()).second)
        << "duplicate exemplar for id " << m->wire_type();
  }
  const auto ids = net::CodecRegistry::global().ids();
  const std::set<net::WireTypeId> registered(ids.begin(), ids.end());
  EXPECT_EQ(covered, registered)
      << "every registered type needs an exemplar here, and every exemplar "
         "must be registered";
}

TEST_F(CodecTest, RegistrationIsIdempotent) {
  const std::size_t before = net::CodecRegistry::global().size();
  replication::register_wire_codecs();
  gcs::register_wire_codecs();
  EXPECT_EQ(net::CodecRegistry::global().size(), before);
}

TEST_F(CodecTest, EncodeDecodeEncodeIsByteIdentical) {
  for (const auto& m : exemplars()) {
    SCOPED_TRACE(m->type_name());
    const std::vector<std::uint8_t> bytes = net::encode_frame(*m);
    ASSERT_GE(bytes.size(), net::kFrameHeaderSize);

    net::Reader r(bytes);
    net::MessagePtr decoded;
    ASSERT_NO_THROW(decoded = net::decode_frame(r));
    ASSERT_TRUE(decoded);
    EXPECT_TRUE(r.done()) << "decoder left trailing bytes";
    EXPECT_EQ(decoded->wire_type(), m->wire_type());
    EXPECT_EQ(decoded->type_name(), m->type_name());

    // Field fidelity without per-type comparators: the decoded message
    // must re-encode to exactly the original bytes.
    EXPECT_EQ(net::encode_frame(*decoded), bytes);
  }
}

TEST_F(CodecTest, WireSizeIsTheEncodedFrameSize) {
  for (const auto& m : exemplars()) {
    SCOPED_TRACE(m->type_name());
    EXPECT_EQ(m->wire_size(), net::encode_frame(*m).size());
  }
}

TEST_F(CodecTest, EveryTruncationThrows) {
  for (const auto& m : exemplars()) {
    SCOPED_TRACE(m->type_name());
    const std::vector<std::uint8_t> bytes = net::encode_frame(*m);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      net::Reader r(bytes.data(), len);
      EXPECT_THROW(net::decode_frame(r), net::CodecError)
          << "prefix of " << len << "/" << bytes.size()
          << " bytes decoded without error";
    }
  }
}

TEST_F(CodecTest, BadMagicThrows) {
  auto bytes = net::encode_frame(*make_kv_put());
  bytes[0] ^= 0xff;
  net::Reader r(bytes);
  EXPECT_THROW(net::decode_frame(r), net::CodecError);
}

TEST_F(CodecTest, UnknownVersionThrows) {
  auto bytes = net::encode_frame(*make_kv_put());
  bytes[4] = net::kWireVersion + 1;
  net::Reader r(bytes);
  EXPECT_THROW(net::decode_frame(r), net::CodecError);
}

TEST_F(CodecTest, UnknownTypeIdThrows) {
  auto bytes = net::encode_frame(*make_kv_put());
  // Type id is bytes 5..8 (little-endian); 0xffffffff is never registered.
  bytes[5] = bytes[6] = bytes[7] = bytes[8] = 0xff;
  net::Reader r(bytes);
  EXPECT_THROW(net::decode_frame(r), net::CodecError);
}

TEST_F(CodecTest, TrailingPayloadBytesThrow) {
  // Grow the declared payload length by one and append a stray byte: the
  // decoder no longer consumes exactly the payload, which must be an error
  // (anything else would let frames smuggle undetected junk).
  auto bytes = net::encode_frame(*make_kv_put());
  const std::uint32_t len = static_cast<std::uint32_t>(bytes[9]) |
                            (static_cast<std::uint32_t>(bytes[10]) << 8) |
                            (static_cast<std::uint32_t>(bytes[11]) << 16) |
                            (static_cast<std::uint32_t>(bytes[12]) << 24);
  const std::uint32_t grown = len + 1;
  bytes[9] = static_cast<std::uint8_t>(grown);
  bytes[10] = static_cast<std::uint8_t>(grown >> 8);
  bytes[11] = static_cast<std::uint8_t>(grown >> 16);
  bytes[12] = static_cast<std::uint8_t>(grown >> 24);
  bytes.push_back(0);
  net::Reader r(bytes);
  EXPECT_THROW(net::decode_frame(r), net::CodecError);
}

TEST_F(CodecTest, MessageWithoutCodecSupportIsRejected) {
  struct PlainMsg final : net::Message {
    std::string type_name() const override { return "test.plain"; }
  };
  const PlainMsg plain;
  EXPECT_EQ(plain.wire_type(), 0u);
  EXPECT_THROW(net::encode_frame(plain), net::CodecError);
  // wire_size() falls back to the pre-codec simulator estimate.
  EXPECT_EQ(plain.wire_size(), 64u);
}

TEST_F(CodecTest, NestedPayloadAbsentRoundTrips) {
  net::Writer w;
  net::encode_nested(w, nullptr);
  net::Reader r(w.bytes());
  EXPECT_EQ(net::decode_nested(r), nullptr);
  EXPECT_TRUE(r.done());
}

TEST_F(CodecTest, FlushHeldEntryMustBeDataMsg) {
  // Hand-craft a gcs.flush whose held list contains a kv.put frame: the
  // decoder must reject it (held/resolution carry gcs.data only).
  net::Writer payload;
  payload.u32(17);                    // group
  payload.u64(9);                     // proposal
  payload.u32(0);                     // delivered: empty
  payload.u32(1);                     // held: one entry
  net::encode_frame(*make_kv_put(), payload);

  net::Writer frame;
  frame.u32(net::kWireMagic);
  frame.u8(net::kWireVersion);
  frame.u32(gcs::kWireFlush);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.raw(payload.bytes().data(), payload.size());

  net::Reader r(frame.bytes());
  EXPECT_THROW(net::decode_frame(r), net::CodecError);
}

TEST_F(CodecTest, RandomBytesNeverCrashTheDecoder) {
  // Property check: arbitrary input either decodes or throws CodecError —
  // no other exception, no hang, no crash. Seeded, so deterministic.
  sim::Rng rng(2026);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(128));
    std::vector<std::uint8_t> bytes(n);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(256));
    }
    net::Reader r(bytes);
    try {
      (void)net::decode_frame(r);
    } catch (const net::CodecError&) {
      // expected for almost every trial
    }
  }
}

TEST_F(CodecTest, SingleByteCorruptionNeverCrashesTheDecoder) {
  // Flip each byte of each valid frame in turn: the decoder must either
  // throw CodecError or produce some message — never crash or misbehave.
  for (const auto& m : exemplars()) {
    SCOPED_TRACE(m->type_name());
    const std::vector<std::uint8_t> original = net::encode_frame(*m);
    for (std::size_t i = 0; i < original.size(); ++i) {
      std::vector<std::uint8_t> bytes = original;
      bytes[i] ^= 0x2a;
      net::Reader r(bytes);
      try {
        const net::MessagePtr decoded = net::decode_frame(r);
        ASSERT_TRUE(decoded);
      } catch (const net::CodecError&) {
        // fine: corruption detected
      }
    }
  }
}

}  // namespace
}  // namespace aqueduct
