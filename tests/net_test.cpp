#include "net/loopback.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::net {
namespace {

using std::chrono::milliseconds;

struct TextMsg final : Message {
  explicit TextMsg(std::string t) : text(std::move(t)) {}
  std::string text;
  std::string type_name() const override { return "test.text"; }
};

struct Recorder final : Endpoint {
  std::vector<std::pair<NodeId, std::string>> received;
  void on_message(NodeId from, MessagePtr msg) override {
    auto text = message_cast<TextMsg>(msg);
    received.emplace_back(from, text ? text->text : "?");
  }
};

struct Fixture {
  sim::Simulator sim{1};
  LoopbackTransport network{sim, std::make_unique<sim::FixedDuration>(milliseconds(1))};
};

TEST(LoopbackTransport, DeliversAfterLatency) {
  Fixture f;
  Recorder a, b;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  f.network.send(ida, idb, std::make_shared<TextMsg>("hi"));
  f.sim.run_until(sim::kEpoch + std::chrono::microseconds(500));
  EXPECT_TRUE(b.received.empty());  // still in flight
  f.sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, ida);
  EXPECT_EQ(b.received[0].second, "hi");
}

TEST(LoopbackTransport, AssignsDistinctIds) {
  Fixture f;
  Recorder a, b, c;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  const NodeId idc = f.network.attach(c);
  EXPECT_NE(ida, idb);
  EXPECT_NE(idb, idc);
  EXPECT_TRUE(f.network.is_attached(ida));
}

TEST(LoopbackTransport, MulticastReachesAllDestinations) {
  Fixture f;
  Recorder a, b, c;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  const NodeId idc = f.network.attach(c);
  f.network.multicast(ida, {idb, idc}, std::make_shared<TextMsg>("m"));
  f.sim.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_TRUE(a.received.empty());
}

TEST(LoopbackTransport, DetachedDestinationDropsSilently) {
  Fixture f;
  Recorder a, b;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  f.network.detach(idb);
  f.network.send(ida, idb, std::make_shared<TextMsg>("x"));
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(f.network.stats().messages_dropped_detached, 1u);
}

TEST(LoopbackTransport, DetachedSenderCannotSend) {
  Fixture f;
  Recorder a, b;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  f.network.detach(ida);
  f.network.send(ida, idb, std::make_shared<TextMsg>("x"));
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(LoopbackTransport, InFlightMessageToCrashedNodeDropped) {
  Fixture f;
  Recorder a, b;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  f.network.send(ida, idb, std::make_shared<TextMsg>("x"));
  f.network.detach(idb);  // crashes while the message is in flight
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(LoopbackTransport, LossDropsApproximatelyAtRate) {
  Fixture f;
  Recorder a, b;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  f.network.set_loss_probability(0.3);
  for (int i = 0; i < 2000; ++i) {
    f.network.send(ida, idb, std::make_shared<TextMsg>("x"));
  }
  f.sim.run();
  const double delivered = static_cast<double>(b.received.size()) / 2000.0;
  EXPECT_NEAR(delivered, 0.7, 0.05);
}

TEST(LoopbackTransport, PartitionBlocksCrossTraffic) {
  Fixture f;
  Recorder a, b, c;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  const NodeId idc = f.network.attach(c);
  f.network.partition({ida}, {idb});
  f.network.send(ida, idb, std::make_shared<TextMsg>("blocked"));
  f.network.send(ida, idc, std::make_shared<TextMsg>("ok"));  // c unaffected
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_EQ(f.network.stats().messages_dropped_partition, 1u);
}

TEST(LoopbackTransport, HealRestoresTraffic) {
  Fixture f;
  Recorder a, b;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  f.network.partition({ida}, {idb});
  f.network.heal();
  f.network.send(ida, idb, std::make_shared<TextMsg>("x"));
  f.sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(LoopbackTransport, PerLinkLatencyOverride) {
  Fixture f;
  Recorder a, b, c;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  const NodeId idc = f.network.attach(c);
  f.network.set_link_latency(ida, idb,
                             std::make_shared<sim::FixedDuration>(milliseconds(50)));
  f.network.send(ida, idb, std::make_shared<TextMsg>("slow"));
  f.network.send(ida, idc, std::make_shared<TextMsg>("fast"));
  f.sim.run_until(sim::kEpoch + milliseconds(10));
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
  f.sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(LoopbackTransport, SlowNodeLatencyAppliesBothDirections) {
  Fixture f;
  Recorder a, b;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  f.network.set_node_latency(idb,
                             std::make_shared<sim::FixedDuration>(milliseconds(20)));
  f.network.send(ida, idb, std::make_shared<TextMsg>("to-slow"));
  f.network.send(idb, ida, std::make_shared<TextMsg>("from-slow"));
  f.sim.run_until(sim::kEpoch + milliseconds(10));
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  f.sim.run();
  EXPECT_EQ(a.received.size(), 1u);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(LoopbackTransport, StatsCountSentAndDelivered) {
  Fixture f;
  Recorder a, b;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  for (int i = 0; i < 5; ++i) {
    f.network.send(ida, idb, std::make_shared<TextMsg>("x"));
  }
  f.sim.run();
  EXPECT_EQ(f.network.stats().messages_sent, 5u);
  EXPECT_EQ(f.network.stats().messages_delivered, 5u);
  EXPECT_GT(f.network.stats().bytes_sent, 0u);
}

TEST(LoopbackTransport, VariableLatencyCanReorder) {
  // With high-variance latency, two messages sent back to back can arrive
  // out of order — the reliable-FIFO layer above must handle this; the raw
  // network explicitly does not.
  sim::Simulator sim(3);
  LoopbackTransport network(sim, std::make_unique<sim::NormalDuration>(
                           milliseconds(10), milliseconds(8)));
  Recorder a, b;
  const NodeId ida = network.attach(a);
  const NodeId idb = network.attach(b);
  bool reordered = false;
  for (int round = 0; round < 200 && !reordered; ++round) {
    b.received.clear();
    network.send(ida, idb, std::make_shared<TextMsg>("1"));
    network.send(ida, idb, std::make_shared<TextMsg>("2"));
    sim.run();
    ASSERT_EQ(b.received.size(), 2u);
    reordered = b.received[0].second == "2";
  }
  EXPECT_TRUE(reordered);
}

TEST(NetworkLoss, LinkLossIsDirectional) {
  Fixture f;
  Recorder a, b;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  f.network.set_link_loss(ida, idb, 1.0);
  for (int i = 0; i < 20; ++i) {
    f.network.send(ida, idb, std::make_shared<TextMsg>("fwd"));
    f.network.send(idb, ida, std::make_shared<TextMsg>("rev"));
  }
  f.sim.run();
  EXPECT_TRUE(b.received.empty());        // a -> b fully lossy
  EXPECT_EQ(a.received.size(), 20u);      // b -> a untouched
  f.network.clear_link_loss(ida, idb);
  f.network.send(ida, idb, std::make_shared<TextMsg>("after"));
  f.sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkLoss, InboundAndOutboundLossApplyPerNode) {
  Fixture f;
  Recorder a, b, c;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  const NodeId idc = f.network.attach(c);
  f.network.set_inbound_loss(idb, 1.0);
  f.network.set_outbound_loss(idc, 1.0);
  f.network.send(ida, idb, std::make_shared<TextMsg>("to-b"));   // dropped
  f.network.send(idc, ida, std::make_shared<TextMsg>("from-c")); // dropped
  f.network.send(ida, idc, std::make_shared<TextMsg>("to-c"));   // delivered
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
  f.network.set_inbound_loss(idb, 0.0);
  f.network.set_outbound_loss(idc, 0.0);
  f.network.send(ida, idb, std::make_shared<TextMsg>("healed"));
  f.sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkLoss, PrecedenceLinkOverridesNodeAndGlobal) {
  Fixture f;
  Recorder a, b;
  const NodeId ida = f.network.attach(a);
  const NodeId idb = f.network.attach(b);
  f.network.set_loss_probability(0.25);
  f.network.set_outbound_loss(ida, 0.5);
  f.network.set_inbound_loss(idb, 0.75);
  // Node/global compose via max.
  EXPECT_DOUBLE_EQ(f.network.loss_probability(ida, idb), 0.75);
  // A link override is authoritative — it may *lower* the effective loss.
  f.network.set_link_loss(ida, idb, 0.1);
  EXPECT_DOUBLE_EQ(f.network.loss_probability(ida, idb), 0.1);
  f.network.clear_link_loss(ida, idb);
  EXPECT_DOUBLE_EQ(f.network.loss_probability(ida, idb), 0.75);
}

TEST(NodeIdTest, FormatsAndHashes) {
  EXPECT_EQ(to_string(NodeId{7}), "n7");
  EXPECT_FALSE(NodeId{}.valid());
  EXPECT_TRUE(NodeId{1}.valid());
  EXPECT_EQ(std::hash<NodeId>{}(NodeId{5}), std::hash<NodeId>{}(NodeId{5}));
}

}  // namespace
}  // namespace aqueduct::net
