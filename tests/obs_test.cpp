// Tests for the unified observability subsystem (src/obs): the metrics
// registry, the multi-subscriber trace hub, the exporters, and the
// end-to-end integration with a full scenario run.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "net/loopback.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/trace.hpp"
#include "replication/messages.hpp"
#include "sim/check.hpp"
#include "sim/simulator.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SameNameSharesOneCounter) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x.events");
  obs::Counter& b = reg.counter("x.events");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, DistinctNamesAreIndependent) {
  obs::MetricsRegistry reg;
  reg.counter("a").inc(5);
  reg.counter("b").inc(7);
  EXPECT_EQ(reg.counter("a").value(), 5u);
  EXPECT_EQ(reg.counter("b").value(), 7u);
  EXPECT_TRUE(reg.contains("a"));
  EXPECT_FALSE(reg.contains("c"));
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("depth");
  g.set(4.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(MetricsRegistry, HistogramBoundsFixedAtFirstRegistration) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 2.0, 4.0});
  // Second registration ignores the different bounds and reuses the cell.
  obs::Histogram& h2 = reg.histogram("lat", {100.0});
  EXPECT_EQ(&h, &h2);
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 4.0);
}

TEST(MetricsRegistry, HistogramCountsAndMean) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(MetricsRegistry, HistogramQuantile) {
  obs::Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.observe(5.0);    // all in first bucket
  EXPECT_LE(h.quantile(0.5), 10.0);
  EXPECT_GT(h.quantile(0.5), 0.0);
  obs::Histogram empty({10.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(MetricsRegistry, QuantileBeyondLastBoundClamps) {
  obs::Histogram h({10.0});
  h.observe(1e9);  // overflow
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 10.0);
}

TEST(MetricsRegistry, WriteJsonIsWellFormedAndSorted) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").inc(1);
  reg.counter("a.first").inc(2);
  reg.gauge("m.gauge").set(1.5);
  reg.histogram("h.lat", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // std::map iteration => name-sorted output.
  EXPECT_LT(json.find("\"a.first\":2"), json.find("\"z.last\":1"));
  EXPECT_NE(json.find("\"m.gauge\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"h.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistry, KindMismatchIsAnInvariantViolation) {
  obs::MetricsRegistry reg;
  reg.counter("dual");
  EXPECT_THROW(reg.gauge("dual"), InvariantViolation);
  EXPECT_THROW(reg.histogram("dual"), InvariantViolation);
  reg.histogram("h");
  EXPECT_THROW(reg.counter("h"), InvariantViolation);
}

// ---------------------------------------------------------------------------
// JSON writer determinism helpers
// ---------------------------------------------------------------------------

TEST(JsonWriter, EscapesAndNests) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("s", std::string("a\"b\\c\n"));
  w.key("arr");
  w.begin_array();
  w.element(std::uint64_t{1});
  w.element(2.5);
  w.element(true);
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\n\",\"arr\":[1,2.5,true]}");
}

TEST(JsonWriter, IntegralDoublesHaveNoFraction) {
  EXPECT_EQ(obs::json_number(3.0), "3");
  EXPECT_EQ(obs::json_number(-2.0), "-2");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
}

// ---------------------------------------------------------------------------
// TraceHub
// ---------------------------------------------------------------------------

struct CountingSink final : obs::TraceSink {
  int messages = 0;
  int spans = 0;
  int breakdowns = 0;
  void on_message(const obs::MessageEvent&) override { ++messages; }
  void on_span(const obs::SpanEvent&) override { ++spans; }
  void on_breakdown(const obs::BreakdownEvent&) override { ++breakdowns; }
};

TEST(TraceHub, MultipleSubscribersAllNotified) {
  obs::TraceHub hub;
  CountingSink a, b, c;
  EXPECT_FALSE(hub.active());
  hub.add(&a);
  hub.add(&b);
  hub.add(&c);
  EXPECT_TRUE(hub.active());
  EXPECT_EQ(hub.num_sinks(), 3u);
  hub.span(obs::SpanEvent{});
  hub.message(obs::MessageEvent{});
  hub.breakdown(obs::BreakdownEvent{});
  for (const CountingSink* s : {&a, &b, &c}) {
    EXPECT_EQ(s->messages, 1);
    EXPECT_EQ(s->spans, 1);
    EXPECT_EQ(s->breakdowns, 1);
  }
}

TEST(TraceHub, RemoveStopsDelivery) {
  obs::TraceHub hub;
  CountingSink a, b;
  hub.add(&a);
  hub.add(&b);
  hub.span(obs::SpanEvent{});
  hub.remove(&a);
  hub.span(obs::SpanEvent{});
  EXPECT_EQ(a.spans, 1);
  EXPECT_EQ(b.spans, 2);
  hub.remove(&b);
  EXPECT_FALSE(hub.active());
}

TEST(TraceHub, RemovingUnknownSinkIsHarmless) {
  obs::TraceHub hub;
  CountingSink a;
  hub.remove(&a);  // never added
  EXPECT_FALSE(hub.active());
}

// ---------------------------------------------------------------------------
// Network trace events through the hub
// ---------------------------------------------------------------------------

struct PingMsg final : net::Message {
  std::string type_name() const override { return "test.ping"; }
  std::size_t wire_size() const override { return 100; }
};

struct NullEndpoint final : net::Endpoint {
  void on_message(net::NodeId, net::MessagePtr) override {}
};

TEST(NetworkStats, SnapshotAssembledFromRegistry) {
  sim::Simulator sim(1);
  net::LoopbackTransport network(sim, std::make_unique<sim::FixedDuration>(milliseconds(1)));
  NullEndpoint a, b;
  const net::NodeId ida = network.attach(a);
  const net::NodeId idb = network.attach(b);
  network.send(ida, idb, std::make_shared<PingMsg>());
  sim.run();
  const net::TransportStats stats = network.stats();
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_EQ(stats.messages_delivered, 1u);
  EXPECT_EQ(stats.bytes_sent, 100u);
  EXPECT_EQ(network.metrics().counter("net.messages_sent").value(), 1u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(JsonLinesSink, EmitsOneValidObjectPerEvent) {
  std::ostringstream os;
  obs::JsonLinesSink sink(os);

  obs::SpanEvent span;
  span.trace = obs::TraceId{7};
  span.kind = obs::SpanKind::kExecute;
  span.at = sim::kEpoch + milliseconds(5);
  span.duration = milliseconds(2);
  span.node = net::NodeId{3};
  sink.on_span(span);

  obs::MessageEvent msg;
  msg.at = sim::kEpoch + milliseconds(6);
  msg.from = net::NodeId{1};
  msg.to = net::NodeId{2};
  msg.type_name = "repl.read";
  msg.wire_size = 40;
  msg.dropped = "loss";
  sink.on_message(msg);

  const std::string out = os.str();
  std::istringstream lines(out);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(count, 2);
  EXPECT_NE(out.find("\"kind\":\"execute\""), std::string::npos);
  EXPECT_NE(out.find("\"trace\":7"), std::string::npos);
  EXPECT_NE(out.find("\"dur_ns\":2000000"), std::string::npos);
  EXPECT_NE(out.find("\"msg\":\"repl.read\""), std::string::npos);
  EXPECT_NE(out.find("\"dropped\":\"loss\""), std::string::npos);
}

TEST(ChromeTraceSink, WritesTraceEventEnvelope) {
  obs::ChromeTraceSink sink;
  obs::SpanEvent span;
  span.trace = obs::TraceId{1};
  span.kind = obs::SpanKind::kExecute;
  span.at = sim::kEpoch + milliseconds(10);
  span.duration = milliseconds(3);
  span.node = net::NodeId{4};
  sink.on_span(span);
  obs::SpanEvent instant;
  instant.trace = obs::TraceId{1};
  instant.kind = obs::SpanKind::kIssue;
  instant.at = sim::kEpoch + milliseconds(1);
  instant.node = net::NodeId{2};
  sink.on_span(instant);

  std::ostringstream os;
  sink.write(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete event
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process metadata
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_EQ(sink.num_events(), 2u);
}

TEST(LatencyBreakdownCollector, TotalsAndSumInvariant) {
  obs::LatencyBreakdownCollector collector;
  obs::BreakdownEvent e;
  e.is_read = true;
  e.total = milliseconds(10);
  e.client_overhead = milliseconds(1);
  e.gateway = milliseconds(2);
  e.queueing = milliseconds(3);
  e.service = milliseconds(4);
  e.lazy_wait = sim::Duration::zero();
  collector.on_breakdown(e);
  e.is_read = false;
  e.total = milliseconds(20);
  e.service = milliseconds(14);
  collector.on_breakdown(e);

  const auto reads = collector.totals(true);
  EXPECT_EQ(reads.count, 1u);
  EXPECT_EQ(reads.total, milliseconds(10));
  EXPECT_EQ(reads.service, milliseconds(4));
  const auto updates = collector.totals(false);
  EXPECT_EQ(updates.count, 1u);
  EXPECT_EQ(updates.total, milliseconds(20));
  EXPECT_EQ(collector.max_sum_error(), sim::Duration::zero());

  // A fudged event shows up in the invariant check.
  e.gateway = milliseconds(5);
  collector.on_breakdown(e);
  EXPECT_EQ(collector.max_sum_error(), milliseconds(3));
}

// ---------------------------------------------------------------------------
// End-to-end: trace a full scenario
// ---------------------------------------------------------------------------

struct RecordingSink final : obs::TraceSink {
  std::map<std::uint64_t, std::set<obs::SpanKind>> kinds_by_trace;
  std::vector<obs::BreakdownEvent> breakdowns;
  int messages = 0;
  void on_message(const obs::MessageEvent&) override { ++messages; }
  void on_span(const obs::SpanEvent& e) override {
    kinds_by_trace[e.trace.value].insert(e.kind);
  }
  void on_breakdown(const obs::BreakdownEvent& e) override {
    breakdowns.push_back(e);
  }
};

TEST(ObservabilityIntegration, EveryRequestLinksItsPipelineByTraceId) {
  harness::ScenarioConfig config;
  config.seed = 11;
  config.num_primaries = 2;
  config.num_secondaries = 2;
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 2,
              .deadline = milliseconds(200),
              .min_probability = 0.9},
      .request_delay = milliseconds(200),
      .num_requests = 40,
  });
  harness::Scenario scenario(std::move(config));
  RecordingSink sink;
  obs::LatencyBreakdownCollector collector;
  scenario.observability().trace.add(&sink);
  scenario.observability().trace.add(&collector);
  auto results = scenario.run();
  scenario.observability().trace.remove(&sink);
  scenario.observability().trace.remove(&collector);

  ASSERT_EQ(results.size(), 1u);
  const auto& stats = results[0].stats;
  EXPECT_EQ(stats.reads_completed + stats.reads_abandoned, 20u);
  EXPECT_GT(sink.messages, 0);

  // One breakdown per completed request, each satisfying the exact-sum
  // invariant and linked to the full span pipeline by its TraceId.
  EXPECT_EQ(sink.breakdowns.size(),
            stats.reads_completed + stats.updates_completed);
  EXPECT_EQ(collector.max_sum_error(), sim::Duration::zero());
  for (const obs::BreakdownEvent& b : sink.breakdowns) {
    ASSERT_TRUE(b.trace.valid());
    const auto it = sink.kinds_by_trace.find(b.trace.value);
    ASSERT_NE(it, sink.kinds_by_trace.end());
    const std::set<obs::SpanKind>& kinds = it->second;
    EXPECT_TRUE(kinds.contains(obs::SpanKind::kIssue));
    EXPECT_TRUE(kinds.contains(obs::SpanKind::kSend));
    EXPECT_TRUE(kinds.contains(obs::SpanKind::kDeliver));
    EXPECT_TRUE(kinds.contains(obs::SpanKind::kExecute));
    EXPECT_TRUE(kinds.contains(obs::SpanKind::kReply));
    EXPECT_TRUE(kinds.contains(obs::SpanKind::kReceive));
    EXPECT_TRUE(kinds.contains(obs::SpanKind::kComplete));
    EXPECT_EQ(b.total, b.client_overhead + b.gateway + b.queueing + b.service +
                           b.lazy_wait);
  }
}

TEST(ObservabilityIntegration, RegistryAggregatesAcrossInstances) {
  harness::ScenarioConfig config;
  config.seed = 5;
  config.num_primaries = 2;
  config.num_secondaries = 2;
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 4,
              .deadline = milliseconds(300),
              .min_probability = 0.5},
      .request_delay = milliseconds(300),
      .num_requests = 20,
  });
  harness::Scenario scenario(std::move(config));
  auto results = scenario.run();

  obs::MetricsRegistry& reg = scenario.observability().metrics;
  // Registry-wide counters equal the sum of the per-instance views.
  std::uint64_t reads_served = 0;
  std::uint64_t updates_committed = 0;
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    reads_served += scenario.replica(i).stats().reads_served;
    updates_committed += scenario.replica(i).stats().updates_committed;
  }
  EXPECT_EQ(reg.counter("repl.reads_served").value(), reads_served);
  EXPECT_EQ(reg.counter("repl.updates_committed").value(), updates_committed);
  EXPECT_EQ(reg.counter("client.reads_issued").value(),
            results[0].stats.reads_issued);
  EXPECT_GT(reg.counter("gcs.delivered").value(), 0u);
  EXPECT_GT(reg.counter("net.messages_sent").value(), 0u);
  EXPECT_GT(reg.histogram("repl.service_ms").count(), 0u);
  EXPECT_GT(reg.histogram("client.read_response_ms").count(), 0u);

  // The network-level view matches the registry too.
  EXPECT_EQ(scenario.transport_stats().messages_sent,
            reg.counter("net.messages_sent").value());
}

TEST(ObservabilityIntegration, TraceIdDerivation) {
  const replication::RequestId id{net::NodeId{9}, 1234};
  const obs::TraceId t = replication::trace_of(id);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.value, (std::uint64_t{9} << 40) | 1234u);
  // Distinct clients and sequence numbers never collide (within 40 bits).
  EXPECT_NE(replication::trace_of({net::NodeId{9}, 1235}).value, t.value);
  EXPECT_NE(replication::trace_of({net::NodeId{10}, 1234}).value, t.value);
}

}  // namespace
}  // namespace aqueduct
