// Replica-failure handling end to end: sequencer failover (with the GSN
// barrier), lazy-publisher failover, primary/secondary crashes mid-run.
#include <gtest/gtest.h>

#include <chrono>

#include "harness/scenario.hpp"
#include "replication/objects.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

harness::ScenarioConfig config_with_clients(std::size_t requests = 120) {
  harness::ScenarioConfig config;
  config.seed = 11;
  config.num_primaries = 3;
  config.num_secondaries = 4;
  config.lazy_update_interval = seconds(2);
  for (int c = 0; c < 2; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 2,
                .deadline = milliseconds(200),
                .min_probability = 0.5},
        .request_delay = milliseconds(300),
        .num_requests = requests,
    });
  }
  return config;
}

void expect_no_conflicts(harness::Scenario& scenario) {
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    EXPECT_EQ(scenario.replica(i).stats().gsn_conflicts, 0u) << "replica " << i;
  }
}

TEST(FailureInjection, PrimaryCrashMidRun) {
  harness::Scenario scenario(config_with_clients());
  scenario.schedule_crash(2, sim::kEpoch + seconds(15));
  auto results = scenario.run();
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_abandoned, 0u);
    EXPECT_EQ(r.stats.reads_completed, 60u);
    EXPECT_EQ(r.stats.staleness_violations, 0u);
  }
  expect_no_conflicts(scenario);
  // Surviving primaries agree on the commit count.
  const auto csn = scenario.replica(1).csn();
  EXPECT_EQ(scenario.replica(3).csn(), csn);
  EXPECT_EQ(csn, 120u);  // 60 updates per client
}

TEST(FailureInjection, SecondaryCrashMidRun) {
  harness::Scenario scenario(config_with_clients());
  scenario.schedule_crash(5, sim::kEpoch + seconds(15));
  scenario.schedule_crash(6, sim::kEpoch + seconds(25));
  auto results = scenario.run();
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_abandoned, 0u);
    EXPECT_EQ(r.stats.staleness_violations, 0u);
  }
  expect_no_conflicts(scenario);
}

TEST(FailureInjection, SequencerCrashFailsOver) {
  harness::Scenario scenario(config_with_clients());
  scenario.schedule_crash(scenario.index_sequencer(), sim::kEpoch + seconds(15));
  auto results = scenario.run();
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_abandoned, 0u)
        << "reads must complete after sequencer failover";
    EXPECT_EQ(r.stats.staleness_violations, 0u);
  }
  expect_no_conflicts(scenario);
  // The next primary took over sequencing.
  EXPECT_TRUE(scenario.replica(1).is_sequencer());
  // All updates committed exactly once at every surviving primary.
  EXPECT_EQ(scenario.replica(1).csn(), scenario.replica(2).csn());
  EXPECT_EQ(scenario.replica(1).csn(), scenario.replica(3).csn());
  const auto& store = dynamic_cast<const replication::KeyValueStore&>(
      scenario.replica(1).object());
  EXPECT_EQ(store.version(), 120u);
}

TEST(FailureInjection, LazyPublisherCrashFailsOver) {
  harness::Scenario scenario(config_with_clients());
  // The lazy publisher is the last primary-group member (index 3 here:
  // sequencer + primaries 1..3).
  ASSERT_TRUE(scenario.replica(3).is_lazy_publisher() ||
              scenario.replica(3).csn() == 0);  // role set after boot
  scenario.schedule_crash(3, sim::kEpoch + seconds(15));
  auto results = scenario.run();
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_abandoned, 0u);
    EXPECT_EQ(r.stats.staleness_violations, 0u);
  }
  // Another primary took over lazy publication, so secondaries kept
  // catching up after the crash.
  bool someone_publishes = false;
  for (std::size_t i = 0; i < 3; ++i) {
    someone_publishes |= scenario.replica(i).is_lazy_publisher();
  }
  EXPECT_TRUE(someone_publishes);
  // Secondaries ended close to the primaries' commit point.
  const auto csn = scenario.replica(1).csn();
  for (std::size_t i = 4; i < scenario.num_replicas(); ++i) {
    EXPECT_GE(scenario.replica(i).csn() + 10, csn) << "secondary " << i;
  }
}

TEST(FailureInjection, CascadedCrashesStillServe) {
  auto config = config_with_clients(160);
  harness::Scenario scenario(std::move(config));
  scenario.schedule_crash(2, sim::kEpoch + seconds(10));  // a primary
  scenario.schedule_crash(4, sim::kEpoch + seconds(20));  // a secondary
  scenario.schedule_crash(0, sim::kEpoch + seconds(30));  // the sequencer
  auto results = scenario.run();
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_abandoned, 0u);
    EXPECT_EQ(r.stats.reads_completed, 80u);
  }
  expect_no_conflicts(scenario);
  EXPECT_TRUE(scenario.replica(1).is_sequencer());
}

TEST(FailureInjection, TimingFailuresRiseButServiceContinues) {
  // Even with a third of the replicas gone, the adaptive selection keeps
  // serving; timing failures may rise but reads never hang.
  auto config = config_with_clients(160);
  config.clients[0].qos.min_probability = 0.9;
  config.clients[1].qos.min_probability = 0.9;
  harness::Scenario scenario(std::move(config));
  scenario.schedule_crash(1, sim::kEpoch + seconds(12));
  scenario.schedule_crash(5, sim::kEpoch + seconds(12));
  scenario.schedule_crash(6, sim::kEpoch + seconds(12));
  auto results = scenario.run();
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.reads_completed + r.stats.reads_abandoned, 80u);
    EXPECT_EQ(r.stats.reads_abandoned, 0u);
  }
}

}  // namespace
}  // namespace aqueduct
