// Regression tests pinning specific bugs found while building this
// system. Each test documents the failure mode it guards against.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "client/handler.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

namespace aqueduct {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

struct TextMsg final : net::Message {
  explicit TextMsg(std::string t) : text(std::move(t)) {}
  std::string text;
  std::string type_name() const override { return "test.text"; }
};

// Bug 1: a multicast sent in the new view could reach a fresh joiner
// *before* its InstallMsg (network reordering). The joiner buffered it,
// but install_view never drained the buffer after setting the delivery
// baseline, so the message — and every later one — stayed stuck forever.
// Symptom: clients never received the sequencer's GroupInfo and the whole
// workload hung.
TEST(Regression, JoinerDrainsMessagesThatRacedItsInstall) {
  // A slow link from the coordinator to the joiner makes the install
  // arrive *after* data multicast at the same time.
  sim::Simulator sim(1);
  net::LoopbackTransport network(sim,
                       std::make_unique<sim::FixedDuration>(milliseconds(1)));
  gcs::Directory directory;
  const gcs::GroupId group{5};

  gcs::Endpoint coordinator(sim, network, directory);
  gcs::Endpoint joiner(sim, network, directory);
  std::vector<std::string> joiner_got;
  auto& cm = coordinator.member(group);
  auto& jm = joiner.member(group);
  jm.set_on_deliver([&](net::NodeId, const net::MessagePtr& msg) {
    if (auto t = net::message_cast<TextMsg>(msg)) joiner_got.push_back(t->text);
  });
  cm.join();
  sim.run_for(milliseconds(10));
  // Make coordinator->joiner slow so the install (sent at flush end)
  // loses the race against the multicast sent right after.
  network.set_link_latency(coordinator.id(), joiner.id(),
                           std::make_shared<sim::FixedDuration>(milliseconds(30)));
  jm.set_on_view([&](const gcs::View&) {
    // As soon as the coordinator installs the 2-member view it multicasts;
    // with the asymmetric delay the joiner sees data before install.
  });
  cm.set_on_view([&](const gcs::View& v) {
    if (v.size() == 2) cm.multicast(std::make_shared<TextMsg>("raced"));
  });
  jm.join();
  sim.run_for(seconds(3));
  ASSERT_EQ(joiner_got.size(), 1u);
  EXPECT_EQ(joiner_got[0], "raced");
}

struct ReplicaFixture {
  explicit ReplicaFixture(std::uint64_t seed = 1)
      : sim(seed),
        network(sim, std::make_unique<sim::NormalDuration>(
                         milliseconds(1), std::chrono::microseconds(300))) {}

  replication::ReplicaServer& add_replica(bool primary) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    replication::ReplicaConfig config;
    config.service_time = std::make_shared<sim::FixedDuration>(milliseconds(10));
    config.lazy_update_interval = seconds(1);
    replicas.push_back(std::make_unique<replication::ReplicaServer>(
        sim, *endpoint, groups, primary,
        std::make_unique<replication::VersionedRegister>(), std::move(config)));
    endpoints.push_back(std::move(endpoint));
    return *replicas.back();
  }

  client::ClientHandler& add_client(client::ClientConfig config = {}) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, network, directory);
    clients.push_back(std::make_unique<client::ClientHandler>(
        sim, *endpoint, groups, std::move(config)));
    endpoints.push_back(std::move(endpoint));
    clients.back()->start();
    return *clients.back();
  }

  void boot() {
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      sim.after(milliseconds(10 * (i + 1)), [this, i] { replicas[i]->start(); });
    }
    sim.run_for(seconds(2));
  }

  sim::Simulator sim;
  net::LoopbackTransport network;
  gcs::Directory directory;
  replication::ServiceGroups groups = replication::ServiceGroups::for_service(1);
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas;
  std::vector<std::unique_ptr<client::ClientHandler>> clients;
};

// Bug 2: an update whose GsnAssign broadcast beat the payload to a
// primary was misclassified as a duplicate (the handler keyed the dup
// check on the GSN map too), so the payload was never stored and the
// commit pipeline stalled forever at that GSN. Symptom: one primary stuck
// at csn=0 while others progressed.
TEST(Regression, GsnBeforePayloadStillCommits) {
  ReplicaFixture f;
  f.add_replica(true);  // sequencer
  auto& primary = f.add_replica(true);
  f.boot();
  auto& client = f.add_client();
  f.sim.run_for(seconds(1));
  // The sequencer is co-located with the client's update path; make the
  // client->primary link slow so the GsnAssign (client->sequencer->
  // primary, two fast hops) arrives before the payload (one slow hop).
  f.network.set_link_latency(client.id(), primary.id(),
                             std::make_shared<sim::FixedDuration>(milliseconds(20)));
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    client.update(std::make_shared<replication::RegisterBump>(),
                  [&](const client::UpdateOutcome&) { ++done; });
  }
  f.sim.run_for(seconds(5));
  EXPECT_EQ(done, 5);
  EXPECT_EQ(primary.csn(), 5u);
}

// Bug 3: after a sequencer crash the new sequencer restarted the
// GroupInfo epoch at 1; clients treated its role maps as stale and kept
// sending to the dead sequencer until every read was abandoned.
TEST(Regression, GroupInfoEpochSurvivesSequencerFailover) {
  ReplicaFixture f;
  f.add_replica(true);  // sequencer
  f.add_replica(true);
  f.add_replica(true);
  f.boot();
  auto& client = f.add_client();
  f.sim.run_for(seconds(1));
  ASSERT_TRUE(client.ready());
  const auto old_sequencer = client.repository().roles().sequencer;

  f.replicas[0]->crash();
  f.sim.run_for(seconds(8));  // detection + failover + republish

  ASSERT_TRUE(client.ready());
  EXPECT_NE(client.repository().roles().sequencer, old_sequencer)
      << "client must learn the new sequencer despite the epoch reset";
  EXPECT_EQ(client.repository().roles().sequencer, f.replicas[1]->id());

  // And requests keep completing.
  int replies = 0;
  client.read(std::make_shared<replication::RegisterRead>(),
              {.staleness_threshold = 5,
               .deadline = seconds(1),
               .min_probability = 0.5},
              [&](const client::ReadOutcome&) { ++replies; });
  f.sim.run_for(seconds(3));
  EXPECT_EQ(replies, 1);
}

// Bug 4: view-change control messages (propose/flush/install) were sent
// over the raw lossy network; a dropped install left one member in the
// old view forever and the flush-timeout fallback wrongly suspected live
// members, splitting the group. Control traffic now rides the reliable
// p2p channels. Under sustained loss, membership changes must still
// complete consistently.
TEST(Regression, ViewChangeCompletesUnderHeavyLoss) {
  sim::Simulator sim(11);
  net::LoopbackTransport network(sim, std::make_unique<sim::NormalDuration>(
                                milliseconds(2), milliseconds(1)));
  gcs::Directory directory;
  const gcs::GroupId group{9};
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  for (int i = 0; i < 4; ++i) {
    endpoints.push_back(std::make_unique<gcs::Endpoint>(sim, network, directory));
  }
  for (int i = 0; i < 4; ++i) {
    sim.after(milliseconds(5), [&, i] { endpoints[i]->member(group).join(); });
    sim.run_for(milliseconds(50));
  }
  sim.run_for(seconds(2));

  network.set_loss_probability(0.3);
  endpoints[2]->crash();
  sim.run_for(seconds(25));  // detection + (retried) flush under loss
  network.set_loss_probability(0.0);
  sim.run_for(seconds(5));

  const auto& reference = endpoints[0]->member(group).view();
  EXPECT_EQ(reference.size(), 3u);
  for (const int i : {0, 1, 3}) {
    auto& member = endpoints[static_cast<std::size_t>(i)]->member(group);
    EXPECT_TRUE(member.joined()) << "member " << i;
    EXPECT_EQ(member.view().id, reference.id) << "member " << i;
    EXPECT_EQ(member.view().members, reference.members) << "member " << i;
  }
}

}  // namespace
}  // namespace aqueduct
