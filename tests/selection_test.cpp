#include "core/selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "sim/random.hpp"

namespace aqueduct::core {
namespace {

using std::chrono::milliseconds;

QoSSpec qos(double pc, int deadline_ms = 140, Staleness a = 2) {
  return {.staleness_threshold = a,
          .deadline = milliseconds(deadline_ms),
          .min_probability = pc};
}

CandidateReplica replica(std::uint32_t id, bool primary, double immed,
                         double delayed, int ert_ms) {
  return {.id = net::NodeId{id},
          .is_primary = primary,
          .immediate_cdf = immed,
          .deferred_cdf = delayed,
          .ert = milliseconds(ert_ms)};
}

/// Drives a selector through the SelectionContext API.
SelectionResult run(ReplicaSelector& selector,
                    std::vector<CandidateReplica> candidates,
                    double stale_factor, const QoSSpec& spec, sim::Rng& rng) {
  SelectionContext ctx;
  ctx.candidates = std::move(candidates);
  ctx.stale_factor = stale_factor;
  ctx.qos = spec;
  ctx.rng = &rng;
  return selector.select(ctx);
}

/// Reference computation of P_K(d) (Eq. 1–3) over a chosen subset.
double pk(const std::vector<CandidateReplica>& chosen, double stale_factor) {
  double prim = 1.0;
  double sec_immed = 1.0;
  double sec_delayed = 1.0;
  for (const auto& r : chosen) {
    if (r.is_primary) {
      prim *= (1.0 - r.immediate_cdf);
    } else {
      sec_immed *= (1.0 - r.immediate_cdf);
      sec_delayed *= (1.0 - r.deferred_cdf);
    }
  }
  const double sec = sec_immed * stale_factor + sec_delayed * (1.0 - stale_factor);
  return 1.0 - prim * sec;
}

TEST(ProbabilisticSelector, EmptyCandidates) {
  ProbabilisticSelector selector;
  sim::Rng rng(1);
  const auto result = run(selector, {}, 1.0, qos(0.9), rng);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_FALSE(result.satisfied);
}

TEST(ProbabilisticSelector, SingleCandidateIsNeverSatisfied) {
  // With the single-failure-tolerance rule, one replica alone can never
  // satisfy the condition (its own CDF is excluded).
  ProbabilisticSelector selector;
  sim::Rng rng(1);
  const auto result =
      run(selector, {replica(1, true, 0.99, 0, 100)}, 1.0, qos(0.5), rng);
  EXPECT_EQ(result.selected.size(), 1u);
  EXPECT_FALSE(result.satisfied);
}

TEST(ProbabilisticSelector, StopsOnceConditionMet) {
  ProbabilisticSelector selector;
  sim::Rng rng(1);
  std::vector<CandidateReplica> candidates;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    candidates.push_back(replica(i, true, 0.95, 0, 100 * static_cast<int>(i)));
  }
  const auto result = run(selector, candidates, 1.0, qos(0.9), rng);
  EXPECT_TRUE(result.satisfied);
  // The first visited replica is held out (failure allowance); the second
  // contributes 1 - (1 - 0.95) = 0.95 >= 0.9, so |K| = 2 suffices.
  EXPECT_EQ(result.selected.size(), 2u);
  EXPECT_GE(result.predicted_probability, 0.9);
}

TEST(ProbabilisticSelector, ReturnsAllWhenUnsatisfiable) {
  ProbabilisticSelector selector;
  sim::Rng rng(1);
  std::vector<CandidateReplica> candidates;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    candidates.push_back(replica(i, true, 0.1, 0, 100));
  }
  const auto result = run(selector, candidates, 1.0, qos(0.99), rng);
  EXPECT_FALSE(result.satisfied);
  EXPECT_EQ(result.selected.size(), 5u);  // K = every replica
}

TEST(ProbabilisticSelector, VisitsLeastRecentlyUsedFirst) {
  ProbabilisticSelector selector;
  sim::Rng rng(1);
  // Identical CDFs; ert decides the visit order.
  const auto result = run(selector, 
      {replica(1, true, 0.9, 0, 10), replica(2, true, 0.9, 0, 500),
       replica(3, true, 0.9, 0, 200)},
      1.0, qos(0.5), rng);
  ASSERT_GE(result.selected.size(), 2u);
  // Replica 2 (largest ert) is visited first.
  EXPECT_EQ(result.selected[0], net::NodeId{2});
  EXPECT_EQ(result.selected[1], net::NodeId{3});
}

TEST(ProbabilisticSelector, GreedyOrderAblationSortsByCdf) {
  ProbabilisticSelector selector(ProbabilisticOptions{.sort_by_ert = false});
  sim::Rng rng(1);
  const auto result = run(selector, 
      {replica(1, true, 0.2, 0, 10), replica(2, true, 0.99, 0, 5),
       replica(3, true, 0.5, 0, 1000)},
      1.0, qos(0.4), rng);
  ASSERT_GE(result.selected.size(), 2u);
  EXPECT_EQ(result.selected[0], net::NodeId{2});  // best CDF first
}

TEST(ProbabilisticSelector, StricterProbabilityNeedsMoreReplicas) {
  ProbabilisticSelector selector;
  sim::Rng rng(1);
  std::vector<CandidateReplica> candidates;
  for (std::uint32_t i = 1; i <= 10; ++i) {
    candidates.push_back(replica(i, i <= 4, 0.6, 0.05, 100 * static_cast<int>(i)));
  }
  const auto loose = run(selector, candidates, 0.8, qos(0.5), rng);
  const auto strict = run(selector, candidates, 0.8, qos(0.95), rng);
  EXPECT_LE(loose.selected.size(), strict.selected.size());
}

TEST(ProbabilisticSelector, LowerStaleFactorNeedsMoreReplicas) {
  ProbabilisticSelector selector;
  sim::Rng rng(1);
  std::vector<CandidateReplica> candidates;
  for (std::uint32_t i = 1; i <= 10; ++i) {
    // Mostly secondaries: the stale factor matters.
    candidates.push_back(replica(i, i <= 2, 0.7, 0.01, 100 * static_cast<int>(i)));
  }
  const auto fresh = run(selector, candidates, 1.0, qos(0.9), rng);
  const auto stale = run(selector, candidates, 0.3, qos(0.9), rng);
  EXPECT_LE(fresh.selected.size(), stale.selected.size());
}

TEST(ProbabilisticSelector, PredictionMatchesReferenceWithExclusion) {
  ProbabilisticSelector selector;
  sim::Rng rng(1);
  const std::vector<CandidateReplica> candidates = {
      replica(1, true, 0.8, 0, 300), replica(2, false, 0.6, 0.1, 200),
      replica(3, true, 0.9, 0, 100)};
  const double stale_factor = 0.7;
  const auto result = run(selector, candidates, stale_factor, qos(0.99), rng);
  // Unsatisfiable → all selected; the prediction must equal the reference
  // P_K(d) over the selected set minus the member with the highest
  // immediate CDF (replica 3).
  ASSERT_EQ(result.selected.size(), 3u);
  const std::vector<CandidateReplica> included = {candidates[0], candidates[1]};
  EXPECT_NEAR(result.predicted_probability, pk(included, stale_factor), 1e-12);
}

TEST(ProbabilisticSelector, NoFailureAllowanceCountsEveryMember) {
  ProbabilisticSelector selector(
      ProbabilisticOptions{.tolerate_one_failure = false});
  sim::Rng rng(1);
  const auto result =
      run(selector, {replica(1, true, 0.95, 0, 100)}, 1.0, qos(0.9), rng);
  // Without the exclusion a single 0.95 replica satisfies Pc = 0.9.
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.selected.size(), 1u);
}

// --- single-failure tolerance property (the paper's proposal) --------------

class FailureToleranceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureToleranceProperty, SurvivesLossOfBestMember) {
  sim::Rng rng(GetParam());
  std::vector<CandidateReplica> candidates;
  const std::size_t n = 4 + rng.uniform_int(8);
  for (std::uint32_t i = 1; i <= n; ++i) {
    candidates.push_back(replica(i, rng.bernoulli(0.4), rng.uniform(),
                                 rng.uniform() * 0.3,
                                 static_cast<int>(rng.uniform_int(2000))));
  }
  const double stale_factor = rng.uniform();
  const QoSSpec spec = qos(0.5 + rng.uniform() * 0.45);

  ProbabilisticSelector selector;
  sim::Rng srng(1);
  const auto result = run(selector, candidates, stale_factor, spec, srng);
  if (!result.satisfied) return;  // nothing promised

  // Remove the selected member with the highest immediate CDF; the
  // remaining set must still meet Pc(d).
  std::vector<CandidateReplica> chosen;
  for (const auto& c : candidates) {
    if (std::find(result.selected.begin(), result.selected.end(), c.id) !=
        result.selected.end()) {
      chosen.push_back(c);
    }
  }
  auto best = std::max_element(chosen.begin(), chosen.end(),
                               [](const auto& a, const auto& b) {
                                 return a.immediate_cdf < b.immediate_cdf;
                               });
  chosen.erase(best);
  EXPECT_GE(pk(chosen, stale_factor) + 1e-9, spec.min_probability)
      << "selected set does not tolerate losing its best member";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureToleranceProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// --- pruned search vs the exhaustive oracle --------------------------------

class PrunedSearchOracleProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrunedSearchOracleProperty, BitIdenticalToExhaustiveScan) {
  // kPruned is an evaluation strategy, not a policy: across random pools
  // (with deliberately duplicated erts and CDFs to stress tie-breaking),
  // every option combination, satisfiable and unsatisfiable specs alike,
  // it must return the exact selected sequence and the bitwise-equal
  // predicted probability of the literal enumerate-and-grow scan.
  sim::Rng rng(GetParam() * 131 + 7);
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(trial % 3 == 0 ? 200 : 24);
    std::vector<CandidateReplica> pool;
    for (std::uint32_t i = 0; i < n; ++i) {
      // Quantized draws so distinct replicas often share a cdf or an ert.
      const double immed = rng.uniform_int(12) / 12.0;
      pool.push_back(replica(i + 2, rng.bernoulli(0.5), immed,
                             rng.uniform_int(8) / 8.0 * 0.4,
                             static_cast<int>(100 * rng.uniform_int(9))));
    }
    const double stale_factor = rng.uniform();
    const QoSSpec spec =
        qos(std::clamp(rng.uniform() * 1.3, 0.05, 0.999),  // often unsatisfiable
            100 + static_cast<int>(rng.uniform_int(200)));

    for (const bool tolerate : {true, false}) {
      for (const bool by_ert : {true, false}) {
        ProbabilisticSelector pruned(ProbabilisticOptions{
            .tolerate_one_failure = tolerate, .sort_by_ert = by_ert});
        ProbabilisticSelector oracle(ProbabilisticOptions{
            .tolerate_one_failure = tolerate,
            .sort_by_ert = by_ert,
            .subset_search =
                ProbabilisticOptions::SubsetSearch::kExhaustiveScan});
        sim::Rng r1(1), r2(1);
        const auto got = run(pruned, pool, stale_factor, spec, r1);
        const auto want = run(oracle, pool, stale_factor, spec, r2);
        ASSERT_EQ(got.selected, want.selected)
            << "seed " << GetParam() << " trial " << trial << " n " << n
            << " tolerate " << tolerate << " by_ert " << by_ert;
        EXPECT_EQ(got.satisfied, want.satisfied);
        // Bitwise, not approximate: same include order, same arithmetic.
        EXPECT_EQ(got.predicted_probability, want.predicted_probability);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunedSearchOracleProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- baselines ---------------------------------------------------------------

TEST(SelectAllSelector, TakesEverything) {
  SelectAllSelector selector;
  sim::Rng rng(1);
  const auto result = run(selector, 
      {replica(1, true, 0.5, 0, 1), replica(2, false, 0.5, 0.2, 2)}, 0.8,
      qos(0.9), rng);
  EXPECT_EQ(result.selected.size(), 2u);
}

TEST(SelectOneSelector, LruPicksLargestErt) {
  SelectOneSelector selector(SelectOneSelector::Policy::kLeastRecentlyUsed);
  sim::Rng rng(1);
  const auto result = run(selector, 
      {replica(1, true, 0.5, 0, 10), replica(2, true, 0.5, 0, 99),
       replica(3, true, 0.5, 0, 50)},
      1.0, qos(0.5), rng);
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0], net::NodeId{2});
}

TEST(SelectOneSelector, RandomPicksFromAll) {
  SelectOneSelector selector(SelectOneSelector::Policy::kRandom);
  sim::Rng rng(7);
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 300; ++i) {
    const auto result = run(selector, 
        {replica(1, true, 0.5, 0, 1), replica(2, true, 0.5, 0, 2),
         replica(3, true, 0.5, 0, 3)},
        1.0, qos(0.5), rng);
    ++hits[result.selected[0].value() - 1];
  }
  for (const int h : hits) EXPECT_GT(h, 50);  // roughly uniform
}

TEST(FixedKSelector, TakesTopKByCdf) {
  FixedKSelector selector(2);
  sim::Rng rng(1);
  const auto result = run(selector, 
      {replica(1, true, 0.3, 0, 1), replica(2, true, 0.9, 0, 2),
       replica(3, true, 0.6, 0, 3)},
      1.0, qos(0.5), rng);
  ASSERT_EQ(result.selected.size(), 2u);
  EXPECT_EQ(result.selected[0], net::NodeId{2});
  EXPECT_EQ(result.selected[1], net::NodeId{3});
}

TEST(FixedKSelector, CapsAtAvailable) {
  FixedKSelector selector(10);
  sim::Rng rng(1);
  const auto result =
      run(selector, {replica(1, true, 0.3, 0, 1)}, 1.0, qos(0.5), rng);
  EXPECT_EQ(result.selected.size(), 1u);
}

TEST(SelectorNames, AreDescriptive) {
  EXPECT_EQ(ProbabilisticSelector{}.name(), "probabilistic");
  EXPECT_EQ(ProbabilisticSelector(ProbabilisticOptions{.tolerate_one_failure = false})
                .name(),
            "probabilistic/no-failure-allowance");
  EXPECT_EQ(ProbabilisticSelector(
                ProbabilisticOptions{
                    .subset_search =
                        ProbabilisticOptions::SubsetSearch::kExhaustiveScan})
                .name(),
            "probabilistic/exhaustive-scan");
  EXPECT_EQ(SelectAllSelector{}.name(), "select-all");
  EXPECT_EQ(FixedKSelector{3}.name(), "fixed-k/3");
}

}  // namespace
}  // namespace aqueduct::core
