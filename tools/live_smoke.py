#!/usr/bin/env python3
"""Multi-process deployment smoke test.

Launches a full replicated service as six separate OS processes talking
over localhost UDP — sequencer, two primaries, two secondaries, and one
workload client — waits for all of them to exit, and asserts:

  * every process exited 0 (each one self-checks locally: the client
    requires >0 completed requests, every primary requires zero GSN
    conflicts and store version == CSN);
  * the client completed at least one request end to end over the wire;
  * no process counted a single wire-codec decode error;
  * committed-prefix agreement ACROSS processes: every primary's CSN is
    within --csn-slack of the maximum, and the maximum is > 0 (the
    in-flight tail a process may not have committed when the duration cap
    fired).

Per-process reports are merged into one BENCH_live_multiproc.json. Like
BENCH_live.json it is wall-clock-dependent and has no baseline — it is an
artifact, not a bench-trend gate.

Usage: tools/live_smoke.py [--bin build/examples/live_cli]
                           [--duration 10] [--requests 15]
                           [--base-port 7421] [--out BENCH_live_multiproc.json]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--bin", default="build/examples/live_cli")
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--requests", type=int, default=15)
    parser.add_argument("--base-port", type=int, default=7421)
    parser.add_argument("--csn-slack", type=int, default=2)
    parser.add_argument("--out", default="BENCH_live_multiproc.json")
    args = parser.parse_args()

    binary = pathlib.Path(args.bin).resolve()
    if not binary.exists():
        print(f"live_smoke: binary not found: {binary}", file=sys.stderr)
        return 2

    names = ["sequencer", "primary1", "primary2",
             "secondary1", "secondary2", "client1"]
    roles = {"sequencer": "sequencer", "primary1": "primary",
             "primary2": "primary", "secondary1": "secondary",
             "secondary2": "secondary", "client1": "client"}
    addr = {name: f"127.0.0.1:{args.base_port + i}"
            for i, name in enumerate(names)}
    peer_flags = []
    for name in names:
        peer_flags += ["--peer", f"{name}={addr[name]}"]

    failures = []
    reports = {}
    with tempfile.TemporaryDirectory(prefix="live_smoke_") as tmp:
        tmpdir = pathlib.Path(tmp)
        procs = {}
        for name in names:
            cmd = [str(binary), "--role", roles[name],
                   "--listen", addr[name],
                   "--duration", str(args.duration),
                   "--requests", str(args.requests),
                   "--json-out", str(tmpdir / f"{name}.json")]
            cmd += peer_flags
            log = open(tmpdir / f"{name}.log", "w")
            procs[name] = (subprocess.Popen(cmd, stdout=log, stderr=log), log)

        # The client exits as soon as its workload completes; servers run to
        # the duration cap. Give everyone the cap plus generous slack.
        deadline = args.duration + 30.0
        for name, (proc, log) in procs.items():
            try:
                code = proc.wait(timeout=deadline)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                code = None
            log.close()
            log_text = (tmpdir / f"{name}.log").read_text()
            if code != 0:
                status = "timeout" if code is None else f"exit {code}"
                failures.append(f"{name}: {status}\n--- {name} log ---\n"
                                f"{log_text}")
                continue
            report_path = tmpdir / f"{name}.json"
            if not report_path.exists():
                failures.append(f"{name}: wrote no report")
                continue
            reports[name] = json.loads(report_path.read_text())

    # Cross-process assertions over the merged reports.
    if not failures:
        client = reports["client1"]
        if client.get("requests_completed", 0) <= 0:
            failures.append("client1 completed no requests over the wire")
        for name, report in reports.items():
            if report.get("decode_errors", 0) != 0:
                failures.append(
                    f"{name}: {report['decode_errors']} wire decode errors")
        primaries = [n for n in names
                     if roles[n] in ("sequencer", "primary", "publisher")]
        csns = {n: reports[n].get("csn", 0) for n in primaries
                if not reports[n].get("recovering", False)}
        max_csn = max(csns.values(), default=0)
        if max_csn <= 0:
            failures.append("no primary committed anything")
        for name, csn in csns.items():
            if csn + args.csn_slack < max_csn:
                failures.append(
                    f"committed-prefix divergence: {name} csn={csn}, "
                    f"max={max_csn} (slack {args.csn_slack})")

    merged = {
        "bench": "live_multiproc",
        "processes": len(names),
        "ok": not failures,
        "failures": failures,
        "reports": reports,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")

    if failures:
        print("live_smoke: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    csn_list = ", ".join(f"{n}={reports[n]['csn']}" for n in sorted(csns))
    print(f"live_smoke: OK — {len(names)} processes, client completed "
          f"{reports['client1']['requests_completed']} requests, "
          f"csn agreement [{csn_list}], 0 decode errors; wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
