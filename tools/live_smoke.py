#!/usr/bin/env python3
"""Multi-process deployment smoke test.

Launches a full replicated service as six separate OS processes talking
over localhost UDP — sequencer, two primaries, two secondaries, and one
workload client — waits for all of them to exit, and asserts:

  * every process exited 0 (each one self-checks locally: the client
    requires >0 completed requests, every primary requires zero GSN
    conflicts and store version == CSN);
  * the client completed at least one request end to end over the wire;
  * no process counted a single wire-codec decode error;
  * committed-prefix agreement ACROSS processes: every primary's CSN is
    within --csn-slack of the maximum, and the maximum is > 0 (the
    in-flight tail a process may not have committed when the duration cap
    fired).

With --chaos every process additionally wraps its UDP socket in the chaos
decorator (live_cli --chaos-* flags): modest loss, duplication, reordering,
and extra delay on every outbound message. The same assertions must then
hold under gray failure, plus:

  * the cluster actually injected faults (the summed chaos counters across
    all reports are nonzero) — a silently disabled chaos layer fails the
    smoke test rather than vacuously passing it.

Per-process reports are merged into one BENCH_live_multiproc.json. Like
BENCH_live.json it is wall-clock-dependent and has no baseline — it is an
artifact, not a bench-trend gate.

Usage: tools/live_smoke.py [--bin build/examples/live_cli]
                           [--duration 10] [--requests 15]
                           [--base-port 7421] [--out BENCH_live_multiproc.json]
                           [--chaos]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--bin", default="build/examples/live_cli")
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--requests", type=int, default=15)
    parser.add_argument("--base-port", type=int, default=7421)
    parser.add_argument("--csn-slack", type=int, default=None,
                        help="allowed CSN gap below the max (default 2, "
                             "or 4 under --chaos: degraded links leave a "
                             "longer in-flight tail at the duration cap)")
    parser.add_argument("--out", default="BENCH_live_multiproc.json")
    parser.add_argument("--chaos", action="store_true",
                        help="inject gray failures (loss, duplication, "
                             "reordering, delay) on every process's "
                             "outbound UDP path")
    args = parser.parse_args()
    if args.csn_slack is None:
        args.csn_slack = 4 if args.chaos else 2

    binary = pathlib.Path(args.bin).resolve()
    if not binary.exists():
        print(f"live_smoke: binary not found: {binary}", file=sys.stderr)
        return 2

    names = ["sequencer", "primary1", "primary2",
             "secondary1", "secondary2", "client1"]
    roles = {"sequencer": "sequencer", "primary1": "primary",
             "primary2": "primary", "secondary1": "secondary",
             "secondary2": "secondary", "client1": "client"}
    addr = {name: f"127.0.0.1:{args.base_port + i}"
            for i, name in enumerate(names)}
    peer_flags = []
    for name in names:
        peer_flags += ["--peer", f"{name}={addr[name]}"]
    chaos_flags = []
    if args.chaos:
        # Modest gray failure on every outbound path: enough that the chaos
        # counters are clearly nonzero over a ~10 s run, mild enough that
        # the gcs retransmit/flush machinery keeps the cluster live.
        chaos_flags = ["--chaos-loss", "0.03", "--chaos-duplicate", "0.08",
                       "--chaos-reorder", "0.12", "--chaos-delay-ms", "2"]

    failures = []
    reports = {}
    with tempfile.TemporaryDirectory(prefix="live_smoke_") as tmp:
        tmpdir = pathlib.Path(tmp)
        procs = {}
        for name in names:
            cmd = [str(binary), "--role", roles[name],
                   "--listen", addr[name],
                   "--duration", str(args.duration),
                   "--requests", str(args.requests),
                   "--json-out", str(tmpdir / f"{name}.json")]
            cmd += peer_flags + chaos_flags
            log = open(tmpdir / f"{name}.log", "w")
            procs[name] = (subprocess.Popen(cmd, stdout=log, stderr=log), log)

        # The client exits as soon as its workload completes; servers run to
        # the duration cap. Give everyone the cap plus generous slack.
        deadline = args.duration + 30.0
        for name, (proc, log) in procs.items():
            try:
                code = proc.wait(timeout=deadline)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                code = None
            log.close()
            log_text = (tmpdir / f"{name}.log").read_text()
            if code != 0:
                status = "timeout" if code is None else f"exit {code}"
                failures.append(f"{name}: {status}\n--- {name} log ---\n"
                                f"{log_text}")
                continue
            report_path = tmpdir / f"{name}.json"
            if not report_path.exists():
                failures.append(f"{name}: wrote no report")
                continue
            reports[name] = json.loads(report_path.read_text())

    # Cross-process assertions over the merged reports.
    if not failures:
        client = reports["client1"]
        if client.get("requests_completed", 0) <= 0:
            failures.append("client1 completed no requests over the wire")
        for name, report in reports.items():
            if report.get("decode_errors", 0) != 0:
                failures.append(
                    f"{name}: {report['decode_errors']} wire decode errors")
        injected = sum(report.get(key, 0)
                       for report in reports.values()
                       for key in ("messages_dropped_loss",
                                   "messages_duplicated",
                                   "messages_reordered",
                                   "messages_delayed"))
        if args.chaos and injected == 0:
            failures.append("--chaos was requested but no process injected "
                            "a single fault (chaos layer inactive?)")
        primaries = [n for n in names
                     if roles[n] in ("sequencer", "primary", "publisher")]
        csns = {n: reports[n].get("csn", 0) for n in primaries
                if not reports[n].get("recovering", False)}
        max_csn = max(csns.values(), default=0)
        if max_csn <= 0:
            failures.append("no primary committed anything")
        for name, csn in csns.items():
            if csn + args.csn_slack < max_csn:
                failures.append(
                    f"committed-prefix divergence: {name} csn={csn}, "
                    f"max={max_csn} (slack {args.csn_slack})")

    merged = {
        "bench": "live_multiproc",
        "processes": len(names),
        "chaos": args.chaos,
        "ok": not failures,
        "failures": failures,
        "reports": reports,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")

    if failures:
        print("live_smoke: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    csn_list = ", ".join(f"{n}={reports[n]['csn']}" for n in sorted(csns))
    chaos_note = f", {injected} faults injected" if args.chaos else ""
    print(f"live_smoke: OK — {len(names)} processes, client completed "
          f"{reports['client1']['requests_completed']} requests, "
          f"csn agreement [{csn_list}], 0 decode errors{chaos_note}; "
          f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
