#!/usr/bin/env python3
"""Layering lint: the protocol stack must not name concrete infrastructure.

Three rules, same motivation — keep the protocol stack substitutable:

1. Executors. Everything in src/{net,gcs,replication,client,fault} (and
   src/core, which is executor-free entirely) is written against
   runtime::Executor, so the same code runs under the discrete-event
   simulator and the real-time loop. Including sim/simulator.hpp — or the
   runtime headers that name the concrete implementations — from those
   layers would silently re-couple the stack to one runtime.

2. Telemetry exporters. Protocol layers may depend on the obs *interfaces*
   (obs/metrics.hpp, obs/trace.hpp, obs/snapshot.hpp) to record what
   happened, but never on the concrete sinks/exporters (obs/sinks.hpp,
   obs/export.hpp): the choice of export format (JSONL, Prometheus text,
   Chrome trace) belongs to composition roots, and a protocol file naming
   a sink could smuggle I/O into the deterministic hot path.

3. Transports. Everything above src/net — including src/harness, which
   must stay backend-agnostic so the same Scenario can one day run over
   sockets — is written against net::Transport (net/transport.hpp).
   Including net/loopback.hpp, net/udp_transport.hpp, or net/chaos.hpp
   from those layers would hard-wire the stack to one backend (or one
   fault-injection implementation); concrete transports are constructed
   only in composition roots (examples, tests, benches) or through the
   make_loopback_transport() / make_chaos_transport() factories.

Composition roots (src/runner, tests, benches, examples) are allowed to
name all of these; that is where executors, exporters, and transports are
built. src/harness is a composition root for executors and exporters but
not for transports (rule 3).

Exits non-zero listing every offending include.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Layers that must stay runtime- and exporter-agnostic.
PROTOCOL_DIRS = ["src/net", "src/gcs", "src/replication", "src/client",
                 "src/fault", "src/core", "src/shard"]

# Headers naming a concrete executor.
FORBIDDEN_EXECUTORS = [
    "sim/simulator.hpp",
    "runtime/sim_executor.hpp",
    "runtime/realtime_executor.hpp",
]

# Headers naming a concrete telemetry exporter.
FORBIDDEN_EXPORTERS = [
    "obs/sinks.hpp",
    "obs/export.hpp",
]

FORBIDDEN = {h: "concrete executor" for h in FORBIDDEN_EXECUTORS}
FORBIDDEN.update({h: "concrete telemetry exporter"
                  for h in FORBIDDEN_EXPORTERS})

# Layers that must stay transport-agnostic: everything above src/net,
# including the harness (rule 3). src/net itself implements the backends.
TRANSPORT_AGNOSTIC_DIRS = ["src/gcs", "src/replication", "src/client",
                           "src/fault", "src/core", "src/shard",
                           "src/harness"]

# Headers naming a concrete transport backend. The chaos decorator counts:
# protocol layers and fault schedules reach the gray-failure knobs through
# net::FaultInjection on a transport built via make_chaos_transport(), so
# naming ChaosTransport above src/net would re-couple them to one
# implementation of that surface.
FORBIDDEN_TRANSPORTS = {
    "net/loopback.hpp": "concrete transport backend",
    "net/udp_transport.hpp": "concrete transport backend",
    "net/chaos.hpp": "concrete transport decorator",
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^">]+)[">]')


def scan(dirs, forbidden, what):
    violations = []
    for layer in dirs:
        for path in sorted((REPO / layer).rglob("*")):
            if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
                continue
            for lineno, line in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), start=1):
                match = INCLUDE_RE.match(line)
                if match and match.group(1) in forbidden:
                    violations.append(
                        f"{path.relative_to(REPO)}:{lineno}: "
                        f"{what} includes {match.group(1)} "
                        f"({forbidden[match.group(1)]})")
    return violations


def main() -> int:
    violations = scan(PROTOCOL_DIRS, FORBIDDEN, "protocol layer")
    violations += scan(TRANSPORT_AGNOSTIC_DIRS, FORBIDDEN_TRANSPORTS,
                       "transport-agnostic layer")
    if violations:
        print("layering violations (protocol code must depend only on "
              "runtime/executor.hpp, net/transport.hpp, and the obs "
              "interfaces):", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print(f"layering OK: {len(PROTOCOL_DIRS)} protocol layers depend only "
          "on the Executor interface and obs interfaces; "
          f"{len(TRANSPORT_AGNOSTIC_DIRS)} layers name only net::Transport")
    return 0


if __name__ == "__main__":
    sys.exit(main())
