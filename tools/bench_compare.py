#!/usr/bin/env python3
"""Bench-trend regression gate.

Diffs a freshly produced BENCH_<name>.json against the committed baseline
under bench/baselines/ and fails (exit 1) on a regression beyond the
tolerance in any gated metric. Only *deterministic* metrics are gated —
simulated-time results, convolution counts, and pooled probability bounds
are pure functions of the seeds, so a committed baseline stays valid on
any machine; wall-clock fields (selections/sec, wall seconds) are reported
in the JSON but never gated.

Gated metrics:
  selection_scale — cached_convolutions_per_read per verify point and
                    convolutions_per_read per scale/open-loop point (the
                    memoized hot path must not regress), zero tolerance on
                    selection mismatches vs the uncached and
                    exhaustive-scan oracles, and the absolute open-loop
                    ns/selection budget committed with the baseline;
                    --include-wall-clock adds relative ns/selection trend
                    gates (off by default: machine-dependent);
  recovery        — pooled mean time-to-rejoin (seconds of simulated time)
                    and the Pc(d) lower bound, i.e. the pooled Wilson lower
                    bound of steady-state deadline-hit probability
                    (1 - upper CI bound of the steady timing-failure rate);
  gray_failure    — per-severity timing-failure rate inside the degradation
                    window (hardening must not erode under gray faults),
                    the steady-state Pc(d) lower bound outside it, zero
                    safety-invariant violations (absolute), and a nonzero
                    injected-fault total (the chaos layer must actually
                    have fired);
  obs_overhead    — telemetry cost: overhead_percent against the absolute
                    <2% budget (the one wall-clock-derived exception — it
                    is a ratio of two runs on the same machine, so the
                    budget holds anywhere), plus the deterministic snapshot
                    count / JSONL size / reads completed as trend gates.

Usage: bench_compare.py BASELINE FRESH [--tolerance 0.20]
The bench kind is read from the JSON "bench" field; both files must match.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable


class Gate:
    """One gated metric: extract from both files, compare directionally.

    direction "max": lower is better, fail when fresh exceeds baseline by
    more than tolerance (relative) plus slack (absolute).
    direction "min": higher is better, fail when fresh falls short of the
    baseline by more than tolerance plus slack.

    With absolute_limit set, the baseline value is ignored for the verdict:
    fresh is compared directly against the fixed limit (a budget gate, e.g.
    "telemetry overhead stays under 2%"), tolerance and slack unused.
    """

    def __init__(self, name: str, extract: Callable[[dict], float],
                 direction: str, slack: float = 0.0,
                 absolute_limit: float | None = None):
        assert direction in ("max", "min")
        self.name = name
        self.extract = extract
        self.direction = direction
        self.slack = slack
        self.absolute_limit = absolute_limit

    def check(self, baseline: dict, fresh: dict, tolerance: float):
        base = self.extract(baseline)
        new = self.extract(fresh)
        if self.absolute_limit is not None:
            limit = self.absolute_limit
            ok = new <= limit if self.direction == "max" else new >= limit
        elif self.direction == "max":
            limit = base * (1.0 + tolerance) + self.slack
            ok = new <= limit
        else:
            limit = base * (1.0 - tolerance) - self.slack
            ok = new >= limit
        delta = 0.0 if base == 0 else (new - base) / base * 100.0
        return ok, base, new, delta


def selection_scale_gates(baseline: dict,
                          include_wall_clock: bool = False) -> list[Gate]:
    gates = []
    for run in baseline["runs"]:
        key = (run["replicas"], run["window"])

        def extract(doc: dict, key=key) -> float:
            for r in doc["runs"]:
                if (r["replicas"], r["window"]) == key:
                    return float(r["cached_convolutions_per_read"])
            raise KeyError(f"no (replicas, window) == {key} in fresh run set")

        # Slack of 0.5 conv/read: near-zero steady-state points must not
        # flag on a single extra rebuild.
        gates.append(Gate(f"conv/read r={key[0]} w={key[1]}", extract,
                          "max", slack=0.5))

        def mismatches(doc: dict, key=key) -> float:
            for r in doc["runs"]:
                if (r["replicas"], r["window"]) == key:
                    return float(r["mismatches"])
            raise KeyError(f"no (replicas, window) == {key} in fresh run set")

        # Absolute zero tolerance: the memoized + pruned path must stay
        # bit-identical to the uncached and exhaustive-scan oracles.
        gates.append(Gate(f"selection mismatches r={key[0]} w={key[1]}",
                          mismatches, "max", absolute_limit=0.0))

    for run in baseline.get("scale_runs", []):
        key = (run["replicas"], run["window"])

        def scale_conv(doc: dict, key=key) -> float:
            for r in doc["scale_runs"]:
                if (r["replicas"], r["window"]) == key:
                    return float(r["convolutions_per_read"])
            raise KeyError(f"no scale point (replicas, window) == {key}")

        gates.append(Gate(f"scale conv/read r={key[0]} w={key[1]}",
                          scale_conv, "max", slack=0.5))
        if include_wall_clock:
            def scale_ns(doc: dict, key=key) -> float:
                for r in doc["scale_runs"]:
                    if (r["replicas"], r["window"]) == key:
                        return float(r["ns_per_selection"])
                raise KeyError(f"no scale point (replicas, window) == {key}")

            gates.append(Gate(f"scale ns/selection r={key[0]} w={key[1]}",
                              scale_ns, "max"))

    if "open_loop" in baseline:
        gates.append(Gate(
            "open-loop conv/read",
            lambda d: float(d["open_loop"]["convolutions_per_read"]),
            "max", slack=0.5))
        # The absolute ns/selection budget committed with the baseline. A
        # wall-clock gate, but with ~5x headroom over the measured value it
        # holds on any CI-class runner; catching a return to the
        # convolution-per-read regime (50-100x slower) is what matters.
        budget = float(baseline["open_loop"]["budget_ns_per_selection"])
        gates.append(Gate(
            "open-loop ns/selection (budget)",
            lambda d: float(d["open_loop"]["ns_per_selection"]),
            "max", absolute_limit=budget))
        if include_wall_clock:
            gates.append(Gate(
                "open-loop ns/selection (trend)",
                lambda d: float(d["open_loop"]["ns_per_selection"]),
                "max"))
    return gates


def recovery_gates(_baseline: dict) -> list[Gate]:
    def rejoin(doc: dict) -> float:
        return float(doc["pooled"]["rejoin_s"]["mean"])

    def pc_lower_bound(doc: dict) -> float:
        # Pc(d): probability a steady-state read meets its deadline. The
        # conservative (lower) bound is 1 minus the Wilson *upper* bound of
        # the steady timing-failure rate.
        return 1.0 - float(doc["pooled"]["steady_timing_failure"]["ci_upper"])

    return [
        # 50 ms of absolute slack: rejoin is sub-second, so pure relative
        # tolerance would flag noise-level shifts.
        Gate("mean time_to_rejoin_s", rejoin, "max", slack=0.05),
        Gate("Pc(d) lower bound (steady)", pc_lower_bound, "min", slack=0.02),
    ]


def gray_failure_gates(baseline: dict) -> list[Gate]:
    def point_rate(doc: dict, point: int) -> float:
        failures = trials = 0
        for r in doc["runs"]:
            if r["point"] == point:
                failures += r["degraded_failures"]
                trials += r["degraded_reads"]
        if trials == 0:
            raise KeyError(f"no degraded reads at severity point {point}")
        return failures / trials

    def injected(doc: dict) -> float:
        return float(sum(r[k] for r in doc["runs"]
                         for k in ("messages_duplicated",
                                   "messages_reordered",
                                   "messages_delayed",
                                   "messages_dropped_loss")))

    severities = sorted({r["point"] for r in baseline["runs"]})
    gates = []
    for point in severities:
        if point == 0:
            continue  # baseline severity has no degradation window
        # 2% absolute slack: the per-point rate sits on ~400 reads, so a
        # couple of flipped outcomes must not flag.
        gates.append(Gate(f"degraded tf rate @severity {point}",
                          lambda d, p=point: point_rate(d, p),
                          "max", slack=0.02))
    gates += [
        Gate("Pc(d) lower bound (steady)",
             lambda d: 1.0 - float(d["pooled"]["steady_timing_failure"]
                                   ["ci_upper"]),
             "min", slack=0.02),
        Gate("safety-invariant violations",
             lambda d: float(d["pooled"]["violations"]),
             "max", absolute_limit=0.0),
        Gate("faults injected",
             injected, "min", absolute_limit=1.0),
    ]
    return gates


def shards_gates(baseline: dict) -> list[Gate]:
    # BENCH_shards.json embeds two sweeps: "scaling" (shard_scaling plan,
    # 1/4/16 replica groups) and "faults" (hot_shard plan, 16-shard
    # hot-shard / correlated-rack matrix).
    def point_sum(doc: dict, section: str, point: int, keys) -> float:
        return float(sum(r[k] for r in doc[section]["runs"]
                         if r["point"] == point for k in keys))

    def pc_lower(doc: dict, point: int) -> float:
        failures = point_sum(doc, "scaling", point, ("timing_failures",))
        trials = point_sum(doc, "scaling", point, ("reads_completed",))
        if trials == 0:
            raise KeyError(f"no completed reads at scaling point {point}")
        return 1.0 - failures / trials

    def throughput(doc: dict, point: int) -> float:
        ops = point_sum(doc, "scaling", point,
                        ("reads_completed", "updates_completed"))
        sim_s = point_sum(doc, "scaling", point, ("sim_end_s",))
        if sim_s == 0:
            raise KeyError(f"no simulated time at scaling point {point}")
        return ops / sim_s

    def hot_rate(doc: dict) -> float:
        failures = point_sum(doc, "faults", 1, ("degraded_failures",))
        trials = point_sum(doc, "faults", 1, ("degraded_reads",))
        if trials == 0:
            raise KeyError("no degraded reads at the hot-shard point")
        return failures / trials

    def rack_restarts_per_seed(doc: dict) -> float:
        runs = [r for r in doc["faults"]["runs"] if r["point"] == 2]
        if not runs:
            raise KeyError("no runs at the correlated-rack point")
        return sum(r["reborn"] for r in runs) / len(runs)

    points = sorted({(r["point"], r["shards"])
                     for r in baseline["scaling"]["runs"]})
    gates = []
    for point, shards in points:
        # 2% absolute slack, same reasoning as the gray-failure gates: the
        # per-point rate sits on ~10^3 reads, so a couple of flipped
        # outcomes must not flag.
        gates.append(Gate(f"Pc(d) lower bound @{int(shards)} shards",
                          lambda d, p=point: pc_lower(d, p),
                          "min", slack=0.02))
        # Simulated-time throughput is deterministic per seed set; 0.5
        # ops/s of slack absorbs request-accounting shifts.
        gates.append(Gate(f"throughput ops/sim-s @{int(shards)} shards",
                          lambda d, p=point: throughput(d, p),
                          "min", slack=0.5))
    gates += [
        Gate("degraded tf rate @hot shard", hot_rate, "max", slack=0.02),
        Gate("Pc(d) lower bound (steady, faults)",
             lambda d: 1.0 - float(d["faults"]["pooled"]
                                   ["steady_timing_failure"]["ci_upper"]),
             "min", slack=0.02),
        # The acceptance floor: agreement and key-placement counters from
        # both sweeps, pooled. Any cross-shard leak fails the gate outright.
        Gate("safety-invariant violations (scaling + faults)",
             lambda d: float(d["scaling"]["pooled"]["violations"]) +
             float(d["faults"]["pooled"]["violations"]),
             "max", absolute_limit=0.0),
        # Every shard must lose and restart its rack slot: 16 per seed.
        Gate("rack restarts per seed", rack_restarts_per_seed,
             "min", absolute_limit=16.0),
    ]
    return gates


def obs_overhead_gates(baseline: dict) -> list[Gate]:
    budget = float(baseline.get("budget_percent", 2.0))
    return [
        # The budget gate: absolute, not relative to the baseline's own
        # (noise-level) overhead measurement.
        Gate("telemetry overhead %", lambda d: float(d["overhead_percent"]),
             "max", absolute_limit=budget),
        # Deterministic per-(seed, requests) fields: drift means the
        # snapshot pipeline changed shape, which should be a deliberate
        # baseline update, not an accident.
        Gate("snapshots captured", lambda d: float(d["snapshots"]), "min"),
        Gate("jsonl bytes", lambda d: float(d["jsonl_bytes"]), "max"),
        Gate("reads completed", lambda d: float(d["reads_completed"]), "min"),
        # 1.0 = byte-identical series across same-seed reps.
        Gate("series deterministic", lambda d: float(d["deterministic"]),
             "min", absolute_limit=1.0),
    ]


GATE_BUILDERS = {
    "selection_scale": selection_scale_gates,
    "recovery": recovery_gates,
    "gray_failure": gray_failure_gates,
    "obs_overhead": obs_overhead_gates,
    "shards": shards_gates,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed bench/baselines/BENCH_*.json")
    parser.add_argument("fresh", help="freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="relative regression tolerance (default 0.20)")
    parser.add_argument("--include-wall-clock", action="store_true",
                        help="also gate relative ns/selection trends "
                             "(selection_scale only; off by default because "
                             "wall clock is machine-dependent)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    kind = baseline.get("bench")
    if fresh.get("bench") != kind:
        print(f"bench_compare: baseline is '{kind}' but fresh is "
              f"'{fresh.get('bench')}'", file=sys.stderr)
        return 2
    if kind not in GATE_BUILDERS:
        print(f"bench_compare: no gates defined for bench '{kind}'",
              file=sys.stderr)
        return 2

    if kind == "selection_scale":
        gates = selection_scale_gates(baseline, args.include_wall_clock)
    else:
        gates = GATE_BUILDERS[kind](baseline)

    failures = 0
    print(f"bench-trend gate: {kind} (tolerance ±{args.tolerance:.0%})")
    for gate in gates:
        try:
            ok, base, new, delta = gate.check(baseline, fresh, args.tolerance)
        except KeyError as e:
            print(f"  FAIL {gate.name}: {e}")
            failures += 1
            continue
        verdict = "ok" if ok else "FAIL"
        print(f"  {verdict:4} {gate.name}: baseline {base:.6g} -> "
              f"fresh {new:.6g} ({delta:+.1f}%)")
        if not ok:
            failures += 1

    if failures:
        print(f"bench_compare: {failures} gated metric(s) regressed beyond "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 1
    print("bench_compare: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
