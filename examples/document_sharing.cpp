// The paper's Section 2 motivating example: a document-sharing application
// in which multiple readers and writers concurrently access a document
// updated in sequential mode.
//
// One writer appends paragraphs; three readers with different needs read:
//   * an editor who wants an almost-current copy fast,
//   * a reviewer using exactly the paper's example QoS — "a copy of the
//     document that is not more than 5 versions old within 2.0 seconds
//     with a probability of at least 0.7",
//   * an archivist who insists on a fully fresh copy and tolerates delay.
#include <cstdio>
#include <memory>
#include <vector>

#include "client/handler.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

using namespace aqueduct;
using namespace std::chrono_literals;

namespace {

struct Reader {
  const char* name;
  core::QoSSpec qos;
  std::size_t reads_done = 0;
  std::size_t timing_failures = 0;
  std::size_t deferred = 0;
  std::uint64_t total_staleness = 0;
  std::unique_ptr<client::ClientHandler> handler;
};

}  // namespace

int main() {
  sim::Simulator sim(7);
  net::LoopbackTransport lan(sim, std::make_unique<sim::NormalDuration>(600us, 250us));
  gcs::Directory directory;
  const auto groups = replication::ServiceGroups::for_service(1);

  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas;
  auto add_replica = [&](bool primary) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, lan, directory);
    replication::ReplicaConfig config;
    config.service_time = std::make_shared<sim::NormalDuration>(60ms, 25ms);
    config.lazy_update_interval = 3s;
    replicas.push_back(std::make_unique<replication::ReplicaServer>(
        sim, *endpoint, groups, primary,
        std::make_unique<replication::SharedDocument>(), std::move(config)));
    endpoints.push_back(std::move(endpoint));
  };
  add_replica(true);  // sequencer
  for (int i = 0; i < 3; ++i) add_replica(true);
  for (int i = 0; i < 5; ++i) add_replica(false);
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    sim.after(i * 10ms, [&, i] { replicas[i]->start(); });
  }

  // The writer.
  auto writer_endpoint = std::make_unique<gcs::Endpoint>(sim, lan, directory);
  client::ClientHandler writer(sim, *writer_endpoint, groups, {});
  writer.start();

  // The readers.
  std::vector<Reader> readers;
  readers.push_back(
      {"editor   ", {.staleness_threshold = 1, .deadline = 150ms, .min_probability = 0.9}});
  readers.push_back(
      {"reviewer ", {.staleness_threshold = 5, .deadline = 2s, .min_probability = 0.7}});
  readers.push_back(
      {"archivist", {.staleness_threshold = 0, .deadline = 8s, .min_probability = 0.5}});
  for (auto& reader : readers) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, lan, directory);
    reader.handler = std::make_unique<client::ClientHandler>(sim, *endpoint,
                                                             groups, client::ClientConfig{});
    reader.handler->start();
    endpoints.push_back(std::move(endpoint));
  }
  sim.run_for(1s);

  // The writer appends a paragraph every ~400 ms, 60 times.
  for (int i = 0; i < 60; ++i) {
    sim.after(i * 400ms, [&, i] {
      auto append = std::make_shared<replication::DocAppend>();
      append->line = "paragraph " + std::to_string(i);
      writer.update(append, {});
    });
  }

  // Each reader polls the document every ~600 ms.
  for (auto& reader : readers) {
    for (int i = 0; i < 40; ++i) {
      sim.after(200ms + i * 600ms, [&reader] {
        reader.handler->read(
            std::make_shared<replication::DocRead>(), reader.qos,
            [&reader](const client::ReadOutcome& outcome) {
              ++reader.reads_done;
              if (outcome.timing_failure) ++reader.timing_failures;
              if (outcome.deferred) ++reader.deferred;
              reader.total_staleness += outcome.staleness;
            });
      });
    }
  }

  sim.run_for(60s);

  std::printf("document-sharing run: 60 appends, 3 readers x 40 reads\n\n");
  std::printf(
      "reader     | a (versions) | deadline  | Pc   | reads | timing-fail "
      "| deferred | avg staleness | avg replicas\n");
  for (const auto& reader : readers) {
    std::printf(
        "%s  | %12llu | %8s | %.2f | %5zu | %11zu | %8zu | %13.2f | %.2f\n",
        reader.name,
        static_cast<unsigned long long>(reader.qos.staleness_threshold),
        sim::format(reader.qos.deadline).c_str(), reader.qos.min_probability,
        reader.reads_done, reader.timing_failures, reader.deferred,
        reader.reads_done
            ? static_cast<double>(reader.total_staleness) / reader.reads_done
            : 0.0,
        reader.handler->stats().avg_replicas_selected());
  }
  std::printf(
      "\nnote how the fresh-and-fast editor leans on primaries (more "
      "replicas selected),\nthe reviewer's relaxed staleness lets "
      "secondaries answer, and the archivist's\nzero-staleness reads defer "
      "to lazy updates when secondaries answer.\n");
  return 0;
}
