// Live scenario runner: the same protocol stack every experiment runs
// under the discrete-event simulator, driven by the wall clock instead.
//
//   live_cli [--duration SEC] [--requests N] [--seed S]
//            [--runtime real|sim] [--json-out FILE] [--no-json]
//            [--telemetry-out FILE] [--telemetry-period MS]
//            [--prom-out FILE]
//   live_cli --role {sequencer,primary,secondary,publisher,client}
//            --listen HOST:PORT --peer NAME=HOST:PORT [--peer ...]
//            [--duration SEC] [--requests N] [--seed S]
//            [--json-out FILE] [--no-json]
//            [--chaos-loss P] [--chaos-duplicate P] [--chaos-reorder P]
//            [--chaos-delay-ms MS]
//
// Single-process mode boots a sequencer, two primaries, two secondaries,
// and two workload clients with different QoS specs (a strict low-deadline
// reader and a relaxed staleness-tolerant one) on a RealTimeExecutor:
// messages are delivered in-process after real injected latency,
// heartbeats and the lazy publisher fire on wall-clock timers, and
// requests complete in real elapsed time. While running, a
// MetricsSnapshotter captures the registry every --telemetry-period ms and
// streams it to the console, a JSONL time series (--telemetry-out), and a
// Prometheus text file (--prom-out). Prints the observed timing-failure
// probability, per-client SLA status from the live SlaMonitor, and the
// per-request latency breakdown from the obs pipeline, then verifies
// committed-prefix agreement across the replicas before exiting.
//
// Multi-process mode (--role) runs ONE node of the service per OS process
// over localhost UDP: the identical protocol stack, but messages cross a
// real socket through the wire codec (net/codec.hpp).
// The --chaos-* flags wrap this process's UDP socket in the chaos
// decorator (net/chaos.hpp): outbound messages are dropped, duplicated,
// reordered, or delayed with the given parameters before they reach the
// wire, so a cluster of chaos-flagged processes exercises the gray-failure
// hardening over real sockets (tools/live_smoke.py --chaos drives this). Every process gets
// the same --peer address book; --listen must match this process's own
// entry, which names it (e.g. "primary2") and fixes its NodeId. The
// process whose name is "sequencer" bootstraps the groups; everyone else
// pre-seeds its join directory with the sequencer and joins through the
// normal gcs machinery. tools/live_smoke.py launches a full cluster and
// cross-checks the per-process reports for committed-prefix agreement.
//
// Exit status: 0 on a clean run, 1 if no request completed or any
// ordering/agreement check failed, 2 on a malformed command line. The
// emitted BENCH_live.json is machine- and load-dependent by construction
// and is NOT part of the bench-trend gate (see EXPERIMENTS.md).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "gcs/directory.hpp"
#include "gcs/endpoint.hpp"
#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "net/transport.hpp"
#include "net/udp_transport.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/sinks.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "runtime/sim_executor.hpp"

using namespace aqueduct;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: live_cli [--duration SEC] [--requests N] [--seed S]\n"
      "  [--runtime real|sim] [--json-out FILE] [--no-json]\n"
      "  [--telemetry-out FILE] [--telemetry-period MS]\n"
      "  [--prom-out FILE]\n"
      "or (one node per process, over localhost UDP):\n"
      "  live_cli --role {sequencer,primary,secondary,publisher,client}\n"
      "    --listen HOST:PORT --peer NAME=HOST:PORT [--peer ...]\n"
      "    [--duration SEC] [--requests N] [--seed S]\n"
      "    [--json-out FILE] [--no-json]\n"
      "    [--chaos-loss P] [--chaos-duplicate P] [--chaos-reorder P]\n"
      "    [--chaos-delay-ms MS]\n"
      "  where NAME is sequencer, primaryN, secondaryN, publisher, or\n"
      "  clientN, and --listen matches this process's --peer entry.\n");
  std::exit(2);
}

// Strict numeric parsing: the whole argument must convert, anything else
// (including trailing garbage) is a usage error, never UB or silence.
double parse_double(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) usage();
    return v;
  } catch (const std::exception&) {
    usage();
  }
}

std::uint64_t parse_u64(const std::string& s) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size() || (!s.empty() && s[0] == '-')) usage();
    return v;
  } catch (const std::exception&) {
    usage();
  }
}

// ---------------------------------------------------------------------------
// Multi-process deployment
// ---------------------------------------------------------------------------

/// One "NAME=HOST:PORT" address-book entry.
struct PeerSpec {
  std::string name;
  std::string host;
  std::uint16_t port = 0;
};

/// Splits "HOST:PORT"; exits with usage() on malformed input.
std::pair<std::string, std::uint16_t> parse_hostport(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    usage();
  }
  const std::uint64_t port = parse_u64(s.substr(colon + 1));
  if (port == 0 || port > 65535) usage();
  return {s.substr(0, colon), static_cast<std::uint16_t>(port)};
}

PeerSpec parse_peer(const std::string& s) {
  const std::size_t eq = s.find('=');
  if (eq == std::string::npos || eq == 0) usage();
  PeerSpec peer;
  peer.name = s.substr(0, eq);
  std::tie(peer.host, peer.port) = parse_hostport(s.substr(eq + 1));
  return peer;
}

/// Deterministic node identity from a peer name. The mapping is part of
/// the deployment contract: every process derives the same NodeId for the
/// same name, so the address book needs no coordination service.
///   sequencer -> 1, primaryN -> 1+N (N in 1..8), publisher -> 10,
///   secondaryN -> 10+N, clientN -> 20+N (N in 1..9).
struct NodeName {
  std::string role;       // sequencer|primary|secondary|publisher|client
  std::size_t index = 0;  // the N suffix (0 for sequencer/publisher)
  net::NodeId id;
};

std::optional<NodeName> resolve_name(const std::string& name) {
  const auto suffix_index = [&](const std::string& prefix,
                                std::size_t max_n) -> std::optional<std::size_t> {
    const std::string digits = name.substr(prefix.size());
    if (digits.empty() || digits.size() > 1) return std::nullopt;
    if (digits[0] < '1' || digits[0] > '9') return std::nullopt;
    const std::size_t n = static_cast<std::size_t>(digits[0] - '0');
    if (n > max_n) return std::nullopt;
    return n;
  };
  if (name == "sequencer") return NodeName{"sequencer", 0, net::NodeId{1}};
  if (name == "publisher") return NodeName{"publisher", 0, net::NodeId{10}};
  if (name.rfind("primary", 0) == 0) {
    if (auto n = suffix_index("primary", 8)) {
      return NodeName{"primary", *n, net::NodeId{static_cast<std::uint32_t>(1 + *n)}};
    }
  }
  if (name.rfind("secondary", 0) == 0) {
    if (auto n = suffix_index("secondary", 9)) {
      return NodeName{"secondary", *n,
                      net::NodeId{static_cast<std::uint32_t>(10 + *n)}};
    }
  }
  if (name.rfind("client", 0) == 0) {
    if (auto n = suffix_index("client", 9)) {
      return NodeName{"client", *n,
                      net::NodeId{static_cast<std::uint32_t>(20 + *n)}};
    }
  }
  return std::nullopt;
}

/// Join stagger: the sequencer must bootstrap before anyone joins, and the
/// publisher must join the primary group *last* so the lazy-publisher role
/// (the last primary-view member) lands on it. Offsets are from this
/// process's own startup; the 1 s gcs join retry absorbs skew between
/// process launches.
sim::Duration start_delay(const NodeName& self) {
  if (self.role == "sequencer") return sim::Duration::zero();
  if (self.role == "primary") {
    return std::chrono::milliseconds(300 + 100 * self.index);
  }
  if (self.role == "secondary") {
    return std::chrono::milliseconds(600 + 100 * self.index);
  }
  if (self.role == "publisher") return std::chrono::milliseconds(1500);
  return std::chrono::milliseconds(2000);  // client workloads start last
}

struct MultiprocOptions {
  std::string role;
  std::string listen;
  std::vector<PeerSpec> peers;
  double duration_s = 10.0;
  std::size_t requests = 15;
  std::uint64_t seed = 42;
  std::string json_out = "BENCH_live.json";
  bool write_json = true;
  // Gray-failure injection on this process's outbound path (0 = off).
  double chaos_loss = 0.0;
  double chaos_duplicate = 0.0;
  double chaos_reorder = 0.0;
  double chaos_delay_ms = 0.0;

  bool chaos_enabled() const {
    return chaos_loss > 0.0 || chaos_duplicate > 0.0 || chaos_reorder > 0.0 ||
           chaos_delay_ms > 0.0;
  }
};

int run_multiproc(const MultiprocOptions& opt) {
  if (opt.listen.empty() || opt.peers.empty()) usage();
  const auto [listen_host, listen_port] = parse_hostport(opt.listen);

  // This process is the address-book entry whose endpoint matches
  // --listen; the entry's name fixes the NodeId and (via the role prefix)
  // must agree with --role.
  std::optional<NodeName> self;
  std::string self_name;
  net::UdpConfig ucfg;
  for (const PeerSpec& peer : opt.peers) {
    const auto resolved = resolve_name(peer.name);
    if (!resolved) {
      std::fprintf(stderr, "live_cli: unknown peer name '%s'\n",
                   peer.name.c_str());
      return 2;
    }
    ucfg.peers.push_back(net::UdpPeer{resolved->id, peer.host, peer.port});
    if (peer.host == listen_host && peer.port == listen_port) {
      self = resolved;
      self_name = peer.name;
    }
  }
  if (!self) {
    std::fprintf(stderr, "live_cli: --listen %s matches no --peer entry\n",
                 opt.listen.c_str());
    return 2;
  }
  if (self->role != opt.role) {
    std::fprintf(stderr, "live_cli: --role %s but --listen names '%s'\n",
                 opt.role.c_str(), self_name.c_str());
    return 2;
  }
  ucfg.local_id = self->id;
  ucfg.listen_host = listen_host;
  ucfg.listen_port = listen_port;

  // Receiving serialized frames requires the decoders of every layer in
  // the stack (replication's registration pulls in gcs's).
  replication::register_wire_codecs();

  auto exec = runtime::make_executor(runtime::Kind::kRealTime, opt.seed);
  std::unique_ptr<net::Transport> transport_owner =
      std::make_unique<net::UdpTransport>(*exec, ucfg);
  if (opt.chaos_enabled()) {
    // Wrap the socket in the chaos decorator: every send from this process
    // runs the gray-failure pipeline before it reaches the wire. Each
    // process degrades only its own outbound path, so a chaos-flagged
    // cluster models per-host gray failures, not a lossy switch.
    transport_owner = net::make_chaos_transport(std::move(transport_owner));
    net::FaultInjection& chaos = *transport_owner->fault_injection();
    if (opt.chaos_loss > 0.0) chaos.set_loss_probability(opt.chaos_loss);
    if (opt.chaos_duplicate > 0.0) {
      chaos.set_duplicate_probability(opt.chaos_duplicate);
    }
    if (opt.chaos_reorder > 0.0) {
      chaos.set_reorder_probability(opt.chaos_reorder);
    }
    if (opt.chaos_delay_ms > 0.0) {
      chaos.set_default_delay(std::make_shared<sim::FixedDuration>(
          sim::from_ms(opt.chaos_delay_ms)));
    }
  }
  net::Transport& transport = *transport_owner;

  // Per-process join directory: everyone but the sequencer is told where
  // the groups' coordinator lives; the sequencer finds its directory empty,
  // claims the groups, and bootstraps singleton views.
  const auto groups = replication::ServiceGroups::for_service(1);
  gcs::Directory directory;
  const net::NodeId sequencer_id{1};
  if (self->id != sequencer_id) {
    directory.update(groups.primary, sequencer_id);
    directory.update(groups.replication, sequencer_id);
    directory.update(groups.qos, sequencer_id);
  }
  gcs::Endpoint endpoint(*exec, transport, directory, gcs::Config{});

  const sim::TimePoint deadline = runtime::kEpoch + sim::from_sec(opt.duration_s);
  std::printf("live_cli[%s]: node n%u listening on %s:%u, %zu peers, %.1fs\n",
              self_name.c_str(), self->id.value(), listen_host.c_str(),
              listen_port, ucfg.peers.size(), opt.duration_s);
  if (opt.chaos_enabled()) {
    std::printf(
        "live_cli[%s]: chaos on outbound: loss=%.2f dup=%.2f reorder=%.2f "
        "delay=%.1fms\n",
        self_name.c_str(), opt.chaos_loss, opt.chaos_duplicate,
        opt.chaos_reorder, opt.chaos_delay_ms);
  }

  int exit_code = 0;
  std::uint64_t completed = 0;
  double failure_rate = 0.0;

  const auto write_report = [&](const std::function<void(obs::JsonWriter&)>& extra) {
    if (!opt.write_json) return;
    std::ofstream out(opt.json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_out.c_str());
      exit_code = 1;
      return;
    }
    const net::TransportStats tstats = transport.stats();
    obs::JsonWriter w(out);
    w.begin_object();
    w.field("bench", "live_multiproc");
    w.field("role", opt.role);
    w.field("name", self_name);
    w.field("node", std::uint64_t{self->id.value()});
    w.field("seed", opt.seed);
    w.field("elapsed_s", sim::to_sec(exec->now() - runtime::kEpoch));
    w.field("messages_sent", tstats.messages_sent);
    w.field("messages_delivered", tstats.messages_delivered);
    w.field("decode_errors", tstats.decode_errors);
    w.field("bytes_sent", tstats.bytes_sent);
    w.field("chaos", opt.chaos_enabled());
    w.field("messages_dropped_loss", tstats.messages_dropped_loss);
    w.field("messages_duplicated", tstats.messages_duplicated);
    w.field("messages_reordered", tstats.messages_reordered);
    w.field("messages_delayed", tstats.messages_delayed);
    extra(w);
    w.end_object();
    out << "\n";
    std::printf("wrote %s\n", opt.json_out.c_str());
  };

  if (opt.role == "client") {
    harness::ClientSpec spec;
    spec.qos = {.staleness_threshold = self->index % 2 == 1 ? 1u : 4u,
                .deadline = std::chrono::milliseconds(
                    self->index % 2 == 1 ? 150 : 250),
                .min_probability = self->index % 2 == 1 ? 0.9 : 0.5};
    spec.request_delay = std::chrono::milliseconds(50);
    spec.num_requests = opt.requests;
    const shard::ShardMap shard_map(opt.seed, /*num_shards=*/1);
    harness::WorkloadClient workload(*exec, endpoint, shard_map, {groups},
                                     std::move(spec),
                                     /*window_size=*/20);
    exec->after(start_delay(*self), [&] { workload.start(); });
    // Poll for completion so a finished workload exits without burning the
    // full duration cap; the cap still bounds a stuck run.
    std::function<void()> check = [&] {
      if (workload.done()) {
        exec->stop();
        return;
      }
      exec->after(std::chrono::milliseconds(100), check);
    };
    exec->after(std::chrono::milliseconds(100), check);
    exec->run_until(deadline);

    const harness::ClientResult result = workload.result();
    const auto& stats = result.stats;
    completed = stats.reads_completed + stats.updates_completed;
    std::uint64_t timing_failures = stats.timing_failures;
    failure_rate = stats.reads_completed > 0
                       ? static_cast<double>(timing_failures) /
                             static_cast<double>(stats.reads_completed)
                       : 0.0;
    std::printf(
        "%s: %llu reads, %llu updates, %llu timing failures "
        "(rate %.3f), avg read %.1f ms\n",
        self_name.c_str(),
        static_cast<unsigned long long>(stats.reads_completed),
        static_cast<unsigned long long>(stats.updates_completed),
        static_cast<unsigned long long>(timing_failures), failure_rate,
        sim::to_ms(stats.avg_response_time()));
    write_report([&](obs::JsonWriter& w) {
      w.field("requests_completed", completed);
      w.field("reads_completed", stats.reads_completed);
      w.field("timing_failure_rate", failure_rate);
    });
    if (completed == 0) {
      std::fprintf(stderr, "FAIL[%s]: no request completed\n",
                   self_name.c_str());
      exit_code = 1;
    }
  } else {
    const bool is_primary = opt.role != "secondary";
    replication::ReplicaConfig rcfg;
    rcfg.service_time = std::make_shared<sim::NormalDuration>(
        std::chrono::milliseconds(20), std::chrono::milliseconds(5));
    rcfg.lazy_update_interval = std::chrono::milliseconds(500);
    replication::ReplicaServer server(
        *exec, endpoint, groups, is_primary,
        std::make_unique<replication::KeyValueStore>(), rcfg);
    exec->after(start_delay(*self), [&] { server.start(); });
    exec->run_until(deadline);

    const auto& store =
        dynamic_cast<const replication::KeyValueStore&>(server.object());
    const auto& rstats = server.stats();
    std::printf(
        "%s: csn=%llu gsn=%llu store_version=%llu conflicts=%llu "
        "lazy_published=%llu recovering=%d\n",
        self_name.c_str(), static_cast<unsigned long long>(server.csn()),
        static_cast<unsigned long long>(server.gsn()),
        static_cast<unsigned long long>(store.version()),
        static_cast<unsigned long long>(rstats.gsn_conflicts),
        static_cast<unsigned long long>(rstats.lazy_updates_published),
        server.recovering() ? 1 : 0);
    // Local committed-prefix checks; cross-process CSN agreement is
    // asserted by tools/live_smoke.py over the per-process reports.
    if (rstats.gsn_conflicts != 0) {
      std::fprintf(stderr, "FAIL[%s]: %llu gsn conflicts\n", self_name.c_str(),
                   static_cast<unsigned long long>(rstats.gsn_conflicts));
      exit_code = 1;
    }
    if (is_primary && !server.recovering() &&
        store.version() != server.csn()) {
      std::fprintf(stderr,
                   "FAIL[%s]: applied %llu updates but committed %llu\n",
                   self_name.c_str(),
                   static_cast<unsigned long long>(store.version()),
                   static_cast<unsigned long long>(server.csn()));
      exit_code = 1;
    }
    write_report([&](obs::JsonWriter& w) {
      w.field("csn", server.csn());
      w.field("gsn", server.gsn());
      w.field("store_version", store.version());
      w.field("gsn_conflicts", rstats.gsn_conflicts);
      w.field("is_primary", is_primary);
      w.field("recovering", server.recovering());
    });
  }
  if (opt.chaos_enabled()) {
    const net::TransportStats ts = transport.stats();
    std::printf(
        "%s: chaos injected: dropped=%llu duplicated=%llu reordered=%llu "
        "delayed=%llu\n",
        self_name.c_str(),
        static_cast<unsigned long long>(ts.messages_dropped_loss),
        static_cast<unsigned long long>(ts.messages_duplicated),
        static_cast<unsigned long long>(ts.messages_reordered),
        static_cast<unsigned long long>(ts.messages_delayed));
  }
  return exit_code;
}

// ---------------------------------------------------------------------------
// Single-process mode (the original live scenario)
// ---------------------------------------------------------------------------

/// One console line per snapshot: elapsed time, request progress (total and
/// delta since the previous snapshot), SLA violations so far.
class ConsoleTelemetry final : public obs::SnapshotSink {
 public:
  void on_snapshot(const obs::MetricsSnapshot& snap) override {
    const auto counter = [](const auto& pairs, const char* name) {
      for (const auto& [n, v] : pairs) {
        if (n == name) return v;
      }
      return std::uint64_t{0};
    };
    const std::uint64_t reads = counter(snap.counters, "client.reads_completed");
    const std::uint64_t updates =
        counter(snap.counters, "client.updates_completed");
    const std::uint64_t delta =
        counter(snap.counter_deltas, "client.reads_completed") +
        counter(snap.counter_deltas, "client.updates_completed");
    const std::uint64_t violations = counter(snap.counters, "sla.violations");
    std::printf(
        "[telemetry] t=%8.3fs seq=%3llu reads=%llu updates=%llu (+%llu) "
        "sla_violations=%llu\n",
        sim::to_sec(snap.at), static_cast<unsigned long long>(snap.seq),
        static_cast<unsigned long long>(reads),
        static_cast<unsigned long long>(updates),
        static_cast<unsigned long long>(delta),
        static_cast<unsigned long long>(violations));
  }
};

/// Committed-prefix agreement at shutdown: no replica ever observed a GSN
/// conflict, every live non-recovering primary applied exactly the prefix
/// it committed (store version == CSN), and live primaries agree on the
/// commit point up to in-flight slack. Returns the number of violations.
int check_agreement(harness::Scenario& scenario) {
  int violations = 0;
  std::uint64_t max_csn = 0;
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    const auto& replica = scenario.replica(i);
    if (replica.stats().gsn_conflicts != 0) {
      std::fprintf(stderr, "VIOLATION: replica %zu saw %llu gsn conflicts\n",
                   i, static_cast<unsigned long long>(
                          replica.stats().gsn_conflicts));
      ++violations;
    }
    if (!replica.crashed() && replica.is_primary() && !replica.recovering()) {
      const auto& store =
          dynamic_cast<const replication::KeyValueStore&>(replica.object());
      if (store.version() != replica.csn()) {
        std::fprintf(stderr,
                     "VIOLATION: replica %zu applied %llu updates but "
                     "committed %llu\n",
                     i, static_cast<unsigned long long>(store.version()),
                     static_cast<unsigned long long>(replica.csn()));
        ++violations;
      }
      max_csn = std::max(max_csn, replica.csn());
    }
  }
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    const auto& replica = scenario.replica(i);
    if (replica.crashed() || !replica.is_primary() || replica.recovering() ||
        i == scenario.index_sequencer()) {
      continue;
    }
    if (replica.csn() + 2 < max_csn) {
      std::fprintf(stderr,
                   "VIOLATION: primary %zu diverged (csn %llu, max %llu)\n",
                   i, static_cast<unsigned long long>(replica.csn()),
                   static_cast<unsigned long long>(max_csn));
      ++violations;
    }
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 2.0;
  bool duration_set = false;
  std::size_t requests = 15;
  std::uint64_t seed = 42;
  runtime::Kind kind = runtime::Kind::kRealTime;
  std::string json_out = "BENCH_live.json";
  bool write_json = true;
  std::string telemetry_out;  // empty = console only
  double telemetry_period_ms = 100.0;
  std::string prom_out;  // empty = no Prometheus dump
  std::string role;
  std::string listen;
  std::vector<PeerSpec> peers;
  double chaos_loss = 0.0;
  double chaos_duplicate = 0.0;
  double chaos_reorder = 0.0;
  double chaos_delay_ms = 0.0;

  auto parse_probability = [&](const std::string& s) {
    const double p = parse_double(s);
    if (p < 0.0 || p > 1.0) usage();
    return p;
  };
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--duration") {
      duration_s = parse_double(next_value(i));
      if (duration_s <= 0.0) usage();
      duration_set = true;
    } else if (arg == "--requests") {
      requests = static_cast<std::size_t>(parse_u64(next_value(i)));
    } else if (arg == "--seed") {
      seed = parse_u64(next_value(i));
    } else if (arg == "--runtime") {
      const std::string name = next_value(i);
      if (name == "real") {
        kind = runtime::Kind::kRealTime;
      } else if (name == "sim") {
        kind = runtime::Kind::kSim;
      } else {
        usage();
      }
    } else if (arg == "--json-out") {
      json_out = next_value(i);
    } else if (arg == "--no-json") {
      write_json = false;
    } else if (arg == "--telemetry-out") {
      telemetry_out = next_value(i);
    } else if (arg == "--telemetry-period") {
      telemetry_period_ms = parse_double(next_value(i));
      if (telemetry_period_ms <= 0.0) usage();
    } else if (arg == "--prom-out") {
      prom_out = next_value(i);
    } else if (arg == "--role") {
      role = next_value(i);
      if (role != "sequencer" && role != "primary" && role != "secondary" &&
          role != "publisher" && role != "client") {
        usage();
      }
    } else if (arg == "--listen") {
      listen = next_value(i);
    } else if (arg == "--peer") {
      peers.push_back(parse_peer(next_value(i)));
    } else if (arg == "--chaos-loss") {
      chaos_loss = parse_probability(next_value(i));
    } else if (arg == "--chaos-duplicate") {
      chaos_duplicate = parse_probability(next_value(i));
    } else if (arg == "--chaos-reorder") {
      chaos_reorder = parse_probability(next_value(i));
    } else if (arg == "--chaos-delay-ms") {
      chaos_delay_ms = parse_double(next_value(i));
      if (chaos_delay_ms < 0.0) usage();
    } else {
      usage();
    }
  }

  if (!role.empty() || !listen.empty() || !peers.empty()) {
    if (role.empty()) usage();
    if (!telemetry_out.empty() || !prom_out.empty()) usage();
    MultiprocOptions opt;
    opt.role = role;
    opt.listen = listen;
    opt.peers = std::move(peers);
    opt.duration_s = duration_set ? duration_s : 10.0;
    opt.requests = requests;
    opt.seed = seed;
    opt.json_out = json_out;
    opt.write_json = write_json;
    opt.chaos_loss = chaos_loss;
    opt.chaos_duplicate = chaos_duplicate;
    opt.chaos_reorder = chaos_reorder;
    opt.chaos_delay_ms = chaos_delay_ms;
    return run_multiproc(opt);
  }
  // The single-process scenario injects faults through fault::FaultSchedule
  // (see sweep_cli's chaos plans); the --chaos-* flags are for the
  // per-process UDP deployment only.
  if (chaos_loss > 0.0 || chaos_duplicate > 0.0 || chaos_reorder > 0.0 ||
      chaos_delay_ms > 0.0) {
    usage();
  }

  // A small cluster with fast service times so a couple of wall-clock
  // seconds carries a meaningful number of requests: sequencer + 2
  // primaries + 2 secondaries, ~20 ms service, 500 ms lazy publication.
  harness::ScenarioConfig config;
  config.seed = seed;
  config.runtime = kind;
  config.num_primaries = 2;
  config.num_secondaries = 2;
  config.service_mean = std::chrono::milliseconds(20);
  config.service_std = std::chrono::milliseconds(5);
  config.lazy_update_interval = std::chrono::milliseconds(500);
  config.max_sim_time = sim::from_sec(duration_s);
  config.drain = std::chrono::milliseconds(250);
  // Client 0 is demanding (fresh data, tight deadline, high assurance);
  // client 1 tolerates staleness for cheap reads — the paper's trade-off,
  // live.
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 1,
              .deadline = std::chrono::milliseconds(150),
              .min_probability = 0.9},
      .request_delay = std::chrono::milliseconds(50),
      .num_requests = requests,
  });
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 4,
              .deadline = std::chrono::milliseconds(250),
              .min_probability = 0.5},
      .request_delay = std::chrono::milliseconds(50),
      .num_requests = requests,
  });

  harness::Scenario scenario(std::move(config));
  obs::LatencyBreakdownCollector breakdown;
  scenario.observability().trace.add(&breakdown);

  // Telemetry pipeline: console every period, plus optional JSONL time
  // series and Prometheus text dump. The snapshotter runs on the scenario's
  // executor, so the cadence is wall time under `real` and simulated time
  // under `sim`.
  obs::MetricsSnapshotter& telemetry =
      scenario.enable_telemetry(sim::from_ms(telemetry_period_ms));
  ConsoleTelemetry console;
  telemetry.add_sink(&console);
  std::ofstream telemetry_file;
  std::unique_ptr<obs::JsonlSnapshotSink> jsonl_sink;
  if (!telemetry_out.empty()) {
    telemetry_file.open(telemetry_out, std::ios::trunc);
    if (!telemetry_file) {
      std::fprintf(stderr, "cannot write %s\n", telemetry_out.c_str());
      return 1;
    }
    jsonl_sink = std::make_unique<obs::JsonlSnapshotSink>(telemetry_file);
    telemetry.add_sink(jsonl_sink.get());
  }
  std::unique_ptr<obs::PrometheusTextSink> prom_sink;
  if (!prom_out.empty()) {
    prom_sink = std::make_unique<obs::PrometheusTextSink>(prom_out);
    telemetry.add_sink(prom_sink.get());
  }

  std::printf("live_cli: %s runtime, %zu requests x 2 clients, %.1fs cap\n",
              runtime::to_string(kind), requests, duration_s);
  auto results = scenario.run();
  scenario.observability().trace.remove(&breakdown);

  std::uint64_t completed = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t timing_failures = 0;
  std::vector<double> read_times_s;
  for (std::size_t c = 0; c < results.size(); ++c) {
    const auto& stats = results[c].stats;
    completed += stats.reads_completed + stats.updates_completed;
    reads_completed += stats.reads_completed;
    timing_failures += stats.timing_failures;
    read_times_s.insert(read_times_s.end(),
                        results[c].read_response_times.begin(),
                        results[c].read_response_times.end());
    std::printf(
        "client %zu: %llu reads, %llu updates, %llu timing failures, "
        "avg read %.1f ms\n",
        c, static_cast<unsigned long long>(stats.reads_completed),
        static_cast<unsigned long long>(stats.updates_completed),
        static_cast<unsigned long long>(stats.timing_failures),
        sim::to_ms(stats.avg_response_time()));
  }
  const double failure_rate =
      reads_completed > 0
          ? static_cast<double>(timing_failures) /
                static_cast<double>(reads_completed)
          : 0.0;
  const double p50_ms = harness::percentile(read_times_s, 0.50) * 1000.0;
  const double p95_ms = harness::percentile(read_times_s, 0.95) * 1000.0;

  std::printf("\n%llu requests completed in %s (%llu events)\n",
              static_cast<unsigned long long>(completed),
              sim::format(scenario.executor().now()).c_str(),
              static_cast<unsigned long long>(
                  scenario.executor().events_executed()));
  std::printf("observed timing-failure probability: %.3f (%llu/%llu)\n",
              failure_rate, static_cast<unsigned long long>(timing_failures),
              static_cast<unsigned long long>(reads_completed));
  std::printf("read latency: p50 %.1f ms, p95 %.1f ms\n", p50_ms, p95_ms);

  // Per-client SLA status from the live monitor (one line per monitored
  // (client, spec) pair; the workload guarantees at least one read each).
  const auto sla_statuses =
      scenario.observability().sla.statuses(scenario.executor().now());
  std::printf("\nSLA status (%llu snapshots captured):\n",
              static_cast<unsigned long long>(telemetry.snapshots()));
  if (sla_statuses.empty()) {
    std::printf("sla: no reads recorded\n");
  }
  for (const auto& s : sla_statuses) {
    std::printf(
        "sla client n%u spec%u: Pc(d)=%.2f budget=%.3f observed=%.3f "
        "[wilson %.3f..%.3f] window=%llu/%llu %s, avg staleness %.2f, "
        "avg attempts %.2f\n",
        s.client.value(), s.spec_index, s.spec.min_probability, s.budget,
        s.failure_rate, s.wilson_lower, s.wilson_upper,
        static_cast<unsigned long long>(s.window_failures),
        static_cast<unsigned long long>(s.window_reads),
        s.violating ? "VIOLATING" : "ok", s.avg_staleness, s.avg_attempts);
  }

  std::printf("\nper-request latency breakdown (%zu requests):\n",
              breakdown.events().size());
  breakdown.write_json(std::cout);
  std::printf("\n");

  const int violations = check_agreement(scenario);
  if (violations == 0) {
    std::printf("committed-prefix agreement: OK\n");
  }

  if (write_json) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.field("bench", "live");
    w.field("runtime", runtime::to_string(kind));
    w.field("seed", seed);
    w.field("duration_cap_s", duration_s);
    w.field("elapsed_s", sim::to_sec(scenario.executor().now() - sim::kEpoch));
    w.field("requests_completed", completed);
    w.field("reads_completed", reads_completed);
    w.field("timing_failure_rate", failure_rate);
    w.field("p50_ms", p50_ms);
    w.field("p95_ms", p95_ms);
    w.field("agreement_violations", static_cast<std::int64_t>(violations));
    w.field("telemetry_snapshots", telemetry.snapshots());
    w.field("sla_violations",
            scenario.observability().sla.total_violations());
    w.end_object();
    out << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }

  if (completed == 0) {
    std::fprintf(stderr, "FAIL: no request completed\n");
    return 1;
  }
  if (violations != 0) {
    std::fprintf(stderr, "FAIL: %d agreement violations\n", violations);
    return 1;
  }
  return 0;
}
