// Live scenario runner: the same protocol stack every experiment runs
// under the discrete-event simulator, driven by the wall clock instead.
//
//   live_cli [--duration SEC] [--requests N] [--seed S]
//            [--runtime real|sim] [--json-out FILE] [--no-json]
//            [--telemetry-out FILE] [--telemetry-period MS]
//            [--prom-out FILE]
//
// Boots a sequencer, two primaries, two secondaries, and two workload
// clients with different QoS specs (a strict low-deadline reader and a
// relaxed staleness-tolerant one) on a RealTimeExecutor: messages are
// delivered in-process after real injected latency, heartbeats and the
// lazy publisher fire on wall-clock timers, and requests complete in real
// elapsed time. While running, a MetricsSnapshotter captures the registry
// every --telemetry-period ms and streams it to the console, a JSONL time
// series (--telemetry-out), and a Prometheus text file (--prom-out).
// Prints the observed timing-failure probability, per-client SLA status
// from the live SlaMonitor, and the per-request latency breakdown from the
// obs pipeline, then verifies committed-prefix agreement across the
// replicas before exiting.
//
// Exit status: 0 on a clean run, 1 if no request completed or any
// ordering/agreement check failed. The emitted BENCH_live.json is
// machine- and load-dependent by construction and is NOT part of the
// bench-trend gate (see EXPERIMENTS.md).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/sinks.hpp"
#include "replication/objects.hpp"

using namespace aqueduct;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: live_cli [--duration SEC] [--requests N] [--seed S]\n"
               "  [--runtime real|sim] [--json-out FILE] [--no-json]\n"
               "  [--telemetry-out FILE] [--telemetry-period MS]\n"
               "  [--prom-out FILE]\n");
  std::exit(2);
}

/// One console line per snapshot: elapsed time, request progress (total and
/// delta since the previous snapshot), SLA violations so far.
class ConsoleTelemetry final : public obs::SnapshotSink {
 public:
  void on_snapshot(const obs::MetricsSnapshot& snap) override {
    const auto counter = [](const auto& pairs, const char* name) {
      for (const auto& [n, v] : pairs) {
        if (n == name) return v;
      }
      return std::uint64_t{0};
    };
    const std::uint64_t reads = counter(snap.counters, "client.reads_completed");
    const std::uint64_t updates =
        counter(snap.counters, "client.updates_completed");
    const std::uint64_t delta =
        counter(snap.counter_deltas, "client.reads_completed") +
        counter(snap.counter_deltas, "client.updates_completed");
    const std::uint64_t violations = counter(snap.counters, "sla.violations");
    std::printf(
        "[telemetry] t=%8.3fs seq=%3llu reads=%llu updates=%llu (+%llu) "
        "sla_violations=%llu\n",
        sim::to_sec(snap.at), static_cast<unsigned long long>(snap.seq),
        static_cast<unsigned long long>(reads),
        static_cast<unsigned long long>(updates),
        static_cast<unsigned long long>(delta),
        static_cast<unsigned long long>(violations));
  }
};

/// Committed-prefix agreement at shutdown: no replica ever observed a GSN
/// conflict, every live non-recovering primary applied exactly the prefix
/// it committed (store version == CSN), and live primaries agree on the
/// commit point up to in-flight slack. Returns the number of violations.
int check_agreement(harness::Scenario& scenario) {
  int violations = 0;
  std::uint64_t max_csn = 0;
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    const auto& replica = scenario.replica(i);
    if (replica.stats().gsn_conflicts != 0) {
      std::fprintf(stderr, "VIOLATION: replica %zu saw %llu gsn conflicts\n",
                   i, static_cast<unsigned long long>(
                          replica.stats().gsn_conflicts));
      ++violations;
    }
    if (!replica.crashed() && replica.is_primary() && !replica.recovering()) {
      const auto& store =
          dynamic_cast<const replication::KeyValueStore&>(replica.object());
      if (store.version() != replica.csn()) {
        std::fprintf(stderr,
                     "VIOLATION: replica %zu applied %llu updates but "
                     "committed %llu\n",
                     i, static_cast<unsigned long long>(store.version()),
                     static_cast<unsigned long long>(replica.csn()));
        ++violations;
      }
      max_csn = std::max(max_csn, replica.csn());
    }
  }
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    const auto& replica = scenario.replica(i);
    if (replica.crashed() || !replica.is_primary() || replica.recovering() ||
        i == scenario.index_sequencer()) {
      continue;
    }
    if (replica.csn() + 2 < max_csn) {
      std::fprintf(stderr,
                   "VIOLATION: primary %zu diverged (csn %llu, max %llu)\n",
                   i, static_cast<unsigned long long>(replica.csn()),
                   static_cast<unsigned long long>(max_csn));
      ++violations;
    }
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 2.0;
  std::size_t requests = 15;
  std::uint64_t seed = 42;
  runtime::Kind kind = runtime::Kind::kRealTime;
  std::string json_out = "BENCH_live.json";
  bool write_json = true;
  std::string telemetry_out;  // empty = console only
  double telemetry_period_ms = 100.0;
  std::string prom_out;  // empty = no Prometheus dump

  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--duration") {
      duration_s = std::stod(next_value(i));
    } else if (arg == "--requests") {
      requests = std::stoul(next_value(i));
    } else if (arg == "--seed") {
      seed = std::stoull(next_value(i));
    } else if (arg == "--runtime") {
      const std::string name = next_value(i);
      if (name == "real") {
        kind = runtime::Kind::kRealTime;
      } else if (name == "sim") {
        kind = runtime::Kind::kSim;
      } else {
        usage();
      }
    } else if (arg == "--json-out") {
      json_out = next_value(i);
    } else if (arg == "--no-json") {
      write_json = false;
    } else if (arg == "--telemetry-out") {
      telemetry_out = next_value(i);
    } else if (arg == "--telemetry-period") {
      telemetry_period_ms = std::stod(next_value(i));
      if (telemetry_period_ms <= 0.0) usage();
    } else if (arg == "--prom-out") {
      prom_out = next_value(i);
    } else {
      usage();
    }
  }

  // A small cluster with fast service times so a couple of wall-clock
  // seconds carries a meaningful number of requests: sequencer + 2
  // primaries + 2 secondaries, ~20 ms service, 500 ms lazy publication.
  harness::ScenarioConfig config;
  config.seed = seed;
  config.runtime = kind;
  config.num_primaries = 2;
  config.num_secondaries = 2;
  config.service_mean = std::chrono::milliseconds(20);
  config.service_std = std::chrono::milliseconds(5);
  config.lazy_update_interval = std::chrono::milliseconds(500);
  config.max_sim_time = sim::from_sec(duration_s);
  config.drain = std::chrono::milliseconds(250);
  // Client 0 is demanding (fresh data, tight deadline, high assurance);
  // client 1 tolerates staleness for cheap reads — the paper's trade-off,
  // live.
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 1,
              .deadline = std::chrono::milliseconds(150),
              .min_probability = 0.9},
      .request_delay = std::chrono::milliseconds(50),
      .num_requests = requests,
  });
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 4,
              .deadline = std::chrono::milliseconds(250),
              .min_probability = 0.5},
      .request_delay = std::chrono::milliseconds(50),
      .num_requests = requests,
  });

  harness::Scenario scenario(std::move(config));
  obs::LatencyBreakdownCollector breakdown;
  scenario.observability().trace.add(&breakdown);

  // Telemetry pipeline: console every period, plus optional JSONL time
  // series and Prometheus text dump. The snapshotter runs on the scenario's
  // executor, so the cadence is wall time under `real` and simulated time
  // under `sim`.
  obs::MetricsSnapshotter& telemetry =
      scenario.enable_telemetry(sim::from_ms(telemetry_period_ms));
  ConsoleTelemetry console;
  telemetry.add_sink(&console);
  std::ofstream telemetry_file;
  std::unique_ptr<obs::JsonlSnapshotSink> jsonl_sink;
  if (!telemetry_out.empty()) {
    telemetry_file.open(telemetry_out, std::ios::trunc);
    if (!telemetry_file) {
      std::fprintf(stderr, "cannot write %s\n", telemetry_out.c_str());
      return 1;
    }
    jsonl_sink = std::make_unique<obs::JsonlSnapshotSink>(telemetry_file);
    telemetry.add_sink(jsonl_sink.get());
  }
  std::unique_ptr<obs::PrometheusTextSink> prom_sink;
  if (!prom_out.empty()) {
    prom_sink = std::make_unique<obs::PrometheusTextSink>(prom_out);
    telemetry.add_sink(prom_sink.get());
  }

  std::printf("live_cli: %s runtime, %zu requests x 2 clients, %.1fs cap\n",
              runtime::to_string(kind), requests, duration_s);
  auto results = scenario.run();
  scenario.observability().trace.remove(&breakdown);

  std::uint64_t completed = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t timing_failures = 0;
  std::vector<double> read_times_s;
  for (std::size_t c = 0; c < results.size(); ++c) {
    const auto& stats = results[c].stats;
    completed += stats.reads_completed + stats.updates_completed;
    reads_completed += stats.reads_completed;
    timing_failures += stats.timing_failures;
    read_times_s.insert(read_times_s.end(),
                        results[c].read_response_times.begin(),
                        results[c].read_response_times.end());
    std::printf(
        "client %zu: %llu reads, %llu updates, %llu timing failures, "
        "avg read %.1f ms\n",
        c, static_cast<unsigned long long>(stats.reads_completed),
        static_cast<unsigned long long>(stats.updates_completed),
        static_cast<unsigned long long>(stats.timing_failures),
        sim::to_ms(stats.avg_response_time()));
  }
  const double failure_rate =
      reads_completed > 0
          ? static_cast<double>(timing_failures) /
                static_cast<double>(reads_completed)
          : 0.0;
  const double p50_ms = harness::percentile(read_times_s, 0.50) * 1000.0;
  const double p95_ms = harness::percentile(read_times_s, 0.95) * 1000.0;

  std::printf("\n%llu requests completed in %s (%llu events)\n",
              static_cast<unsigned long long>(completed),
              sim::format(scenario.executor().now()).c_str(),
              static_cast<unsigned long long>(
                  scenario.executor().events_executed()));
  std::printf("observed timing-failure probability: %.3f (%llu/%llu)\n",
              failure_rate, static_cast<unsigned long long>(timing_failures),
              static_cast<unsigned long long>(reads_completed));
  std::printf("read latency: p50 %.1f ms, p95 %.1f ms\n", p50_ms, p95_ms);

  // Per-client SLA status from the live monitor (one line per monitored
  // (client, spec) pair; the workload guarantees at least one read each).
  const auto sla_statuses =
      scenario.observability().sla.statuses(scenario.executor().now());
  std::printf("\nSLA status (%llu snapshots captured):\n",
              static_cast<unsigned long long>(telemetry.snapshots()));
  if (sla_statuses.empty()) {
    std::printf("sla: no reads recorded\n");
  }
  for (const auto& s : sla_statuses) {
    std::printf(
        "sla client n%u spec%u: Pc(d)=%.2f budget=%.3f observed=%.3f "
        "[wilson %.3f..%.3f] window=%llu/%llu %s, avg staleness %.2f, "
        "avg attempts %.2f\n",
        s.client.value(), s.spec_index, s.spec.min_probability, s.budget,
        s.failure_rate, s.wilson_lower, s.wilson_upper,
        static_cast<unsigned long long>(s.window_failures),
        static_cast<unsigned long long>(s.window_reads),
        s.violating ? "VIOLATING" : "ok", s.avg_staleness, s.avg_attempts);
  }

  std::printf("\nper-request latency breakdown (%zu requests):\n",
              breakdown.events().size());
  breakdown.write_json(std::cout);
  std::printf("\n");

  const int violations = check_agreement(scenario);
  if (violations == 0) {
    std::printf("committed-prefix agreement: OK\n");
  }

  if (write_json) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.field("bench", "live");
    w.field("runtime", runtime::to_string(kind));
    w.field("seed", seed);
    w.field("duration_cap_s", duration_s);
    w.field("elapsed_s", sim::to_sec(scenario.executor().now() - sim::kEpoch));
    w.field("requests_completed", completed);
    w.field("reads_completed", reads_completed);
    w.field("timing_failure_rate", failure_rate);
    w.field("p50_ms", p50_ms);
    w.field("p95_ms", p95_ms);
    w.field("agreement_violations", static_cast<std::int64_t>(violations));
    w.field("telemetry_snapshots", telemetry.snapshots());
    w.field("sla_violations",
            scenario.observability().sla.total_violations());
    w.end_object();
    out << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }

  if (completed == 0) {
    std::fprintf(stderr, "FAIL: no request completed\n");
    return 1;
  }
  if (violations != 0) {
    std::fprintf(stderr, "FAIL: %d agreement violations\n", violations);
    return 1;
  }
  return 0;
}
