// Configurable scenario runner: explore the QoS/consistency trade-offs
// from the command line without writing code.
//
//   scenario_cli [--primaries N] [--secondaries N] [--requests N]
//                [--deadline-ms D] [--staleness A] [--probability P]
//                [--lui-ms L] [--request-delay-ms R] [--clients N]
//                [--service-mean-ms M] [--service-std-ms S]
//                [--seed S] [--crash INDEX@SECONDS]... [--csv]
//                [--trace-out PREFIX] [--metrics-out FILE]
//
// Example: reproduce one Figure-4 point:
//   scenario_cli --deadline-ms 140 --probability 0.9 --lui-ms 4000
//
// --trace-out PREFIX writes PREFIX.jsonl (one JSON event per line) and
// PREFIX.trace.json (Chrome trace_event format — load in chrome://tracing
// or ui.perfetto.dev), plus a per-request latency-breakdown report on
// stdout. --metrics-out FILE dumps the metrics registry as JSON.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "obs/export.hpp"

using namespace aqueduct;

namespace {

struct CliCrash {
  std::size_t index;
  double at_seconds;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: scenario_cli [--primaries N] [--secondaries N] "
               "[--requests N]\n"
               "  [--deadline-ms D] [--staleness A] [--probability P] "
               "[--lui-ms L]\n"
               "  [--request-delay-ms R] [--clients N] [--service-mean-ms M]\n"
               "  [--service-std-ms S] [--seed S] [--open-loop] "
               "[--crash INDEX@SECONDS] [--csv]\n"
               "  [--trace-out PREFIX] [--metrics-out FILE]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  harness::ScenarioConfig config;
  config.seed = 42;
  std::size_t clients = 2;
  std::size_t requests = 400;
  double deadline_ms = 140;
  core::Staleness staleness = 2;
  double probability = 0.9;
  double request_delay_ms = 1000;
  bool open_loop = false;
  bool csv = false;
  std::string trace_out;
  std::string metrics_out;
  std::vector<CliCrash> crashes;

  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--primaries") {
      config.num_primaries = std::stoul(next_value(i));
    } else if (arg == "--secondaries") {
      config.num_secondaries = std::stoul(next_value(i));
    } else if (arg == "--requests") {
      requests = std::stoul(next_value(i));
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::stod(next_value(i));
    } else if (arg == "--staleness") {
      staleness = std::stoull(next_value(i));
    } else if (arg == "--probability") {
      probability = std::stod(next_value(i));
    } else if (arg == "--lui-ms") {
      config.lazy_update_interval = sim::from_ms(std::stod(next_value(i)));
    } else if (arg == "--request-delay-ms") {
      request_delay_ms = std::stod(next_value(i));
    } else if (arg == "--clients") {
      clients = std::stoul(next_value(i));
    } else if (arg == "--service-mean-ms") {
      config.service_mean = sim::from_ms(std::stod(next_value(i)));
    } else if (arg == "--service-std-ms") {
      config.service_std = sim::from_ms(std::stod(next_value(i)));
    } else if (arg == "--seed") {
      config.seed = std::stoull(next_value(i));
    } else if (arg == "--open-loop") {
      open_loop = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--trace-out") {
      trace_out = next_value(i);
    } else if (arg == "--metrics-out") {
      metrics_out = next_value(i);
    } else if (arg == "--crash") {
      const std::string spec = next_value(i);
      const auto at = spec.find('@');
      if (at == std::string::npos) usage();
      crashes.push_back({std::stoul(spec.substr(0, at)),
                         std::stod(spec.substr(at + 1))});
    } else {
      usage();
    }
  }

  for (std::size_t c = 0; c < clients; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = staleness,
                .deadline = sim::from_ms(deadline_ms),
                .min_probability = probability},
        .request_delay = sim::from_ms(request_delay_ms),
        .num_requests = requests,
        .arrival = open_loop ? harness::Arrival::kOpenPoisson
                             : harness::Arrival::kClosedLoop,
    });
  }

  harness::Scenario scenario(std::move(config));
  for (const CliCrash& crash : crashes) {
    if (crash.index >= scenario.num_replicas()) usage();
    scenario.schedule_crash(crash.index,
                            sim::kEpoch + sim::from_sec(crash.at_seconds));
  }

  // Trace sinks must subscribe before run() so they see every event.
  std::ofstream jsonl_file;
  std::unique_ptr<obs::JsonLinesSink> jsonl_sink;
  obs::ChromeTraceSink chrome_sink;
  obs::LatencyBreakdownCollector breakdown;
  obs::TraceHub& hub = scenario.observability().trace;
  if (!trace_out.empty()) {
    jsonl_file.open(trace_out + ".jsonl");
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot write %s.jsonl\n", trace_out.c_str());
      return 1;
    }
    jsonl_sink = std::make_unique<obs::JsonLinesSink>(jsonl_file);
    hub.add(jsonl_sink.get());
    hub.add(&chrome_sink);
    hub.add(&breakdown);
  }

  auto results = scenario.run();

  harness::Table table({"client", "reads", "timing_failure_prob", "95%_CI",
                        "avg_replicas", "avg_read_ms", "p99_read_ms",
                        "deferred", "staleness_violations", "abandoned"});
  for (std::size_t c = 0; c < results.size(); ++c) {
    const auto& stats = results[c].stats;
    const auto ci = harness::binomial_ci_normal(stats.timing_failures,
                                                stats.reads_completed);
    table.add_row(
        {std::to_string(c), std::to_string(stats.reads_completed),
         harness::Table::num(ci.point, 3),
         "[" + harness::Table::num(ci.lower, 3) + "," +
             harness::Table::num(ci.upper, 3) + "]",
         harness::Table::num(stats.avg_replicas_selected(), 2),
         harness::Table::num(sim::to_ms(stats.avg_response_time()), 1),
         harness::Table::num(
             harness::percentile(results[c].read_response_times, 0.99) * 1000.0,
             1),
         std::to_string(stats.deferred_replies),
         std::to_string(stats.staleness_violations),
         std::to_string(stats.reads_abandoned)});
  }
  std::printf("simulated %s, %llu events\n",
              sim::format(scenario.executor().now()).c_str(),
              static_cast<unsigned long long>(
                  scenario.executor().events_executed()));
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print();
  }

  if (!trace_out.empty()) {
    hub.remove(jsonl_sink.get());
    hub.remove(&chrome_sink);
    hub.remove(&breakdown);
    jsonl_file.close();
    std::ofstream chrome_file(trace_out + ".trace.json");
    chrome_sink.write(chrome_file);
    std::printf("wrote %s.jsonl and %s.trace.json (%zu events)\n",
                trace_out.c_str(), trace_out.c_str(),
                chrome_sink.num_events());
    std::printf("latency breakdown (%zu requests):\n",
                breakdown.events().size());
    breakdown.write_json(std::cout);
    std::printf("\n");
  }
  if (!metrics_out.empty()) {
    std::ofstream metrics_file(metrics_out);
    if (!metrics_file) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    scenario.observability().metrics.write_json(metrics_file);
    metrics_file << "\n";
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}
