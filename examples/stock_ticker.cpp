// Online stock trading — one of the paper's examples of "applications that
// benefit from relaxed but bounded inconsistency in exchange for
// timeliness" (Section 1).
//
// A market feed updates prices continuously. Two consumers:
//   * a trader whose decisions are worthless after 100 ms — it accepts
//     quotes up to 3 updates stale to get them fast;
//   * a compliance auditor that needs exact state and can wait.
// Halfway through the run one primary replica crashes; the adaptive
// selection keeps both clients inside their QoS.
#include <cstdio>
#include <memory>
#include <vector>

#include "client/handler.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

using namespace aqueduct;
using namespace std::chrono_literals;

int main() {
  sim::Simulator sim(99);
  net::LoopbackTransport lan(sim, std::make_unique<sim::NormalDuration>(400us, 150us));
  gcs::Directory directory;
  const auto groups = replication::ServiceGroups::for_service(1);

  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas;
  auto add_replica = [&](bool primary) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, lan, directory);
    replication::ReplicaConfig config;
    config.service_time = std::make_shared<sim::NormalDuration>(30ms, 12ms);
    config.lazy_update_interval = 1s;  // fast-moving data: propagate often
    replicas.push_back(std::make_unique<replication::ReplicaServer>(
        sim, *endpoint, groups, primary,
        std::make_unique<replication::StockTicker>(), std::move(config)));
    endpoints.push_back(std::move(endpoint));
  };
  add_replica(true);  // sequencer
  for (int i = 0; i < 3; ++i) add_replica(true);
  for (int i = 0; i < 4; ++i) add_replica(false);
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    sim.after(i * 10ms, [&, i] { replicas[i]->start(); });
  }

  auto make_client = [&](client::ClientConfig config = {}) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, lan, directory);
    auto handler = std::make_unique<client::ClientHandler>(sim, *endpoint,
                                                           groups, std::move(config));
    handler->start();
    endpoints.push_back(std::move(endpoint));
    return handler;
  };
  auto feed = make_client();
  auto trader = make_client();
  auto auditor = make_client();
  sim.run_for(1s);

  // The market feed: a price tick every 150 ms.
  const char* symbols[] = {"ACME", "GLOBO", "INITECH"};
  for (int i = 0; i < 300; ++i) {
    sim.after(i * 150ms, [&, i] {
      auto tick = std::make_shared<replication::TickerSet>();
      tick->symbol = symbols[i % 3];
      tick->price = 100.0 + (i % 17) * 0.25;
      feed->update(tick, {});
    });
  }

  // The trader: tight deadline, bounded staleness.
  const core::QoSSpec trader_qos{.staleness_threshold = 3,
                                 .deadline = 100ms,
                                 .min_probability = 0.9};
  std::size_t trader_reads = 0, trader_failures = 0, trader_deferred = 0;
  for (int i = 0; i < 150; ++i) {
    sim.after(500ms + i * 250ms, [&, i] {
      auto get = std::make_shared<replication::TickerGet>();
      get->symbol = symbols[i % 3];
      trader->read(get, trader_qos, [&](const client::ReadOutcome& outcome) {
        ++trader_reads;
        if (outcome.timing_failure) ++trader_failures;
        if (outcome.deferred) ++trader_deferred;
      });
    });
  }

  // The auditor: exact state, patient.
  const core::QoSSpec auditor_qos{.staleness_threshold = 0,
                                  .deadline = 5s,
                                  .min_probability = 0.5};
  std::size_t audit_reads = 0, audit_stale = 0;
  for (int i = 0; i < 20; ++i) {
    sim.after(1s + i * 2s, [&, i] {
      auto get = std::make_shared<replication::TickerGet>();
      get->symbol = symbols[i % 3];
      auditor->read(get, auditor_qos, [&](const client::ReadOutcome& outcome) {
        ++audit_reads;
        if (outcome.staleness > 0) ++audit_stale;
      });
    });
  }

  // Crash one primary mid-run: the model adapts.
  sim.after(20s, [&] {
    std::printf("t=20s: primary replica %s crashes\n",
                net::to_string(replicas[2]->id()).c_str());
    replicas[2]->crash();
  });

  sim.run_for(60s);

  std::printf("\nstock-ticker run: 300 price ticks, 1 primary crash at t=20s\n");
  std::printf("trader  : %zu quotes, %zu timing failures (%.1f%%, allowed %.0f%%), %zu deferred, avg %.2f replicas/quote\n",
              trader_reads, trader_failures,
              trader_reads ? 100.0 * trader_failures / trader_reads : 0.0,
              100.0 * (1.0 - trader_qos.min_probability), trader_deferred,
              trader->stats().avg_replicas_selected());
  std::printf("auditor : %zu audits, %zu served from stale state (must be 0)\n",
              audit_reads, audit_stale);
  std::printf("feed    : %llu ticks committed\n",
              static_cast<unsigned long long>(feed->stats().updates_completed));
  return 0;
}
