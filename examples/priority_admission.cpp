// Section 7 extensions in action: priority-based QoS and admission control.
//
// A brokerage front-end offers three service tiers (bronze/silver/gold)
// instead of exposing raw probabilities; the PriorityMapper turns tiers
// into Pc(d) values. Before activating a tier for a customer, the
// AdmissionController checks whether the current replica pool could
// actually honour it — a gold SLA on a degraded pool is refused rather
// than silently violated.
#include <cstdio>
#include <memory>
#include <vector>

#include "client/admission.hpp"
#include "client/handler.hpp"
#include "core/priority.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

using namespace aqueduct;
using namespace std::chrono_literals;

int main() {
  sim::Simulator sim(17);
  net::LoopbackTransport lan(sim, std::make_unique<sim::NormalDuration>(500us, 200us));
  gcs::Directory directory;
  const auto groups = replication::ServiceGroups::for_service(1);

  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas;
  auto add_replica = [&](bool primary) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, lan, directory);
    replication::ReplicaConfig config;
    config.service_time = std::make_shared<sim::NormalDuration>(80ms, 35ms);
    config.lazy_update_interval = 2s;
    replicas.push_back(std::make_unique<replication::ReplicaServer>(
        sim, *endpoint, groups, primary,
        std::make_unique<replication::StockTicker>(), std::move(config)));
    endpoints.push_back(std::move(endpoint));
  };
  add_replica(true);  // sequencer
  for (int i = 0; i < 3; ++i) add_replica(true);
  for (int i = 0; i < 4; ++i) add_replica(false);
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    sim.after(i * 10ms, [&, i] { replicas[i]->start(); });
  }

  auto client_ep = std::make_unique<gcs::Endpoint>(sim, lan, directory);
  client::ClientHandler client(sim, *client_ep, groups, {});
  client.start();
  sim.run_for(1s);

  // Warm the performance histories so admission has data to judge.
  const core::PriorityMapper mapper;
  for (int i = 0; i < 80; ++i) {
    auto tick = std::make_shared<replication::TickerSet>();
    tick->symbol = "ACME";
    tick->price = 100.0 + i;
    client.update(tick, {});
    auto get = std::make_shared<replication::TickerGet>();
    get->symbol = "ACME";
    client.read(get, mapper.to_qos(core::Priority::kLow, 4, 300ms), {});
    sim.run_for(250ms);
  }

  // Evaluate each tier against the live pool.
  struct Tier {
    const char* name;
    core::Priority priority;
    sim::Duration deadline;
  };
  const std::vector<Tier> tiers = {
      {"bronze (Pc=0.5, d=250ms)", core::Priority::kLow, 250ms},
      {"silver (Pc=0.8, d=150ms)", core::Priority::kNormal, 150ms},
      {"gold   (Pc=0.9, d=120ms)", core::Priority::kHigh, 120ms},
      {"platinum (Pc=0.99, d=60ms)", core::Priority::kCritical, 60ms},
  };
  const client::AdmissionController admission(/*headroom=*/0.02);

  auto report = [&](const char* when) {
    std::printf("\n--- admission decisions %s ---\n", when);
    for (const auto& tier : tiers) {
      const auto qos = mapper.to_qos(tier.priority, 2, tier.deadline);
      const auto decision =
          admission.evaluate(client.repository(), qos, sim.now());
      std::printf("%-28s -> %s (achievable P=%.3f over %zu replicas)\n",
                  tier.name, decision.admitted ? "ADMIT " : "REFUSE",
                  decision.achievable_probability, decision.available_replicas);
    }
  };
  report("with the full pool");

  // Degrade the pool: crash two primaries, re-evaluate.
  replicas[2]->crash();
  replicas[3]->crash();
  sim.run_for(6s);  // failure detection + reconfiguration
  // Refresh histories against the reduced pool (same mixed workload as
  // the warm-up, so the two reports compare like for like).
  for (int i = 0; i < 40; ++i) {
    auto tick = std::make_shared<replication::TickerSet>();
    tick->symbol = "ACME";
    tick->price = 200.0 + i;
    client.update(tick, {});
    auto get = std::make_shared<replication::TickerGet>();
    get->symbol = "ACME";
    client.read(get, mapper.to_qos(core::Priority::kLow, 4, 300ms), {});
    sim.run_for(250ms);
  }
  report("after two primary crashes");

  // Cost-based mapping (Section 7's other suggestion).
  std::printf("\n--- willingness-to-pay mapping (max spend 100) ---\n");
  for (const double cost : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    std::printf("spend %5.1f -> Pc = %.3f\n", cost,
                mapper.probability_for_cost(cost, 100.0));
  }
  return 0;
}
