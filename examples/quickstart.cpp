// Quickstart: boot a replicated key-value service and issue QoS-tagged
// reads and updates against it.
//
//   * 1 sequencer + 2 primary replicas + 3 secondary replicas
//   * updates are sequentially consistent (sequencer-ordered)
//   * reads carry a QoS spec <staleness a, deadline d, probability Pc>;
//     the client-side gateway picks the replica subset that meets it
//     (paper Algorithm 1) and delivers the first reply.
//
// Everything runs inside the deterministic discrete-event simulator, so
// the output is reproducible.
#include <cstdio>
#include <memory>
#include <vector>

#include "client/handler.hpp"
#include "gcs/endpoint.hpp"
#include "net/loopback.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

using namespace aqueduct;
using namespace std::chrono_literals;

int main() {
  // --- 1. The simulated LAN -------------------------------------------------
  sim::Simulator sim(/*seed=*/2026);
  net::LoopbackTransport lan(sim, std::make_unique<sim::NormalDuration>(500us, 200us));
  gcs::Directory directory;
  const auto groups = replication::ServiceGroups::for_service(1);

  // --- 2. Replicas ----------------------------------------------------------
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas;
  auto add_replica = [&](bool primary) {
    auto endpoint = std::make_unique<gcs::Endpoint>(sim, lan, directory);
    replication::ReplicaConfig config;
    // Simulated request-processing load, as in the paper's experiments.
    config.service_time = std::make_shared<sim::NormalDuration>(40ms, 15ms);
    config.lazy_update_interval = 2s;  // the consistency/timeliness knob
    replicas.push_back(std::make_unique<replication::ReplicaServer>(
        sim, *endpoint, groups, primary,
        std::make_unique<replication::KeyValueStore>(), std::move(config)));
    endpoints.push_back(std::move(endpoint));
  };
  add_replica(true);  // first primary-group joiner becomes the sequencer
  add_replica(true);
  add_replica(true);
  add_replica(false);
  add_replica(false);
  add_replica(false);
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    sim.after(i * 10ms, [&, i] { replicas[i]->start(); });
  }

  // --- 3. A client ----------------------------------------------------------
  auto client_endpoint = std::make_unique<gcs::Endpoint>(sim, lan, directory);
  client::ClientHandler client(sim, *client_endpoint, groups, {});
  client.start();
  sim.run_for(1s);  // let the groups form

  // --- 4. Updates (sequentially consistent) ---------------------------------
  for (int i = 0; i < 5; ++i) {
    auto put = std::make_shared<replication::KvPut>();
    put->key = "answer";
    put->value = "v" + std::to_string(i);
    client.update(put, [i](const client::UpdateOutcome& outcome) {
      std::printf("update %d committed in %s\n", i,
                  sim::format(outcome.response_time).c_str());
    });
    sim.run_for(300ms);
  }

  // --- 5. A QoS-tagged read -------------------------------------------------
  // "at most 1 version stale, within 120 ms, with probability >= 0.9"
  const core::QoSSpec qos{.staleness_threshold = 1,
                          .deadline = 120ms,
                          .min_probability = 0.9};
  auto get = std::make_shared<replication::KvGet>();
  get->key = "answer";
  client.read(get, qos, [](const client::ReadOutcome& outcome) {
    const auto result = net::message_cast<replication::KvResult>(outcome.result);
    std::printf(
        "read -> value=%s staleness=%llu versions, served by %s in %s "
        "(deferred=%s, %zu replicas selected, predicted P=%0.3f, timing "
        "failure=%s)\n",
        result && result->value ? result->value->c_str() : "<none>",
        static_cast<unsigned long long>(outcome.staleness),
        net::to_string(outcome.responder).c_str(),
        sim::format(outcome.response_time).c_str(),
        outcome.deferred ? "yes" : "no", outcome.replicas_selected,
        outcome.predicted_probability, outcome.timing_failure ? "YES" : "no");
  });
  sim.run_for(2s);

  const auto& stats = client.stats();
  std::printf(
      "\nclient stats: %llu updates, %llu reads, %llu timing failures, "
      "avg %.2f replicas selected per read\n",
      static_cast<unsigned long long>(stats.updates_completed),
      static_cast<unsigned long long>(stats.reads_completed),
      static_cast<unsigned long long>(stats.timing_failures),
      stats.avg_replicas_selected());
  return 0;
}
