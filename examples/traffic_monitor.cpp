// Traffic monitoring — the paper's second real-time database example
// (Section 1). Road-segment sensors continuously update a shared state;
// dashboards read it with a staleness tolerance and a refresh deadline.
//
// This example uses the experiment harness directly: it is also a
// demonstration of how to script custom workloads for new studies.
#include <cstdio>
#include <memory>

#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace aqueduct;
using namespace std::chrono_literals;

int main() {
  harness::ScenarioConfig config;
  config.seed = 314;
  config.num_primaries = 3;
  config.num_secondaries = 7;  // read-heavy workload: many secondaries
  config.service_mean = 50ms;
  config.service_std = 20ms;
  config.lazy_update_interval = 2s;

  // Sensor gateway: frequent small updates, no read QoS to speak of.
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 100, .deadline = 5s, .min_probability = 0.1},
      .request_delay = 100ms,
      .num_requests = 600,
  });
  // Wall dashboard: refreshes every 500 ms, tolerates 5 stale versions,
  // wants the refresh inside 150 ms with probability 0.9.
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 5, .deadline = 150ms, .min_probability = 0.9},
      .request_delay = 500ms,
      .num_requests = 400,
  });
  // Incident console: near-fresh view (1 version), 300 ms, 0.8.
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 1, .deadline = 300ms, .min_probability = 0.8},
      .request_delay = 1s,
      .num_requests = 200,
  });

  harness::Scenario scenario(std::move(config));
  // Rush-hour failure: one secondary dies 30 s in.
  scenario.schedule_crash(6, sim::kEpoch + 30s);
  auto results = scenario.run();

  const char* names[] = {"sensor gateway  ", "wall dashboard  ",
                         "incident console"};
  harness::Table table({"client", "reads", "timing_failure_prob", "95%_CI",
                        "deferred", "avg_read_ms", "avg_replicas",
                        "staleness_violations"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& stats = results[i].stats;
    const auto ci = harness::binomial_ci_normal(stats.timing_failures,
                                                stats.reads_completed);
    table.add_row({names[i], std::to_string(stats.reads_completed),
                   harness::Table::num(ci.point, 3),
                   "[" + harness::Table::num(ci.lower, 3) + "," +
                       harness::Table::num(ci.upper, 3) + "]",
                   std::to_string(stats.deferred_replies),
                   harness::Table::num(sim::to_ms(stats.avg_response_time()), 1),
                   harness::Table::num(stats.avg_replicas_selected(), 2),
                   std::to_string(stats.staleness_violations)});
  }
  std::printf("traffic-monitoring run (1 secondary crash at t=30s):\n\n");
  table.print();
  std::printf(
      "\nthe sensor gateway's updates stay sequentially consistent on the "
      "primaries;\ndashboards read mostly from secondaries within their "
      "staleness budget, and the\nincident console pays for freshness "
      "with more selected replicas.\n");
  return 0;
}
