file(REMOVE_RECURSE
  "libaqueduct_client.a"
)
