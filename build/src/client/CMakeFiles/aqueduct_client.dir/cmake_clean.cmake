file(REMOVE_RECURSE
  "CMakeFiles/aqueduct_client.dir/fifo_handler.cpp.o"
  "CMakeFiles/aqueduct_client.dir/fifo_handler.cpp.o.d"
  "CMakeFiles/aqueduct_client.dir/handler.cpp.o"
  "CMakeFiles/aqueduct_client.dir/handler.cpp.o.d"
  "CMakeFiles/aqueduct_client.dir/repository.cpp.o"
  "CMakeFiles/aqueduct_client.dir/repository.cpp.o.d"
  "libaqueduct_client.a"
  "libaqueduct_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqueduct_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
