# Empty dependencies file for aqueduct_client.
# This may be replaced when dependencies are built.
