file(REMOVE_RECURSE
  "libaqueduct_core.a"
)
