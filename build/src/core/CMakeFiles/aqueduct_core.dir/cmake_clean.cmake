file(REMOVE_RECURSE
  "CMakeFiles/aqueduct_core.dir/pmf.cpp.o"
  "CMakeFiles/aqueduct_core.dir/pmf.cpp.o.d"
  "CMakeFiles/aqueduct_core.dir/qos.cpp.o"
  "CMakeFiles/aqueduct_core.dir/qos.cpp.o.d"
  "CMakeFiles/aqueduct_core.dir/response_model.cpp.o"
  "CMakeFiles/aqueduct_core.dir/response_model.cpp.o.d"
  "CMakeFiles/aqueduct_core.dir/selection.cpp.o"
  "CMakeFiles/aqueduct_core.dir/selection.cpp.o.d"
  "CMakeFiles/aqueduct_core.dir/staleness.cpp.o"
  "CMakeFiles/aqueduct_core.dir/staleness.cpp.o.d"
  "libaqueduct_core.a"
  "libaqueduct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqueduct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
