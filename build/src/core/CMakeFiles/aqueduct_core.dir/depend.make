# Empty dependencies file for aqueduct_core.
# This may be replaced when dependencies are built.
