
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/pmf.cpp" "src/core/CMakeFiles/aqueduct_core.dir/pmf.cpp.o" "gcc" "src/core/CMakeFiles/aqueduct_core.dir/pmf.cpp.o.d"
  "/root/repo/src/core/qos.cpp" "src/core/CMakeFiles/aqueduct_core.dir/qos.cpp.o" "gcc" "src/core/CMakeFiles/aqueduct_core.dir/qos.cpp.o.d"
  "/root/repo/src/core/response_model.cpp" "src/core/CMakeFiles/aqueduct_core.dir/response_model.cpp.o" "gcc" "src/core/CMakeFiles/aqueduct_core.dir/response_model.cpp.o.d"
  "/root/repo/src/core/selection.cpp" "src/core/CMakeFiles/aqueduct_core.dir/selection.cpp.o" "gcc" "src/core/CMakeFiles/aqueduct_core.dir/selection.cpp.o.d"
  "/root/repo/src/core/staleness.cpp" "src/core/CMakeFiles/aqueduct_core.dir/staleness.cpp.o" "gcc" "src/core/CMakeFiles/aqueduct_core.dir/staleness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/aqueduct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aqueduct_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
