file(REMOVE_RECURSE
  "libaqueduct_net.a"
)
