file(REMOVE_RECURSE
  "CMakeFiles/aqueduct_net.dir/network.cpp.o"
  "CMakeFiles/aqueduct_net.dir/network.cpp.o.d"
  "libaqueduct_net.a"
  "libaqueduct_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqueduct_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
