# Empty dependencies file for aqueduct_net.
# This may be replaced when dependencies are built.
