file(REMOVE_RECURSE
  "libaqueduct_harness.a"
)
