# Empty compiler generated dependencies file for aqueduct_harness.
# This may be replaced when dependencies are built.
