file(REMOVE_RECURSE
  "CMakeFiles/aqueduct_harness.dir/scenario.cpp.o"
  "CMakeFiles/aqueduct_harness.dir/scenario.cpp.o.d"
  "CMakeFiles/aqueduct_harness.dir/stats.cpp.o"
  "CMakeFiles/aqueduct_harness.dir/stats.cpp.o.d"
  "CMakeFiles/aqueduct_harness.dir/table.cpp.o"
  "CMakeFiles/aqueduct_harness.dir/table.cpp.o.d"
  "libaqueduct_harness.a"
  "libaqueduct_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqueduct_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
