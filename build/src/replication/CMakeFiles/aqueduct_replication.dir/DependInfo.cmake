
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/fifo.cpp" "src/replication/CMakeFiles/aqueduct_replication.dir/fifo.cpp.o" "gcc" "src/replication/CMakeFiles/aqueduct_replication.dir/fifo.cpp.o.d"
  "/root/repo/src/replication/objects.cpp" "src/replication/CMakeFiles/aqueduct_replication.dir/objects.cpp.o" "gcc" "src/replication/CMakeFiles/aqueduct_replication.dir/objects.cpp.o.d"
  "/root/repo/src/replication/replica.cpp" "src/replication/CMakeFiles/aqueduct_replication.dir/replica.cpp.o" "gcc" "src/replication/CMakeFiles/aqueduct_replication.dir/replica.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aqueduct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/aqueduct_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aqueduct_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqueduct_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
