file(REMOVE_RECURSE
  "libaqueduct_replication.a"
)
