# Empty dependencies file for aqueduct_replication.
# This may be replaced when dependencies are built.
