file(REMOVE_RECURSE
  "CMakeFiles/aqueduct_replication.dir/fifo.cpp.o"
  "CMakeFiles/aqueduct_replication.dir/fifo.cpp.o.d"
  "CMakeFiles/aqueduct_replication.dir/objects.cpp.o"
  "CMakeFiles/aqueduct_replication.dir/objects.cpp.o.d"
  "CMakeFiles/aqueduct_replication.dir/replica.cpp.o"
  "CMakeFiles/aqueduct_replication.dir/replica.cpp.o.d"
  "libaqueduct_replication.a"
  "libaqueduct_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqueduct_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
