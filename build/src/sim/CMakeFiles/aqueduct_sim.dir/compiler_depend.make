# Empty compiler generated dependencies file for aqueduct_sim.
# This may be replaced when dependencies are built.
