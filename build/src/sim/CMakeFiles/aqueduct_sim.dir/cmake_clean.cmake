file(REMOVE_RECURSE
  "CMakeFiles/aqueduct_sim.dir/event_queue.cpp.o"
  "CMakeFiles/aqueduct_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/aqueduct_sim.dir/simulator.cpp.o"
  "CMakeFiles/aqueduct_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/aqueduct_sim.dir/time.cpp.o"
  "CMakeFiles/aqueduct_sim.dir/time.cpp.o.d"
  "libaqueduct_sim.a"
  "libaqueduct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqueduct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
