file(REMOVE_RECURSE
  "libaqueduct_sim.a"
)
