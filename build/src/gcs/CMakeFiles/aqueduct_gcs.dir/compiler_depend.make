# Empty compiler generated dependencies file for aqueduct_gcs.
# This may be replaced when dependencies are built.
