file(REMOVE_RECURSE
  "libaqueduct_gcs.a"
)
