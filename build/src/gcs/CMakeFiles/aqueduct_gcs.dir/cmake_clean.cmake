file(REMOVE_RECURSE
  "CMakeFiles/aqueduct_gcs.dir/endpoint.cpp.o"
  "CMakeFiles/aqueduct_gcs.dir/endpoint.cpp.o.d"
  "CMakeFiles/aqueduct_gcs.dir/member.cpp.o"
  "CMakeFiles/aqueduct_gcs.dir/member.cpp.o.d"
  "libaqueduct_gcs.a"
  "libaqueduct_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqueduct_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
