file(REMOVE_RECURSE
  "CMakeFiles/document_sharing.dir/document_sharing.cpp.o"
  "CMakeFiles/document_sharing.dir/document_sharing.cpp.o.d"
  "document_sharing"
  "document_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
