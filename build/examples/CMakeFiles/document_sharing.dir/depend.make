# Empty dependencies file for document_sharing.
# This may be replaced when dependencies are built.
