file(REMOVE_RECURSE
  "CMakeFiles/priority_admission.dir/priority_admission.cpp.o"
  "CMakeFiles/priority_admission.dir/priority_admission.cpp.o.d"
  "priority_admission"
  "priority_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
