# Empty dependencies file for priority_admission.
# This may be replaced when dependencies are built.
