file(REMOVE_RECURSE
  "CMakeFiles/multi_service_test.dir/multi_service_test.cpp.o"
  "CMakeFiles/multi_service_test.dir/multi_service_test.cpp.o.d"
  "multi_service_test"
  "multi_service_test.pdb"
  "multi_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
