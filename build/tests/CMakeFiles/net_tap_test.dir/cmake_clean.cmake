file(REMOVE_RECURSE
  "CMakeFiles/net_tap_test.dir/net_tap_test.cpp.o"
  "CMakeFiles/net_tap_test.dir/net_tap_test.cpp.o.d"
  "net_tap_test"
  "net_tap_test.pdb"
  "net_tap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
