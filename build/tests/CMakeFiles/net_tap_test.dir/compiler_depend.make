# Empty compiler generated dependencies file for net_tap_test.
# This may be replaced when dependencies are built.
