# Empty dependencies file for dynamic_membership_test.
# This may be replaced when dependencies are built.
