file(REMOVE_RECURSE
  "CMakeFiles/dynamic_membership_test.dir/dynamic_membership_test.cpp.o"
  "CMakeFiles/dynamic_membership_test.dir/dynamic_membership_test.cpp.o.d"
  "dynamic_membership_test"
  "dynamic_membership_test.pdb"
  "dynamic_membership_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_membership_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
