
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/objects_test.cpp" "tests/CMakeFiles/objects_test.dir/objects_test.cpp.o" "gcc" "tests/CMakeFiles/objects_test.dir/objects_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/aqueduct_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/aqueduct_client.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/aqueduct_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/aqueduct_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aqueduct_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aqueduct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqueduct_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
