file(REMOVE_RECURSE
  "CMakeFiles/pmf_test.dir/pmf_test.cpp.o"
  "CMakeFiles/pmf_test.dir/pmf_test.cpp.o.d"
  "pmf_test"
  "pmf_test.pdb"
  "pmf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
