# Empty compiler generated dependencies file for pmf_test.
# This may be replaced when dependencies are built.
