# Empty dependencies file for gcs_failure_test.
# This may be replaced when dependencies are built.
