file(REMOVE_RECURSE
  "CMakeFiles/gcs_failure_test.dir/gcs_failure_test.cpp.o"
  "CMakeFiles/gcs_failure_test.dir/gcs_failure_test.cpp.o.d"
  "gcs_failure_test"
  "gcs_failure_test.pdb"
  "gcs_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
