# Empty dependencies file for gcs_config_test.
# This may be replaced when dependencies are built.
