file(REMOVE_RECURSE
  "CMakeFiles/gcs_config_test.dir/gcs_config_test.cpp.o"
  "CMakeFiles/gcs_config_test.dir/gcs_config_test.cpp.o.d"
  "gcs_config_test"
  "gcs_config_test.pdb"
  "gcs_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
