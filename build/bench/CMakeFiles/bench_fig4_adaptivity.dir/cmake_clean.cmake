file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_adaptivity.dir/bench_fig4_adaptivity.cpp.o"
  "CMakeFiles/bench_fig4_adaptivity.dir/bench_fig4_adaptivity.cpp.o.d"
  "bench_fig4_adaptivity"
  "bench_fig4_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
