# Empty compiler generated dependencies file for bench_ordering_handlers.
# This may be replaced when dependencies are built.
