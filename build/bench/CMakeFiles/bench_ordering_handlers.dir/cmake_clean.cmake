file(REMOVE_RECURSE
  "CMakeFiles/bench_ordering_handlers.dir/bench_ordering_handlers.cpp.o"
  "CMakeFiles/bench_ordering_handlers.dir/bench_ordering_handlers.cpp.o.d"
  "bench_ordering_handlers"
  "bench_ordering_handlers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ordering_handlers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
