# Empty compiler generated dependencies file for bench_open_loop.
# This may be replaced when dependencies are built.
