file(REMOVE_RECURSE
  "CMakeFiles/bench_open_loop.dir/bench_open_loop.cpp.o"
  "CMakeFiles/bench_open_loop.dir/bench_open_loop.cpp.o.d"
  "bench_open_loop"
  "bench_open_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_open_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
