# Empty dependencies file for bench_group_sizing.
# This may be replaced when dependencies are built.
