file(REMOVE_RECURSE
  "CMakeFiles/bench_group_sizing.dir/bench_group_sizing.cpp.o"
  "CMakeFiles/bench_group_sizing.dir/bench_group_sizing.cpp.o.d"
  "bench_group_sizing"
  "bench_group_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
