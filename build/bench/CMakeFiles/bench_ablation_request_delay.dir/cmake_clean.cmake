file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_request_delay.dir/bench_ablation_request_delay.cpp.o"
  "CMakeFiles/bench_ablation_request_delay.dir/bench_ablation_request_delay.cpp.o.d"
  "bench_ablation_request_delay"
  "bench_ablation_request_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_request_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
