# Empty dependencies file for bench_ablation_request_delay.
# This may be replaced when dependencies are built.
