# Empty compiler generated dependencies file for bench_failure_injection.
# This may be replaced when dependencies are built.
