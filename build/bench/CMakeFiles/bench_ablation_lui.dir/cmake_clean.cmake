file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lui.dir/bench_ablation_lui.cpp.o"
  "CMakeFiles/bench_ablation_lui.dir/bench_ablation_lui.cpp.o.d"
  "bench_ablation_lui"
  "bench_ablation_lui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
