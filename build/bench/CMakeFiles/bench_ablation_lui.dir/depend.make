# Empty dependencies file for bench_ablation_lui.
# This may be replaced when dependencies are built.
