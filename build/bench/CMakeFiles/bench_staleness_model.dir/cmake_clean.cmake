file(REMOVE_RECURSE
  "CMakeFiles/bench_staleness_model.dir/bench_staleness_model.cpp.o"
  "CMakeFiles/bench_staleness_model.dir/bench_staleness_model.cpp.o.d"
  "bench_staleness_model"
  "bench_staleness_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_staleness_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
