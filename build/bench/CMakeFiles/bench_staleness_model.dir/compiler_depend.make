# Empty compiler generated dependencies file for bench_staleness_model.
# This may be replaced when dependencies are built.
