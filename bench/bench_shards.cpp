// Sharded-service experiment: many independent replica groups behind one
// substrate, one consistent-hash key space across them.
//
// Two sweeps share this binary and its gated JSON:
//
//   scaling (the `shard_scaling` plan, src/runner/plans.cpp) — the same
//       workload against 1, 4, and 16 replica groups: routing balance
//       (max/mean shard load), per-shard throughput, and the
//       timing-failure probability as the pool widens;
//   faults (the `hot_shard` plan) — a 16-shard pool under a uniform
//       baseline, one hot (overloaded) replica group, and a correlated
//       rack failure that takes the same slot from every shard at once.
//
// The invariants are the point. Shards are shared-nothing replica groups,
// so agreement (GSN conflicts, committed-prefix divergence, CSN/store
// version) is checked per shard, and the placement invariant — no replica
// ever stores a key the ShardMap places elsewhere — is checked on every
// store, crashed or not. All of it pools into `violations`, which must be
// 0 at every width and under every fault: a hot shard or a rack loss may
// cost timeliness on the shards it touches, never consistency anywhere.
// The bench exits non-zero otherwise, and tools/bench_compare.py gates the
// rates, the throughput trend, and the zero-violation floor against
// bench/baselines/BENCH_shards.json.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/table.hpp"
#include "runner/plans.hpp"
#include "runner/sweep.hpp"

using namespace aqueduct;

namespace {

double rate(std::uint64_t failures, std::uint64_t total) {
  return total == 0 ? 0.0 : static_cast<double>(failures) /
                                static_cast<double>(total);
}

/// Per-point tallies for the scaling sweep, aggregated over seeds.
struct ScaleAgg {
  std::uint64_t seeds = 0;
  std::uint64_t reads = 0, failures = 0, ops = 0;
  double sim_s = 0.0, balance_sum = 0.0;
};

/// Per-point tallies for the fault matrix, aggregated over seeds.
struct FaultAgg {
  std::uint64_t seeds = 0;
  std::uint64_t degraded_reads = 0, degraded_failures = 0;
  std::uint64_t steady_reads = 0, steady_failures = 0;
  std::uint64_t reborn = 0;
  double hot_fraction_sum = 0.0;
};

/// Strips the writer's trailing newline so the doc embeds cleanly.
std::string trimmed_json(const runner::SweepSpec& spec,
                         const runner::SweepResult& result) {
  std::string doc = runner::sweep_json(spec, result);
  while (!doc.empty() && doc.back() == '\n') doc.pop_back();
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  // Both plans run 20-odd simulated seconds at 120 requests per client;
  // clamp so the gated JSON stays byte-comparable against the committed
  // baseline (--quick therefore lands on the same value).
  if (opt.requests > 120) opt.requests = 120;
  const std::size_t seeds = opt.seeds == 0 ? 4 : opt.seeds;

  const runner::Plan* scaling = runner::find_plan("shard_scaling");
  const runner::Plan* faults = runner::find_plan("hot_shard");
  const runner::SweepSpec scaling_spec =
      runner::make_spec(*scaling, opt.seed, seeds, opt.threads, opt.requests);
  const runner::SweepSpec fault_spec =
      runner::make_spec(*faults, opt.seed, seeds, opt.threads, opt.requests);

  std::cout << "=== Sharded service: scaling and cross-shard faults ===\n"
            << "sequencer + 1 primary + 1 secondary per shard, 2 clients, "
               "64-key space; "
            << opt.requests << " requests per client, " << seeds
            << " seeds per point\n\n";

  const runner::SweepResult scaling_result = runner::run_sweep(scaling_spec);

  std::vector<ScaleAgg> sagg(scaling->points.size());
  for (std::size_t i = 0; i < scaling_result.rows.size(); ++i) {
    const runner::SeedRecord& r = scaling_result.rows[i];
    if (!r.ok) {
      std::cerr << "FAILED " << scaling_spec.units[i].label << ": " << r.error
                << "\n";
      continue;
    }
    ScaleAgg& a = sagg[scaling_spec.units[i].point];
    a.seeds += 1;
    a.reads += r.counter_or_zero("reads_completed");
    a.failures += r.counter_or_zero("timing_failures");
    a.ops += r.counter_or_zero("reads_completed") +
             r.counter_or_zero("updates_completed");
    a.sim_s += r.value_or("sim_end_s");
    a.balance_sum += r.value_or("balance_ratio");
  }

  harness::Table scale_table({"point", "tf_prob", "throughput_ops_s",
                              "balance_max_mean", "violations"});
  for (std::size_t p = 0; p < sagg.size(); ++p) {
    const ScaleAgg& a = sagg[p];
    scale_table.add_row(
        {scaling->points[p], harness::Table::num(rate(a.failures, a.reads), 3),
         harness::Table::num(
             a.sim_s == 0.0 ? 0.0 : static_cast<double>(a.ops) / a.sim_s, 1),
         harness::Table::num(
             a.seeds == 0 ? 0.0 : a.balance_sum / static_cast<double>(a.seeds),
             2),
         std::to_string(scaling_result.pooled_counter_or_zero("violations"))});
  }
  scale_table.print();
  if (opt.csv) scale_table.print_csv(std::cout);

  std::cout << "\n";
  const runner::SweepResult fault_result = runner::run_sweep(fault_spec);

  std::vector<FaultAgg> fagg(faults->points.size());
  for (std::size_t i = 0; i < fault_result.rows.size(); ++i) {
    const runner::SeedRecord& r = fault_result.rows[i];
    if (!r.ok) {
      std::cerr << "FAILED " << fault_spec.units[i].label << ": " << r.error
                << "\n";
      continue;
    }
    FaultAgg& a = fagg[fault_spec.units[i].point];
    a.seeds += 1;
    a.degraded_reads += r.counter_or_zero("degraded_reads");
    a.degraded_failures += r.counter_or_zero("degraded_failures");
    a.steady_reads += r.counter_or_zero("steady_reads");
    a.steady_failures += r.counter_or_zero("steady_failures");
    a.reborn += r.counter_or_zero("reborn");
    a.hot_fraction_sum += r.value_or("hot_fraction");
  }

  harness::Table fault_table({"point", "degraded_tf_prob", "steady_tf_prob",
                              "hot_fraction", "reborn"});
  for (std::size_t p = 0; p < fagg.size(); ++p) {
    const FaultAgg& a = fagg[p];
    fault_table.add_row(
        {faults->points[p],
         harness::Table::num(rate(a.degraded_failures, a.degraded_reads), 3),
         harness::Table::num(rate(a.steady_failures, a.steady_reads), 3),
         harness::Table::num(a.seeds == 0 ? 0.0
                                          : a.hot_fraction_sum /
                                                static_cast<double>(a.seeds),
                             3),
         std::to_string(a.reborn)});
  }
  fault_table.print();
  if (opt.csv) fault_table.print_csv(std::cout);

  const std::uint64_t violations =
      scaling_result.pooled_counter_or_zero("violations") +
      fault_result.pooled_counter_or_zero("violations");
  // The correlated-rack point must actually have fired: every shard loses
  // and restarts its rack slot, so reborn == shards * seeds there.
  const std::uint64_t reborn_total = fagg.back().reborn;

  for (const runner::PooledBinomial& b : fault_result.binomials) {
    std::cout << "\npooled " << b.label << ": "
              << harness::Table::num(b.ci.point, 3) << " ["
              << harness::Table::num(b.ci.lower, 3) << ", "
              << harness::Table::num(b.ci.upper, 3) << "] (" << b.failures
              << "/" << b.trials << ")";
  }
  std::cout << "\nreplica restarts under correlated rack loss: "
            << reborn_total << " (must be > 0); invariant violations "
            << violations << " (must be 0)\n"
            << "swept "
            << scaling_spec.units.size() + fault_spec.units.size()
            << " runs on " << fault_result.threads_used << " thread"
            << (fault_result.threads_used == 1 ? "" : "s") << " in "
            << harness::Table::num(
                   scaling_result.wall_seconds + fault_result.wall_seconds, 2)
            << "s wall\n";

  if (opt.json) {
    const std::string path =
        opt.json_out.empty() ? "BENCH_shards.json" : opt.json_out;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return 1;
    }
    os << "{\"bench\": \"shards\", \"scaling\": "
       << trimmed_json(scaling_spec, scaling_result) << ", \"faults\": "
       << trimmed_json(fault_spec, fault_result) << "}\n";
    std::cout << "\nwrote " << path << "\n";
  }

  std::cout << "\nexpected shape: the timing-failure probability stays flat "
               "from 1 to 16\nshards while aggregate throughput grows, the "
               "hot shard degrades only its own\nwindow, the rack failure "
               "restarts one slot per shard — and the agreement\nand "
               "placement counters stay zero everywhere.\n";
  return (scaling_result.all_ok() && fault_result.all_ok() &&
          violations == 0 && reborn_total > 0)
             ? 0
             : 1;
}
