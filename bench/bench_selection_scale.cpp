// Scaling benchmark for the selection hot path at key-value-store scale.
//
// Three sections, all driven by the same steady-state workload (one
// performance publication per ~16 reads, round-robin over the pool):
//
//  1. Verify matrix ({4,16,64} replicas x {10,20} window): runs the
//     production configuration (memo + pruned subset search) against two
//     oracles — the memo disabled, and the literal enumerate-and-grow
//     scan — over byte-identical event schedules, comparing a per-request
//     digest of every SelectionResult. Any divergence is reported with the
//     (seed, replicas, window, request) tuple that produced it and fails
//     the binary, so CI can run --smoke as a regression gate.
//  2. Scale matrix ({64,256,1024} replicas x {10,20} window): the
//     production configuration alone, reporting ns/selection and
//     convolutions/read as the pool grows.
//  3. Open loop (1024 replicas, window 20, a million selections by
//     default): back-to-back selections with warm-up and the first-query
//     rebuild excluded from measurement — the per-read budget number the
//     CI gate holds against kBudgetNsPerSelection.
//
// Output: a table on stdout and BENCH_selection_scale.json.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "client/repository.hpp"
#include "core/pmf.hpp"
#include "core/qos.hpp"
#include "core/selection.hpp"
#include "obs/json.hpp"
#include "replication/messages.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

using namespace aqueduct;

namespace {

/// Absolute per-selection latency budget at 1024 replicas (open-loop
/// section), in nanoseconds. Measured ~50 us/selection on the 1-core CI
/// class of runner (dominated by assembling the 1024-entry candidate
/// vector from the memo; the pruned subset search itself is O(n + k log
/// n) and convolution-free in steady state). The 5x ceiling absorbs
/// runner noise while still catching an accidental return to the
/// convolution-per-read regime, which costs another 50-100x.
constexpr double kBudgetNsPerSelection = 250000.0;

struct Options {
  std::size_t iterations = 2000;
  std::size_t open_loop_iterations = 1000000;
  std::uint64_t seed = 42;
  double epsilon = 0.0;
  bool json = true;
  std::string json_out;

  // Strict like bench::Options::parse — an unknown flag exits 2 so CI
  // cannot green-light a typo'd invocation.
  static void usage(const char* prog, std::ostream& os) {
    os << "usage: " << prog
       << " [--smoke] [--iterations N] [--open-loop-iterations N]"
          " [--seed N] [--epsilon X] [--json-out PATH] [--no-json]"
          " [--help]\n";
  }

  static Options parse(int argc, char** argv) {
    Options opt;
    const auto value = [&](int& i) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": flag " << argv[i] << " needs a value\n";
        usage(argv[0], std::cerr);
        std::exit(2);
      }
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--smoke") {
        opt.iterations = 200;
        opt.open_loop_iterations = 20000;
      } else if (arg == "--iterations") {
        opt.iterations = static_cast<std::size_t>(std::stoull(value(i)));
      } else if (arg == "--open-loop-iterations") {
        opt.open_loop_iterations =
            static_cast<std::size_t>(std::stoull(value(i)));
      } else if (arg == "--seed") {
        opt.seed = std::stoull(value(i));
      } else if (arg == "--epsilon") {
        opt.epsilon = std::stod(value(i));
      } else if (arg == "--json-out") {
        opt.json_out = value(i);
      } else if (arg == "--no-json") {
        opt.json = false;
      } else if (arg == "--help") {
        usage(argv[0], std::cout);
        std::exit(0);
      } else {
        std::cerr << argv[0] << ": unknown flag " << arg << "\n";
        usage(argv[0], std::cerr);
        std::exit(2);
      }
    }
    return opt;
  }
};

/// Publications arrive this many reads apart in steady state — the pool
/// publishes far less often than clients read, which is exactly the regime
/// the memo exploits.
constexpr std::size_t kPublishEvery = 16;

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
}

/// Order-sensitive FNV-1a digest of one SelectionResult (ids in selection
/// order, the satisfied flag, and the raw bits of the prediction).
std::uint64_t digest(const core::SelectionResult& result) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const auto id : result.selected) fold(h, id.value());
  fold(h, result.satisfied ? 1 : 0);
  std::uint64_t prob_bits;
  static_assert(sizeof(prob_bits) == sizeof(result.predicted_probability));
  std::memcpy(&prob_bits, &result.predicted_probability, sizeof(prob_bits));
  fold(h, prob_bits);
  return h;
}

/// Measurements for one (replicas, window, mode) run.
struct ModeResult {
  double wall_seconds = 0.0;
  double selections_per_sec = 0.0;
  double ns_per_selection = 0.0;
  std::uint64_t convolutions = 0;
  double convolutions_per_read = 0.0;
  client::RepositoryCacheStats cache;
  /// Per-request digests (filled only when requested by the verify runs).
  std::vector<std::uint64_t> digests;
};

replication::GroupInfo make_roles(std::size_t replicas) {
  replication::GroupInfo info;
  info.epoch = 1;
  info.sequencer = net::NodeId{1};
  for (std::size_t i = 0; i < replicas; ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(2 + i)};
    if (i < replicas / 2) {
      info.primaries.push_back(id);
    } else {
      info.secondaries.push_back(id);
    }
  }
  info.lazy_publisher = info.primaries.front();
  return info;
}

replication::PerfPublication make_sample(std::uint32_t replica,
                                         sim::Rng& rng) {
  replication::PerfPublication p;
  p.replica = net::NodeId{replica};
  p.has_sample = true;
  p.ts = rng.normal_duration(std::chrono::milliseconds(100),
                             std::chrono::milliseconds(50));
  p.tq = rng.normal_duration(std::chrono::milliseconds(5),
                             std::chrono::milliseconds(3));
  p.tb = rng.normal_duration(std::chrono::milliseconds(900),
                             std::chrono::milliseconds(400));
  p.deferred = rng.bernoulli(0.3);
  return p;
}

core::QoSSpec bench_qos() {
  return {.staleness_threshold = 2,
          .deadline = std::chrono::milliseconds(140),
          .min_probability = 0.9};
}

struct ModeConfig {
  bool cache_enabled = true;
  core::ProbabilisticOptions::SubsetSearch search =
      core::ProbabilisticOptions::SubsetSearch::kPruned;
  /// Record a per-request digest stream for cross-mode comparison.
  bool keep_digests = false;
  /// Exclude warm-up and the cold first-query rebuild from the clock and
  /// the convolution counter (the open-loop steady-state measurement).
  bool prime_before_measuring = false;
};

/// Runs the steady-state workload once. The event schedule is a pure
/// function of (replicas, window, iterations, seed), so every mode sees
/// identical inputs.
ModeResult run_mode(std::size_t replicas, std::size_t window,
                    std::size_t iterations, std::uint64_t seed,
                    double epsilon, const ModeConfig& mode) {
  client::InfoRepository repo(window, std::chrono::milliseconds(1), epsilon);
  repo.set_cache_enabled(mode.cache_enabled);
  repo.record_group_info(make_roles(replicas));

  sim::Rng rng(seed);
  sim::TimePoint now = sim::kEpoch;

  // Staleness broadcast so the deferred fallback and stale factor engage.
  {
    replication::PerfPublication lazy;
    lazy.replica = repo.roles().lazy_publisher;
    lazy.lazy = replication::LazyInfo{.n_u = 4,
                                      .t_u = std::chrono::seconds(1),
                                      .n_l = 1,
                                      .t_l = std::chrono::seconds(1),
                                      .period = std::chrono::seconds(4)};
    repo.record_publication(lazy, now);
  }

  // Warm-up: fill every replica's windows and gateway delay.
  for (std::size_t i = 0; i < replicas; ++i) {
    const auto id = static_cast<std::uint32_t>(2 + i);
    for (std::size_t s = 0; s < window; ++s) {
      repo.record_publication(make_sample(id, rng), now);
    }
    repo.record_reply(net::NodeId{id},
                      rng.normal_duration(std::chrono::microseconds(800),
                                          std::chrono::microseconds(200)),
                      now);
  }

  core::ProbabilisticSelector selector(core::ProbabilisticOptions{
      .subset_search = mode.search});
  const core::QoSSpec qos = bench_qos();
  ModeResult out;
  if (mode.keep_digests) out.digests.reserve(iterations);

  if (mode.prime_before_measuring) {
    // One throwaway selection builds every memo entry, so the measured
    // loop is pure steady state: incremental updates and rematerialization
    // only, no cold-start convolutions.
    auto ctx = repo.selection_context(qos, now, rng);
    (void)selector.select(ctx);
  }

  repo.reset_cache_stats();
  core::Pmf::reset_convolution_counter();
  const auto conv_before = core::Pmf::convolutions_performed();
  const auto t0 = std::chrono::steady_clock::now();

  for (std::size_t i = 0; i < iterations; ++i) {
    now += std::chrono::milliseconds(10);
    if (i % kPublishEvery == 0) {
      // One replica publishes (and replies) — everyone else is unchanged.
      const auto id =
          static_cast<std::uint32_t>(2 + (i / kPublishEvery) % replicas);
      repo.record_publication(make_sample(id, rng), now);
      repo.record_reply(net::NodeId{id},
                        rng.normal_duration(std::chrono::microseconds(800),
                                            std::chrono::microseconds(200)),
                        now);
    }
    auto ctx = repo.selection_context(qos, now, rng);
    const auto result = selector.select(ctx);
    if (mode.keep_digests) out.digests.push_back(digest(result));
  }

  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.convolutions = core::Pmf::convolutions_performed() - conv_before;
  out.convolutions_per_read =
      static_cast<double>(out.convolutions) / static_cast<double>(iterations);
  if (out.wall_seconds > 0.0) {
    out.selections_per_sec =
        static_cast<double>(iterations) / out.wall_seconds;
    out.ns_per_selection =
        out.wall_seconds * 1e9 / static_cast<double>(iterations);
  }
  out.cache = repo.cache_stats();
  return out;
}

/// Compares an oracle's digest stream against the production run's,
/// reporting every divergence with the full reproduction tuple.
std::uint64_t count_mismatches(const ModeResult& production,
                               const ModeResult& oracle,
                               const char* oracle_name, std::uint64_t seed,
                               std::size_t replicas, std::size_t window) {
  std::uint64_t mismatches = 0;
  const std::size_t n = std::min(production.digests.size(),
                                 oracle.digests.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (production.digests[i] == oracle.digests[i]) continue;
    if (++mismatches <= 4) {  // don't flood the log on systematic breakage
      std::cerr << "MISMATCH vs " << oracle_name << ": seed=" << seed
                << " replicas=" << replicas << " window=" << window
                << " request=" << i << " (production digest 0x" << std::hex
                << production.digests[i] << ", oracle 0x" << oracle.digests[i]
                << std::dec << ")\n";
    }
  }
  if (production.digests.size() != oracle.digests.size()) {
    std::cerr << "MISMATCH vs " << oracle_name << ": seed=" << seed
              << " replicas=" << replicas << " window=" << window
              << ": digest stream lengths differ\n";
    ++mismatches;
  }
  return mismatches;
}

struct VerifyPoint {
  std::size_t replicas = 0;
  std::size_t window = 0;
  ModeResult cached;      // memo + pruned search (production)
  ModeResult uncached;    // memo disabled, pruned search
  ModeResult exhaustive;  // memo + literal enumerate-and-grow (oracle)
  std::uint64_t mismatches = 0;
  double reduction = 0.0;
};

struct ScalePoint {
  std::size_t replicas = 0;
  std::size_t window = 0;
  ModeResult cached;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);

  std::cout << "=== Selection scaling: memoized + pruned hot path ===\n"
            << "steady state: one publication per " << kPublishEvery
            << " reads, round-robin; QoS a=2, d=140ms, Pc=0.9; epsilon="
            << opt.epsilon << "\n\n";

  // --- 1. verify matrix ----------------------------------------------------
  std::cout << "[verify] " << opt.iterations
            << " reads/point, production vs uncached vs exhaustive-scan\n";
  std::vector<VerifyPoint> points;
  std::uint64_t total_mismatches = 0;
  for (const std::size_t replicas : {4, 16, 64}) {
    for (const std::size_t window : {10, 20}) {
      VerifyPoint p;
      p.replicas = replicas;
      p.window = window;
      ModeConfig cfg;
      cfg.keep_digests = true;
      p.cached = run_mode(replicas, window, opt.iterations, opt.seed,
                          opt.epsilon, cfg);
      cfg.cache_enabled = false;
      p.uncached = run_mode(replicas, window, opt.iterations, opt.seed,
                            opt.epsilon, cfg);
      cfg.cache_enabled = true;
      cfg.search = core::ProbabilisticOptions::SubsetSearch::kExhaustiveScan;
      p.exhaustive = run_mode(replicas, window, opt.iterations, opt.seed,
                              opt.epsilon, cfg);
      p.mismatches =
          count_mismatches(p.cached, p.uncached, "uncached", opt.seed,
                           replicas, window) +
          count_mismatches(p.cached, p.exhaustive, "exhaustive-scan",
                           opt.seed, replicas, window);
      total_mismatches += p.mismatches;
      p.reduction =
          p.cached.convolutions == 0
              ? static_cast<double>(p.uncached.convolutions)
              : static_cast<double>(p.uncached.convolutions) /
                    static_cast<double>(p.cached.convolutions);
      points.push_back(p);

      std::cout << "replicas=" << replicas << " window=" << window
                << ": cached "
                << static_cast<std::uint64_t>(p.cached.selections_per_sec)
                << " sel/s (" << p.cached.convolutions_per_read
                << " conv/read), uncached "
                << static_cast<std::uint64_t>(p.uncached.selections_per_sec)
                << " sel/s (" << p.uncached.convolutions_per_read
                << " conv/read), reduction " << p.reduction << "x, "
                << (p.mismatches == 0
                        ? "identical"
                        : "DIVERGED (" + std::to_string(p.mismatches) +
                              " mismatches)")
                << "\n";
    }
  }

  // --- 2. scale matrix -----------------------------------------------------
  std::cout << "\n[scale] " << opt.iterations
            << " reads/point, production configuration\n";
  std::vector<ScalePoint> scale_points;
  for (const std::size_t replicas : {64, 256, 1024}) {
    for (const std::size_t window : {10, 20}) {
      ScalePoint p;
      p.replicas = replicas;
      p.window = window;
      p.cached = run_mode(replicas, window, opt.iterations, opt.seed,
                          opt.epsilon, ModeConfig{});
      scale_points.push_back(p);
      std::cout << "replicas=" << replicas << " window=" << window << ": "
                << static_cast<std::uint64_t>(p.cached.ns_per_selection)
                << " ns/selection (" << p.cached.convolutions_per_read
                << " conv/read)\n";
    }
  }

  // --- 3. open loop at 1024 ------------------------------------------------
  constexpr std::size_t kOpenLoopReplicas = 1024;
  constexpr std::size_t kOpenLoopWindow = 20;
  std::cout << "\n[open-loop] " << opt.open_loop_iterations
            << " selections at " << kOpenLoopReplicas << " replicas, window "
            << kOpenLoopWindow << ", warmed + primed\n";
  ModeConfig open_cfg;
  open_cfg.prime_before_measuring = true;
  const ModeResult open_loop =
      run_mode(kOpenLoopReplicas, kOpenLoopWindow, opt.open_loop_iterations,
               opt.seed, opt.epsilon, open_cfg);
  const bool within_budget =
      open_loop.ns_per_selection <= kBudgetNsPerSelection;
  std::cout << static_cast<std::uint64_t>(open_loop.ns_per_selection)
            << " ns/selection (budget "
            << static_cast<std::uint64_t>(kBudgetNsPerSelection) << " ns, "
            << (within_budget ? "within" : "OVER") << "), "
            << open_loop.convolutions_per_read << " conv/read, "
            << static_cast<std::uint64_t>(open_loop.selections_per_sec)
            << " sel/s\n";

  if (total_mismatches != 0) {
    std::cerr << "\nFAIL: " << total_mismatches
              << " selection mismatches between production and oracles\n";
  }

  if (opt.json) {
    const std::string path = opt.json_out.empty() ? "BENCH_selection_scale.json"
                                                  : opt.json_out;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return total_mismatches == 0 ? 0 : 1;
    }
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("bench", std::string("selection_scale"));
    w.field("seed", static_cast<std::uint64_t>(opt.seed));
    w.field("iterations", static_cast<std::uint64_t>(opt.iterations));
    w.field("publish_every", static_cast<std::uint64_t>(kPublishEvery));
    w.field("epsilon", opt.epsilon);
    w.key("runs");
    w.begin_array();
    for (const VerifyPoint& p : points) {
      w.begin_object();
      w.field("replicas", static_cast<std::uint64_t>(p.replicas));
      w.field("window", static_cast<std::uint64_t>(p.window));
      w.field("cached_selections_per_sec", p.cached.selections_per_sec);
      w.field("uncached_selections_per_sec", p.uncached.selections_per_sec);
      w.field("exhaustive_selections_per_sec",
              p.exhaustive.selections_per_sec);
      w.field("cached_convolutions", p.cached.convolutions);
      w.field("uncached_convolutions", p.uncached.convolutions);
      w.field("cached_convolutions_per_read", p.cached.convolutions_per_read);
      w.field("uncached_convolutions_per_read",
              p.uncached.convolutions_per_read);
      w.field("convolution_reduction", p.reduction);
      w.field("cache_hits", p.cached.cache.hits);
      w.field("cache_rebuilds", p.cached.cache.rebuilds);
      w.field("cache_cdf_refreshes", p.cached.cache.cdf_refreshes);
      w.field("cache_incremental_updates", p.cached.cache.incremental_updates);
      w.field("cache_incremental_refreshes",
              p.cached.cache.incremental_refreshes);
      w.field("mismatches", p.mismatches);
      w.field("identical_selections", p.mismatches == 0);
      w.end_object();
    }
    w.end_array();
    w.key("scale_runs");
    w.begin_array();
    for (const ScalePoint& p : scale_points) {
      w.begin_object();
      w.field("replicas", static_cast<std::uint64_t>(p.replicas));
      w.field("window", static_cast<std::uint64_t>(p.window));
      w.field("ns_per_selection", p.cached.ns_per_selection);
      w.field("selections_per_sec", p.cached.selections_per_sec);
      w.field("convolutions_per_read", p.cached.convolutions_per_read);
      w.field("cache_rebuilds", p.cached.cache.rebuilds);
      w.field("cache_incremental_refreshes",
              p.cached.cache.incremental_refreshes);
      w.end_object();
    }
    w.end_array();
    w.key("open_loop");
    w.begin_object();
    w.field("replicas", static_cast<std::uint64_t>(kOpenLoopReplicas));
    w.field("window", static_cast<std::uint64_t>(kOpenLoopWindow));
    w.field("iterations",
            static_cast<std::uint64_t>(opt.open_loop_iterations));
    w.field("ns_per_selection", open_loop.ns_per_selection);
    w.field("selections_per_sec", open_loop.selections_per_sec);
    w.field("convolutions_per_read", open_loop.convolutions_per_read);
    w.field("budget_ns_per_selection", kBudgetNsPerSelection);
    w.field("within_budget", within_budget);
    w.end_object();
    w.end_object();
    os << "\n";
    std::cout << "\nwrote " << path << "\n";
  }

  return total_mismatches == 0 ? 0 : 1;
}
