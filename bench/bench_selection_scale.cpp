// Scaling microbenchmark for the incremental selection hot path: sweeps
// replica-pool size x sliding-window size and measures, for a steady-state
// read workload (a performance publication every ~16 reads, round-robin
// over the pool), how many selections/sec the client-side path sustains
// and how many discrete convolutions each read pays — with the
// InfoRepository response-time memo enabled vs. disabled.
//
// The two runs consume byte-identical event schedules and must produce
// byte-identical SelectionResults (the memo is an optimization, not a
// semantic change); the binary exits non-zero if they diverge, so CI can
// run it in --smoke mode as a regression gate.
//
// Output: a table on stdout and BENCH_selection_scale.json with
// selections/sec, convolutions/read, and the convolution-reduction factor
// per (replicas, window) point.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "client/repository.hpp"
#include "core/pmf.hpp"
#include "core/qos.hpp"
#include "core/selection.hpp"
#include "obs/json.hpp"
#include "replication/messages.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

using namespace aqueduct;

namespace {

struct Options {
  std::size_t iterations = 2000;
  std::uint64_t seed = 42;
  bool json = true;
  std::string json_out;

  // Strict like bench::Options::parse — an unknown flag exits 2 so CI
  // cannot green-light a typo'd invocation.
  static void usage(const char* prog, std::ostream& os) {
    os << "usage: " << prog
       << " [--smoke] [--iterations N] [--seed N] [--json-out PATH]"
          " [--no-json] [--help]\n";
  }

  static Options parse(int argc, char** argv) {
    Options opt;
    const auto value = [&](int& i) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": flag " << argv[i] << " needs a value\n";
        usage(argv[0], std::cerr);
        std::exit(2);
      }
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--smoke") {
        opt.iterations = 200;
      } else if (arg == "--iterations") {
        opt.iterations = static_cast<std::size_t>(std::stoull(value(i)));
      } else if (arg == "--seed") {
        opt.seed = std::stoull(value(i));
      } else if (arg == "--json-out") {
        opt.json_out = value(i);
      } else if (arg == "--no-json") {
        opt.json = false;
      } else if (arg == "--help") {
        usage(argv[0], std::cout);
        std::exit(0);
      } else {
        std::cerr << argv[0] << ": unknown flag " << arg << "\n";
        usage(argv[0], std::cerr);
        std::exit(2);
      }
    }
    return opt;
  }
};

/// Publications arrive this many reads apart in steady state — the pool
/// publishes far less often than clients read, which is exactly the regime
/// the memo exploits.
constexpr std::size_t kPublishEvery = 16;

/// Measurements for one (replicas, window, cache on/off) run.
struct ModeResult {
  double wall_seconds = 0.0;
  double selections_per_sec = 0.0;
  std::uint64_t convolutions = 0;
  double convolutions_per_read = 0.0;
  /// Order-sensitive FNV-1a fold of every SelectionResult.
  std::uint64_t checksum = 0;
  client::RepositoryCacheStats cache;
};

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
}

replication::GroupInfo make_roles(std::size_t replicas) {
  replication::GroupInfo info;
  info.epoch = 1;
  info.sequencer = net::NodeId{1};
  for (std::size_t i = 0; i < replicas; ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(2 + i)};
    if (i < replicas / 2) {
      info.primaries.push_back(id);
    } else {
      info.secondaries.push_back(id);
    }
  }
  info.lazy_publisher = info.primaries.front();
  return info;
}

replication::PerfPublication make_sample(std::uint32_t replica,
                                         sim::Rng& rng) {
  replication::PerfPublication p;
  p.replica = net::NodeId{replica};
  p.has_sample = true;
  p.ts = rng.normal_duration(std::chrono::milliseconds(100),
                             std::chrono::milliseconds(50));
  p.tq = rng.normal_duration(std::chrono::milliseconds(5),
                             std::chrono::milliseconds(3));
  p.tb = rng.normal_duration(std::chrono::milliseconds(900),
                             std::chrono::milliseconds(400));
  p.deferred = rng.bernoulli(0.3);
  return p;
}

core::QoSSpec bench_qos() {
  return {.staleness_threshold = 2,
          .deadline = std::chrono::milliseconds(140),
          .min_probability = 0.9};
}

/// Runs the steady-state workload once. The event schedule is a pure
/// function of (replicas, window, iterations, seed), so the cached and
/// uncached runs see identical inputs.
ModeResult run_mode(std::size_t replicas, std::size_t window,
                    std::size_t iterations, std::uint64_t seed,
                    bool cache_enabled) {
  client::InfoRepository repo(window, std::chrono::milliseconds(1));
  repo.set_cache_enabled(cache_enabled);
  repo.record_group_info(make_roles(replicas));

  sim::Rng rng(seed);
  sim::TimePoint now = sim::kEpoch;

  // Staleness broadcast so the deferred fallback and stale factor engage.
  {
    replication::PerfPublication lazy;
    lazy.replica = repo.roles().lazy_publisher;
    lazy.lazy = replication::LazyInfo{.n_u = 4,
                                      .t_u = std::chrono::seconds(1),
                                      .n_l = 1,
                                      .t_l = std::chrono::seconds(1),
                                      .period = std::chrono::seconds(4)};
    repo.record_publication(lazy, now);
  }

  // Warm-up: fill every replica's windows and gateway delay.
  for (std::size_t i = 0; i < replicas; ++i) {
    const auto id = static_cast<std::uint32_t>(2 + i);
    for (std::size_t s = 0; s < window; ++s) {
      repo.record_publication(make_sample(id, rng), now);
    }
    repo.record_reply(net::NodeId{id},
                      rng.normal_duration(std::chrono::microseconds(800),
                                          std::chrono::microseconds(200)),
                      now);
  }

  core::ProbabilisticSelector selector;
  const core::QoSSpec qos = bench_qos();
  ModeResult out;
  out.checksum = 1469598103934665603ull;  // FNV-1a offset basis

  repo.reset_cache_stats();
  core::Pmf::reset_convolution_counter();
  const auto conv_before = core::Pmf::convolutions_performed();
  const auto t0 = std::chrono::steady_clock::now();

  for (std::size_t i = 0; i < iterations; ++i) {
    now += std::chrono::milliseconds(10);
    if (i % kPublishEvery == 0) {
      // One replica publishes (and replies) — everyone else is unchanged.
      const auto id =
          static_cast<std::uint32_t>(2 + (i / kPublishEvery) % replicas);
      repo.record_publication(make_sample(id, rng), now);
      repo.record_reply(net::NodeId{id},
                        rng.normal_duration(std::chrono::microseconds(800),
                                            std::chrono::microseconds(200)),
                        now);
    }
    auto ctx = repo.selection_context(qos, now, rng);
    const auto result = selector.select(ctx);
    for (const auto id : result.selected) {
      fold(out.checksum, id.value());
    }
    fold(out.checksum, result.satisfied ? 1 : 0);
    std::uint64_t prob_bits;
    static_assert(sizeof(prob_bits) == sizeof(result.predicted_probability));
    std::memcpy(&prob_bits, &result.predicted_probability, sizeof(prob_bits));
    fold(out.checksum, prob_bits);
  }

  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.convolutions = core::Pmf::convolutions_performed() - conv_before;
  out.convolutions_per_read =
      static_cast<double>(out.convolutions) / static_cast<double>(iterations);
  out.selections_per_sec =
      out.wall_seconds <= 0.0
          ? 0.0
          : static_cast<double>(iterations) / out.wall_seconds;
  out.cache = repo.cache_stats();
  return out;
}

struct SweepPoint {
  std::size_t replicas = 0;
  std::size_t window = 0;
  ModeResult cached;
  ModeResult uncached;
  bool identical = false;
  double reduction = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);

  std::cout << "=== Selection scaling: memoized vs. uncached hot path ===\n"
            << "steady state: one publication per " << kPublishEvery
            << " reads, round-robin; " << opt.iterations
            << " reads per point; QoS a=2, d=140ms, Pc=0.9\n\n";

  std::vector<SweepPoint> points;
  bool all_identical = true;
  for (const std::size_t replicas : {4, 16, 64}) {
    for (const std::size_t window : {10, 20}) {
      SweepPoint p;
      p.replicas = replicas;
      p.window = window;
      p.cached = run_mode(replicas, window, opt.iterations, opt.seed, true);
      p.uncached = run_mode(replicas, window, opt.iterations, opt.seed, false);
      p.identical = p.cached.checksum == p.uncached.checksum;
      all_identical = all_identical && p.identical;
      p.reduction =
          p.cached.convolutions == 0
              ? static_cast<double>(p.uncached.convolutions)
              : static_cast<double>(p.uncached.convolutions) /
                    static_cast<double>(p.cached.convolutions);
      points.push_back(p);

      std::cout << "replicas=" << replicas << " window=" << window
                << ": cached " << static_cast<std::uint64_t>(
                       p.cached.selections_per_sec)
                << " sel/s (" << p.cached.convolutions_per_read
                << " conv/read), uncached "
                << static_cast<std::uint64_t>(p.uncached.selections_per_sec)
                << " sel/s (" << p.uncached.convolutions_per_read
                << " conv/read), reduction " << p.reduction << "x, results "
                << (p.identical ? "identical" : "DIVERGED") << "\n";
    }
  }

  if (!all_identical) {
    std::cerr << "\nFAIL: cached and uncached runs diverged\n";
  }

  if (opt.json) {
    const std::string path = opt.json_out.empty() ? "BENCH_selection_scale.json"
                                                  : opt.json_out;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return all_identical ? 0 : 1;
    }
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("bench", std::string("selection_scale"));
    w.field("seed", static_cast<std::uint64_t>(opt.seed));
    w.field("iterations", static_cast<std::uint64_t>(opt.iterations));
    w.field("publish_every", static_cast<std::uint64_t>(kPublishEvery));
    w.key("runs");
    w.begin_array();
    for (const SweepPoint& p : points) {
      w.begin_object();
      w.field("replicas", static_cast<std::uint64_t>(p.replicas));
      w.field("window", static_cast<std::uint64_t>(p.window));
      w.field("cached_selections_per_sec", p.cached.selections_per_sec);
      w.field("uncached_selections_per_sec", p.uncached.selections_per_sec);
      w.field("cached_convolutions", p.cached.convolutions);
      w.field("uncached_convolutions", p.uncached.convolutions);
      w.field("cached_convolutions_per_read", p.cached.convolutions_per_read);
      w.field("uncached_convolutions_per_read",
              p.uncached.convolutions_per_read);
      w.field("convolution_reduction", p.reduction);
      w.field("cache_hits", p.cached.cache.hits);
      w.field("cache_rebuilds", p.cached.cache.rebuilds);
      w.field("cache_cdf_refreshes", p.cached.cache.cdf_refreshes);
      w.field("identical_selections", p.identical);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::cout << "\nwrote " << path << "\n";
  }

  return all_identical ? 0 : 1;
}
