// Telemetry overhead bench: what does the live snapshot pipeline cost?
//
// Runs one fixed SimExecutor scenario twice per repetition — telemetry off
// vs. telemetry on at a 100 ms (simulated) cadence streaming JSONL into
// memory. Wall time is taken as the minimum over repetitions per mode,
// which strips scheduler noise far better than averaging.
//
// The gated number is the telemetry *duty cycle* at the 100 ms cadence:
// per-snapshot wall cost / cadence. A naive wall-over-wall ratio would be
// dishonest in the other direction — the simulator compresses ~20 s of
// simulated time into tens of wall milliseconds, firing snapshots hundreds
// of times faster than any real-time deployment ever would, so it measures
// an absurdly accelerated snapshot rate, not the pipeline. Under the
// real-time executor (where this pipeline actually matters), throughput
// loss == the fraction of each 100 ms period spent capturing + exporting,
// which is exactly cost_per_snapshot / cadence.
//
// Also a determinism gate: every instrumented repetition uses the same
// seed, so the captured JSONL series must be byte-identical across reps;
// the bench exits non-zero if they diverge.
//
// The JSON summary feeds tools/bench_compare.py: overhead_percent is gated
// against the absolute <2% budget; the deterministic fields (snapshots,
// jsonl_bytes, reads_completed) are trend-gated against the committed
// baseline in bench/baselines/BENCH_obs_overhead.json. Wall seconds are
// reported but never gated (machine-dependent).
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/scenario.hpp"
#include "obs/sinks.hpp"

using namespace aqueduct;

namespace {

constexpr double kCadenceMs = 100.0;
constexpr double kBudgetPercent = 2.0;

harness::ScenarioConfig make_config(std::uint64_t seed, std::size_t requests) {
  // live_cli's small cluster, under the simulator: sequencer + 2 primaries
  // + 2 secondaries, fast service so telemetry cost is not drowned in
  // simulated idle time.
  harness::ScenarioConfig config;
  config.seed = seed;
  config.num_primaries = 2;
  config.num_secondaries = 2;
  config.service_mean = std::chrono::milliseconds(20);
  config.service_std = std::chrono::milliseconds(5);
  config.lazy_update_interval = std::chrono::milliseconds(500);
  config.drain = std::chrono::milliseconds(250);
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 1,
              .deadline = std::chrono::milliseconds(150),
              .min_probability = 0.9},
      .request_delay = std::chrono::milliseconds(50),
      .num_requests = requests,
  });
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 4,
              .deadline = std::chrono::milliseconds(250),
              .min_probability = 0.5},
      .request_delay = std::chrono::milliseconds(50),
      .num_requests = requests,
  });
  return config;
}

struct RunResult {
  double wall_s = 0.0;
  std::uint64_t reads_completed = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t sla_violations = 0;
  std::string jsonl;  // empty when telemetry is off
};

RunResult run_once(std::uint64_t seed, std::size_t requests, bool telemetry) {
  harness::Scenario scenario(make_config(seed, requests));
  std::ostringstream jsonl;
  obs::JsonlSnapshotSink sink(jsonl);
  if (telemetry) {
    scenario.enable_telemetry(sim::from_ms(kCadenceMs)).add_sink(&sink);
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto results = scenario.run();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& client : results) r.reads_completed += client.stats.reads_completed;
  if (telemetry) {
    r.snapshots = scenario.telemetry()->snapshots();
    r.jsonl = jsonl.str();
  }
  r.sla_violations = scenario.observability().sla.total_violations();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::Options::parse(argc, argv);
  const std::size_t reps = opt.seeds == 0 ? 3 : opt.seeds;  // reuse --seeds

  std::printf("obs-overhead bench: %zu requests x 2 clients, %.0f ms cadence, "
              "%zu reps per mode\n",
              opt.requests, kCadenceMs, reps);

  double wall_off = 0.0, wall_on = 0.0;
  RunResult on_result;
  std::string first_jsonl;
  bool deterministic = true;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const RunResult off = run_once(opt.seed, opt.requests, false);
    const RunResult on = run_once(opt.seed, opt.requests, true);
    wall_off = rep == 0 ? off.wall_s : std::min(wall_off, off.wall_s);
    wall_on = rep == 0 ? on.wall_s : std::min(wall_on, on.wall_s);
    if (rep == 0) {
      first_jsonl = on.jsonl;
      on_result = on;
    } else if (on.jsonl != first_jsonl) {
      deterministic = false;
    }
    std::printf("  rep %zu: off %.3fs, on %.3fs (%llu snapshots, %zu bytes)\n",
                rep, off.wall_s, on.wall_s,
                static_cast<unsigned long long>(on.snapshots),
                on.jsonl.size());
  }

  const double cost_per_snapshot_ms =
      on_result.snapshots == 0
          ? 0.0
          : (wall_on - wall_off) * 1000.0 /
                static_cast<double>(on_result.snapshots);
  const double overhead_percent = cost_per_snapshot_ms / kCadenceMs * 100.0;
  const double throughput_off =
      wall_off <= 0.0 ? 0.0
                      : static_cast<double>(on_result.reads_completed) / wall_off;
  const double throughput_on =
      wall_on <= 0.0 ? 0.0
                     : static_cast<double>(on_result.reads_completed) / wall_on;

  std::printf("\nwall (min of %zu): off %.3fs, on %.3fs -> %.4f ms/snapshot "
              "-> %.2f%% duty cycle at %.0f ms cadence (budget %.1f%%)\n",
              reps, wall_off, wall_on, cost_per_snapshot_ms, overhead_percent,
              kCadenceMs, kBudgetPercent);
  std::printf("snapshots %llu, jsonl %zu bytes, sla violations %llu, "
              "series deterministic: %s\n",
              static_cast<unsigned long long>(on_result.snapshots),
              first_jsonl.size(),
              static_cast<unsigned long long>(on_result.sla_violations),
              deterministic ? "yes" : "NO");

  if (opt.json) {
    const std::string path =
        opt.json_out.empty() ? "BENCH_obs_overhead.json" : opt.json_out;
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return 1;
    }
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("bench", "obs_overhead");
    w.field("seed", opt.seed);
    w.field("requests", static_cast<std::uint64_t>(opt.requests));
    w.field("cadence_ms", kCadenceMs);
    w.field("reps", static_cast<std::uint64_t>(reps));
    w.field("budget_percent", kBudgetPercent);
    // Wall-clock fields: reported, never trend-gated. overhead_percent is
    // the one exception — bench_compare checks it against the absolute
    // budget (a same-machine ratio, valid anywhere), not the baseline.
    w.field("wall_off_s", wall_off);
    w.field("wall_on_s", wall_on);
    w.field("cost_per_snapshot_ms", cost_per_snapshot_ms);
    w.field("overhead_percent", overhead_percent);
    w.field("throughput_off_rps", throughput_off);
    w.field("throughput_on_rps", throughput_on);
    // Deterministic fields: pure functions of (seed, requests); gated.
    w.field("reads_completed", on_result.reads_completed);
    w.field("snapshots", on_result.snapshots);
    w.field("jsonl_bytes", static_cast<std::uint64_t>(first_jsonl.size()));
    w.field("sla_violations", on_result.sla_violations);
    w.field("deterministic", deterministic);
    w.end_object();
    os << "\n";
    std::printf("wrote %s\n", path.c_str());
  }

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: telemetry JSONL diverged across same-seed reps\n");
    return 1;
  }
  if (on_result.snapshots == 0) {
    std::fprintf(stderr, "FAIL: no snapshots captured\n");
    return 1;
  }
  return 0;
}
