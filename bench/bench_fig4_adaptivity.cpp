// Reproduces Figure 4 of the paper: adaptivity of the probabilistic model.
//
// Setup (paper Section 6.1): 10 server replicas plus a sequencer — 4
// primary, 6 secondary; background load simulated by a normally
// distributed service delay (mean 100 ms); two clients issuing 1000
// alternating write/read requests with a 1000 ms request delay.
//   * Client 1 keeps QoS (a=4, d=200 ms, Pc=0.1) for every run.
//   * Client 2 keeps a=2 and sweeps the deadline 80..220 ms; its requested
//     probability Pc and the lazy-update interval (LUI) select one of four
//     configurations: (Pc, LUI) in {0.9, 0.5} x {4 s, 2 s}.
//
// Figure 4a: average number of replicas selected for client 2 vs deadline.
// Figure 4b: observed probability of timing failure for client 2 vs
//            deadline, with 95% binomial confidence intervals.
//
// The 32-cell grid (x --seeds N independent seeds per cell) fans out
// across --threads workers on the sweep engine (the per-cell body is the
// `fig4_adaptivity` plan in src/runner/plans.cpp); per-cell results pool
// across seeds before the tables are printed, and the merged output is
// byte-identical for any thread count.
//
// Expected shape (paper): fewer replicas as the QoS loosens; observed
// failure probability below 1 - Pc in every configuration; larger LUI =>
// more timing failures at tight deadlines (stale secondaries defer).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "runner/plans.hpp"
#include "runner/sweep.hpp"

using namespace aqueduct;

namespace {

/// Pooled view of one grid cell (config x deadline) across its seeds.
struct Cell {
  double avg_selected = 0.0;       // seed-averaged
  double deferred_fraction = 0.0;  // pooled over reads
  std::uint64_t timing_failures = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t staleness_violations = 0;
  harness::ConfidenceInterval failure;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::size_t seeds = opt.seeds == 0 ? 1 : opt.seeds;

  const runner::Plan* plan = runner::find_plan("fig4_adaptivity");
  const runner::SweepSpec spec =
      runner::make_spec(*plan, opt.seed, seeds, opt.threads, opt.requests);
  // Labels mirror the plan grid: deadline-major, 4 configs per deadline.
  constexpr std::size_t kConfigs = 4;
  const std::vector<int> deadlines_ms = {80, 100, 120, 140, 160, 180, 200, 220};
  const std::vector<std::string> config_labels = {
      "(prob: 0.9, LUI: 4 secs)", "(prob: 0.5, LUI: 4 secs)",
      "(prob: 0.9, LUI: 2 secs)", "(prob: 0.5, LUI: 2 secs)"};

  std::cout << "=== Figure 4: adaptivity of the probabilistic model ===\n"
            << "setup: sequencer + 4 primaries + 6 secondaries; service ~ "
               "N(100ms, 50ms); 2 clients, "
            << opt.requests << " alternating write/read requests each, "
            << seeds << " seed" << (seeds == 1 ? "" : "s") << " per cell\n"
            << "client 1 QoS: a=4, d=200ms, Pc=0.1 (fixed); client 2: a=2, "
               "d swept, Pc per config\n\n";

  const runner::SweepResult result = runner::run_sweep(spec);
  if (!result.all_ok()) {
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
      if (!result.rows[i].ok) {
        std::cerr << "FAILED " << spec.units[i].label << ": "
                  << result.rows[i].error << "\n";
      }
    }
    return 1;
  }

  // Pool each cell's seeds. Rows are point-major: rows[point * seeds + s].
  std::vector<Cell> cells(plan->points.size());
  for (std::size_t point = 0; point < cells.size(); ++point) {
    Cell& cell = cells[point];
    std::uint64_t deferred = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const runner::SeedRecord& r = result.rows[point * seeds + s];
      cell.avg_selected += r.value_or("avg_replicas_selected");
      cell.timing_failures += r.counter_or_zero("timing_failures");
      cell.reads_completed += r.counter_or_zero("reads_completed");
      cell.staleness_violations += r.counter_or_zero("staleness_violations");
      deferred += r.counter_or_zero("deferred_replies");
    }
    cell.avg_selected /= static_cast<double>(seeds);
    cell.deferred_fraction =
        cell.reads_completed == 0
            ? 0.0
            : static_cast<double>(deferred) /
                  static_cast<double>(cell.reads_completed);
    cell.failure = harness::binomial_ci_normal(cell.timing_failures,
                                               cell.reads_completed);
  }

  harness::Table fig4a({"deadline_ms", config_labels[0], config_labels[1],
                        config_labels[2], config_labels[3]});
  harness::Table fig4b({"deadline_ms", config_labels[0] + " [95% CI]",
                        config_labels[1] + " [95% CI]",
                        config_labels[2] + " [95% CI]",
                        config_labels[3] + " [95% CI]"});
  harness::Table extras({"deadline_ms", "config", "deferred_fraction",
                         "staleness_violations", "within_1-Pc"});
  const double pcs[kConfigs] = {0.9, 0.5, 0.9, 0.5};

  for (std::size_t d = 0; d < deadlines_ms.size(); ++d) {
    std::vector<std::string> row_a = {std::to_string(deadlines_ms[d])};
    std::vector<std::string> row_b = {std::to_string(deadlines_ms[d])};
    for (std::size_t c = 0; c < kConfigs; ++c) {
      const Cell& cell = cells[d * kConfigs + c];
      row_a.push_back(harness::Table::num(cell.avg_selected, 2));
      row_b.push_back(harness::Table::num(cell.failure.point, 3) + " [" +
                      harness::Table::num(cell.failure.lower, 3) + "," +
                      harness::Table::num(cell.failure.upper, 3) + "]");
      extras.add_row({std::to_string(deadlines_ms[d]), config_labels[c],
                      harness::Table::num(cell.deferred_fraction, 3),
                      std::to_string(cell.staleness_violations),
                      cell.failure.point <= (1.0 - pcs[c]) + 0.02 ? "yes"
                                                                  : "NO"});
    }
    fig4a.add_row(std::move(row_a));
    fig4b.add_row(std::move(row_b));
  }

  std::cout << "--- Figure 4a: average number of replicas selected "
               "(client 2) ---\n";
  fig4a.print();
  std::cout << "\n--- Figure 4b: observed probability of timing failure "
               "(client 2) ---\n";
  fig4b.print();
  std::cout << "\n--- supplementary: deferral rate, staleness-bound check, "
               "QoS satisfaction ---\n";
  extras.print();
  if (opt.csv) {
    std::cout << "\nCSV fig4a\n";
    fig4a.print_csv(std::cout);
    std::cout << "\nCSV fig4b\n";
    fig4b.print_csv(std::cout);
  }
  std::cout << "\nswept " << spec.units.size() << " runs on "
            << result.threads_used << " thread"
            << (result.threads_used == 1 ? "" : "s") << " in "
            << harness::Table::num(result.wall_seconds, 2) << "s wall\n";

  if (opt.json) {
    const std::string path = opt.json_out.empty()
                                 ? "BENCH_fig4_adaptivity.json"
                                 : opt.json_out;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return 1;
    }
    runner::write_sweep_json(os, spec, result);
    std::cout << "\nwrote " << path << "\n";
  }
  return 0;
}
