// Reproduces Figure 4 of the paper: adaptivity of the probabilistic model.
//
// Setup (paper Section 6.1): 10 server replicas plus a sequencer — 4
// primary, 6 secondary; background load simulated by a normally
// distributed service delay (mean 100 ms); two clients issuing 1000
// alternating write/read requests with a 1000 ms request delay.
//   * Client 1 keeps QoS (a=4, d=200 ms, Pc=0.1) for every run.
//   * Client 2 keeps a=2 and sweeps the deadline 80..220 ms; its requested
//     probability Pc and the lazy-update interval (LUI) select one of four
//     configurations: (Pc, LUI) in {0.9, 0.5} x {4 s, 2 s}.
//
// Figure 4a: average number of replicas selected for client 2 vs deadline.
// Figure 4b: observed probability of timing failure for client 2 vs
//            deadline, with 95% binomial confidence intervals.
//
// Expected shape (paper): fewer replicas as the QoS loosens; observed
// failure probability below 1 - Pc in every configuration; larger LUI =>
// more timing failures at tight deadlines (stale secondaries defer).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace aqueduct;

namespace {

struct Config {
  double pc;
  sim::Duration lui;
  std::string label() const {
    return "(prob: " + harness::Table::num(pc, 1) +
           ", LUI: " + harness::Table::num(sim::to_sec(lui), 0) + " secs)";
  }
};

struct RunResult {
  double avg_selected = 0.0;
  harness::ConfidenceInterval failure;
  double deferred_fraction = 0.0;
  std::uint64_t staleness_violations = 0;
  bench::RunSummary summary;
};

RunResult run_one(double pc, sim::Duration lui, sim::Duration deadline,
                  const std::string& label, const bench::Options& opt) {
  harness::ScenarioConfig config;
  config.seed = opt.seed;
  config.lazy_update_interval = lui;
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 4,
              .deadline = std::chrono::milliseconds(200),
              .min_probability = 0.1},
      .request_delay = std::chrono::milliseconds(1000),
      .num_requests = opt.requests,
  });
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 2,
              .deadline = deadline,
              .min_probability = pc},
      .request_delay = std::chrono::milliseconds(1000),
      .num_requests = opt.requests,
  });
  harness::Scenario scenario(std::move(config));
  auto results = scenario.run();
  const auto& stats = results[1].stats;  // client 2 is the measured client
  RunResult out;
  out.avg_selected = stats.avg_replicas_selected();
  out.failure =
      harness::binomial_ci_normal(stats.timing_failures, stats.reads_completed);
  out.deferred_fraction =
      stats.reads_completed == 0
          ? 0.0
          : static_cast<double>(stats.deferred_replies) /
                static_cast<double>(stats.reads_completed);
  out.staleness_violations = stats.staleness_violations;
  out.summary = bench::summarize_run(label, results[1],
                                     scenario.simulator().now() - sim::kEpoch);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::vector<Config> configs = {
      {0.9, std::chrono::seconds(4)},
      {0.5, std::chrono::seconds(4)},
      {0.9, std::chrono::seconds(2)},
      {0.5, std::chrono::seconds(2)},
  };
  const std::vector<int> deadlines_ms = {80, 100, 120, 140, 160, 180, 200, 220};

  std::cout << "=== Figure 4: adaptivity of the probabilistic model ===\n"
            << "setup: sequencer + 4 primaries + 6 secondaries; service ~ "
               "N(100ms, 50ms); 2 clients, "
            << opt.requests << " alternating write/read requests each\n"
            << "client 1 QoS: a=4, d=200ms, Pc=0.1 (fixed); client 2: a=2, "
               "d swept, Pc per config\n\n";

  harness::Table fig4a({"deadline_ms", configs[0].label(), configs[1].label(),
                        configs[2].label(), configs[3].label()});
  harness::Table fig4b({"deadline_ms", configs[0].label() + " [95% CI]",
                        configs[1].label() + " [95% CI]",
                        configs[2].label() + " [95% CI]",
                        configs[3].label() + " [95% CI]"});
  harness::Table extras({"deadline_ms", "config", "deferred_fraction",
                         "staleness_violations", "within_1-Pc"});

  std::vector<bench::RunSummary> runs;
  for (const int d : deadlines_ms) {
    std::vector<std::string> row_a = {std::to_string(d)};
    std::vector<std::string> row_b = {std::to_string(d)};
    for (const Config& c : configs) {
      const RunResult r =
          run_one(c.pc, c.lui, std::chrono::milliseconds(d),
                  "d=" + std::to_string(d) + "ms " + c.label(), opt);
      runs.push_back(r.summary);
      row_a.push_back(harness::Table::num(r.avg_selected, 2));
      row_b.push_back(harness::Table::num(r.failure.point, 3) + " [" +
                      harness::Table::num(r.failure.lower, 3) + "," +
                      harness::Table::num(r.failure.upper, 3) + "]");
      extras.add_row({std::to_string(d), c.label(),
                      harness::Table::num(r.deferred_fraction, 3),
                      std::to_string(r.staleness_violations),
                      r.failure.point <= (1.0 - c.pc) + 0.02 ? "yes" : "NO"});
    }
    fig4a.add_row(std::move(row_a));
    fig4b.add_row(std::move(row_b));
  }

  std::cout << "--- Figure 4a: average number of replicas selected "
               "(client 2) ---\n";
  fig4a.print();
  std::cout << "\n--- Figure 4b: observed probability of timing failure "
               "(client 2) ---\n";
  fig4b.print();
  std::cout << "\n--- supplementary: deferral rate, staleness-bound check, "
               "QoS satisfaction ---\n";
  extras.print();
  if (opt.csv) {
    std::cout << "\nCSV fig4a\n";
    fig4a.print_csv(std::cout);
    std::cout << "\nCSV fig4b\n";
    fig4b.print_csv(std::cout);
  }
  if (const auto path = bench::write_json_summary(opt, "fig4_adaptivity", runs);
      !path.empty()) {
    std::cout << "\nwrote " << path << "\n";
  }
  return 0;
}
