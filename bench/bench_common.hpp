// Shared helpers for the experiment-reproduction binaries.
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "obs/json.hpp"
#include "sim/time.hpp"

namespace aqueduct::bench {

/// Command-line options shared by the harness-driven benches.
///
/// Parsing is strict: an unknown flag (or a flag missing its value) prints
/// usage and exits 2, so CI cannot green-light a typo'd invocation that
/// silently ran with defaults.
struct Options {
  /// Requests per client per run (the paper uses 1000 alternating
  /// write/read requests).
  std::size_t requests = 1000;
  std::uint64_t seed = 42;
  /// Seed count for the sweep-driven benches (0 = the bench's default).
  std::size_t seeds = 0;
  /// Worker threads for the sweep-driven benches (0 = one per core).
  /// Output is byte-identical for any value — see runner/sweep.hpp.
  std::size_t threads = 0;
  bool csv = false;   // also emit CSV blocks
  bool json = true;   // write the BENCH_<name>.json summary
  std::string json_out;  // overrides the default BENCH_<name>.json path

  static void usage(const char* prog, std::ostream& os) {
    os << "usage: " << prog << " [options]\n"
       << "  --quick            small request count (200) for CI shards\n"
       << "  --requests N       requests per client per run\n"
       << "  --seed N           first seed\n"
       << "  --seeds N          seed count (sweep-driven benches)\n"
       << "  --threads N        sweep worker threads (0 = one per core)\n"
       << "  --csv              also emit CSV blocks\n"
       << "  --json-out PATH    override the BENCH_<name>.json path\n"
       << "  --no-json          skip the JSON summary\n"
       << "  --help             show this help\n";
  }

  static Options parse(int argc, char** argv) {
    Options opt;
    const auto value = [&](int& i) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": flag " << argv[i] << " needs a value\n";
        usage(argv[0], std::cerr);
        std::exit(2);
      }
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        opt.requests = 200;
      } else if (arg == "--requests") {
        opt.requests = static_cast<std::size_t>(std::stoull(value(i)));
      } else if (arg == "--seed") {
        opt.seed = std::stoull(value(i));
      } else if (arg == "--seeds") {
        opt.seeds = static_cast<std::size_t>(std::stoull(value(i)));
      } else if (arg == "--threads") {
        opt.threads = static_cast<std::size_t>(std::stoull(value(i)));
      } else if (arg == "--csv") {
        opt.csv = true;
      } else if (arg == "--json-out") {
        opt.json_out = value(i);
      } else if (arg == "--no-json") {
        opt.json = false;
      } else if (arg == "--help") {
        usage(argv[0], std::cout);
        std::exit(0);
      } else {
        std::cerr << argv[0] << ": unknown flag " << arg << "\n";
        usage(argv[0], std::cerr);
        std::exit(2);
      }
    }
    return opt;
  }
};

/// One row of a bench's machine-readable summary: a single scenario run
/// seen from one client's perspective.
struct RunSummary {
  std::string name;  // configuration label (selector, interarrival, ...)
  std::uint64_t reads_completed = 0;
  std::uint64_t reads_abandoned = 0;
  double simulated_seconds = 0.0;
  double throughput_rps = 0.0;  // completed reads per simulated second
  double avg_read_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double timing_failure_rate = 0.0;
  double timing_failure_ci_lower = 0.0;  // 95% Wilson score interval
  double timing_failure_ci_upper = 0.0;
  double avg_replicas_selected = 0.0;
};

/// Builds a RunSummary from one client's results of a finished scenario.
inline RunSummary summarize_run(std::string name,
                                const harness::ClientResult& result,
                                sim::Duration simulated) {
  const auto& stats = result.stats;
  RunSummary run;
  run.name = std::move(name);
  run.reads_completed = stats.reads_completed;
  run.reads_abandoned = stats.reads_abandoned;
  run.simulated_seconds = sim::to_sec(simulated);
  run.throughput_rps = run.simulated_seconds <= 0.0
                           ? 0.0
                           : static_cast<double>(stats.reads_completed) /
                                 run.simulated_seconds;
  run.avg_read_ms = sim::to_ms(stats.avg_response_time());
  run.p50_ms = harness::percentile(result.read_response_times, 0.50) * 1000.0;
  run.p95_ms = harness::percentile(result.read_response_times, 0.95) * 1000.0;
  run.p99_ms = harness::percentile(result.read_response_times, 0.99) * 1000.0;
  run.timing_failure_rate = stats.timing_failure_probability();
  const auto ci = harness::binomial_ci_wilson(stats.timing_failures,
                                              stats.reads_completed);
  run.timing_failure_ci_lower = ci.lower;
  run.timing_failure_ci_upper = ci.upper;
  run.avg_replicas_selected = stats.avg_replicas_selected();
  return run;
}

/// Writes BENCH_<name>.json (or --json-out) with the collected runs.
/// Returns the path written, empty if JSON output is disabled.
inline std::string write_json_summary(const Options& opt,
                                      const std::string& bench_name,
                                      const std::vector<RunSummary>& runs) {
  if (!opt.json) return {};
  const std::string path =
      opt.json_out.empty() ? "BENCH_" + bench_name + ".json" : opt.json_out;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "bench: cannot write " << path << "\n";
    return {};
  }
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("bench", bench_name);
  w.field("seed", static_cast<std::uint64_t>(opt.seed));
  w.field("requests", static_cast<std::uint64_t>(opt.requests));
  w.key("runs");
  w.begin_array();
  for (const RunSummary& run : runs) {
    w.begin_object();
    w.field("name", run.name);
    w.field("reads_completed", run.reads_completed);
    w.field("reads_abandoned", run.reads_abandoned);
    w.field("simulated_seconds", run.simulated_seconds);
    w.field("throughput_rps", run.throughput_rps);
    w.field("avg_read_ms", run.avg_read_ms);
    w.field("p50_ms", run.p50_ms);
    w.field("p95_ms", run.p95_ms);
    w.field("p99_ms", run.p99_ms);
    w.field("timing_failure_rate", run.timing_failure_rate);
    w.field("timing_failure_ci_lower", run.timing_failure_ci_lower);
    w.field("timing_failure_ci_upper", run.timing_failure_ci_upper);
    w.field("avg_replicas_selected", run.avg_replicas_selected);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return path;
}

}  // namespace aqueduct::bench
