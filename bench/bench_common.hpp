// Shared helpers for the experiment-reproduction binaries.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace aqueduct::bench {

/// Command-line options shared by the harness-driven benches.
struct Options {
  /// Requests per client per run (the paper uses 1000 alternating
  /// write/read requests).
  std::size_t requests = 1000;
  std::uint64_t seed = 42;
  bool csv = false;  // also emit CSV blocks

  static Options parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        opt.requests = 200;
      } else if (arg == "--requests" && i + 1 < argc) {
        opt.requests = static_cast<std::size_t>(std::stoull(argv[++i]));
      } else if (arg == "--seed" && i + 1 < argc) {
        opt.seed = std::stoull(argv[++i]);
      } else if (arg == "--csv") {
        opt.csv = true;
      }
    }
    return opt;
  }
};

}  // namespace aqueduct::bench
