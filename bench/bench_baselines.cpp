// Baseline comparison (paper Section 5's motivation): the probabilistic
// state-based selection of Algorithm 1 against
//   * select-all   — every request goes to every replica ("not scalable,
//                     increases the load on all the replicas"),
//   * select-one   — a single replica per request (random / LRU; "a
//                     failure or slow replica results in unacceptable
//                     delay"),
//   * fixed-k      — a static subset of the k best replicas,
// plus ablations of Algorithm 1's two design choices:
//   * no-failure-allowance — drop the maxCDF-exclusion rule,
//   * greedy-cdf-order     — drop the ert (LRU) sort.
#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace aqueduct;

namespace {

struct Entry {
  std::string name;
  harness::SelectorFactory factory;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  std::vector<Entry> entries;
  entries.push_back({"probabilistic (Algorithm 1)", [] {
                       return std::make_unique<core::ProbabilisticSelector>();
                     }});
  entries.push_back({"probabilistic, no failure allowance", [] {
                       return std::make_unique<core::ProbabilisticSelector>(
                           core::ProbabilisticOptions{
                               .tolerate_one_failure = false});
                     }});
  entries.push_back({"probabilistic, greedy CDF order", [] {
                       return std::make_unique<core::ProbabilisticSelector>(
                           core::ProbabilisticOptions{.sort_by_ert = false});
                     }});
  entries.push_back({"select-all", [] {
                       return std::make_unique<core::SelectAllSelector>();
                     }});
  entries.push_back({"select-one (random)", [] {
                       return std::make_unique<core::SelectOneSelector>(
                           core::SelectOneSelector::Policy::kRandom);
                     }});
  entries.push_back({"select-one (LRU)", [] {
                       return std::make_unique<core::SelectOneSelector>(
                           core::SelectOneSelector::Policy::kLeastRecentlyUsed);
                     }});
  entries.push_back(
      {"fixed-k (k=3)", [] { return std::make_unique<core::FixedKSelector>(3); }});

  std::cout << "=== Baseline selector comparison ===\n"
            << "client QoS: a=2, d=140ms, Pc=0.9; LUI=4s; "
            << opt.requests << " requests; both clients use the listed "
               "selector\n\n";

  harness::Table table({"selector", "avg_replicas_selected",
                        "timing_failure_prob", "95%_CI", "avg_read_ms",
                        "p99_read_ms", "replica_msgs_per_read"});
  std::vector<bench::RunSummary> runs;

  for (const Entry& entry : entries) {
    harness::ScenarioConfig config;
    config.seed = opt.seed;
    config.lazy_update_interval = std::chrono::seconds(4);
    for (int c = 0; c < 2; ++c) {
      config.clients.push_back(harness::ClientSpec{
          .qos = {.staleness_threshold = c == 0 ? 4u : 2u,
                  .deadline = std::chrono::milliseconds(c == 0 ? 200 : 140),
                  .min_probability = c == 0 ? 0.1 : 0.9},
          .request_delay = std::chrono::milliseconds(1000),
          .num_requests = opt.requests,
          .selector = entry.factory,
      });
    }
    harness::Scenario scenario(std::move(config));
    auto results = scenario.run();
    const auto& stats = results[1].stats;
    runs.push_back(bench::summarize_run(entry.name, results[1],
                                        scenario.executor().now() - sim::kEpoch));
    const auto ci = harness::binomial_ci_normal(stats.timing_failures,
                                                stats.reads_completed);
    // Load proxy: how many replica services each read consumed.
    std::uint64_t reads_served = 0;
    for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
      reads_served += scenario.replica(i).stats().reads_served;
    }
    const std::uint64_t total_reads =
        results[0].stats.reads_completed + results[1].stats.reads_completed;
    table.add_row(
        {entry.name, harness::Table::num(stats.avg_replicas_selected(), 2),
         harness::Table::num(ci.point, 3),
         "[" + harness::Table::num(ci.lower, 3) + "," +
             harness::Table::num(ci.upper, 3) + "]",
         harness::Table::num(sim::to_ms(stats.avg_response_time()), 1),
         harness::Table::num(
             harness::percentile(results[1].read_response_times, 0.99) * 1000.0,
             1),
         harness::Table::num(total_reads == 0
                                 ? 0.0
                                 : static_cast<double>(reads_served) /
                                       static_cast<double>(total_reads),
                             2)});
  }
  table.print();
  if (opt.csv) table.print_csv(std::cout);
  if (const auto path = bench::write_json_summary(opt, "baselines", runs);
      !path.empty()) {
    std::cout << "\nwrote " << path << "\n";
  }
  return 0;
}
