// Validates the staleness-factor models (paper Section 5.1.3, Eq. 4).
//
// Ground truth by Monte Carlo: generate update arrival processes, count
// N(t_l) — the updates inside an interval of length t_l — and compare the
// empirical P(N(t_l) <= a) against
//   * the Poisson model the paper uses, and
//   * the empirical resampling model (the paper's suggested extension for
//     non-Poisson arrivals),
// for (a) truly Poisson arrivals and (b) bursty (Pareto-ish on/off)
// arrivals, where the Poisson model's error becomes visible.
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/staleness.hpp"
#include "harness/table.hpp"
#include "sim/random.hpp"

using namespace aqueduct;

namespace {

/// Draws inter-arrival gaps for a bursty process: exponential bursts of
/// closely spaced updates separated by long silences.
sim::Duration bursty_gap(sim::Rng& rng, double rate_per_s) {
  // 1-in-4 gaps are long (between bursts); the rest are short (in-burst),
  // keeping the long-run rate at roughly rate_per_s.
  const double mean_s = 1.0 / rate_per_s;
  if (rng.bernoulli(0.25)) {
    return sim::from_sec(rng.exponential(1.0 / (3.0 * mean_s)));
  }
  return sim::from_sec(rng.exponential(1.0 / (0.33 * mean_s)));
}

/// Empirical P(N(t_l) <= a) over `trials` windows of an arrival process.
double ground_truth(bool bursty, double rate, sim::Duration t_l,
                    core::Staleness a, std::uint64_t seed, int trials) {
  sim::Rng rng(seed);
  int within = 0;
  for (int t = 0; t < trials; ++t) {
    sim::Duration elapsed = sim::Duration::zero();
    core::Staleness count = 0;
    while (true) {
      const sim::Duration gap =
          bursty ? bursty_gap(rng, rate)
                 : sim::from_sec(rng.exponential(rate));
      elapsed += gap;
      if (elapsed > t_l) break;
      ++count;
      if (count > a) break;
    }
    if (count <= a) ++within;
  }
  return static_cast<double>(within) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const double rate = 1.0;  // updates per second (the paper's regime)
  const core::Staleness a = 2;
  const int trials = 20000;

  std::cout << "=== Staleness-factor model validation (Eq. 4) ===\n"
            << "lambda_u = " << rate << "/s, staleness threshold a = " << a
            << ", " << trials << " Monte-Carlo windows per point\n\n";

  for (const bool bursty : {false, true}) {
    std::cout << (bursty ? "--- bursty (non-Poisson) arrivals ---\n"
                         : "--- Poisson arrivals ---\n");
    harness::Table table({"t_l_s", "ground_truth", "poisson_model",
                          "poisson_abs_err", "empirical_model",
                          "empirical_abs_err"});
    // The empirical model resamples observed gaps; feed it 200 gaps drawn
    // from the same process (what a monitoring window would hold).
    sim::Rng gap_rng(opt.seed + 17);
    std::vector<sim::Duration> gaps;
    for (int i = 0; i < 200; ++i) {
      gaps.push_back(bursty ? bursty_gap(gap_rng, rate)
                            : sim::from_sec(gap_rng.exponential(rate)));
    }
    const core::PoissonStalenessModel poisson(rate);
    const core::EmpiricalStalenessModel empirical(gaps, opt.seed + 29, 4000);

    for (const double t_l_s : {0.5, 1.0, 2.0, 3.0, 4.0, 6.0}) {
      const sim::Duration t_l = sim::from_sec(t_l_s);
      const double truth = ground_truth(bursty, rate, t_l, a, opt.seed, trials);
      const double p = poisson.staleness_factor(a, t_l);
      const double e = empirical.staleness_factor(a, t_l);
      table.add_row({harness::Table::num(t_l_s, 1),
                     harness::Table::num(truth, 4), harness::Table::num(p, 4),
                     harness::Table::num(std::abs(p - truth), 4),
                     harness::Table::num(e, 4),
                     harness::Table::num(std::abs(e - truth), 4)});
    }
    table.print();
    std::cout << "\n";
  }
  std::cout << "expected shape: both models track the truth under Poisson "
               "arrivals;\nunder bursty arrivals the empirical model stays "
               "close while the Poisson model drifts.\n";
  return 0;
}
