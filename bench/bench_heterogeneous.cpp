// Heterogeneous-testbed study. The paper's LAN mixed 300 MHz–1 GHz hosts
// (a ~3x service-speed spread); the probabilistic model learns each
// replica's response-time distribution individually and should route
// around slow hosts without starving them entirely (the ert sort keeps
// probing the least-recently-used replicas).
//
// Three pools with equal aggregate capacity, increasingly skewed, plus a
// "fast-primaries" vs "slow-primaries" placement comparison.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace aqueduct;

namespace {

struct PoolSpec {
  std::string name;
  std::vector<double> speed_factors;  // sequencer + 4 primaries + 6 secondaries
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  const std::vector<PoolSpec> pools = {
      {"homogeneous (all 1.0x)",
       {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
      {"mixed (paper-like 0.55x-1.8x)",
       {1, 1.8, 1.25, 0.8, 0.55, 1.8, 1.25, 1.0, 0.8, 0.65, 0.55}},
      {"fast primaries, slow secondaries",
       {1, 1.8, 1.8, 1.8, 1.8, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6}},
      {"slow primaries, fast secondaries",
       {1, 0.6, 0.6, 0.6, 0.6, 1.8, 1.8, 1.8, 1.8, 1.8, 1.8}},
  };

  std::cout << "=== Heterogeneous hosts: per-replica speed spread ===\n"
            << "client QoS: a=2, d=140ms, Pc=0.9; LUI=4s; " << opt.requests
            << " requests; speeds scale the N(100ms,50ms) service delay\n\n";

  harness::Table table({"pool", "timing_failure_prob", "95%_CI",
                        "avg_replicas_selected", "avg_read_ms", "p99_read_ms",
                        "slowest_replica_share"});

  for (const PoolSpec& pool : pools) {
    harness::ScenarioConfig config;
    config.seed = opt.seed;
    config.lazy_update_interval = std::chrono::seconds(4);
    config.speed_factors = pool.speed_factors;
    for (int c = 0; c < 2; ++c) {
      config.clients.push_back(harness::ClientSpec{
          .qos = {.staleness_threshold = c == 0 ? 4u : 2u,
                  .deadline = std::chrono::milliseconds(c == 0 ? 200 : 140),
                  .min_probability = c == 0 ? 0.1 : 0.9},
          .request_delay = std::chrono::milliseconds(1000),
          .num_requests = opt.requests,
      });
    }
    harness::Scenario scenario(std::move(config));
    auto results = scenario.run();
    const auto& stats = results[1].stats;
    const auto ci = harness::binomial_ci_normal(stats.timing_failures,
                                                stats.reads_completed);

    // How much read work landed on the slowest replica vs its fair share.
    std::size_t slowest = 1;
    for (std::size_t i = 1; i < scenario.num_replicas(); ++i) {
      const double f = i < pool.speed_factors.size() ? pool.speed_factors[i] : 1.0;
      const double fs = slowest < pool.speed_factors.size()
                            ? pool.speed_factors[slowest]
                            : 1.0;
      if (f < fs) slowest = i;
    }
    std::uint64_t total_reads = 0;
    for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
      total_reads += scenario.replica(i).stats().reads_served;
    }
    const double share =
        total_reads == 0
            ? 0.0
            : static_cast<double>(scenario.replica(slowest).stats().reads_served) /
                  static_cast<double>(total_reads);

    table.add_row({pool.name, harness::Table::num(ci.point, 3),
                   "[" + harness::Table::num(ci.lower, 3) + "," +
                       harness::Table::num(ci.upper, 3) + "]",
                   harness::Table::num(stats.avg_replicas_selected(), 2),
                   harness::Table::num(sim::to_ms(stats.avg_response_time()), 1),
                   harness::Table::num(
                       harness::percentile(results[1].read_response_times, 0.99) *
                           1000.0,
                       1),
                   harness::Table::num(100.0 * share, 1) + "%"});
  }
  table.print();
  std::cout << "\nexpected shape: the model absorbs moderate skew (mixed pool "
               "close to homogeneous);\nslow *primaries* hurt most — tight-"
               "staleness reads depend on them — while slow\nsecondaries are "
               "routed around. The slowest replica still serves some reads "
               "(ert probing),\njust less than its 1/10 fair share.\n";
  return 0;
}
