// Protocol-overhead accounting: message and byte cost of the middleware,
// broken down by message type, for the paper's standard workload.
//
// The paper's two-level organization exists to cut the write-all cost and
// the read fan-out; this table makes both visible, along with the fixed
// costs (heartbeats, lazy propagation, performance publication) that the
// AQuA/Ensemble stack pays in the background.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace aqueduct;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  harness::ScenarioConfig config;
  config.seed = opt.seed;
  config.lazy_update_interval = std::chrono::seconds(4);
  for (int c = 0; c < 2; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = c == 0 ? 4u : 2u,
                .deadline = std::chrono::milliseconds(c == 0 ? 200 : 140),
                .min_probability = c == 0 ? 0.1 : 0.9},
        .request_delay = std::chrono::milliseconds(1000),
        .num_requests = opt.requests,
    });
  }
  harness::Scenario scenario(std::move(config));

  struct TypeCost {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  // The gcs wraps application payloads in gcs.data envelopes; attribute
  // them to the payload type where possible is not observable at the
  // network layer, so gcs.data aggregates all reliable traffic and the
  // remaining rows are the gcs control plane.
  struct CostSink final : obs::TraceSink {
    std::map<std::string, TypeCost> by_type;
    std::uint64_t total_messages = 0;
    std::uint64_t total_bytes = 0;
    void on_message(const obs::MessageEvent& event) override {
      auto& cost = by_type[event.type_name];
      ++cost.messages;
      cost.bytes += event.wire_size;
      ++total_messages;
      total_bytes += event.wire_size;
    }
  } sink;
  scenario.transport().tracing().add(&sink);

  auto results = scenario.run();
  scenario.transport().tracing().remove(&sink);
  const auto& by_type = sink.by_type;
  const std::uint64_t total_messages = sink.total_messages;
  const std::uint64_t total_bytes = sink.total_bytes;

  const std::uint64_t reads = results[0].stats.reads_completed +
                              results[1].stats.reads_completed;
  const std::uint64_t updates = results[0].stats.updates_completed +
                                results[1].stats.updates_completed;

  std::cout << "=== Protocol overhead: messages by type (standard workload, "
            << opt.requests << " requests x 2 clients) ===\n\n";
  harness::Table table({"message_type", "messages", "bytes", "share_of_msgs"});
  std::vector<std::pair<std::string, TypeCost>> sorted(by_type.begin(), by_type.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.messages > b.second.messages;
  });
  for (const auto& [type, cost] : sorted) {
    table.add_row({type, std::to_string(cost.messages),
                   std::to_string(cost.bytes),
                   harness::Table::num(100.0 * static_cast<double>(cost.messages) /
                                           static_cast<double>(total_messages),
                                       1) + "%"});
  }
  table.print();

  std::cout << "\ntotals: " << total_messages << " messages, " << total_bytes
            << " bytes; " << reads << " reads, " << updates << " updates\n";
  if (reads + updates > 0) {
    std::cout << "=> " << harness::Table::num(
                     static_cast<double>(total_messages) /
                         static_cast<double>(reads + updates), 1)
              << " network messages per application request (including all "
                 "background traffic)\n";
  }
  std::cout << "\ngcs.data carries the application protocol (requests, "
               "replies, GSN broadcasts,\nlazy updates, performance "
               "publications); gcs.heartbeat is the fixed-rate\nfailure-"
               "detection/ack plane that AQuA inherits from Ensemble.\n";
  return 0;
}
