// Recovery experiment: how fast does a crashed replica come back, and
// what does the outage cost the clients?
//
// For each seed, a primary is crashed at t=8s and restarted at t=14s
// (fresh incarnation, fresh NodeId). The reborn replica rejoins the
// groups, pulls a state snapshot behind the transfer barrier, and is
// re-admitted to client selection. Reported per seed:
//   time_to_rejoin          — restart until the transfer barrier drops;
//   time_to_first_selection — restart until a client's selection first
//                             includes the reborn replica (its first read);
//   outage vs steady timing-failure probability — read outcomes
//                             attributed to the [crash, recovered] window
//                             vs the rest of the run.
//
// The per-seed body lives in the `recovery` plan (src/runner/plans.cpp)
// and the seeds fan out across --threads workers on the sweep engine; the
// merged output is byte-identical for any thread count.
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "harness/table.hpp"
#include "runner/plans.hpp"
#include "runner/sweep.hpp"

using namespace aqueduct;

namespace {

double rate(std::uint64_t failures, std::uint64_t total) {
  return total == 0 ? 0.0 : static_cast<double>(failures) /
                                static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  // Each run only needs to cover the outage plus a steady tail.
  if (opt.requests > 300) opt.requests = 300;
  const std::size_t seeds = opt.seeds == 0 ? 10 : opt.seeds;

  const runner::Plan* plan = runner::find_plan("recovery");
  const runner::SweepSpec spec =
      runner::make_spec(*plan, opt.seed, seeds, opt.threads, opt.requests);

  std::cout << "=== Recovery: time-to-rejoin and the cost of an outage ===\n"
            << "2 primaries + 2 secondaries; a primary crashes at t=8s, "
               "restarts at t=14s; client QoS: a=2, d=250ms, Pc=0.5; "
            << opt.requests << " requests per client, " << seeds
            << " seeds\n\n";

  const runner::SweepResult result = runner::run_sweep(spec);

  harness::Table table({"seed", "rejoin_s", "first_selection_s",
                        "outage_reads", "outage_tf_prob", "steady_tf_prob",
                        "reads_completed"});
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const runner::SeedRecord& r = result.rows[i];
    if (!r.ok) {
      table.add_row({std::to_string(spec.units[i].seed), "FAILED", r.error,
                     "-", "-", "-", "-"});
      continue;
    }
    table.add_row(
        {std::to_string(spec.units[i].seed),
         harness::Table::num(r.value_or("time_to_rejoin_s", -1.0), 3),
         harness::Table::num(r.value_or("time_to_first_selection_s", -1.0), 3),
         std::to_string(r.counter_or_zero("outage_reads")),
         harness::Table::num(rate(r.counter_or_zero("outage_failures"),
                                  r.counter_or_zero("outage_reads")),
                             3),
         harness::Table::num(rate(r.counter_or_zero("steady_failures"),
                                  r.counter_or_zero("steady_reads")),
                             3),
         std::to_string(r.counter_or_zero("reads_completed"))});
  }
  table.print();

  const std::uint64_t recovered = result.pooled_counter_or_zero("recovered");
  const std::uint64_t conflicts =
      result.pooled_counter_or_zero("gsn_conflicts");
  double mean_rejoin = -1.0, mean_first = -1.0;
  for (const runner::PooledSamples& s : result.samples) {
    if (s.name == "rejoin_s" && s.count > 0) mean_rejoin = s.mean;
    if (s.name == "first_selection_s" && s.count > 0) mean_first = s.mean;
  }
  std::cout << "\nrecovered in " << recovered << "/" << seeds
            << " seeds; mean time_to_rejoin "
            << harness::Table::num(mean_rejoin, 3)
            << "s; mean time_to_first_selection "
            << harness::Table::num(mean_first, 3)
            << "s\npooled timing-failure probability: outage "
            << harness::Table::num(
                   rate(result.pooled_counter_or_zero("outage_failures"),
                        result.pooled_counter_or_zero("outage_reads")),
                   3)
            << " vs steady "
            << harness::Table::num(
                   rate(result.pooled_counter_or_zero("steady_failures"),
                        result.pooled_counter_or_zero("steady_reads")),
                   3)
            << "; gsn_conflicts " << conflicts << " (must be 0)\n"
            << "swept " << spec.units.size() << " seeds on "
            << result.threads_used << " thread"
            << (result.threads_used == 1 ? "" : "s") << " in "
            << harness::Table::num(result.wall_seconds, 2) << "s wall\n";

  if (opt.json) {
    const std::string path =
        opt.json_out.empty() ? "BENCH_recovery.json" : opt.json_out;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return 1;
    }
    runner::write_sweep_json(os, spec, result);
    std::cout << "\nwrote " << path << "\n";
  }

  std::cout << "\nexpected shape: rejoin within a few seconds of the restart "
               "(group join + state\ntransfer), first selection shortly after "
               "(warm-up seeds the reborn replica's\nhistory), and a modestly "
               "higher timing-failure probability during the outage\nwindow "
               "while the pool is one primary short.\n";
  return (result.all_ok() && conflicts == 0 && recovered == seeds) ? 0 : 1;
}
