// Recovery experiment: how fast does a crashed replica come back, and
// what does the outage cost the clients?
//
// For each seed, a primary is crashed at t=8s and restarted at t=14s
// (fresh incarnation, fresh NodeId). The reborn replica rejoins the
// groups, pulls a state snapshot behind the transfer barrier, and is
// re-admitted to client selection. Reported per seed:
//   time_to_rejoin          — restart until the transfer barrier drops
//                             (recovered_at - restart time);
//   time_to_first_selection — restart until a client's selection first
//                             includes the reborn replica (its first read);
//   outage vs steady timing-failure probability — read outcomes
//                             attributed to the [crash, recovered] window
//                             vs the rest of the run.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/schedule.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "obs/json.hpp"

using namespace aqueduct;

namespace {

struct SeedResult {
  std::uint64_t seed = 0;
  double time_to_rejoin_s = 0.0;
  double time_to_first_selection_s = 0.0;
  std::uint64_t outage_reads = 0;
  std::uint64_t outage_failures = 0;
  std::uint64_t steady_reads = 0;
  std::uint64_t steady_failures = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t reads_abandoned = 0;
  std::uint64_t gsn_conflicts = 0;
};

double rate(std::uint64_t failures, std::uint64_t total) {
  return total == 0 ? 0.0 : static_cast<double>(failures) /
                                static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  // Each run only needs to cover the outage plus a steady tail.
  if (opt.requests > 300) opt.requests = 300;

  constexpr std::size_t kVictim = 1;  // a primary (0 = sequencer)
  const auto crash_at = std::chrono::seconds(8);
  const auto restart_at = std::chrono::seconds(14);
  constexpr std::uint64_t kSeeds = 10;

  std::cout << "=== Recovery: time-to-rejoin and the cost of an outage ===\n"
            << "2 primaries + 2 secondaries; primary " << kVictim
            << " crashes at t=8s, restarts at t=14s; client QoS: a=2, "
               "d=250ms, Pc=0.5; "
            << opt.requests << " requests per client, " << kSeeds
            << " seeds\n\n";

  harness::Table table({"seed", "rejoin_s", "first_selection_s",
                        "outage_reads", "outage_tf_prob", "steady_tf_prob",
                        "reads_completed"});

  std::vector<SeedResult> results;
  for (std::uint64_t seed = opt.seed; seed < opt.seed + kSeeds; ++seed) {
    harness::ScenarioConfig config;
    config.seed = seed;
    config.num_primaries = 2;
    config.num_secondaries = 2;
    config.lazy_update_interval = std::chrono::seconds(2);
    for (int c = 0; c < 2; ++c) {
      config.clients.push_back(harness::ClientSpec{
          .qos = {.staleness_threshold = 2,
                  .deadline = std::chrono::milliseconds(250),
                  .min_probability = 0.5},
          .request_delay = std::chrono::milliseconds(150),
          .num_requests = opt.requests,
      });
    }
    harness::Scenario scenario(std::move(config));

    fault::FaultSchedule plan;
    plan.crash_restart(kVictim, crash_at, restart_at);
    scenario.apply_faults(plan);

    auto run = scenario.run();
    const auto& reborn = scenario.replica(kVictim);

    SeedResult r;
    r.seed = seed;
    // recovered_at / first_read_request_at are stamped on the reborn
    // incarnation; kEpoch means the event never happened.
    const double recovered_s =
        reborn.recovered_at() > sim::kEpoch
            ? sim::to_sec(reborn.recovered_at() - sim::kEpoch)
            : -1.0;
    r.time_to_rejoin_s =
        recovered_s < 0.0 ? -1.0
                          : recovered_s - sim::to_sec(sim::Duration(restart_at));
    r.time_to_first_selection_s =
        reborn.first_read_request_at() > sim::kEpoch
            ? sim::to_sec(reborn.first_read_request_at() - sim::kEpoch) -
                  sim::to_sec(sim::Duration(restart_at))
            : -1.0;

    // Attribute every completed read to the outage window or steady state.
    const double outage_from = sim::to_sec(sim::Duration(crash_at));
    const double outage_until =
        recovered_s < 0.0 ? sim::to_sec(scenario.simulator().now() - sim::kEpoch)
                          : recovered_s;
    for (const auto& client : run) {
      r.reads_completed += client.stats.reads_completed;
      r.reads_abandoned += client.stats.reads_abandoned;
      for (std::size_t i = 0; i < client.read_completed_at.size(); ++i) {
        const bool in_outage = client.read_completed_at[i] >= outage_from &&
                               client.read_completed_at[i] < outage_until;
        const bool failed = client.read_timing_failures[i];
        (in_outage ? r.outage_reads : r.steady_reads) += 1;
        if (failed) (in_outage ? r.outage_failures : r.steady_failures) += 1;
      }
    }
    for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
      r.gsn_conflicts += scenario.replica(i).stats().gsn_conflicts;
    }
    results.push_back(r);

    table.add_row({std::to_string(seed),
                   harness::Table::num(r.time_to_rejoin_s, 3),
                   harness::Table::num(r.time_to_first_selection_s, 3),
                   std::to_string(r.outage_reads),
                   harness::Table::num(rate(r.outage_failures, r.outage_reads), 3),
                   harness::Table::num(rate(r.steady_failures, r.steady_reads), 3),
                   std::to_string(r.reads_completed)});
  }
  table.print();

  // Aggregates (pooled across seeds).
  double sum_rejoin = 0.0, sum_first = 0.0;
  std::uint64_t recovered = 0, selected = 0, conflicts = 0;
  std::uint64_t outage_reads = 0, outage_failures = 0;
  std::uint64_t steady_reads = 0, steady_failures = 0;
  for (const SeedResult& r : results) {
    if (r.time_to_rejoin_s >= 0.0) { sum_rejoin += r.time_to_rejoin_s; ++recovered; }
    if (r.time_to_first_selection_s >= 0.0) {
      sum_first += r.time_to_first_selection_s;
      ++selected;
    }
    outage_reads += r.outage_reads;
    outage_failures += r.outage_failures;
    steady_reads += r.steady_reads;
    steady_failures += r.steady_failures;
    conflicts += r.gsn_conflicts;
  }
  const double mean_rejoin = recovered == 0 ? -1.0 : sum_rejoin / recovered;
  const double mean_first = selected == 0 ? -1.0 : sum_first / selected;
  std::cout << "\nrecovered in " << recovered << "/" << kSeeds
            << " seeds; mean time_to_rejoin "
            << harness::Table::num(mean_rejoin, 3)
            << "s; mean time_to_first_selection "
            << harness::Table::num(mean_first, 3)
            << "s\npooled timing-failure probability: outage "
            << harness::Table::num(rate(outage_failures, outage_reads), 3)
            << " vs steady "
            << harness::Table::num(rate(steady_failures, steady_reads), 3)
            << "; gsn_conflicts " << conflicts << " (must be 0)\n";

  if (opt.json) {
    const std::string path =
        opt.json_out.empty() ? "BENCH_recovery.json" : opt.json_out;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return 1;
    }
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("bench", std::string("recovery"));
    w.field("seed", static_cast<std::uint64_t>(opt.seed));
    w.field("requests", static_cast<std::uint64_t>(opt.requests));
    w.field("crash_at_s", sim::to_sec(sim::Duration(crash_at)));
    w.field("restart_at_s", sim::to_sec(sim::Duration(restart_at)));
    w.field("seeds_recovered", recovered);
    w.field("mean_time_to_rejoin_s", mean_rejoin);
    w.field("mean_time_to_first_selection_s", mean_first);
    w.field("outage_timing_failure_rate", rate(outage_failures, outage_reads));
    w.field("steady_timing_failure_rate", rate(steady_failures, steady_reads));
    w.field("gsn_conflicts", conflicts);
    w.key("runs");
    w.begin_array();
    for (const SeedResult& r : results) {
      w.begin_object();
      w.field("name", "seed_" + std::to_string(r.seed));
      w.field("seed", r.seed);
      w.field("time_to_rejoin_s", r.time_to_rejoin_s);
      w.field("time_to_first_selection_s", r.time_to_first_selection_s);
      w.field("outage_reads", r.outage_reads);
      w.field("outage_timing_failure_rate",
              rate(r.outage_failures, r.outage_reads));
      w.field("steady_timing_failure_rate",
              rate(r.steady_failures, r.steady_reads));
      w.field("reads_completed", r.reads_completed);
      w.field("reads_abandoned", r.reads_abandoned);
      w.field("gsn_conflicts", r.gsn_conflicts);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::cout << "\nwrote " << path << "\n";
  }

  std::cout << "\nexpected shape: rejoin within a few seconds of the restart "
               "(group join + state\ntransfer), first selection shortly after "
               "(warm-up seeds the reborn replica's\nhistory), and a modestly "
               "higher timing-failure probability during the outage\nwindow "
               "while the pool is one primary short.\n";
  return (conflicts == 0 && recovered == kSeeds) ? 0 : 1;
}
