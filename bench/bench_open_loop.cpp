// Open-loop load study. The paper's clients are closed-loop (next request
// `request_delay` after the previous completion), which self-throttles
// under overload. Open-loop Poisson arrivals model external demand: as
// the offered rate grows, replica queues build, the measured queueing
// delay W inflates the response-time pmfs, and the selection must widen K
// to keep the deadline probability — until the pool saturates and timing
// failures climb regardless.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace aqueduct;

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  if (opt.requests > 600) opt.requests = 600;

  std::cout << "=== Open-loop (Poisson) arrivals: offered-load sweep ===\n"
            << "client QoS: a=2, d=200ms, Pc=0.9; LUI=2s; " << opt.requests
            << " requests per client, 2 clients\n\n";

  harness::Table table({"mean_interarrival_ms", "offered_req_per_s",
                        "timing_failure_prob", "avg_replicas_selected",
                        "avg_read_ms", "p99_read_ms"});
  std::vector<bench::RunSummary> runs;

  for (const int gap_ms : {2000, 1000, 500, 250, 125}) {
    harness::ScenarioConfig config;
    config.seed = opt.seed;
    config.lazy_update_interval = std::chrono::seconds(2);
    for (int c = 0; c < 2; ++c) {
      config.clients.push_back(harness::ClientSpec{
          .qos = {.staleness_threshold = c == 0 ? 4u : 2u,
                  .deadline = std::chrono::milliseconds(200),
                  .min_probability = c == 0 ? 0.1 : 0.9},
          .request_delay = std::chrono::milliseconds(gap_ms),
          .num_requests = opt.requests,
          .arrival = harness::Arrival::kOpenPoisson,
      });
    }
    harness::Scenario scenario(std::move(config));
    auto results = scenario.run();
    const auto& stats = results[1].stats;
    runs.push_back(bench::summarize_run(
        "interarrival_" + std::to_string(gap_ms) + "ms", results[1],
        scenario.executor().now() - sim::kEpoch));
    table.add_row(
        {std::to_string(gap_ms),
         harness::Table::num(2.0 * 1000.0 / gap_ms, 1),
         harness::Table::num(stats.timing_failure_probability(), 3),
         harness::Table::num(stats.avg_replicas_selected(), 2),
         harness::Table::num(sim::to_ms(stats.avg_response_time()), 1),
         harness::Table::num(
             harness::percentile(results[1].read_response_times, 0.99) * 1000.0,
             1)});
  }
  table.print();
  if (const auto path = bench::write_json_summary(opt, "open_loop", runs);
      !path.empty()) {
    std::cout << "\nwrote " << path << "\n";
  }
  std::cout << "\nexpected shape: failures and queueing-inflated latencies "
               "stay flat while the pool\nhas headroom, then climb together "
               "as offered load approaches the pool's service\ncapacity "
               "(~10 replicas x 10 req/s each here).\n";
  return 0;
}
