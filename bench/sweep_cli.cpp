// sweep_cli: run a named bench plan over a seed range on the parallel
// sweep engine.
//
//   sweep_cli --plan recovery --seeds 32 --threads 8
//
// fans 32 shared-nothing scenario runs across 8 workers and writes
// BENCH_recovery.json. The merged output is byte-identical for any
// --threads value (a --threads 1 run is the oracle), which --self-bench
// verifies end-to-end: it runs the same spec single- and multi-threaded,
// compares the bytes, and writes BENCH_sweep.json with the measured
// speedup. Progress is reported through obs gauges (--metrics-out dumps
// them) and a live line on stderr.
#include <fstream>
#include <iostream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runner/plans.hpp"
#include "runner/sweep.hpp"

using namespace aqueduct;

namespace {

struct CliOptions {
  std::string plan;
  std::uint64_t seed = 42;
  std::size_t seeds = 8;
  std::size_t threads = 0;  // 0 = one per core
  std::size_t requests = 0;  // 0 = plan default
  bool json = true;
  std::string json_out;
  std::string metrics_out;
  bool list = false;
  bool self_bench = false;
  std::string timing_out;  // BENCH_sweep.json override
};

void usage(const char* prog, std::ostream& os) {
  os << "usage: " << prog << " --plan NAME [options]\n"
     << "  --plan NAME        bench plan to sweep (see --list)\n"
     << "  --seed N           first seed (default 42)\n"
     << "  --seeds N          seed count (default 8)\n"
     << "  --threads N        worker threads (0 = one per core); merged\n"
     << "                     output is byte-identical for any value\n"
     << "  --requests N       requests per client (0 = plan default)\n"
     << "  --json-out PATH    override the BENCH_<plan>.json path\n"
     << "  --no-json          skip the JSON summary\n"
     << "  --metrics-out PATH dump the sweep progress gauges as JSON\n"
     << "  --self-bench       run at --threads 1 then --threads N, verify\n"
     << "                     byte-identical output, write BENCH_sweep.json\n"
     << "                     with the measured speedup\n"
     << "  --timing-out PATH  override the BENCH_sweep.json path\n"
     << "  --list             list available plans\n"
     << "  --help             show this help\n";
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  const auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": flag " << argv[i] << " needs a value\n";
      usage(argv[0], std::cerr);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--plan") {
      opt.plan = value(i);
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value(i));
    } else if (arg == "--seeds") {
      opt.seeds = static_cast<std::size_t>(std::stoull(value(i)));
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(std::stoull(value(i)));
    } else if (arg == "--requests") {
      opt.requests = static_cast<std::size_t>(std::stoull(value(i)));
    } else if (arg == "--json-out") {
      opt.json_out = value(i);
    } else if (arg == "--no-json") {
      opt.json = false;
    } else if (arg == "--metrics-out") {
      opt.metrics_out = value(i);
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--self-bench") {
      opt.self_bench = true;
    } else if (arg == "--timing-out") {
      opt.timing_out = value(i);
    } else if (arg == "--help") {
      usage(argv[0], std::cout);
      std::exit(0);
    } else {
      std::cerr << argv[0] << ": unknown flag " << arg << "\n";
      usage(argv[0], std::cerr);
      std::exit(2);
    }
  }
  return opt;
}

/// Plan-specific pass/fail over the pooled counters, mirroring the exit
/// gates the serial benches enforced (recovery must recover every seed,
/// chaos must see zero invariant violations, nothing may throw).
bool gates_pass(const runner::Plan& plan, const runner::SweepResult& result) {
  if (!result.all_ok()) return false;
  if (plan.name == "recovery") {
    return result.pooled_counter_or_zero("recovered") == result.rows.size() &&
           result.pooled_counter_or_zero("gsn_conflicts") == 0;
  }
  if (plan.name == "chaos" || plan.name == "chaos_recovery") {
    return result.pooled_counter_or_zero("violations") == 0;
  }
  return true;
}

runner::SweepResult run_with_progress(const runner::SweepSpec& spec,
                                      obs::MetricsRegistry* metrics) {
  runner::SweepOptions opts;
  opts.metrics = metrics;
  opts.on_progress = [&spec](std::size_t done, std::size_t failed,
                             std::size_t total) {
    std::cerr << "\rsweep " << spec.name << ": " << done << "/" << total
              << " units";
    if (failed > 0) std::cerr << " (" << failed << " failed)";
    if (done == total) std::cerr << "\n";
    std::cerr.flush();
  };
  return runner::run_sweep(spec, opts);
}

int self_bench(const CliOptions& opt, const runner::Plan& plan) {
  obs::MetricsRegistry metrics;

  runner::SweepSpec oracle = runner::make_spec(plan, opt.seed, opt.seeds,
                                               /*threads=*/1, opt.requests);
  std::cerr << "self-bench: oracle pass (1 thread, " << oracle.units.size()
            << " units)\n";
  const auto r1 = run_with_progress(oracle, &metrics);

  runner::SweepSpec wide = runner::make_spec(plan, opt.seed, opt.seeds,
                                             opt.threads, opt.requests);
  const auto rn = run_with_progress(wide, &metrics);

  const std::string json1 = runner::sweep_json(oracle, r1);
  const std::string jsonn = runner::sweep_json(wide, rn);
  const bool identical = json1 == jsonn;
  const double speedup =
      rn.wall_seconds <= 0.0 ? 0.0 : r1.wall_seconds / rn.wall_seconds;

  std::cout << "plan " << plan.name << ": " << oracle.units.size()
            << " units; 1 thread " << r1.wall_seconds << "s, "
            << rn.threads_used << " threads " << rn.wall_seconds
            << "s; speedup " << speedup << "x; output "
            << (identical ? "byte-identical" : "DIVERGED") << "\n";

  if (opt.json) {
    const std::string path =
        opt.json_out.empty() ? "BENCH_" + plan.name + ".json" : opt.json_out;
    std::ofstream os(path);
    if (os) {
      os << jsonn;
      std::cout << "wrote " << path << "\n";
    }
  }
  const std::string timing_path =
      opt.timing_out.empty() ? "BENCH_sweep.json" : opt.timing_out;
  {
    std::ofstream os(timing_path);
    if (!os) {
      std::cerr << "sweep_cli: cannot write " << timing_path << "\n";
      return 1;
    }
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("bench", std::string("sweep"));
    w.field("plan", plan.name);
    w.field("units", static_cast<std::uint64_t>(oracle.units.size()));
    w.field("seed", opt.seed);
    w.field("seeds", static_cast<std::uint64_t>(opt.seeds));
    w.field("threads", static_cast<std::uint64_t>(rn.threads_used));
    w.field("oracle_wall_seconds", r1.wall_seconds);
    w.field("parallel_wall_seconds", rn.wall_seconds);
    w.field("speedup", speedup);
    w.field("identical_output", identical);
    w.field("failed_units", static_cast<std::uint64_t>(rn.failed));
    w.end_object();
    os << "\n";
    std::cout << "wrote " << timing_path << "\n";
  }
  if (!opt.metrics_out.empty()) {
    std::ofstream os(opt.metrics_out);
    if (os) metrics.write_json(os);
  }
  return identical && gates_pass(plan, r1) && gates_pass(plan, rn) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);

  if (opt.list) {
    for (const runner::Plan& p : runner::plans()) {
      std::cout << p.name << " — " << p.description << " ("
                << p.points.size() << " config point"
                << (p.points.size() == 1 ? "" : "s") << ", default "
                << p.default_requests << " requests)\n";
    }
    return 0;
  }
  if (opt.plan.empty()) {
    std::cerr << argv[0] << ": --plan is required (see --list)\n";
    usage(argv[0], std::cerr);
    return 2;
  }
  const runner::Plan* plan = runner::find_plan(opt.plan);
  if (plan == nullptr) {
    std::cerr << argv[0] << ": unknown plan " << opt.plan << " (see --list)\n";
    return 2;
  }
  if (opt.seeds == 0) {
    std::cerr << argv[0] << ": --seeds must be at least 1\n";
    return 2;
  }

  if (opt.self_bench) return self_bench(opt, *plan);

  obs::MetricsRegistry metrics;
  const runner::SweepSpec spec =
      runner::make_spec(*plan, opt.seed, opt.seeds, opt.threads, opt.requests);
  const auto result = run_with_progress(spec, &metrics);

  std::cout << "plan " << plan->name << ": " << spec.units.size()
            << " units on " << result.threads_used << " thread"
            << (result.threads_used == 1 ? "" : "s") << " in "
            << result.wall_seconds << "s";
  if (result.failed > 0) std::cout << "; " << result.failed << " FAILED";
  std::cout << "\n";
  for (const auto& b : result.binomials) {
    std::cout << "  " << b.label << ": " << b.ci.point << " [" << b.ci.lower
              << ", " << b.ci.upper << "] (" << b.failures << "/" << b.trials
              << ")\n";
  }
  for (const auto& [name, v] : result.pooled_counters) {
    std::cout << "  " << name << ": " << v << "\n";
  }

  if (opt.json) {
    const std::string path =
        opt.json_out.empty() ? "BENCH_" + plan->name + ".json" : opt.json_out;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "sweep_cli: cannot write " << path << "\n";
      return 1;
    }
    runner::write_sweep_json(os, spec, result);
    std::cout << "wrote " << path << "\n";
  }
  if (!opt.metrics_out.empty()) {
    std::ofstream os(opt.metrics_out);
    if (os) metrics.write_json(os);
  }
  return gates_pass(*plan, result) ? 0 : 1;
}
