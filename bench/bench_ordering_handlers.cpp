// Ordering-guarantee cost comparison (paper Section 4, Figure 2: the
// framework hosts multiple timed consistency handlers).
//
// Same replica pool and workload, two handlers:
//   * sequential (TOTAL) — sequencer-ordered updates; reads wait for the
//     GSN broadcast and respect a global staleness threshold;
//   * FIFO — per-client update order only; reads are served immediately
//     (optionally with read-your-writes session freshness).
// The sequential handler pays for its stronger guarantee with the
// sequencer round-trip on every read and commit-ordering waits; the FIFO
// handler's reads are cheaper but only per-client consistent.
#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "client/fifo_handler.hpp"
#include "client/handler.hpp"
#include "gcs/endpoint.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "net/loopback.hpp"
#include "replication/fifo.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

using namespace aqueduct;
using namespace std::chrono_literals;

namespace {

struct RunStats {
  std::vector<double> read_ms;
  std::uint64_t timing_failures = 0;
  std::uint64_t reads = 0;
  double avg_selected = 0.0;
};

constexpr std::size_t kPrimaries = 3;   // including the sequencer (TOTAL)
constexpr std::size_t kSecondaries = 4;

core::QoSSpec bench_qos() {
  return {.staleness_threshold = 2, .deadline = 140ms, .min_probability = 0.9};
}

/// Shared scaffold: simulator, LAN, replicas of the given kind.
/// Declaration order gives correct teardown: endpoints detach from the
/// network before either is destroyed.
struct Testbed {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::LoopbackTransport> lan;
  gcs::Directory directory;
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints;
};

template <typename MakeReplica>
Testbed boot(std::uint64_t seed, MakeReplica make) {
  Testbed t;
  t.sim = std::make_unique<sim::Simulator>(seed);
  t.lan = std::make_unique<net::LoopbackTransport>(
      *t.sim, std::make_unique<sim::NormalDuration>(500us, 200us));
  for (std::size_t i = 0; i < kPrimaries + kSecondaries; ++i) {
    auto endpoint = std::make_unique<gcs::Endpoint>(*t.sim, *t.lan, t.directory);
    make(*t.sim, *endpoint, i < kPrimaries, i);
    t.endpoints.push_back(std::move(endpoint));
  }
  return t;
}

RunStats run_sequential(const bench::Options& opt) {
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas;
  Testbed t = boot(
      opt.seed,
      [&](sim::Simulator& s, gcs::Endpoint& ep, bool primary, std::size_t i) {
        replication::ReplicaConfig config;
        config.service_time = std::make_shared<sim::NormalDuration>(100ms, 50ms);
        config.lazy_update_interval = 2s;
        replicas.push_back(std::make_unique<replication::ReplicaServer>(
            s, ep, replication::ServiceGroups::for_service(1), primary,
            std::make_unique<replication::KeyValueStore>(), std::move(config)));
        s.after(i * 10ms, [r = replicas.back().get()] { r->start(); });
      });
  auto& sim = t.sim;

  auto client_ep = std::make_unique<gcs::Endpoint>(*sim, *t.lan, t.directory);
  client::ClientHandler client(*sim, *client_ep,
                               replication::ServiceGroups::for_service(1), {});
  client.start();
  sim->run_for(1s);

  RunStats stats;
  std::size_t issued = 0;
  std::function<void()> next = [&] {
    if (issued >= opt.requests) return;
    const std::size_t n = issued++;
    if (n % 2 == 0) {
      auto put = std::make_shared<replication::KvPut>();
      put->key = "k";
      put->value = std::to_string(n);
      client.update(put, [&](const client::UpdateOutcome&) {
        sim->after(200ms, next);
      });
    } else {
      client.read(std::make_shared<replication::KvGet>(), bench_qos(),
                  [&](const client::ReadOutcome& o) {
                    stats.read_ms.push_back(sim::to_ms(o.response_time));
                    if (o.timing_failure) ++stats.timing_failures;
                    ++stats.reads;
                    sim->after(200ms, next);
                  });
    }
  };
  next();
  sim->run_for(std::chrono::seconds(2 * opt.requests));
  stats.avg_selected = client.stats().avg_replicas_selected();
  return stats;
}

RunStats run_fifo(const bench::Options& opt, bool read_your_writes) {
  std::vector<std::unique_ptr<replication::FifoReplicaServer>> replicas;
  Testbed t = boot(
      opt.seed,
      [&](sim::Simulator& s, gcs::Endpoint& ep, bool primary, std::size_t i) {
        replication::FifoReplicaConfig config;
        config.service_time = std::make_shared<sim::NormalDuration>(100ms, 50ms);
        config.lazy_update_interval = 2s;
        replicas.push_back(std::make_unique<replication::FifoReplicaServer>(
            s, ep, replication::ServiceGroups::for_service(2), primary,
            std::make_unique<replication::KeyValueStore>(), std::move(config)));
        s.after(i * 10ms, [r = replicas.back().get()] { r->start(); });
      });
  auto& sim = t.sim;

  auto client_ep = std::make_unique<gcs::Endpoint>(*sim, *t.lan, t.directory);
  client::FifoClientHandler client(*sim, *client_ep,
                                   replication::ServiceGroups::for_service(2));
  client.start();
  sim->run_for(1s);

  RunStats stats;
  std::size_t issued = 0;
  std::function<void()> next = [&] {
    if (issued >= opt.requests) return;
    const std::size_t n = issued++;
    if (n % 2 == 0) {
      auto put = std::make_shared<replication::KvPut>();
      put->key = "k";
      put->value = std::to_string(n);
      client.update(put, [&](sim::Duration) { sim->after(200ms, next); });
    } else {
      client.read(std::make_shared<replication::KvGet>(), bench_qos(),
                  read_your_writes,
                  [&](const client::FifoReadOutcome& o) {
                    stats.read_ms.push_back(sim::to_ms(o.response_time));
                    if (o.timing_failure) ++stats.timing_failures;
                    ++stats.reads;
                    sim->after(200ms, next);
                  });
    }
  };
  next();
  sim->run_for(std::chrono::seconds(2 * opt.requests));
  stats.avg_selected = client.stats().avg_replicas_selected();
  return stats;
}

void add_row(harness::Table& table, const char* name, const RunStats& s) {
  const auto ci = harness::binomial_ci_normal(s.timing_failures, s.reads);
  table.add_row({name, std::to_string(s.reads),
                 harness::Table::num(harness::summarize(s.read_ms).mean, 1),
                 harness::Table::num(harness::percentile(s.read_ms, 0.5), 1),
                 harness::Table::num(harness::percentile(s.read_ms, 0.99), 1),
                 harness::Table::num(ci.point, 3),
                 harness::Table::num(s.avg_selected, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  if (opt.requests > 600) opt.requests = 600;

  std::cout << "=== Ordering-guarantee comparison: sequential (TOTAL) vs "
               "FIFO handler ===\n"
            << "same pool (3 primaries + 4 secondaries), alternating "
               "write/read, QoS a=2, d=140ms, Pc=0.9\n\n";

  harness::Table table({"handler", "reads", "mean_read_ms", "p50_read_ms",
                        "p99_read_ms", "timing_failure_prob",
                        "avg_replicas_selected"});
  add_row(table, "sequential (TOTAL order)", run_sequential(opt));
  add_row(table, "FIFO + read-your-writes", run_fifo(opt, true));
  add_row(table, "FIFO (no session bound)", run_fifo(opt, false));
  table.print();
  std::cout << "\nexpected shape: FIFO reads skip the sequencer GSN "
               "round-trip and any commit-order\nwaits, so they are "
               "cheaper; read-your-writes adds back deferral waits on "
               "stale\nsecondaries right after a write.\n";
  return 0;
}
