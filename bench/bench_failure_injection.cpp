// Failure-injection experiment (paper Section 6 conclusion: "our
// probabilistic approach can adapt the selection of replicas ... in the
// presence of delays and replica failures, if enough replicas are
// available").
//
// Four runs of the standard two-client workload:
//   baseline          — no failures;
//   primary-crash     — one primary replica fails mid-run;
//   secondary-crash   — two secondaries fail mid-run;
//   sequencer-crash   — the sequencer fails mid-run (leader failover: the
//                       next primary becomes sequencer; the GSN barrier
//                       prevents sequence-number reuse).
// Reported: request completion, timing-failure probability, retries, and
// the GSN-conflict counter (must stay 0).
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace aqueduct;

namespace {

struct FailurePlan {
  std::string name;
  std::vector<std::size_t> crash_indices;  // replica indices (0 = sequencer)
};

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  // Failure runs do not need the full 1000 requests to show the shape.
  if (opt.requests > 400) opt.requests = 400;

  const std::vector<FailurePlan> plans = {
      {"baseline (no failures)", {}},
      {"primary crash", {2}},
      {"two secondary crashes", {6, 8}},
      {"sequencer crash", {0}},
  };

  std::cout << "=== Failure injection: adaptivity under replica crashes ===\n"
            << "client QoS: a=2, d=140ms, Pc=0.9; LUI=2s; " << opt.requests
            << " requests; crashes at t=100s\n\n";

  harness::Table table({"scenario", "reads_completed", "reads_abandoned",
                        "timing_failure_prob", "retries",
                        "avg_replicas_selected", "gsn_conflicts",
                        "staleness_violations"});

  for (const FailurePlan& plan : plans) {
    harness::ScenarioConfig config;
    config.seed = opt.seed;
    config.lazy_update_interval = std::chrono::seconds(2);
    for (int c = 0; c < 2; ++c) {
      config.clients.push_back(harness::ClientSpec{
          .qos = {.staleness_threshold = c == 0 ? 4u : 2u,
                  .deadline = std::chrono::milliseconds(c == 0 ? 200 : 140),
                  .min_probability = c == 0 ? 0.1 : 0.9},
          .request_delay = std::chrono::milliseconds(1000),
          .num_requests = opt.requests,
      });
    }
    harness::Scenario scenario(std::move(config));
    for (const std::size_t idx : plan.crash_indices) {
      scenario.schedule_crash(idx, sim::kEpoch + std::chrono::seconds(100));
    }
    auto results = scenario.run();
    const auto& stats = results[1].stats;

    std::uint64_t conflicts = 0;
    std::uint64_t violations =
        results[0].stats.staleness_violations + stats.staleness_violations;
    for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
      conflicts += scenario.replica(i).stats().gsn_conflicts;
    }
    table.add_row({plan.name, std::to_string(stats.reads_completed),
                   std::to_string(stats.reads_abandoned),
                   harness::Table::num(stats.timing_failure_probability(), 3),
                   std::to_string(stats.retries),
                   harness::Table::num(stats.avg_replicas_selected(), 2),
                   std::to_string(conflicts), std::to_string(violations)});
  }
  table.print();
  if (opt.csv) table.print_csv(std::cout);
  return 0;
}
