// Failure-injection experiment (paper Section 6 conclusion: "our
// probabilistic approach can adapt the selection of replicas ... in the
// presence of delays and replica failures, if enough replicas are
// available").
//
// Five runs of the standard two-client workload:
//   baseline          — no failures;
//   primary-crash     — one primary replica fails mid-run;
//   secondary-crash   — two secondaries fail mid-run;
//   sequencer-crash   — the sequencer fails mid-run (leader failover: the
//                       next primary becomes sequencer; the GSN barrier
//                       prevents sequence-number reuse);
//   recovery          — a primary crashes and is restarted 15s later: the
//                       reborn incarnation rejoins, synchronizes via state
//                       transfer, and is re-admitted to selection.
// Reported: request completion, timing-failure probability, retries,
// completed recoveries, and the GSN-conflict counter (must stay 0).
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "fault/schedule.hpp"
#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace aqueduct;

namespace {

struct FailurePlan {
  std::string name;
  fault::FaultSchedule schedule;  // replica indices (0 = sequencer)
};

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  // Failure runs do not need the full 1000 requests to show the shape.
  if (opt.requests > 400) opt.requests = 400;

  using std::chrono::seconds;
  std::vector<FailurePlan> plans(5);
  plans[0].name = "baseline (no failures)";
  plans[1].name = "primary crash";
  plans[1].schedule.crash(2, seconds(100));
  plans[2].name = "two secondary crashes";
  plans[2].schedule.crash(6, seconds(100)).crash(8, seconds(100));
  plans[3].name = "sequencer crash";
  plans[3].schedule.crash(0, seconds(100));
  plans[4].name = "primary crash + recovery";
  plans[4].schedule.crash_restart(2, seconds(100), seconds(115));

  std::cout << "=== Failure injection: adaptivity under replica crashes ===\n"
            << "client QoS: a=2, d=140ms, Pc=0.9; LUI=2s; " << opt.requests
            << " requests; crashes at t=100s, recovery restart at t=115s\n\n";

  harness::Table table({"scenario", "reads_completed", "reads_abandoned",
                        "timing_failure_prob", "retries",
                        "avg_replicas_selected", "reborn",
                        "gsn_conflicts", "staleness_violations"});

  for (const FailurePlan& plan : plans) {
    harness::ScenarioConfig config;
    config.seed = opt.seed;
    config.lazy_update_interval = std::chrono::seconds(2);
    for (int c = 0; c < 2; ++c) {
      config.clients.push_back(harness::ClientSpec{
          .qos = {.staleness_threshold = c == 0 ? 4u : 2u,
                  .deadline = std::chrono::milliseconds(c == 0 ? 200 : 140),
                  .min_probability = c == 0 ? 0.1 : 0.9},
          .request_delay = std::chrono::milliseconds(1000),
          .num_requests = opt.requests,
      });
    }
    harness::Scenario scenario(std::move(config));
    scenario.apply_faults(plan.schedule);
    auto results = scenario.run();
    const auto& stats = results[1].stats;

    std::uint64_t conflicts = 0;
    std::uint64_t reborn = 0;  // restarted slots (fresh incarnations)
    std::uint64_t violations =
        results[0].stats.staleness_violations + stats.staleness_violations;
    for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
      conflicts += scenario.replica(i).stats().gsn_conflicts;
      reborn += scenario.incarnation(i);
    }
    table.add_row({plan.name, std::to_string(stats.reads_completed),
                   std::to_string(stats.reads_abandoned),
                   harness::Table::num(stats.timing_failure_probability(), 3),
                   std::to_string(stats.retries),
                   harness::Table::num(stats.avg_replicas_selected(), 2),
                   std::to_string(reborn), std::to_string(conflicts),
                   std::to_string(violations)});
  }
  table.print();
  if (opt.csv) table.print_csv(std::cout);
  return 0;
}
