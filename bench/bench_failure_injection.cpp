// Failure-injection experiment (paper Section 6 conclusion: "our
// probabilistic approach can adapt the selection of replicas ... in the
// presence of delays and replica failures, if enough replicas are
// available").
//
// Five failure plans of the standard two-client workload:
//   baseline          — no failures;
//   primary-crash     — one primary replica fails mid-run;
//   secondary-crash   — two secondaries fail mid-run;
//   sequencer-crash   — the sequencer fails mid-run (leader failover: the
//                       next primary becomes sequencer; the GSN barrier
//                       prevents sequence-number reuse);
//   recovery          — a primary crashes and is restarted 15s later.
//
// The per-run body lives in the `failure_injection` plan
// (src/runner/plans.cpp); the (plan x seed) grid fans out across
// --threads workers on the sweep engine (--seeds N runs each failure plan
// at N consecutive seeds), and the merged output is byte-identical for
// any thread count.
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "harness/table.hpp"
#include "runner/plans.hpp"
#include "runner/sweep.hpp"

using namespace aqueduct;

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  // Failure runs do not need the full 1000 requests to show the shape.
  if (opt.requests > 400) opt.requests = 400;
  const std::size_t seeds = opt.seeds == 0 ? 1 : opt.seeds;

  const runner::Plan* plan = runner::find_plan("failure_injection");
  const runner::SweepSpec spec =
      runner::make_spec(*plan, opt.seed, seeds, opt.threads, opt.requests);

  std::cout << "=== Failure injection: adaptivity under replica crashes ===\n"
            << "client QoS: a=2, d=140ms, Pc=0.9; LUI=2s; " << opt.requests
            << " requests; crashes at t=100s, recovery restart at t=115s; "
            << seeds << " seed" << (seeds == 1 ? "" : "s")
            << " per failure plan\n\n";

  const runner::SweepResult result = runner::run_sweep(spec);

  harness::Table table({"scenario", "reads_completed", "reads_abandoned",
                        "timing_failure_prob", "retries",
                        "avg_replicas_selected", "reborn",
                        "gsn_conflicts", "staleness_violations"});
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const runner::SeedRecord& r = result.rows[i];
    if (!r.ok) {
      table.add_row({spec.units[i].label, "FAILED", r.error, "-", "-", "-",
                     "-", "-", "-"});
      continue;
    }
    const std::uint64_t reads = r.counter_or_zero("reads_completed");
    const double tf_prob =
        reads == 0 ? 0.0
                   : static_cast<double>(r.counter_or_zero("timing_failures")) /
                         static_cast<double>(reads);
    table.add_row({spec.units[i].label, std::to_string(reads),
                   std::to_string(r.counter_or_zero("reads_abandoned")),
                   harness::Table::num(tf_prob, 3),
                   std::to_string(r.counter_or_zero("retries")),
                   harness::Table::num(r.value_or("avg_replicas_selected"), 2),
                   std::to_string(r.counter_or_zero("reborn")),
                   std::to_string(r.counter_or_zero("gsn_conflicts")),
                   std::to_string(r.counter_or_zero("staleness_violations"))});
  }
  table.print();
  if (opt.csv) table.print_csv(std::cout);

  for (const runner::PooledBinomial& b : result.binomials) {
    std::cout << "\npooled " << b.label << ": "
              << harness::Table::num(b.ci.point, 3) << " ["
              << harness::Table::num(b.ci.lower, 3) << ", "
              << harness::Table::num(b.ci.upper, 3) << "] (" << b.failures
              << "/" << b.trials << ")";
  }
  std::cout << "\nswept " << spec.units.size() << " runs on "
            << result.threads_used << " thread"
            << (result.threads_used == 1 ? "" : "s") << " in "
            << harness::Table::num(result.wall_seconds, 2) << "s wall\n";

  if (opt.json) {
    const std::string path =
        opt.json_out.empty() ? "BENCH_failure_injection.json" : opt.json_out;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return 1;
    }
    runner::write_sweep_json(os, spec, result);
    std::cout << "\nwrote " << path << "\n";
  }
  return result.all_ok() &&
                 result.pooled_counter_or_zero("gsn_conflicts") == 0
             ? 0
             : 1;
}
