// Group-sizing study (paper Section 3: "The size of these groups can be
// tuned to implement a range of consistency semantics" — from write-all
// with no secondaries to a minimal primary group feeding a large lazy
// tier).
//
// Fixed pool of 10 replicas + sequencer; the primary/secondary split
// sweeps from 10/0 (active replication) to 2/8. Reported per split:
// update cost (commit latency; every primary applies every update), read
// timing failures, and deferral rate for a staleness-2 client.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace aqueduct;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  std::cout << "=== Group sizing: primary/secondary split of a 10-replica "
               "pool ===\n"
            << "client QoS: a=2, d=140ms, Pc=0.9; LUI=4s; " << opt.requests
            << " requests\n\n";

  harness::Table table({"primaries", "secondaries", "avg_update_ms",
                        "update_services_per_update", "timing_failure_prob",
                        "deferred_fraction", "avg_replicas_selected"});

  for (const std::size_t primaries : {10u, 8u, 6u, 4u, 2u}) {
    const std::size_t secondaries = 10u - primaries;
    harness::ScenarioConfig config;
    config.seed = opt.seed;
    config.num_primaries = primaries;
    config.num_secondaries = secondaries;
    config.lazy_update_interval = std::chrono::seconds(4);
    for (int c = 0; c < 2; ++c) {
      config.clients.push_back(harness::ClientSpec{
          .qos = {.staleness_threshold = c == 0 ? 4u : 2u,
                  .deadline = std::chrono::milliseconds(c == 0 ? 200 : 140),
                  .min_probability = c == 0 ? 0.1 : 0.9},
          .request_delay = std::chrono::milliseconds(1000),
          .num_requests = opt.requests,
      });
    }
    harness::Scenario scenario(std::move(config));
    auto results = scenario.run();
    const auto& stats = results[1].stats;

    // Update cost: every primary (and the sequencer) services every
    // update — the write-all overhead the two-level organization avoids.
    std::uint64_t update_services = 0;
    for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
      update_services += scenario.replica(i).stats().updates_committed;
    }
    const std::uint64_t updates = results[0].stats.updates_completed +
                                  results[1].stats.updates_completed;

    table.add_row(
        {std::to_string(primaries), std::to_string(secondaries),
         harness::Table::num(
             sim::to_ms(results[1].stats.avg_update_response_time()), 1),
         harness::Table::num(updates == 0 ? 0.0
                                          : static_cast<double>(update_services) /
                                                static_cast<double>(updates),
                             2),
         harness::Table::num(stats.timing_failure_probability(), 3),
         harness::Table::num(
             stats.reads_completed == 0
                 ? 0.0
                 : static_cast<double>(stats.deferred_replies) /
                       static_cast<double>(stats.reads_completed),
             3),
         harness::Table::num(stats.avg_replicas_selected(), 2)});
  }
  table.print();
  std::cout << "\nexpected shape: more primaries = higher write-all cost "
               "(services per update),\nfewer primaries = cheaper updates "
               "but a larger lazy tier whose staleness the\nselection must "
               "work around.\n";
  return 0;
}
