// Ablation (paper Section 7: "other extensive experiments ... varying the
// lazy update interval"): the lazy-update interval T_L is the
// consistency/timeliness tuning knob of the two-level replica
// organization. Sweeping it shows the trade:
//   * small T_L  -> secondaries rarely stale -> few deferred reads, few
//     replicas needed, few timing failures;
//   * large T_L  -> secondaries stale most of the time -> the model leans
//     on the (few) primaries, selects more replicas, and timing failures
//     rise at tight deadlines.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace aqueduct;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::vector<double> luis_sec = {1.0, 2.0, 4.0, 8.0};

  std::cout << "=== Ablation: lazy-update interval sweep ===\n"
            << "client QoS fixed at a=2, d=140ms, Pc=0.9; "
            << opt.requests << " requests\n\n";

  harness::Table table({"LUI_s", "avg_replicas_selected", "timing_failure_prob",
                        "95%_CI", "deferred_fraction", "avg_read_ms",
                        "staleness_violations"});

  for (const double lui : luis_sec) {
    harness::ScenarioConfig config;
    config.seed = opt.seed;
    config.lazy_update_interval = sim::from_sec(lui);
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 4,
                .deadline = std::chrono::milliseconds(200),
                .min_probability = 0.1},
        .request_delay = std::chrono::milliseconds(1000),
        .num_requests = opt.requests,
    });
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 2,
                .deadline = std::chrono::milliseconds(140),
                .min_probability = 0.9},
        .request_delay = std::chrono::milliseconds(1000),
        .num_requests = opt.requests,
    });
    harness::Scenario scenario(std::move(config));
    auto results = scenario.run();
    const auto& stats = results[1].stats;
    const auto ci = harness::binomial_ci_normal(stats.timing_failures,
                                                stats.reads_completed);
    table.add_row(
        {harness::Table::num(lui, 0),
         harness::Table::num(stats.avg_replicas_selected(), 2),
         harness::Table::num(ci.point, 3),
         "[" + harness::Table::num(ci.lower, 3) + "," +
             harness::Table::num(ci.upper, 3) + "]",
         harness::Table::num(
             stats.reads_completed == 0
                 ? 0.0
                 : static_cast<double>(stats.deferred_replies) /
                       static_cast<double>(stats.reads_completed),
             3),
         harness::Table::num(sim::to_ms(stats.avg_response_time()), 1),
         std::to_string(stats.staleness_violations)});
  }
  table.print();
  if (opt.csv) table.print_csv(std::cout);
  return 0;
}
