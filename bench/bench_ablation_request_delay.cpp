// Ablation (paper Section 7: "varying ... request delay"): the request
// delay controls the update arrival rate λ_u and the load on the replicas.
// Shorter delays mean more updates per lazy interval (secondaries stale
// sooner, staleness factor drops) and more queueing, so the model must
// select more replicas to hold the failure probability.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace aqueduct;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::vector<int> delays_ms = {250, 500, 1000, 2000};

  std::cout << "=== Ablation: request-delay sweep ===\n"
            << "client QoS fixed at a=2, d=140ms, Pc=0.9; LUI=4s; "
            << opt.requests << " requests\n\n";

  harness::Table table({"request_delay_ms", "est_lambda_u_per_s",
                        "avg_replicas_selected", "timing_failure_prob",
                        "deferred_fraction", "avg_read_ms"});

  for (const int delay : delays_ms) {
    harness::ScenarioConfig config;
    config.seed = opt.seed;
    config.lazy_update_interval = std::chrono::seconds(4);
    for (int c = 0; c < 2; ++c) {
      config.clients.push_back(harness::ClientSpec{
          .qos = {.staleness_threshold = c == 0 ? 4u : 2u,
                  .deadline = std::chrono::milliseconds(c == 0 ? 200 : 140),
                  .min_probability = c == 0 ? 0.1 : 0.9},
          .request_delay = std::chrono::milliseconds(delay),
          .num_requests = opt.requests,
      });
    }
    harness::Scenario scenario(std::move(config));
    auto results = scenario.run();
    const auto& stats = results[1].stats;
    // Ground truth: each client issues one update per (write+read) pair,
    // i.e. roughly 1 update per 2*(delay + response) per client.
    table.add_row(
        {std::to_string(delay),
         harness::Table::num(
             2.0 / (2.0 * (delay / 1000.0 + 0.11)), 2),
         harness::Table::num(stats.avg_replicas_selected(), 2),
         harness::Table::num(stats.timing_failure_probability(), 3),
         harness::Table::num(
             stats.reads_completed == 0
                 ? 0.0
                 : static_cast<double>(stats.deferred_replies) /
                       static_cast<double>(stats.reads_completed),
             3),
         harness::Table::num(sim::to_ms(stats.avg_response_time()), 1)});
  }
  table.print();
  if (opt.csv) table.print_csv(std::cout);
  return 0;
}
