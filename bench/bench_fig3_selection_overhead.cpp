// Reproduces Figure 3 of the paper: overhead of the probabilistic
// selection algorithm vs. the number of available replicas, for sliding
// windows of sizes 10 and 20.
//
// The paper reports (on 2002-era hardware) 400–1300 µs per selection, with
// ~90% of the cost in computing the response-time distribution functions
// (the discrete convolutions) and ~10% in Algorithm 1 itself. Absolute
// numbers on modern hardware are far lower; the *scaling* in replica count
// and window size, and the cost split, are the reproduced shape.
//
// Three benchmark families:
//   Fig3/TotalSelection   — distribution computation + Algorithm 1
//   Fig3/DistributionOnly — the convolution part alone
//   Fig3/AlgorithmOnly    — Algorithm 1 on precomputed CDFs alone
#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "core/response_model.hpp"
#include "core/selection.hpp"
#include "sim/random.hpp"

using namespace aqueduct;

namespace {

/// Builds one replica's history filled with `window` synthetic samples
/// drawn from the paper's service-time regime.
core::PerfHistory make_history(std::size_t window, sim::Rng& rng) {
  core::PerfHistory history(window);
  for (std::size_t i = 0; i < window; ++i) {
    history.service.push(rng.normal_duration(std::chrono::milliseconds(100),
                                             std::chrono::milliseconds(50)));
    history.queueing.push(rng.normal_duration(std::chrono::milliseconds(5),
                                              std::chrono::milliseconds(3)));
    history.lazy_wait.push(rng.normal_duration(std::chrono::milliseconds(900),
                                               std::chrono::milliseconds(400)));
  }
  history.set_gateway_delay(std::chrono::microseconds(800));
  history.last_reply_at = sim::kEpoch + std::chrono::seconds(1);
  return history;
}

std::vector<core::PerfHistory> make_histories(std::size_t replicas,
                                              std::size_t window,
                                              std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<core::PerfHistory> histories;
  histories.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    histories.push_back(make_history(window, rng));
  }
  return histories;
}

core::QoSSpec bench_qos() {
  return {.staleness_threshold = 2,
          .deadline = std::chrono::milliseconds(140),
          .min_probability = 0.9};
}

std::vector<core::CandidateReplica> compute_candidates(
    const std::vector<core::PerfHistory>& histories,
    const core::ResponseTimeModel& model, const core::QoSSpec& qos) {
  std::vector<core::CandidateReplica> candidates;
  candidates.reserve(histories.size());
  for (std::size_t i = 0; i < histories.size(); ++i) {
    core::CandidateReplica c;
    c.id = net::NodeId{static_cast<std::uint32_t>(i + 1)};
    c.is_primary = i < histories.size() / 2;
    c.immediate_cdf = model.immediate_cdf(histories[i], qos.deadline);
    if (!c.is_primary) {
      c.deferred_cdf = model.deferred_cdf(histories[i], qos.deadline);
    }
    c.ert = std::chrono::milliseconds(100 * (i + 1));
    candidates.push_back(c);
  }
  return candidates;
}

void Fig3_TotalSelection(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto histories = make_histories(replicas, window, 7);
  const core::ResponseTimeModel model;
  const core::QoSSpec qos = bench_qos();
  core::ProbabilisticSelector selector;
  sim::Rng rng(3);
  for (auto _ : state) {
    core::SelectionContext ctx;
    ctx.candidates = compute_candidates(histories, model, qos);
    ctx.stale_factor = 0.6;
    ctx.qos = qos;
    ctx.rng = &rng;
    auto result = selector.select(ctx);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("replicas=" + std::to_string(replicas) +
                 " window=" + std::to_string(window));
}

void Fig3_DistributionOnly(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto histories = make_histories(replicas, window, 7);
  const core::ResponseTimeModel model;
  const core::QoSSpec qos = bench_qos();
  for (auto _ : state) {
    auto candidates = compute_candidates(histories, model, qos);
    benchmark::DoNotOptimize(candidates);
  }
}

void Fig3_AlgorithmOnly(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto histories = make_histories(replicas, window, 7);
  const core::ResponseTimeModel model;
  const core::QoSSpec qos = bench_qos();
  const auto candidates = compute_candidates(histories, model, qos);
  core::ProbabilisticSelector selector;
  sim::Rng rng(3);
  for (auto _ : state) {
    core::SelectionContext ctx;
    ctx.candidates = candidates;
    ctx.stale_factor = 0.6;
    ctx.qos = qos;
    ctx.rng = &rng;
    auto result = selector.select(ctx);
    benchmark::DoNotOptimize(result);
  }
}

void replica_window_args(benchmark::internal::Benchmark* b) {
  for (int window : {10, 20}) {
    for (int replicas = 2; replicas <= 10; ++replicas) {
      b->Args({replicas, window});
    }
  }
}

BENCHMARK(Fig3_TotalSelection)->Apply(replica_window_args)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(Fig3_DistributionOnly)->Apply(replica_window_args)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(Fig3_AlgorithmOnly)->Apply(replica_window_args)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
