// Gray-failure experiment: what does a slow-but-alive failure cost the
// clients, and how fast do the QoS deadlines expose it?
//
// Four severity points of the same scenario (the `gray_failure` plan,
// src/runner/plans.cpp), each layering more degradation onto the window
// [5s, 18s): reordering and duplication first, then a slow primary with
// lossy sequencer links, then a partial partition plus a throttled link.
// The chaos decorator (net/chaos.hpp) injects all of it over the loopback,
// so every trajectory — including every drop, duplicate, and holdback — is
// a pure function of the seed. Reported per severity, pooled over seeds:
//   degraded vs steady timing-failure probability — read outcomes inside
//       vs outside the degradation window;
//   time_to_detect — onset until the first deadline miss inside the
//       window (the QoS contract is the gray-failure detector);
//   injected fault counts — duplicates, reorders, delays, drops.
//
// The safety counters (GSN conflicts, staleness violations, committed
// prefix divergence) must pool to 0 at every severity: gray failure may
// cost timeliness, never consistency. The bench exits non-zero otherwise,
// and tools/bench_compare.py gates the per-severity degraded rates and the
// steady Pc(d) lower bound against bench/baselines/BENCH_gray_failures.json.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/table.hpp"
#include "runner/plans.hpp"
#include "runner/sweep.hpp"

using namespace aqueduct;

namespace {

double rate(std::uint64_t failures, std::uint64_t total) {
  return total == 0 ? 0.0 : static_cast<double>(failures) /
                                static_cast<double>(total);
}

/// Per-severity tallies aggregated over that point's seeds.
struct PointAgg {
  std::uint64_t degraded_reads = 0, degraded_failures = 0;
  std::uint64_t steady_reads = 0, steady_failures = 0;
  std::uint64_t detected = 0, seeds = 0;
  std::uint64_t injected = 0;  // duplicates + reorders + delays + drops
  double detect_sum_s = 0.0;
  std::uint64_t detect_count = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  // The degradation window closes at t=18s; 120 requests per client cover
  // it plus a steady tail, and keep the committed baseline cheap to verify
  // (--quick therefore clamps to the same value: the gated JSON must be
  // byte-comparable against bench/baselines/BENCH_gray_failures.json).
  if (opt.requests > 120) opt.requests = 120;
  const std::size_t seeds = opt.seeds == 0 ? 6 : opt.seeds;

  const runner::Plan* plan = runner::find_plan("gray_failure");
  const runner::SweepSpec spec =
      runner::make_spec(*plan, opt.seed, seeds, opt.threads, opt.requests);

  std::cout << "=== Gray failures: timing cost and detection vs severity ===\n"
            << "3 primaries + 3 secondaries over the chaos transport; "
               "degradation window [5s, 18s); "
            << opt.requests << " requests per client, " << seeds
            << " seeds per severity\n\n";

  const runner::SweepResult result = runner::run_sweep(spec);

  std::vector<PointAgg> agg(plan->points.size());
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const runner::SeedRecord& r = result.rows[i];
    if (!r.ok) {
      std::cerr << "FAILED " << spec.units[i].label << ": " << r.error << "\n";
      continue;
    }
    PointAgg& a = agg[spec.units[i].point];
    a.seeds += 1;
    a.degraded_reads += r.counter_or_zero("degraded_reads");
    a.degraded_failures += r.counter_or_zero("degraded_failures");
    a.steady_reads += r.counter_or_zero("steady_reads");
    a.steady_failures += r.counter_or_zero("steady_failures");
    a.detected += r.counter_or_zero("detected");
    a.injected += r.counter_or_zero("messages_duplicated") +
                  r.counter_or_zero("messages_reordered") +
                  r.counter_or_zero("messages_delayed") +
                  r.counter_or_zero("messages_dropped_loss");
    for (const auto& [name, values] : r.samples) {
      if (name == "time_to_detect_s") {
        for (const double v : values) {
          a.detect_sum_s += v;
          a.detect_count += 1;
        }
      }
    }
  }

  harness::Table table({"severity", "degraded_tf_prob", "steady_tf_prob",
                        "detected", "mean_detect_s", "faults_injected"});
  for (std::size_t p = 0; p < agg.size(); ++p) {
    const PointAgg& a = agg[p];
    table.add_row(
        {plan->points[p],
         harness::Table::num(rate(a.degraded_failures, a.degraded_reads), 3),
         harness::Table::num(rate(a.steady_failures, a.steady_reads), 3),
         std::to_string(a.detected) + "/" + std::to_string(a.seeds),
         a.detect_count == 0
             ? "-"
             : harness::Table::num(
                   a.detect_sum_s / static_cast<double>(a.detect_count), 3),
         std::to_string(a.injected)});
  }
  table.print();
  if (opt.csv) table.print_csv(std::cout);

  const std::uint64_t violations =
      result.pooled_counter_or_zero("violations");
  std::uint64_t injected_total = 0;
  for (const PointAgg& a : agg) injected_total += a.injected;
  for (const runner::PooledBinomial& b : result.binomials) {
    std::cout << "\npooled " << b.label << ": "
              << harness::Table::num(b.ci.point, 3) << " ["
              << harness::Table::num(b.ci.lower, 3) << ", "
              << harness::Table::num(b.ci.upper, 3) << "] (" << b.failures
              << "/" << b.trials << ")";
  }
  std::cout << "\ninjected " << injected_total
            << " faults; invariant violations " << violations
            << " (must be 0)\n"
            << "swept " << spec.units.size() << " runs on "
            << result.threads_used << " thread"
            << (result.threads_used == 1 ? "" : "s") << " in "
            << harness::Table::num(result.wall_seconds, 2) << "s wall\n";

  if (opt.json) {
    const std::string path =
        opt.json_out.empty() ? "BENCH_gray_failures.json" : opt.json_out;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return 1;
    }
    runner::write_sweep_json(os, spec, result);
    std::cout << "\nwrote " << path << "\n";
  }

  std::cout << "\nexpected shape: the degraded-window timing-failure "
               "probability climbs with\nseverity while the steady rate "
               "stays flat, detection happens within a couple\nof requests "
               "of onset at every non-baseline severity, and the safety\n"
               "counters stay zero throughout.\n";
  return (result.all_ok() && violations == 0 && injected_total > 0) ? 0 : 1;
}
