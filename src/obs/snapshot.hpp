// Periodic metrics snapshots — the time-series half of the telemetry
// pipeline.
//
// A MetricsSnapshot is one coherent, name-sorted copy of every instrument
// in a MetricsRegistry: counters both cumulative and as deltas since the
// previous snapshot (rates without client-side state), gauges as current
// values, histograms as cumulative bucket counts (the Prometheus model —
// consumers diff adjacent snapshots for per-interval rates).
//
// The MetricsSnapshotter drives capture on a runtime::PeriodicTask, so the
// same code emits a snapshot every N milliseconds of *simulated* time under
// SimExecutor (deterministic: same seed => byte-identical series from the
// JSONL sink) and every N milliseconds of wall time under RealTimeExecutor.
// Capture happens on the executor's loop thread; sinks must tolerate being
// called from there.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "runtime/periodic_task.hpp"
#include "sim/time.hpp"

namespace aqueduct::obs {

class MetricsRegistry;

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> bounds;
  /// Per-bucket counts since the start of the run (bounds.size() + 1
  /// entries; last is overflow). Cumulative over time, not diffed.
  std::vector<std::uint64_t> buckets;
};

/// One capture of the whole registry. All vectors are name-sorted, so two
/// snapshots of identical registry state compare (and serialize) equal.
struct MetricsSnapshot {
  std::uint64_t seq = 0;               ///< 0-based capture index.
  sim::Duration at = sim::Duration::zero();  ///< Capture time since kEpoch.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Counter increments since the previous snapshot (== counters on seq 0).
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Receives each captured snapshot. Implementations live in obs/sinks.hpp
/// (JSONL time series, Prometheus text) or in composition roots (console).
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  virtual void on_snapshot(const MetricsSnapshot& snap) = 0;
};

/// Captures the registry on a fixed period and fans each snapshot out to
/// the subscribed sinks. start()/stop() bracket the periodic grid; a final
/// capture_now() after the workload drains picks up the tail.
class MetricsSnapshotter {
 public:
  MetricsSnapshotter(runtime::Executor& exec, MetricsRegistry& registry,
                     sim::Duration period);

  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Sinks are notified in subscription order and must outlive the
  /// snapshotter (or be removed first).
  void add_sink(SnapshotSink* sink);
  void remove_sink(SnapshotSink* sink);

  void start() { task_.start(); }
  void stop() { task_.stop(); }
  bool running() const { return task_.running(); }
  sim::Duration period() const { return task_.period(); }

  /// Captures one snapshot immediately, outside the periodic grid.
  void capture_now() { capture(); }

  /// Number of snapshots captured so far.
  std::uint64_t snapshots() const { return seq_; }

 private:
  void capture();

  MetricsRegistry& registry_;
  runtime::Executor& exec_;
  runtime::PeriodicTask task_;
  std::vector<SnapshotSink*> sinks_;
  std::map<std::string, std::uint64_t> last_counters_;
  std::uint64_t seq_ = 0;
};

}  // namespace aqueduct::obs
