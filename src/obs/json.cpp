#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace aqueduct::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

}  // namespace aqueduct::obs
