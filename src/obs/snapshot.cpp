#include "obs/snapshot.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace aqueduct::obs {

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, inst] : instruments_) {  // std::map: name-sorted
    if (inst.counter) {
      snap.counters.emplace_back(name, inst.counter->value());
    } else if (inst.gauge) {
      snap.gauges.emplace_back(name, inst.gauge->value());
    } else if (inst.histogram) {
      const Histogram& h = *inst.histogram;
      HistogramSnapshot hs;
      hs.bounds = h.bounds();
      hs.buckets = h.buckets();
      hs.count = h.count();
      hs.sum = h.sum();
      snap.histograms.emplace_back(name, std::move(hs));
    }
  }
  return snap;
}

MetricsSnapshotter::MetricsSnapshotter(runtime::Executor& exec,
                                       MetricsRegistry& registry,
                                       sim::Duration period)
    : registry_(registry),
      exec_(exec),
      task_(exec, period, [this] { capture(); }) {}

void MetricsSnapshotter::add_sink(SnapshotSink* sink) {
  if (sink == nullptr) return;
  if (std::find(sinks_.begin(), sinks_.end(), sink) != sinks_.end()) return;
  sinks_.push_back(sink);
}

void MetricsSnapshotter::remove_sink(SnapshotSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void MetricsSnapshotter::capture() {
  MetricsSnapshot snap = registry_.snapshot();
  snap.seq = seq_++;
  snap.at = exec_.now() - runtime::kEpoch;
  snap.counter_deltas.reserve(snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    const auto it = last_counters_.find(name);
    const std::uint64_t prev = it == last_counters_.end() ? 0 : it->second;
    snap.counter_deltas.emplace_back(name, value - prev);
    last_counters_[name] = value;
  }
  for (SnapshotSink* sink : sinks_) sink->on_snapshot(snap);
}

}  // namespace aqueduct::obs
