// Structured tracing for the request pipeline.
//
// Every client request carries a TraceId (derived deterministically from its
// RequestId) from interception at the client gateway through selection,
// multicast, sequencing, replica service, and reply. Each hop emits a typed
// SpanEvent timestamped in simulated time; the network additionally emits a
// MessageEvent per send (delivered or dropped). Sinks subscribe to a
// TraceHub — any number of subscribers, added and removed at runtime — which
// subsumes the old single-slot Network::set_tap.
//
// When a request completes, the client gateway emits a BreakdownEvent
// decomposing the end-to-end response time into the components of the
// paper's response-time model (Eqs. 5/6 in src/core/response_model):
// service S, queueing W, lazy wait U, two-way gateway delay G, plus the
// client-side overhead before the last transmission. The components sum to
// the end-to-end response time exactly, by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/node.hpp"
#include "sim/time.hpp"

namespace aqueduct::obs {

/// Identifies one client request across all layers. Value 0 is "no trace"
/// (used by spans not tied to a request, e.g. lazy-update propagation).
struct TraceId {
  std::uint64_t value = 0;

  constexpr bool valid() const { return value != 0; }
  friend constexpr auto operator<=>(TraceId, TraceId) = default;
};

/// Derives the TraceId for a request: issuing client in the high bits, the
/// client's sequence number in the low 40. No coordination needed — the
/// pair is already globally unique.
constexpr TraceId make_trace_id(net::NodeId client, std::uint64_t seq) {
  return TraceId{(static_cast<std::uint64_t>(client.value()) << 40) |
                 (seq & ((std::uint64_t{1} << 40) - 1))};
}

enum class SpanKind : std::uint8_t {
  kIssue,          // client: application handed the request to the gateway (t_0)
  kSend,           // client: transmitted to the selected replicas (t_m)
  kRetry,          // client: re-selection after the retry timeout
  kDeliver,        // replica: request delivered at the server-side gateway
  kGsnAssign,      // sequencer: GSN broadcast for this request
  kEnqueue,        // replica: job entered the FIFO service queue
  kExecute,        // replica: service completed (duration = sampled S)
  kReply,          // replica: reply sent back to the client
  kReceive,        // client: first reply arrived (t_p)
  kComplete,       // client: outcome delivered to the app (duration = t_r)
  kTimingFailure,  // client: deadline d passed before any reply
  kAbandon,        // client: gave up after max_retries
  kLazyPublish,    // lazy publisher pushed a state snapshot (no trace id)
};

const char* to_string(SpanKind kind);

struct SpanEvent {
  TraceId trace;
  SpanKind kind = SpanKind::kIssue;
  sim::TimePoint at;  // end of the span for duration-carrying kinds
  sim::Duration duration = sim::Duration::zero();
  net::NodeId node;  // where the event happened
  net::NodeId peer;  // counterpart (destination/source), if meaningful
  std::uint64_t value = 0;  // kind-specific: GSN, |K|, attempt number, ...
};

/// One observed network send (delivered or dropped), for protocol-overhead
/// accounting and timeline visualization. Emitted at *send* time.
struct MessageEvent {
  sim::TimePoint at;
  net::NodeId from;
  net::NodeId to;
  std::string type_name;
  std::size_t wire_size = 0;
  /// Empty if delivered; otherwise "loss", "partition", or "detached".
  std::string dropped;
};

/// Per-request latency decomposition, emitted by the client gateway when a
/// request completes with a reply. Invariant:
///   total == client_overhead + gateway + queueing + service + lazy_wait.
struct BreakdownEvent {
  TraceId trace;
  sim::TimePoint at;  // completion time (t_p)
  net::NodeId client;
  net::NodeId replica;  // the responder
  bool is_read = true;
  bool deferred = false;
  bool timing_failure = false;
  sim::Duration total = sim::Duration::zero();            // t_r = t_p - t_0
  sim::Duration client_overhead = sim::Duration::zero();  // t_m - t_0
  /// Two-way gateway delay G = t_p - t_m - t_1. Can be negative when the
  /// winning reply belongs to an earlier attempt than the last retransmit.
  sim::Duration gateway = sim::Duration::zero();
  sim::Duration queueing = sim::Duration::zero();   // W (t_q)
  sim::Duration service = sim::Duration::zero();    // S (t_s)
  sim::Duration lazy_wait = sim::Duration::zero();  // U (t_b)
};

/// SLA boundary crossing (entered or left violation), emitted by the
/// SlaMonitor. Defined in obs/sla.hpp.
struct SlaEvent;

/// Subscriber interface. Override only what you need.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_message(const MessageEvent&) {}
  virtual void on_span(const SpanEvent&) {}
  virtual void on_breakdown(const BreakdownEvent&) {}
  virtual void on_sla(const SlaEvent&) {}
};

/// Multi-subscriber dispatch point. Sinks are notified in subscription
/// order; they must outlive their subscription (remove() before dying).
class TraceHub {
 public:
  TraceHub() = default;
  TraceHub(const TraceHub&) = delete;
  TraceHub& operator=(const TraceHub&) = delete;

  void add(TraceSink* sink);
  void remove(TraceSink* sink);

  /// Cheap emptiness check so instrumented layers can skip building events.
  bool active() const { return !sinks_.empty(); }
  std::size_t num_sinks() const { return sinks_.size(); }

  void message(const MessageEvent& e) const {
    for (TraceSink* s : sinks_) s->on_message(e);
  }
  void span(const SpanEvent& e) const {
    for (TraceSink* s : sinks_) s->on_span(e);
  }
  void breakdown(const BreakdownEvent& e) const {
    for (TraceSink* s : sinks_) s->on_breakdown(e);
  }
  void sla(const SlaEvent& e) const {
    for (TraceSink* s : sinks_) s->on_sla(e);
  }

  /// Process-wide scratch hub (never has subscribers by convention) for
  /// components constructed without an observability context.
  static TraceHub& scratch();

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace aqueduct::obs
