#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/json.hpp"
#include "obs/sla.hpp"

namespace aqueduct::obs {

namespace {

// Local copy of the interpolated percentile (obs sits below the harness in
// the layering, so it cannot use harness::percentile).
double percentile_of(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::int64_t ns_since_epoch(sim::TimePoint t) {
  return sim::since_epoch(t).count();
}

std::int64_t ns(sim::Duration d) { return d.count(); }

/// Chrome trace_event timestamps are microseconds.
double us_since_epoch(sim::TimePoint t) {
  return static_cast<double>(sim::since_epoch(t).count()) / 1000.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// JsonLinesSink
// ---------------------------------------------------------------------------

void JsonLinesSink::on_message(const MessageEvent& e) {
  JsonWriter w(os_);
  w.begin_object();
  w.field("type", "msg");
  w.field("t_ns", ns_since_epoch(e.at));
  w.field("from", e.from.value());
  w.field("to", e.to.value());
  w.field("msg", e.type_name);
  w.field("bytes", static_cast<std::uint64_t>(e.wire_size));
  w.field("dropped", e.dropped);
  w.end_object();
  os_ << '\n';
}

void JsonLinesSink::on_span(const SpanEvent& e) {
  JsonWriter w(os_);
  w.begin_object();
  w.field("type", "span");
  w.field("t_ns", ns_since_epoch(e.at));
  w.field("kind", to_string(e.kind));
  w.field("trace", e.trace.value);
  w.field("node", e.node.value());
  w.field("peer", e.peer.value());
  w.field("dur_ns", ns(e.duration));
  w.field("value", e.value);
  w.end_object();
  os_ << '\n';
}

void JsonLinesSink::on_breakdown(const BreakdownEvent& e) {
  JsonWriter w(os_);
  w.begin_object();
  w.field("type", "breakdown");
  w.field("t_ns", ns_since_epoch(e.at));
  w.field("trace", e.trace.value);
  w.field("client", e.client.value());
  w.field("replica", e.replica.value());
  w.field("read", e.is_read);
  w.field("deferred", e.deferred);
  w.field("timing_failure", e.timing_failure);
  w.field("total_ns", ns(e.total));
  w.field("client_ns", ns(e.client_overhead));
  w.field("gateway_ns", ns(e.gateway));
  w.field("queue_ns", ns(e.queueing));
  w.field("service_ns", ns(e.service));
  w.field("lazy_ns", ns(e.lazy_wait));
  w.end_object();
  os_ << '\n';
}

void JsonLinesSink::on_sla(const SlaEvent& e) {
  JsonWriter w(os_);
  w.begin_object();
  w.field("type", e.violating ? "sla_violation" : "sla_recovered");
  w.field("t_ns", ns_since_epoch(e.at));
  w.field("client", e.client.value());
  if (e.shard >= 0) w.field("shard", static_cast<std::uint64_t>(e.shard));
  w.field("spec", e.spec_index);
  w.field("failure_rate", e.failure_rate);
  w.field("wilson_lower", e.wilson_lower);
  w.field("budget", e.budget);
  w.field("window_reads", e.window_reads);
  w.field("window_failures", e.window_failures);
  w.end_object();
  os_ << '\n';
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

void ChromeTraceSink::write(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Process-name metadata: one "process" per simulated node.
  std::vector<std::uint32_t> pids;
  for (const SpanEvent& e : spans_) pids.push_back(e.node.value());
  for (const MessageEvent& e : messages_) pids.push_back(e.from.value());
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  for (const std::uint32_t pid : pids) {
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", pid);
    w.key("args");
    w.begin_object();
    w.field("name", "node " + std::to_string(pid));
    w.end_object();
    w.end_object();
  }

  for (const SpanEvent& e : spans_) {
    w.begin_object();
    w.field("name", to_string(e.kind));
    w.field("cat", "span");
    if (e.duration > sim::Duration::zero()) {
      w.field("ph", "X");
      w.field("ts", us_since_epoch(e.at - e.duration));
      w.field("dur", static_cast<double>(e.duration.count()) / 1000.0);
    } else {
      w.field("ph", "i");
      w.field("s", "p");
      w.field("ts", us_since_epoch(e.at));
    }
    w.field("pid", e.node.value());
    w.field("tid", e.trace.value);
    w.key("args");
    w.begin_object();
    w.field("trace", e.trace.value);
    w.field("peer", e.peer.value());
    w.field("value", e.value);
    w.end_object();
    w.end_object();
  }

  for (const MessageEvent& e : messages_) {
    w.begin_object();
    w.field("name", e.type_name);
    w.field("cat", "net");
    w.field("ph", "i");
    w.field("s", "p");
    w.field("ts", us_since_epoch(e.at));
    w.field("pid", e.from.value());
    w.field("tid", std::uint64_t{0});
    w.key("args");
    w.begin_object();
    w.field("to", e.to.value());
    w.field("bytes", static_cast<std::uint64_t>(e.wire_size));
    w.field("dropped", e.dropped);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
}

// ---------------------------------------------------------------------------
// LatencyBreakdownCollector
// ---------------------------------------------------------------------------

LatencyBreakdownCollector::Totals LatencyBreakdownCollector::totals(
    bool reads) const {
  Totals t;
  for (const BreakdownEvent& e : events_) {
    if (e.is_read != reads) continue;
    ++t.count;
    t.client_overhead += e.client_overhead;
    t.gateway += e.gateway;
    t.queueing += e.queueing;
    t.service += e.service;
    t.lazy_wait += e.lazy_wait;
    t.total += e.total;
  }
  return t;
}

sim::Duration LatencyBreakdownCollector::max_sum_error() const {
  sim::Duration worst = sim::Duration::zero();
  for (const BreakdownEvent& e : events_) {
    const sim::Duration sum = e.client_overhead + e.gateway + e.queueing +
                              e.service + e.lazy_wait;
    const sim::Duration err = e.total >= sum ? e.total - sum : sum - e.total;
    worst = std::max(worst, err);
  }
  return worst;
}

void LatencyBreakdownCollector::write_json(std::ostream& os) const {
  auto write_side = [&](JsonWriter& w, bool reads) {
    const Totals t = totals(reads);
    std::vector<double> totals_ms;
    for (const BreakdownEvent& e : events_) {
      if (e.is_read == reads) totals_ms.push_back(sim::to_ms(e.total));
    }
    const double n = t.count == 0 ? 1.0 : static_cast<double>(t.count);
    w.begin_object();
    w.field("count", static_cast<std::uint64_t>(t.count));
    w.key("mean_ms");
    w.begin_object();
    w.field("total", sim::to_ms(t.total) / n);
    w.field("client", sim::to_ms(t.client_overhead) / n);
    w.field("gateway", sim::to_ms(t.gateway) / n);
    w.field("queueing", sim::to_ms(t.queueing) / n);
    w.field("service", sim::to_ms(t.service) / n);
    w.field("lazy_wait", sim::to_ms(t.lazy_wait) / n);
    w.end_object();
    w.key("total_ms");
    w.begin_object();
    w.field("p50", percentile_of(totals_ms, 0.50));
    w.field("p95", percentile_of(totals_ms, 0.95));
    w.field("p99", percentile_of(totals_ms, 0.99));
    w.end_object();
    w.end_object();
  };
  JsonWriter w(os);
  w.begin_object();
  w.key("reads");
  write_side(w, true);
  w.key("updates");
  write_side(w, false);
  w.field("max_sum_error_ns", max_sum_error().count());
  w.end_object();
}

}  // namespace aqueduct::obs
