// Bundle of the per-simulation observability state: the metrics registry,
// the trace hub, and the SLA monitor. Owned by the net::Transport backend (every
// process of one simulation attaches to exactly one network, so it is the
// natural shared fabric); higher layers reach it through their endpoint.
#pragma once

#include "obs/metrics.hpp"
#include "obs/sla.hpp"
#include "obs/trace.hpp"

namespace aqueduct::obs {

struct Observability {
  MetricsRegistry metrics;
  TraceHub trace;
  /// Watches observed per-client timing-failure rates against each QoS
  /// spec's Pc(d); fed by the client gateway on every completed read.
  SlaMonitor sla{metrics, trace};

  /// Shared fallback for components constructed without a context (layers
  /// unit-tested in isolation). Never exported, never subscribed to.
  static Observability& scratch() {
    static Observability o;
    return o;
  }
};

}  // namespace aqueduct::obs
