// Concrete snapshot sinks — the exporter end of the telemetry pipeline.
//
//   * JsonlSnapshotSink — one JSON object per snapshot, appended to a
//     stream: a machine-readable time series. Deterministic: under
//     SimExecutor the same scenario + seed yields byte-identical output.
//   * PrometheusTextSink — rewrites a file with the Prometheus text
//     exposition format on every snapshot, so `curl`/node_exporter-style
//     scrapers (or a human with `cat`) always see the latest values.
//
// Layering: protocol code (src/net ... src/fault) may depend on the obs
// *interfaces* (metrics, trace, snapshot) but never on this header — the
// choice of export format belongs to composition roots (harness, runner,
// examples, tests). tools/check_layering.py enforces this.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <string_view>

#include "obs/snapshot.hpp"

namespace aqueduct::obs {

class JsonlSnapshotSink final : public SnapshotSink {
 public:
  /// `os` must outlive the sink's subscription.
  explicit JsonlSnapshotSink(std::ostream& os) : os_(os) {}

  void on_snapshot(const MetricsSnapshot& snap) override;

  std::uint64_t lines() const { return lines_; }

 private:
  std::ostream& os_;
  /// Histogram bounds are immutable, so they are emitted only the first
  /// time each histogram name appears in the series.
  std::set<std::string> bounds_written_;
  std::uint64_t lines_ = 0;
};

class PrometheusTextSink final : public SnapshotSink {
 public:
  /// Every snapshot truncates and rewrites the file at `path`.
  explicit PrometheusTextSink(std::string path) : path_(std::move(path)) {}

  void on_snapshot(const MetricsSnapshot& snap) override;

  const std::string& path() const { return path_; }
  std::uint64_t writes() const { return writes_; }

  /// Renders one snapshot in the text exposition format. Exposed so other
  /// roots (live_cli's console mode, tests) can reuse the formatter.
  static void write_text(std::ostream& os, const MetricsSnapshot& snap);

  /// Maps an instrument name to a Prometheus metric name: `aqueduct_`
  /// prefix, every character outside [a-zA-Z0-9_:] replaced with '_'.
  static std::string prometheus_name(std::string_view name);

 private:
  std::string path_;
  std::uint64_t writes_ = 0;
};

/// FNV-1a 64-bit digest. Used by the sweep runner to roll a per-unit JSONL
/// telemetry series up into one deterministic fingerprint.
std::uint64_t digest_fnv1a64(std::string_view data);

}  // namespace aqueduct::obs
