#include "obs/sla.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/check.hpp"

namespace aqueduct::obs {

WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z) {
  WilsonInterval ci;
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  ci.point = p;
  ci.lower = std::max(0.0, center - half);
  ci.upper = std::min(1.0, center + half);
  return ci;
}

SlaMonitor::SlaMonitor(MetricsRegistry& metrics, TraceHub& trace,
                       SlaConfig config)
    : metrics_(metrics), trace_(trace), config_(config) {
  AQUEDUCT_CHECK_MSG(config_.window > 0, "SLA window must be non-empty");
  violations_total_ = &metrics_.counter("sla.violations");
}

void SlaMonitor::record_read(net::NodeId client, const SlaSpec& spec,
                             sim::TimePoint now, bool timing_failure,
                             std::uint64_t staleness, std::uint32_t attempts,
                             std::int64_t shard) {
  const std::lock_guard<std::mutex> lock(mu_);

  // Find the entry for (client, shard, spec); specs per handler are few, so
  // a scan over its registrations is cheaper than hashing the spec.
  Entry* entry = nullptr;
  std::uint32_t next_index = 0;
  for (auto it = entries_.lower_bound(Key{client, shard, 0});
       it != entries_.end() && it->first.client == client &&
       it->first.shard == shard;
       ++it) {
    if (it->second.spec == spec) {
      entry = &it->second;
      break;
    }
    next_index = it->first.spec_index + 1;
  }
  if (entry == nullptr) {
    Entry fresh;
    fresh.spec_index = next_index;
    fresh.spec = spec;
    fresh.ring.reserve(config_.window);
    // Untagged handlers keep the pre-shard gauge names bit-for-bit.
    const std::string shard_tag =
        shard < 0 ? "" : ".s" + std::to_string(shard);
    const std::string prefix = "sla.c" + std::to_string(client.value()) +
                               shard_tag + ".spec" +
                               std::to_string(next_index) + ".";
    fresh.g_failure_rate = &metrics_.gauge(prefix + "failure_rate");
    fresh.g_wilson_lower = &metrics_.gauge(prefix + "wilson_lower");
    fresh.g_violating = &metrics_.gauge(prefix + "violating");
    fresh.g_avg_staleness = &metrics_.gauge(prefix + "avg_staleness");
    fresh.g_avg_attempts = &metrics_.gauge(prefix + "avg_attempts");
    entry = &entries_.emplace(Key{client, shard, next_index},
                              std::move(fresh)).first->second;
  }
  Entry& e = *entry;

  const Sample sample{timing_failure, attempts, staleness};
  if (e.ring.size() < config_.window) {
    e.ring.push_back(sample);
  } else {
    const Sample& old = e.ring[e.next];  // evict the oldest outcome
    e.window_failures -= old.failure ? 1 : 0;
    e.window_attempts -= old.attempts;
    e.window_staleness -= old.staleness;
    e.ring[e.next] = sample;
  }
  e.next = (e.next + 1) % config_.window;
  e.window_failures += timing_failure ? 1 : 0;
  e.window_attempts += attempts;
  e.window_staleness += staleness;
  ++e.total_reads;
  e.last_read = now;

  const std::uint64_t window_reads = e.ring.size();
  const WilsonInterval ci =
      wilson_interval(e.window_failures, window_reads, config_.z);
  const double budget = 1.0 - e.spec.min_probability;
  const bool violating_now =
      window_reads >= config_.min_samples && ci.lower > budget;

  if (violating_now != e.violating) {
    if (violating_now) {
      ++e.violations;
      violations_total_->inc();
    }
    e.violating = violating_now;
    if (trace_.active()) {
      SlaEvent event;
      event.at = now;
      event.client = client;
      event.shard = shard;
      event.spec_index = e.spec_index;
      event.violating = violating_now;
      event.failure_rate = ci.point;
      event.wilson_lower = ci.lower;
      event.budget = budget;
      event.window_reads = window_reads;
      event.window_failures = e.window_failures;
      trace_.sla(event);
    }
  }

  const double n = static_cast<double>(window_reads);
  e.g_failure_rate->set(ci.point);
  e.g_wilson_lower->set(ci.lower);
  e.g_violating->set(e.violating ? 1.0 : 0.0);
  e.g_avg_staleness->set(static_cast<double>(e.window_staleness) / n);
  e.g_avg_attempts->set(static_cast<double>(e.window_attempts) / n);
}

SlaStatus SlaMonitor::status_of(const Entry& e, const Key& key,
                                sim::TimePoint now) const {
  SlaStatus s;
  s.client = key.client;
  s.shard = key.shard;
  s.spec_index = e.spec_index;
  s.spec = e.spec;
  s.total_reads = e.total_reads;
  s.window_reads = e.ring.size();
  s.window_failures = e.window_failures;
  const WilsonInterval ci =
      wilson_interval(e.window_failures, s.window_reads, config_.z);
  s.failure_rate = ci.point;
  s.wilson_lower = ci.lower;
  s.wilson_upper = ci.upper;
  s.budget = 1.0 - e.spec.min_probability;
  s.violating = e.violating;
  s.violations = e.violations;
  if (!e.ring.empty()) {
    const double n = static_cast<double>(e.ring.size());
    s.avg_attempts = static_cast<double>(e.window_attempts) / n;
    s.avg_staleness = static_cast<double>(e.window_staleness) / n;
    for (const Sample& sample : e.ring) {
      s.max_staleness = std::max(s.max_staleness, sample.staleness);
    }
    s.last_read_age = now - e.last_read;
  }
  return s;
}

std::vector<SlaStatus> SlaMonitor::statuses(sim::TimePoint now) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlaStatus> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back(status_of(entry, key, now));
  }
  return out;
}

std::uint64_t SlaMonitor::total_violations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, entry] : entries_) total += entry.violations;
  return total;
}

std::size_t SlaMonitor::num_tracked() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace aqueduct::obs
