#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"
#include "sim/check.hpp"

namespace aqueduct::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds_ms();
  AQUEDUCT_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                     "histogram bounds must be sorted");
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::buckets() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  AQUEDUCT_CHECK(q >= 0.0 && q <= 1.0);
  const std::vector<std::uint64_t> snap = buckets();
  std::uint64_t total = 0;
  for (const std::uint64_t c : snap) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const std::uint64_t next = cumulative + snap[i];
    if (static_cast<double>(next) >= target && snap[i] > 0) {
      if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          (target - static_cast<double>(cumulative)) / static_cast<double>(snap[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.back();
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  AQUEDUCT_CHECK_MSG(start > 0.0 && factor > 1.0 && count > 0,
                     "exponential_bounds requires start > 0, factor > 1, count > 0");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> default_latency_bounds_ms() {
  // 0.1 ms .. ~28.6 s in 40 log-spaced buckets (~2.9 buckets per octave).
  return Histogram::exponential_bounds(0.1, 1.38, 40);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = instruments_[name];
  if (!inst.counter) {
    AQUEDUCT_CHECK_MSG(!inst.gauge && !inst.histogram,
                       "metric name registered with a different kind");
    inst.counter = std::make_unique<Counter>();
  }
  return *inst.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = instruments_[name];
  if (!inst.gauge) {
    AQUEDUCT_CHECK_MSG(!inst.counter && !inst.histogram,
                       "metric name registered with a different kind");
    inst.gauge = std::make_unique<Gauge>();
  }
  return *inst.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = instruments_[name];
  if (!inst.histogram) {
    AQUEDUCT_CHECK_MSG(!inst.counter && !inst.gauge,
                       "metric name registered with a different kind");
    inst.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *inst.histogram;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

bool MetricsRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return instruments_.contains(name);
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, inst] : instruments_) {
    if (inst.counter) w.field(name, inst.counter->value());
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, inst] : instruments_) {
    if (inst.gauge) w.field(name, inst.gauge->value());
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, inst] : instruments_) {
    if (!inst.histogram) continue;
    const Histogram& h = *inst.histogram;
    w.key(name);
    w.begin_object();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("p50", h.quantile(0.50));
    w.field("p95", h.quantile(0.95));
    w.field("p99", h.quantile(0.99));
    w.key("bounds");
    w.begin_array();
    for (const double b : h.bounds()) w.element(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t c : h.buckets()) w.element(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

MetricsRegistry& MetricsRegistry::scratch() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace aqueduct::obs
