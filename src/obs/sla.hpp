// Live SLA monitoring against the paper's per-client timeliness contract.
//
// Each client issues reads under a QoS spec <a, d, Pc(d)>: staleness bound
// a, deadline d, and the minimum probability Pc(d) that a read completes
// within d. The probabilistic model (core/selection) *predicts* that
// probability before each read; the SlaMonitor closes the loop by watching
// what actually happened. Per (client, spec) it keeps a rolling window of
// read outcomes and maintains:
//
//   * the observed timing-failure rate with a Wilson score interval,
//   * average/max observed staleness and the age of the last read,
//   * the average selection-attempt count (retries inflate it).
//
// The spec is violated when even the *optimistic* reading of the evidence
// is out of budget: the Wilson lower bound of the failure rate exceeds
// 1 - Pc(d). Transitions into/out of violation emit structured SlaEvents
// through the TraceHub and bump a counter; current values are mirrored to
// gauges (`sla.c<id>.spec<k>.*`) so the snapshot pipeline — and the
// ROADMAP's future closed-loop controller — can read them like any other
// instrument.
//
// Thread-safe: record_read() and statuses() take an internal mutex, so the
// monitor works unchanged under the single-threaded simulator and the
// real-time loop with concurrent observers.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/node.hpp"
#include "sim/time.hpp"

namespace aqueduct::obs {

class MetricsRegistry;
class TraceHub;
class Counter;
class Gauge;

/// 95% Wilson score interval for a binomial proportion. Numerically
/// identical to harness::binomial_ci_wilson, which delegates here — obs
/// cannot depend on harness, but the recovery bench gate pins the pooled
/// bound, so there must be exactly one formula in the repo.
struct WilsonInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;
};
WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z = 1.96);

/// The monitored contract. Mirrors core::QoSSpec field-for-field; obs
/// cannot include core (layering), so the caller copies the three values.
struct SlaSpec {
  std::uint64_t staleness_threshold = 0;  ///< a: max versions behind.
  sim::Duration deadline = sim::Duration::zero();  ///< d.
  double min_probability = 1.0;  ///< Pc(d).

  friend bool operator==(const SlaSpec&, const SlaSpec&) = default;
};

struct SlaConfig {
  /// Rolling window: verdicts consider the most recent `window` reads per
  /// (client, spec); older outcomes are evicted.
  std::size_t window = 100;
  /// Critical value for the Wilson interval (1.96 = 95%).
  double z = 1.96;
  /// No violation verdict until the window holds this many reads — a
  /// single early failure is not evidence.
  std::size_t min_samples = 10;
};

/// Point-in-time view of one monitored (client, shard, spec) tuple.
struct SlaStatus {
  net::NodeId client;
  /// Shard tag of the recording handler; -1 = untagged (unsharded client).
  std::int64_t shard = -1;
  std::uint32_t spec_index = 0;  ///< k-th spec seen for this (client, shard).
  SlaSpec spec;
  std::uint64_t total_reads = 0;
  std::uint64_t window_reads = 0;
  std::uint64_t window_failures = 0;
  double failure_rate = 0.0;     ///< window_failures / window_reads.
  double wilson_lower = 0.0;
  double wilson_upper = 0.0;
  double budget = 0.0;           ///< 1 - Pc(d): allowed failure rate.
  bool violating = false;
  std::uint64_t violations = 0;  ///< Transitions into violation so far.
  double avg_attempts = 0.0;     ///< Mean selection attempts over window.
  double avg_staleness = 0.0;    ///< Mean observed staleness over window.
  std::uint64_t max_staleness = 0;
  sim::Duration last_read_age = sim::Duration::zero();  ///< now - last read.
};

/// Emitted through the TraceHub when a (client, spec) pair crosses the
/// violation boundary in either direction.
struct SlaEvent {
  sim::TimePoint at;
  net::NodeId client;
  std::int64_t shard = -1;  ///< -1 = untagged (unsharded client).
  std::uint32_t spec_index = 0;
  bool violating = false;  ///< true: entered violation; false: recovered.
  double failure_rate = 0.0;
  double wilson_lower = 0.0;
  double budget = 0.0;
  std::uint64_t window_reads = 0;
  std::uint64_t window_failures = 0;
};

class SlaMonitor {
 public:
  SlaMonitor(MetricsRegistry& metrics, TraceHub& trace, SlaConfig config = {});

  SlaMonitor(const SlaMonitor&) = delete;
  SlaMonitor& operator=(const SlaMonitor&) = delete;

  /// Records one completed read (successful, deferred, or abandoned).
  /// `timing_failure` is the paper's definition: no acceptable reply
  /// within d. `staleness` is the observed version lag of the reply (0 for
  /// failures). `attempts` counts selection rounds (1 = no retry).
  /// `shard` tags the recording handler's shard in a sharded service
  /// (gauges become `sla.c<id>.s<shard>.spec<k>.*`); the default -1 keeps
  /// the unsharded key and gauge names bit-for-bit.
  void record_read(net::NodeId client, const SlaSpec& spec, sim::TimePoint now,
                   bool timing_failure, std::uint64_t staleness,
                   std::uint32_t attempts, std::int64_t shard = -1);

  /// All monitored tuples, ordered by (client, shard, spec_index).
  std::vector<SlaStatus> statuses(sim::TimePoint now) const;

  /// Total transitions into violation across all pairs.
  std::uint64_t total_violations() const;

  std::size_t num_tracked() const;
  const SlaConfig& config() const { return config_; }

 private:
  struct Sample {
    bool failure = false;
    std::uint32_t attempts = 1;
    std::uint64_t staleness = 0;
  };
  struct Entry {
    std::uint32_t spec_index = 0;
    SlaSpec spec;
    std::vector<Sample> ring;   // capacity config_.window, filled lazily
    std::size_t next = 0;       // ring insertion cursor
    std::uint64_t total_reads = 0;
    std::uint64_t window_failures = 0;
    std::uint64_t window_attempts = 0;
    std::uint64_t window_staleness = 0;
    sim::TimePoint last_read;
    bool violating = false;
    std::uint64_t violations = 0;
    // Mirrored instruments, resolved once at first record.
    Gauge* g_failure_rate = nullptr;
    Gauge* g_wilson_lower = nullptr;
    Gauge* g_violating = nullptr;
    Gauge* g_avg_staleness = nullptr;
    Gauge* g_avg_attempts = nullptr;
  };

  /// Monitoring key. Ordered so statuses() lists by (client, shard, spec);
  /// `shard` is -1 for unsharded clients, keeping their keys and gauge
  /// names identical to the pre-shard monitor.
  struct Key {
    net::NodeId client;
    std::int64_t shard = -1;
    std::uint32_t spec_index = 0;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  SlaStatus status_of(const Entry& e, const Key& key,
                      sim::TimePoint now) const;

  MetricsRegistry& metrics_;
  TraceHub& trace_;
  SlaConfig config_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  Counter* violations_total_ = nullptr;
};

}  // namespace aqueduct::obs
