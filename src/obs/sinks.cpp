#include "obs/sinks.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"

namespace aqueduct::obs {

void JsonlSnapshotSink::on_snapshot(const MetricsSnapshot& snap) {
  JsonWriter w(os_);
  w.begin_object();
  w.field("type", "metrics");
  w.field("seq", snap.seq);
  w.field("t_ns", static_cast<std::int64_t>(snap.at.count()));
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snap.counters) w.field(name, value);
  w.end_object();
  w.key("deltas");
  w.begin_object();
  for (const auto& [name, value] : snap.counter_deltas) {
    if (value != 0) w.field(name, value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : snap.gauges) w.field(name, value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name);
    w.begin_object();
    w.field("count", h.count);
    w.field("sum", h.sum);
    if (bounds_written_.insert(name).second) {
      w.key("bounds");
      w.begin_array();
      for (const double b : h.bounds) w.element(b);
      w.end_array();
    }
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t c : h.buckets) w.element(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os_ << '\n';
  ++lines_;
}

std::string PrometheusTextSink::prometheus_name(std::string_view name) {
  std::string out = "aqueduct_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void PrometheusTextSink::write_text(std::ostream& os,
                                    const MetricsSnapshot& snap) {
  os << "# Aqueduct telemetry snapshot seq=" << snap.seq
     << " t_ns=" << snap.at.count() << "\n";
  for (const auto& [name, value] : snap.counters) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " counter\n" << pn << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " gauge\n" << pn << " " << json_number(value)
       << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      os << pn << "_bucket{le=\"" << json_number(h.bounds[i]) << "\"} "
         << cumulative << "\n";
    }
    os << pn << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << pn << "_sum " << json_number(h.sum) << "\n";
    os << pn << "_count " << h.count << "\n";
  }
}

void PrometheusTextSink::on_snapshot(const MetricsSnapshot& snap) {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return;
  write_text(out, snap);
  ++writes_;
}

std::uint64_t digest_fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace aqueduct::obs
