// Minimal streaming JSON writer shared by the exporters and the bench
// summaries. Emits deterministic output: fixed field order (caller-driven),
// integers verbatim, doubles with shortest round-trip formatting.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace aqueduct::obs {

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Formats a double the same way on every run/platform we care about:
/// integral values without a fractional part, otherwise %.17g trimmed.
std::string json_number(double v);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() { separator(); os_ << '{'; stack_.push_back(kFirst); }
  void end_object() { os_ << '}'; stack_.pop_back(); mark_value(); }
  void begin_array() { separator(); os_ << '['; stack_.push_back(kFirst); }
  void end_array() { os_ << ']'; stack_.pop_back(); mark_value(); }

  void key(std::string_view k) {
    separator();
    os_ << '"' << json_escape(k) << "\":";
    pending_key_ = true;
  }

  void element(std::string_view v) { separator(); write_string(v); mark_value(); }
  void element(const char* v) { element(std::string_view(v)); }
  void element(double v) { separator(); os_ << json_number(v); mark_value(); }
  void element(std::uint64_t v) { separator(); os_ << v; mark_value(); }
  void element(std::int64_t v) { separator(); os_ << v; mark_value(); }
  void element(std::uint32_t v) { element(static_cast<std::uint64_t>(v)); }
  void element(int v) { element(static_cast<std::int64_t>(v)); }
  void element(bool v) { separator(); os_ << (v ? "true" : "false"); mark_value(); }

  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    element(v);
  }
  void field(std::string_view k, const std::string& v) {
    key(k);
    element(std::string_view(v));
  }

 private:
  enum State : char { kFirst, kRest };

  void separator() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back() == kRest) os_ << ',';
      stack_.back() = kRest;
    }
  }
  void mark_value() {
    if (!stack_.empty()) stack_.back() = kRest;
  }
  void write_string(std::string_view v) {
    os_ << '"' << json_escape(v) << '"';
  }

  std::ostream& os_;
  std::vector<State> stack_;
  bool pending_key_ = false;
};

}  // namespace aqueduct::obs
