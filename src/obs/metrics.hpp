// Unified metrics registry for the whole stack.
//
// Every layer (sim, net, gcs, replication, client, harness) registers named
// instruments here instead of growing private ad-hoc counter structs. The
// registry owns the instrument storage; components hold references obtained
// at construction time, so the hot-path cost of an increment is one relaxed
// atomic add. Instruments are aggregated by name: two components asking
// for the same counter share one cell, which is exactly what fleet-level
// metrics want (per-instance views stay available through the components'
// existing `stats()` accessors).
//
// Concurrency contract (the registry is shared by the real-time event loop,
// client threads, the sweep coordinator, and the telemetry snapshotter):
//   * Instrument lookup/creation and registry iteration are guarded by an
//     internal mutex. References returned by counter()/gauge()/histogram()
//     stay valid for the registry's lifetime (map nodes + unique_ptr), so
//     components resolve names once at construction and never lock again.
//   * Increments and observations are lock-free relaxed atomics. Under the
//     single-threaded simulator the fast path is still one relaxed add —
//     uncontended and as cheap as the old plain-integer version.
//   * Reads (value(), snapshots, write_json) are safe at any time. Under
//     concurrent writers a snapshot is eventually consistent per instrument
//     (a histogram's count/sum/buckets may be mid-update relative to each
//     other); under a single writer — the simulator — it is exact.
// Iteration order is deterministic (std::map), and a JSON exporter provides
// machine-readable end-of-run dumps.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aqueduct::obs {

struct MetricsSnapshot;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: counts of observations falling at or below each
/// upper bound, plus an implicit overflow bucket. Bounds are chosen at
/// registration time, immutable afterwards, and shared by every component
/// using the name. Writers are lock-free (per-bucket relaxed atomics);
/// the bucket array is sized once at construction and never reallocated,
/// so concurrent observe() calls never race with resizing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Snapshot of the bucket counts; buckets().size() == bounds().size() + 1
  /// and the last entry is overflow. Returned by value: the live cells are
  /// atomics that concurrent writers keep advancing.
  std::vector<std::uint64_t> buckets() const;

  /// Bucket-interpolated quantile estimate (0 <= q <= 1). Returns 0 when
  /// empty. Values beyond the last bound are reported as the last bound.
  /// Operates on one coherent snapshot of the buckets.
  double quantile(double q) const;

  /// Log-spaced upper bounds: start, start*factor, start*factor^2, ...
  /// (`count` entries). The natural shape for latency data, where relative
  /// resolution matters more than absolute. Requires start > 0, factor > 1.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for latencies measured in milliseconds:
/// 40 log-spaced buckets from 0.1 ms to ~30 s (factor ~1.38).
std::vector<double> default_latency_bounds_ms();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Asking for an existing name with a different instrument kind is a
  /// programming error and aborts. Thread-safe; the returned reference is
  /// stable for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is consulted only when the histogram is created; later calls
  /// reuse the original buckets.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  std::size_t size() const;
  bool contains(const std::string& name) const;

  /// One coherent, name-sorted copy of every instrument's current value.
  /// Defined in snapshot.cpp; see obs/snapshot.hpp for the record layout.
  MetricsSnapshot snapshot() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Deterministic (name-sorted) field order.
  void write_json(std::ostream& os) const;

  /// Process-wide scratch registry for components constructed without an
  /// observability context (unit tests building layers in isolation).
  /// Instruments work normally but nobody exports them.
  static MetricsRegistry& scratch();

 private:
  struct Instrument {
    // Exactly one is non-null.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::map<std::string, Instrument> instruments_;
};

}  // namespace aqueduct::obs
