// Unified metrics registry for the whole stack.
//
// Every layer (sim, net, gcs, replication, client, harness) registers named
// instruments here instead of growing private ad-hoc counter structs. The
// registry owns the instrument storage; components hold references obtained
// at construction time, so the hot-path cost of an increment is one add on a
// plain integer. Instruments are aggregated by name: two components asking
// for the same counter share one cell, which is exactly what fleet-level
// metrics want (per-instance views stay available through the components'
// existing `stats()` accessors).
//
// The registry is deliberately simulation-friendly: no locks (the simulator
// is single-threaded), deterministic iteration order (std::map), and a JSON
// exporter for machine-readable snapshots.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace aqueduct::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: counts of observations falling at or below each
/// upper bound, plus an implicit overflow bucket. Bounds are chosen at
/// registration time and shared by every component using the name.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// buckets().size() == bounds().size() + 1; the last entry is overflow.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Bucket-interpolated quantile estimate (0 <= q <= 1). Returns 0 when
  /// empty. Values beyond the last bound are reported as the last bound.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Default histogram bounds for latencies measured in milliseconds:
/// roughly logarithmic from 0.1 ms to 30 s.
std::vector<double> default_latency_bounds_ms();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Asking for an existing name with a different instrument kind is a
  /// programming error and aborts.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is consulted only when the histogram is created; later calls
  /// reuse the original buckets.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  std::size_t size() const { return instruments_.size(); }
  bool contains(const std::string& name) const { return instruments_.contains(name); }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Deterministic (name-sorted) field order.
  void write_json(std::ostream& os) const;

  /// Process-wide scratch registry for components constructed without an
  /// observability context (unit tests building layers in isolation).
  /// Instruments work normally but nobody exports them.
  static MetricsRegistry& scratch();

 private:
  struct Instrument {
    // Exactly one is non-null.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::map<std::string, Instrument> instruments_;
};

}  // namespace aqueduct::obs
