#include "obs/trace.hpp"

#include <algorithm>

namespace aqueduct::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIssue: return "issue";
    case SpanKind::kSend: return "send";
    case SpanKind::kRetry: return "retry";
    case SpanKind::kDeliver: return "deliver";
    case SpanKind::kGsnAssign: return "gsn_assign";
    case SpanKind::kEnqueue: return "enqueue";
    case SpanKind::kExecute: return "execute";
    case SpanKind::kReply: return "reply";
    case SpanKind::kReceive: return "receive";
    case SpanKind::kComplete: return "complete";
    case SpanKind::kTimingFailure: return "timing_failure";
    case SpanKind::kAbandon: return "abandon";
    case SpanKind::kLazyPublish: return "lazy_publish";
  }
  return "unknown";
}

void TraceHub::add(TraceSink* sink) {
  if (sink == nullptr) return;
  if (std::find(sinks_.begin(), sinks_.end(), sink) != sinks_.end()) return;
  sinks_.push_back(sink);
}

void TraceHub::remove(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

TraceHub& TraceHub::scratch() {
  static TraceHub hub;
  return hub;
}

}  // namespace aqueduct::obs
