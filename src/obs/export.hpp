// Trace exporters.
//
//   * JsonLinesSink — one JSON object per event, streamed as it happens.
//     Deterministic: same seed => byte-identical output. Timestamps and
//     durations are integer nanoseconds of simulated time.
//   * ChromeTraceSink — buffers events and writes the Chrome trace_event
//     format (load in chrome://tracing or https://ui.perfetto.dev). Each
//     simulated node becomes a "process"; spans with a duration render as
//     complete ("X") events, the rest as instants.
//   * LatencyBreakdownCollector — gathers the per-request BreakdownEvents
//     and reports the queueing / service / lazy-wait / gateway / client
//     decomposition that mirrors the paper's response-time model.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/trace.hpp"

namespace aqueduct::obs {

class JsonLinesSink final : public TraceSink {
 public:
  /// `os` must outlive the sink's subscription.
  explicit JsonLinesSink(std::ostream& os) : os_(os) {}

  void on_message(const MessageEvent& e) override;
  void on_span(const SpanEvent& e) override;
  void on_breakdown(const BreakdownEvent& e) override;
  void on_sla(const SlaEvent& e) override;

 private:
  std::ostream& os_;
};

class ChromeTraceSink final : public TraceSink {
 public:
  void on_message(const MessageEvent& e) override { messages_.push_back(e); }
  void on_span(const SpanEvent& e) override { spans_.push_back(e); }
  void on_breakdown(const BreakdownEvent& e) override {
    breakdowns_.push_back(e);
  }

  /// Writes {"traceEvents":[...]} — call once, after the run.
  void write(std::ostream& os) const;

  std::size_t num_events() const {
    return messages_.size() + spans_.size() + breakdowns_.size();
  }

 private:
  std::vector<MessageEvent> messages_;
  std::vector<SpanEvent> spans_;
  std::vector<BreakdownEvent> breakdowns_;
};

class LatencyBreakdownCollector final : public TraceSink {
 public:
  void on_breakdown(const BreakdownEvent& e) override { events_.push_back(e); }

  const std::vector<BreakdownEvent>& events() const { return events_; }

  struct Totals {
    std::size_t count = 0;
    sim::Duration client_overhead = sim::Duration::zero();
    sim::Duration gateway = sim::Duration::zero();
    sim::Duration queueing = sim::Duration::zero();
    sim::Duration service = sim::Duration::zero();
    sim::Duration lazy_wait = sim::Duration::zero();
    sim::Duration total = sim::Duration::zero();
  };
  /// Component sums over all collected reads (is_read) or updates.
  Totals totals(bool reads) const;

  /// Largest |total - (client + gateway + queueing + service + lazy)| over
  /// all collected events. Zero by construction; tests assert it.
  sim::Duration max_sum_error() const;

  /// Aggregate report: per-component means and shares, percentiles of the
  /// end-to-end response time, split by reads/updates.
  void write_json(std::ostream& os) const;

 private:
  std::vector<BreakdownEvent> events_;
};

}  // namespace aqueduct::obs
