// Tunables for the group-communication substrate.
#pragma once

#include "sim/time.hpp"

namespace aqueduct::gcs {

struct Config {
  /// Period of the per-group heartbeat. Heartbeats carry cumulative
  /// acknowledgements (for stability/garbage collection), the sender's
  /// current sequence numbers (for trailing-loss detection), and feed the
  /// failure detector.
  sim::Duration heartbeat_period = std::chrono::milliseconds(250);

  /// A member is suspected crashed if nothing is heard from it for this
  /// long. Must be a few multiples of heartbeat_period.
  sim::Duration suspect_timeout = std::chrono::milliseconds(1500);

  /// After learning (via heartbeat) that a sender has sent messages we have
  /// not received, wait this long before NACKing (the message is probably
  /// still in flight).
  sim::Duration nack_delay = std::chrono::milliseconds(100);

  /// A joiner that got no view re-contacts the group coordinator at this
  /// period (covers the coordinator crashing while the join was pending).
  sim::Duration join_retry = std::chrono::milliseconds(1000);

  /// A flush round that has not completed within this period is restarted
  /// (excluding members that did not respond and are suspected).
  sim::Duration flush_timeout = std::chrono::milliseconds(2000);
};

}  // namespace aqueduct::gcs
