// Wire messages of the group-communication protocol.
//
// In a real deployment these would be serialized; in the simulator they are
// immutable heap objects shared between sender buffers and receivers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "gcs/types.hpp"
#include "net/message.hpp"
#include "net/node.hpp"

namespace aqueduct::gcs {

/// Application payload wrapped for reliable FIFO delivery.
///
/// Sequence numbers are per sender and persist across views, so receivers
/// deduplicate and order by (sender, seq) alone. `is_mcast` selects the
/// stream: the group-wide multicast stream, or the per-destination
/// point-to-point stream.
struct DataMsg final : net::Message {
  GroupId group;
  bool is_mcast = true;
  net::NodeId sender;
  net::NodeId dest;  // only meaningful for p2p
  std::uint64_t seq = 0;
  ViewId view_sent = 0;  // diagnostic: view in which the send was issued
  net::MessagePtr payload;

  std::string type_name() const override { return "gcs.data"; }
  std::size_t wire_size() const override {
    return 48 + (payload ? payload->wire_size() : 0);
  }
};

using DataMsgPtr = std::shared_ptr<const DataMsg>;

/// Periodic per-group heartbeat.
struct HeartbeatMsg final : net::Message {
  GroupId group;
  ViewId view = 0;
  /// Sender's own multicast stream high-water mark (for trailing-loss
  /// detection at receivers).
  std::uint64_t my_mcast_seq = 0;
  /// Sender's p2p stream high-water mark per destination.
  std::map<net::NodeId, std::uint64_t> my_p2p_seq;
  /// Cumulative contiguous-delivery acknowledgements: for each sender in
  /// the group, the highest mcast seq this member has delivered.
  std::map<net::NodeId, std::uint64_t> mcast_acks;
  /// For each sender, the highest p2p seq (on the sender->me channel) this
  /// member has delivered.
  std::map<net::NodeId, std::uint64_t> p2p_acks;

  std::string type_name() const override { return "gcs.heartbeat"; }
  std::size_t wire_size() const override {
    return 32 + 16 * (my_p2p_seq.size() + mcast_acks.size() + p2p_acks.size());
  }
};

/// Retransmission request: "re-send your {mcast|p2p} messages in
/// [from_seq, to_seq] to me".
struct NackMsg final : net::Message {
  GroupId group;
  bool is_mcast = true;
  std::uint64_t from_seq = 0;
  std::uint64_t to_seq = 0;

  std::string type_name() const override { return "gcs.nack"; }
};

/// Sent by a process that wants to join the group, to the coordinator.
struct JoinMsg final : net::Message {
  GroupId group;
  std::string type_name() const override { return "gcs.join"; }
};

/// Graceful leave notice, to the coordinator.
struct LeaveMsg final : net::Message {
  GroupId group;
  std::string type_name() const override { return "gcs.leave"; }
};

/// Failure notification: "I suspect `suspect` has crashed", sent to the
/// acting coordinator.
struct SuspectMsg final : net::Message {
  GroupId group;
  net::NodeId suspect;
  std::string type_name() const override { return "gcs.suspect"; }
};

/// Phase 1 of the view change: the coordinator proposes a new membership.
/// Receivers block new application sends and reply with FlushMsg.
struct ProposeMsg final : net::Message {
  GroupId group;
  std::uint64_t proposal = 0;  // monotone per group; becomes the new ViewId
  std::vector<net::NodeId> members;
  std::string type_name() const override { return "gcs.propose"; }
};

/// Phase 1 reply: everything this member knows about the multicast streams,
/// so the coordinator can compute the virtually synchronous cut.
struct FlushMsg final : net::Message {
  GroupId group;
  std::uint64_t proposal = 0;
  /// Highest contiguously delivered mcast seq per sender.
  std::map<net::NodeId, std::uint64_t> delivered;
  /// All unstable messages this member holds copies of: retained delivered
  /// messages, buffered out-of-order messages, and its own unstable sends.
  std::vector<DataMsgPtr> held;
  std::string type_name() const override { return "gcs.flush"; }
  std::size_t wire_size() const override {
    std::size_t n = 32 + 16 * delivered.size();
    for (const auto& m : held) n += m->wire_size();
    return n;
  }
};

/// Phase 2: the coordinator installs the new view. Members first deliver
/// the resolution messages they are missing (up to deliver_up_to per
/// sender), then switch to the new view and unblock sends.
struct InstallMsg final : net::Message {
  GroupId group;
  std::uint64_t proposal = 0;
  View view;
  /// Virtually synchronous cut: deliver the mcast stream of each sender up
  /// to this seq before installing.
  std::map<net::NodeId, std::uint64_t> deliver_up_to;
  /// Copies of every unstable message known to any flushed member.
  std::vector<DataMsgPtr> resolution;
  std::string type_name() const override { return "gcs.install"; }
  std::size_t wire_size() const override {
    std::size_t n = 64 + 16 * deliver_up_to.size() + 8 * view.members.size();
    for (const auto& m : resolution) n += m->wire_size();
    return n;
  }
};

}  // namespace aqueduct::gcs
