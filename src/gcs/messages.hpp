// Wire messages of the group-communication protocol.
//
// In the simulator they travel as immutable heap objects shared between
// sender buffers and receivers; over a socket transport they are framed by
// the wire codec. Each type carries a stable wire id (kWire* below) and an
// encode() override; the matching decoders are registered by
// gcs::register_wire_codecs() (gcs/codec.cpp). Wire ids are append-only:
// never renumber, never reuse.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "gcs/types.hpp"
#include "net/codec.hpp"
#include "net/message.hpp"
#include "net/node.hpp"

namespace aqueduct::gcs {

// Wire type ids of the gcs layer (block 0x1*).
inline constexpr net::WireTypeId kWireData = 0x11;
inline constexpr net::WireTypeId kWireHeartbeat = 0x12;
inline constexpr net::WireTypeId kWireNack = 0x13;
inline constexpr net::WireTypeId kWireJoin = 0x14;
inline constexpr net::WireTypeId kWireLeave = 0x15;
inline constexpr net::WireTypeId kWireSuspect = 0x16;
inline constexpr net::WireTypeId kWirePropose = 0x17;
inline constexpr net::WireTypeId kWireFlush = 0x18;
inline constexpr net::WireTypeId kWireInstall = 0x19;

/// Registers every gcs decoder in the global net::CodecRegistry.
/// Idempotent; composition roots that receive serialized frames call it
/// once at startup.
void register_wire_codecs();

/// Application payload wrapped for reliable FIFO delivery.
///
/// Sequence numbers are per sender and persist across views, so receivers
/// deduplicate and order by (sender, seq) alone. `is_mcast` selects the
/// stream: the group-wide multicast stream, or the per-destination
/// point-to-point stream.
struct DataMsg final : net::Message {
  GroupId group;
  bool is_mcast = true;
  net::NodeId sender;
  net::NodeId dest;  // only meaningful for p2p
  std::uint64_t seq = 0;
  ViewId view_sent = 0;  // diagnostic: view in which the send was issued
  net::MessagePtr payload;

  std::string type_name() const override { return "gcs.data"; }
  net::WireTypeId wire_type() const override { return kWireData; }
  void encode(net::Writer& w) const override;
};

using DataMsgPtr = std::shared_ptr<const DataMsg>;

/// Periodic per-group heartbeat.
struct HeartbeatMsg final : net::Message {
  GroupId group;
  ViewId view = 0;
  /// Sender's own multicast stream high-water mark (for trailing-loss
  /// detection at receivers).
  std::uint64_t my_mcast_seq = 0;
  /// Sender's p2p stream high-water mark per destination.
  std::map<net::NodeId, std::uint64_t> my_p2p_seq;
  /// Cumulative contiguous-delivery acknowledgements: for each sender in
  /// the group, the highest mcast seq this member has delivered.
  std::map<net::NodeId, std::uint64_t> mcast_acks;
  /// For each sender, the highest p2p seq (on the sender->me channel) this
  /// member has delivered.
  std::map<net::NodeId, std::uint64_t> p2p_acks;

  std::string type_name() const override { return "gcs.heartbeat"; }
  net::WireTypeId wire_type() const override { return kWireHeartbeat; }
  void encode(net::Writer& w) const override;
};

/// Retransmission request: "re-send your {mcast|p2p} messages in
/// [from_seq, to_seq] to me".
struct NackMsg final : net::Message {
  GroupId group;
  bool is_mcast = true;
  std::uint64_t from_seq = 0;
  std::uint64_t to_seq = 0;

  std::string type_name() const override { return "gcs.nack"; }
  net::WireTypeId wire_type() const override { return kWireNack; }
  void encode(net::Writer& w) const override;
};

/// Sent by a process that wants to join the group, to the coordinator.
struct JoinMsg final : net::Message {
  GroupId group;
  std::string type_name() const override { return "gcs.join"; }
  net::WireTypeId wire_type() const override { return kWireJoin; }
  void encode(net::Writer& w) const override;
};

/// Graceful leave notice, to the coordinator.
struct LeaveMsg final : net::Message {
  GroupId group;
  std::string type_name() const override { return "gcs.leave"; }
  net::WireTypeId wire_type() const override { return kWireLeave; }
  void encode(net::Writer& w) const override;
};

/// Failure notification: "I suspect `suspect` has crashed", sent to the
/// acting coordinator.
struct SuspectMsg final : net::Message {
  GroupId group;
  net::NodeId suspect;
  std::string type_name() const override { return "gcs.suspect"; }
  net::WireTypeId wire_type() const override { return kWireSuspect; }
  void encode(net::Writer& w) const override;
};

/// Phase 1 of the view change: the coordinator proposes a new membership.
/// Receivers block new application sends and reply with FlushMsg.
struct ProposeMsg final : net::Message {
  GroupId group;
  std::uint64_t proposal = 0;  // monotone per group; becomes the new ViewId
  std::vector<net::NodeId> members;
  std::string type_name() const override { return "gcs.propose"; }
  net::WireTypeId wire_type() const override { return kWirePropose; }
  void encode(net::Writer& w) const override;
};

/// Phase 1 reply: everything this member knows about the multicast streams,
/// so the coordinator can compute the virtually synchronous cut.
struct FlushMsg final : net::Message {
  GroupId group;
  std::uint64_t proposal = 0;
  /// Highest contiguously delivered mcast seq per sender.
  std::map<net::NodeId, std::uint64_t> delivered;
  /// All unstable messages this member holds copies of: retained delivered
  /// messages, buffered out-of-order messages, and its own unstable sends.
  std::vector<DataMsgPtr> held;
  std::string type_name() const override { return "gcs.flush"; }
  net::WireTypeId wire_type() const override { return kWireFlush; }
  void encode(net::Writer& w) const override;
};

/// Phase 2: the coordinator installs the new view. Members first deliver
/// the resolution messages they are missing (up to deliver_up_to per
/// sender), then switch to the new view and unblock sends.
struct InstallMsg final : net::Message {
  GroupId group;
  std::uint64_t proposal = 0;
  View view;
  /// Virtually synchronous cut: deliver the mcast stream of each sender up
  /// to this seq before installing.
  std::map<net::NodeId, std::uint64_t> deliver_up_to;
  /// Copies of every unstable message known to any flushed member.
  std::vector<DataMsgPtr> resolution;
  std::string type_name() const override { return "gcs.install"; }
  net::WireTypeId wire_type() const override { return kWireInstall; }
  void encode(net::Writer& w) const override;
};

}  // namespace aqueduct::gcs
