#include "gcs/member.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::gcs {

Member::Instruments::Instruments(obs::MetricsRegistry& reg)
    : mcasts_sent(reg.counter("gcs.mcasts_sent")),
      p2p_sent(reg.counter("gcs.p2p_sent")),
      delivered(reg.counter("gcs.delivered")),
      duplicates_dropped(reg.counter("gcs.duplicates_dropped")),
      nacks_sent(reg.counter("gcs.nacks_sent")),
      retransmissions(reg.counter("gcs.retransmissions")),
      view_changes(reg.counter("gcs.view_changes")),
      flush_gaps(reg.counter("gcs.flush_gaps")) {}

Member::Member(runtime::Executor& exec, Directory& directory, Config config,
               GroupId group, net::NodeId self, SendFn send,
               obs::Observability* obs)
    : exec_(exec),
      directory_(directory),
      config_(config),
      group_(group),
      self_(self),
      send_(std::move(send)),
      metrics_((obs != nullptr ? *obs : obs::Observability::scratch()).metrics) {
  AQUEDUCT_CHECK(group_.valid());
  AQUEDUCT_CHECK(self_.valid());
  AQUEDUCT_CHECK(send_ != nullptr);
  heartbeat_task_ = std::make_unique<runtime::PeriodicTask>(
      exec_, config_.heartbeat_period, [this] { send_heartbeat(); });
  fd_task_ = std::make_unique<runtime::PeriodicTask>(
      exec_, config_.heartbeat_period, [this] { fd_tick(); });
}

Member::~Member() { stop(); }

void Member::stop() {
  if (stopped_) return;
  stopped_ = true;
  joined_ = false;
  heartbeat_task_->stop();
  fd_task_->stop();
  exec_.cancel(flush_timeout_);
  exec_.cancel(join_retry_);
}

// ---------------------------------------------------------------------------
// Join / leave
// ---------------------------------------------------------------------------

void Member::join() {
  AQUEDUCT_CHECK(!stopped_);
  AQUEDUCT_CHECK_MSG(!joined_ && !join_requested_, "join() called twice");
  const auto coordinator = directory_.claim_or_get(group_, self_);
  if (!coordinator) {
    bootstrap_singleton();
    return;
  }
  join_requested_ = true;
  send_join_request();
}

void Member::bootstrap_singleton() {
  view_ = View{group_, 1, {self_}};
  joined_ = true;
  last_proposal_seen_ = 1;
  last_heard_[self_] = exec_.now();
  heartbeat_task_->start();
  fd_task_->start();
  directory_.update(group_, self_);
  ++stats_.view_changes;
  metrics_.view_changes.inc();
  if (on_view_) on_view_(view_);
}

void Member::send_join_request() {
  if (stopped_ || joined_) return;
  const auto coordinator = directory_.lookup(group_);
  if (coordinator && *coordinator != self_) {
    auto msg = std::make_shared<JoinMsg>();
    msg->group = group_;
    send_(*coordinator, msg);
  }
  join_retry_ = exec_.after(config_.join_retry, [this] { send_join_request(); });
}

void Member::leave() {
  if (!joined_ || stopped_) return;
  leave_requested_ = true;
  const net::NodeId coordinator = acting_coordinator();
  if (coordinator == self_) {
    pending_leavers_.insert(self_);
    start_view_change();
    return;
  }
  auto msg = std::make_shared<LeaveMsg>();
  msg->group = group_;
  send_control(coordinator, msg);
}

// ---------------------------------------------------------------------------
// Application send path
// ---------------------------------------------------------------------------

void Member::multicast(net::MessagePtr payload) {
  AQUEDUCT_CHECK(payload != nullptr);
  AQUEDUCT_CHECK_MSG(joined_ || blocked_ || join_requested_,
                     "multicast before join");
  if (blocked_ || !joined_) {
    pending_sends_.push_back({true, net::NodeId{}, std::move(payload)});
    return;
  }
  auto msg = std::make_shared<DataMsg>();
  msg->group = group_;
  msg->is_mcast = true;
  msg->sender = self_;
  msg->seq = ++mcast_send_seq_;
  msg->view_sent = view_.id;
  msg->payload = std::move(payload);
  const DataMsgPtr frozen = msg;
  sent_mcast_.emplace(frozen->seq, frozen);
  ++stats_.mcasts_sent;
  metrics_.mcasts_sent.inc();
  transmit_mcast(frozen);
}

void Member::transmit_mcast(const DataMsgPtr& msg) {
  for (const net::NodeId dest : view_.members) {
    if (dest == self_) continue;
    send_(dest, msg);
  }
  // Self-delivery goes through the normal accept path, scheduled as an
  // immediate event so the caller's stack unwinds first.
  exec_.after(sim::Duration::zero(),
             [this, msg, alive = std::weak_ptr<const bool>(alive_)] {
               if (alive.expired() || stopped_) return;
               accept(msg->sender, msg);
             });
}

void Member::send_to(net::NodeId dest, net::MessagePtr payload) {
  AQUEDUCT_CHECK(payload != nullptr);
  AQUEDUCT_CHECK(dest.valid());
  AQUEDUCT_CHECK_MSG(joined_ || blocked_ || join_requested_,
                     "send_to before join");
  if (blocked_ || !joined_) {
    pending_sends_.push_back({false, dest, std::move(payload)});
    return;
  }
  send_p2p(dest, std::move(payload));
}

// Membership control traffic (propose/flush/install/suspect/leave between
// current members) travels over the same reliable FIFO p2p channels as
// application data — a lost control message would otherwise stall or
// corrupt a view change — but bypasses the flush send-block, which only
// gates *application* sends.
void Member::send_control(net::NodeId dest, net::MessagePtr payload) {
  if (dest == self_) return;  // callers handle self directly
  send_p2p(dest, std::move(payload));
}

void Member::send_p2p(net::NodeId dest, net::MessagePtr payload) {
  auto msg = std::make_shared<DataMsg>();
  msg->group = group_;
  msg->is_mcast = false;
  msg->sender = self_;
  msg->dest = dest;
  msg->seq = ++p2p_send_seq_[dest];
  msg->view_sent = view_.id;
  msg->payload = std::move(payload);
  const DataMsgPtr frozen = msg;
  sent_p2p_[dest].emplace(frozen->seq, frozen);
  ++stats_.p2p_sent;
  metrics_.p2p_sent.inc();
  if (dest == self_) {
    exec_.after(sim::Duration::zero(),
               [this, frozen, alive = std::weak_ptr<const bool>(alive_)] {
                 if (alive.expired() || stopped_) return;
                 accept(frozen->sender, frozen);
               });
  } else {
    send_(dest, frozen);
  }
}

void Member::send_to_set(const std::vector<net::NodeId>& dests,
                         const net::MessagePtr& payload) {
  for (const net::NodeId dest : dests) send_to(dest, payload);
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Member::handle(net::NodeId from, const net::MessagePtr& msg) {
  if (stopped_) return;
  last_heard_[from] = exec_.now();
  if (auto data = net::message_cast<DataMsg>(msg)) {
    handle_data(from, data);
  } else if (auto hb = net::message_cast<HeartbeatMsg>(msg)) {
    handle_heartbeat(from, *hb);
  } else if (auto nack = net::message_cast<NackMsg>(msg)) {
    handle_nack(from, *nack);
  } else if (net::message_cast<JoinMsg>(msg)) {
    handle_join(from);
  } else if (net::message_cast<LeaveMsg>(msg)) {
    handle_leave(from);
  } else if (auto sus = net::message_cast<SuspectMsg>(msg)) {
    handle_suspect(from, *sus);
  } else if (auto prop = net::message_cast<ProposeMsg>(msg)) {
    handle_propose(from, *prop);
  } else if (auto flush = net::message_cast<FlushMsg>(msg)) {
    handle_flush(from, flush);
  } else if (auto install = net::message_cast<InstallMsg>(msg)) {
    handle_install(install);
  } else {
    AQUEDUCT_CHECK_MSG(false, "unknown gcs message " << msg->type_name());
  }
}

void Member::handle_data(net::NodeId /*from*/,
                         const std::shared_ptr<const DataMsg>& msg) {
  accept(msg->sender, msg);
}

bool Member::dispatch_control(net::NodeId from, const net::MessagePtr& payload) {
  if (auto prop = net::message_cast<ProposeMsg>(payload)) {
    handle_propose(from, *prop);
  } else if (auto flush = net::message_cast<FlushMsg>(payload)) {
    handle_flush(from, flush);
  } else if (auto install = net::message_cast<InstallMsg>(payload)) {
    handle_install(install);
  } else if (auto sus = net::message_cast<SuspectMsg>(payload)) {
    handle_suspect(from, *sus);
  } else if (net::message_cast<LeaveMsg>(payload)) {
    handle_leave(from);
  } else {
    return false;  // application payload
  }
  return true;
}

void Member::accept(net::NodeId sender, const DataMsgPtr& msg) {
  InChannel& chan = msg->is_mcast ? mcast_in_[sender] : p2p_in_[sender];
  if (msg->seq <= chan.delivered || chan.buffered.contains(msg->seq)) {
    ++stats_.duplicates_dropped;
    metrics_.duplicates_dropped.inc();
    return;
  }
  chan.buffered.emplace(msg->seq, msg);
  if (msg->seq > chan.delivered + 1) {
    // Out-of-order arrival exposes a gap below it: ask the sender to
    // retransmit whatever is still missing after nack_delay.
    schedule_nack_check(sender, msg->is_mcast, msg->seq);
  }
  deliver_ready(sender, msg->is_mcast);
}

void Member::deliver_ready(net::NodeId sender, bool is_mcast) {
  // The channel is re-looked-up every iteration: delivering a message can
  // install a view (via dispatch_control) whose garbage collection erases
  // the sender's channel — a held reference would dangle.
  while (true) {
    auto& channels = is_mcast ? mcast_in_ : p2p_in_;
    auto cit = channels.find(sender);
    if (cit == channels.end()) return;  // sender departed mid-delivery
    InChannel& chan = cit->second;
    auto it = chan.buffered.find(chan.delivered + 1);
    if (it == chan.buffered.end()) break;
    DataMsgPtr msg = it->second;
    chan.buffered.erase(it);
    chan.delivered = msg->seq;
    if (is_mcast) {
      // Retain a copy for the flush protocol until the message is stable.
      chan.retained.emplace(msg->seq, msg);
      ack_matrix_[self_][sender] = chan.delivered;
    }
    if (dispatch_control(sender, msg->payload)) {
      if (stopped_) return;
      continue;
    }
    ++stats_.delivered;
    metrics_.delivered.inc();
    if (on_deliver_) on_deliver_(sender, msg->payload);
    if (stopped_) return;  // the callback may have crashed us
  }
}

void Member::schedule_nack_check(net::NodeId sender, bool is_mcast,
                                 std::uint64_t up_to) {
  InChannel& chan = is_mcast ? mcast_in_[sender] : p2p_in_[sender];
  if (chan.nack_pending_up_to && *chan.nack_pending_up_to >= up_to) return;
  chan.nack_pending_up_to = up_to;
  exec_.after(config_.nack_delay, [this, sender, is_mcast, up_to,
                                  alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired() || stopped_) return;
    InChannel& c = is_mcast ? mcast_in_[sender] : p2p_in_[sender];
    c.nack_pending_up_to.reset();
    // Determine the first gap below `up_to`.
    std::uint64_t first_missing = c.delivered + 1;
    while (first_missing <= up_to && c.buffered.contains(first_missing)) {
      ++first_missing;
    }
    if (first_missing > up_to) return;  // nothing missing any more
    auto nack = std::make_shared<NackMsg>();
    nack->group = group_;
    nack->is_mcast = is_mcast;
    nack->from_seq = first_missing;
    nack->to_seq = up_to;
    ++stats_.nacks_sent;
    metrics_.nacks_sent.inc();
    send_(sender, nack);
  });
}

void Member::handle_nack(net::NodeId from, const NackMsg& msg) {
  if (msg.is_mcast) {
    for (auto it = sent_mcast_.lower_bound(msg.from_seq);
         it != sent_mcast_.end() && it->first <= msg.to_seq; ++it) {
      ++stats_.retransmissions;
      metrics_.retransmissions.inc();
      send_(from, it->second);
    }
  } else {
    auto chan = sent_p2p_.find(from);
    if (chan == sent_p2p_.end()) return;
    for (auto it = chan->second.lower_bound(msg.from_seq);
         it != chan->second.end() && it->first <= msg.to_seq; ++it) {
      ++stats_.retransmissions;
      metrics_.retransmissions.inc();
      send_(from, it->second);
    }
  }
}

// ---------------------------------------------------------------------------
// Heartbeats, stability, failure detection
// ---------------------------------------------------------------------------

void Member::send_heartbeat() {
  if (!joined_ || stopped_) return;
  auto hb = std::make_shared<HeartbeatMsg>();
  hb->group = group_;
  hb->view = view_.id;
  hb->my_mcast_seq = mcast_send_seq_;
  for (const auto& [dest, seq] : p2p_send_seq_) hb->my_p2p_seq[dest] = seq;
  for (const auto& [sender, chan] : mcast_in_) hb->mcast_acks[sender] = chan.delivered;
  hb->mcast_acks[self_] =
      mcast_in_.contains(self_) ? mcast_in_[self_].delivered : 0;
  for (const auto& [sender, chan] : p2p_in_) hb->p2p_acks[sender] = chan.delivered;
  for (const net::NodeId dest : view_.members) {
    if (dest != self_) send_(dest, hb);
  }
}

void Member::handle_heartbeat(net::NodeId from, const HeartbeatMsg& msg) {
  // Stability bookkeeping.
  ack_matrix_[from] = msg.mcast_acks;
  collect_stability();

  // Garbage-collect the p2p send buffer towards `from`.
  if (auto ack = msg.p2p_acks.find(self_); ack != msg.p2p_acks.end()) {
    if (auto chan = sent_p2p_.find(from); chan != sent_p2p_.end()) {
      std::erase_if(chan->second,
                    [&](const auto& kv) { return kv.first <= ack->second; });
    }
  }

  // Loss detection on the mcast stream of `from`: anything between our
  // contiguous high-water mark and the sender's announced seq might be a
  // gap (trailing or interior) worth NACKing.
  {
    InChannel& chan = mcast_in_[from];
    if (msg.my_mcast_seq > chan.delivered) {
      schedule_nack_check(from, /*is_mcast=*/true, msg.my_mcast_seq);
    }
  }
  // Same for the from->me p2p channel.
  if (auto sent = msg.my_p2p_seq.find(self_); sent != msg.my_p2p_seq.end()) {
    InChannel& chan = p2p_in_[from];
    if (sent->second > chan.delivered) {
      schedule_nack_check(from, /*is_mcast=*/false, sent->second);
    }
  }
}

void Member::collect_stability() {
  if (!joined_) return;
  // A multicast (sender, seq) is stable once every current-view member has
  // delivered it; stable copies can be dropped from retained logs and from
  // the sender's own buffer.
  auto stable_for = [&](net::NodeId sender) {
    std::uint64_t stable = UINT64_MAX;
    for (const net::NodeId m : view_.members) {
      auto row = ack_matrix_.find(m);
      if (row == ack_matrix_.end()) return std::uint64_t{0};
      auto cell = row->second.find(sender);
      stable = std::min(stable, cell == row->second.end() ? 0 : cell->second);
    }
    return stable == UINT64_MAX ? 0 : stable;
  };
  for (auto& [sender, chan] : mcast_in_) {
    if (chan.retained.empty()) continue;
    const std::uint64_t stable = stable_for(sender);
    std::erase_if(chan.retained,
                  [&](const auto& kv) { return kv.first <= stable; });
  }
  if (!sent_mcast_.empty()) {
    const std::uint64_t stable = stable_for(self_);
    std::erase_if(sent_mcast_,
                  [&](const auto& kv) { return kv.first <= stable; });
  }
}

void Member::fd_tick() {
  if (!joined_ || stopped_) return;
  const sim::TimePoint now = exec_.now();
  for (const net::NodeId m : view_.members) {
    if (m == self_) continue;
    auto it = last_heard_.find(m);
    const sim::TimePoint heard = it == last_heard_.end() ? sim::kEpoch : it->second;
    if (now - heard > config_.suspect_timeout) suspect(m);
  }
}

void Member::suspect(net::NodeId node) {
  if (node == self_ || !view_.contains(node)) return;
  if (!suspects_.insert(node).second) return;  // already suspected
  const net::NodeId coordinator = acting_coordinator();
  if (coordinator == self_) {
    start_view_change();
  } else {
    auto msg = std::make_shared<SuspectMsg>();
    msg->group = group_;
    msg->suspect = node;
    send_control(coordinator, msg);
  }
}

net::NodeId Member::acting_coordinator() const {
  for (const net::NodeId m : view_.members) {
    if (!suspects_.contains(m)) return m;
  }
  return self_;
}

// ---------------------------------------------------------------------------
// Membership coordination (view changes with virtually synchronous flush)
// ---------------------------------------------------------------------------

void Member::handle_join(net::NodeId from) {
  if (!joined_) return;
  if (view_.contains(from)) {
    // Already admitted — its install was probably lost; re-send it.
    if (last_install_ && last_install_->view.id == view_.id) {
      send_(from, last_install_);
    }
    return;
  }
  pending_joiners_.insert(from);
  if (acting_coordinator() == self_) start_view_change();
}

void Member::handle_leave(net::NodeId from) {
  if (!joined_ || !view_.contains(from)) return;
  pending_leavers_.insert(from);
  if (acting_coordinator() == self_) start_view_change();
}

void Member::handle_suspect(net::NodeId /*from*/, const SuspectMsg& msg) {
  if (!joined_) return;
  suspect(msg.suspect);
}

void Member::start_view_change() {
  if (!joined_ || stopped_) return;
  if (acting_coordinator() != self_) return;
  if (coordinating_) {
    rerun_change_after_install_ = true;
    return;
  }

  // New membership: survivors in old order, then joiners in id order.
  std::vector<net::NodeId> members;
  for (const net::NodeId m : view_.members) {
    if (!suspects_.contains(m) && !pending_leavers_.contains(m)) {
      members.push_back(m);
    }
  }
  std::vector<net::NodeId> joiners(pending_joiners_.begin(), pending_joiners_.end());
  for (const net::NodeId j : joiners) {
    if (std::find(members.begin(), members.end(), j) == members.end()) {
      members.push_back(j);
    }
  }
  if (members == view_.members) {
    pending_joiners_.clear();
    return;  // nothing to change
  }

  my_proposal_ = std::max(last_proposal_seen_, view_.id) + 1;
  last_proposal_seen_ = my_proposal_;
  coordinating_ = true;
  proposed_members_ = std::move(members);
  flush_replies_.clear();
  flush_waiting_.clear();
  for (const net::NodeId m : view_.members) {
    if (!suspects_.contains(m) && m != self_) flush_waiting_.insert(m);
  }

  // Block and flush locally.
  blocked_ = true;
  flush_replies_[self_] = build_flush(my_proposal_);

  auto propose = std::make_shared<ProposeMsg>();
  propose->group = group_;
  propose->proposal = my_proposal_;
  propose->members = proposed_members_;
  for (const net::NodeId m : flush_waiting_) send_control(m, propose);

  exec_.cancel(flush_timeout_);
  flush_timeout_ = exec_.after(config_.flush_timeout, [this] {
    if (!coordinating_ || flush_waiting_.empty()) return;
    // Slow round (e.g. repair in progress): re-propose with a fresh
    // proposal number. Genuinely crashed members are removed when the
    // failure detector suspects them, not here.
    coordinating_ = false;
    start_view_change();
  });

  if (flush_waiting_.empty()) finish_flush();
}

std::shared_ptr<FlushMsg> Member::build_flush(std::uint64_t proposal) const {
  auto flush = std::make_shared<FlushMsg>();
  flush->group = group_;
  flush->proposal = proposal;
  for (const auto& [sender, chan] : mcast_in_) {
    flush->delivered[sender] = chan.delivered;
    for (const auto& [seq, msg] : chan.retained) flush->held.push_back(msg);
    for (const auto& [seq, msg] : chan.buffered) flush->held.push_back(msg);
  }
  for (const auto& [seq, msg] : sent_mcast_) flush->held.push_back(msg);
  return flush;
}

void Member::handle_propose(net::NodeId from, const ProposeMsg& msg) {
  if (!joined_) return;
  if (msg.proposal < last_proposal_seen_) return;  // stale coordinator
  last_proposal_seen_ = msg.proposal;
  blocked_ = true;
  send_control(from, build_flush(msg.proposal));
}

void Member::handle_flush(net::NodeId from,
                          const std::shared_ptr<const FlushMsg>& msg) {
  if (!coordinating_ || msg->proposal != my_proposal_) return;
  flush_replies_[from] = msg;
  flush_waiting_.erase(from);
  if (flush_waiting_.empty()) finish_flush();
}

void Member::finish_flush() {
  exec_.cancel(flush_timeout_);

  auto install = std::make_shared<InstallMsg>();
  install->group = group_;
  install->proposal = my_proposal_;
  install->view = View{group_, my_proposal_, proposed_members_};

  std::map<std::pair<net::NodeId, std::uint64_t>, DataMsgPtr> resolution;
  for (const auto& [member, flush] : flush_replies_) {
    for (const auto& [sender, delivered] : flush->delivered) {
      auto& target = install->deliver_up_to[sender];
      target = std::max(target, delivered);
    }
    for (const DataMsgPtr& msg : flush->held) {
      auto& target = install->deliver_up_to[msg->sender];
      target = std::max(target, msg->seq);
      resolution.try_emplace({msg->sender, msg->seq}, msg);
    }
  }
  install->resolution.reserve(resolution.size());
  for (auto& [key, msg] : resolution) install->resolution.push_back(std::move(msg));

  // Everyone that flushed (including leavers) plus joiners learns the view.
  // Flushed members have live reliable channels; joiners do not yet, so
  // they get a raw send (re-repaired by their join-retry loop if lost).
  std::set<net::NodeId> recipients(proposed_members_.begin(), proposed_members_.end());
  for (const auto& [member, flush] : flush_replies_) recipients.insert(member);
  for (const net::NodeId m : recipients) {
    if (m == self_) continue;
    if (view_.contains(m)) {
      send_control(m, install);
    } else {
      send_(m, install);
    }
  }
  // Suspected old-view members excluded from the new view get a raw,
  // best-effort copy too: a *live* evictee (gray failure — slow or
  // partially partitioned, not crashed) would otherwise never learn it was
  // ejected and would run on forever with a dead membership. Raw because
  // its reliable channels die with the view; loss is acceptable — a
  // genuinely crashed or fully partitioned evictee is unreachable anyway.
  for (const net::NodeId m : view_.members) {
    if (m != self_ && !recipients.contains(m) && !install->view.contains(m)) {
      send_(m, install);
    }
  }
  last_install_ = install;
  coordinating_ = false;
  handle_install(install);

  if (rerun_change_after_install_) {
    rerun_change_after_install_ = false;
    start_view_change();
  }
}

void Member::handle_install(const std::shared_ptr<const InstallMsg>& msg) {
  if (stopped_) return;
  if (msg->view.id <= view_.id) return;  // stale or duplicate install
  install_view(msg);
}

void Member::install_view(const std::shared_ptr<const InstallMsg>& msg) {
  const bool fresh_joiner = !joined_;

  if (fresh_joiner) {
    // A joiner has no history: it starts at the cut without delivering the
    // old view's messages (application-level state transfer brings it up to
    // date — see the replication layer).
    for (const auto& [sender, target] : msg->deliver_up_to) {
      InChannel& chan = mcast_in_[sender];
      chan.delivered = std::max(chan.delivered, target);
      std::erase_if(chan.buffered,
                    [&](const auto& kv) { return kv.first <= chan.delivered; });
      ack_matrix_[self_][sender] = chan.delivered;
    }
    // Messages multicast in the *new* view can race ahead of this install;
    // drain anything that became contiguous once the baseline was set.
    // (Collect the senders first: delivery can mutate the channel map.)
    std::vector<net::NodeId> senders;
    senders.reserve(mcast_in_.size());
    for (const auto& [sender, chan] : mcast_in_) senders.push_back(sender);
    for (const net::NodeId sender : senders) {
      deliver_ready(sender, /*is_mcast=*/true);
      if (stopped_) return;
    }
  } else {
    // Surviving member: complete delivery up to the agreed cut.
    for (const DataMsgPtr& m : msg->resolution) {
      InChannel& chan = mcast_in_[m->sender];
      if (m->seq > chan.delivered && !chan.buffered.contains(m->seq)) {
        chan.buffered.emplace(m->seq, m);
      }
    }
    for (const auto& [sender, target] : msg->deliver_up_to) {
      mcast_in_[sender];  // the cut can reference senders we never heard
      deliver_ready(sender, /*is_mcast=*/true);
      if (stopped_) return;
      while (true) {
        auto cit = mcast_in_.find(sender);
        if (cit == mcast_in_.end() || cit->second.delivered >= target) break;
        // Gap that no survivor can fill: the only holders crashed. Count it
        // and move on (allowed for a crashed sender's unstable messages).
        ++stats_.flush_gaps;
        metrics_.flush_gaps.inc();
        cit->second.delivered += 1;
        ack_matrix_[self_][sender] = cit->second.delivered;
        deliver_ready(sender, /*is_mcast=*/true);
        if (stopped_) return;
      }
    }
  }

  view_ = msg->view;
  last_proposal_seen_ = std::max(last_proposal_seen_, view_.id);
  blocked_ = false;
  ++stats_.view_changes;
  metrics_.view_changes.inc();

  if (!view_.contains(self_)) {
    // We left (or were excluded): shut down cleanly. An exclusion install
    // only reaches a member that is still running and reachable — i.e. the
    // group's failure detector ejected a live process (gray failure: slow
    // or partially partitioned); a fully partitioned member never receives
    // it. Surface that to the owner so it can reincarnate rather than run
    // on forever with a dead membership. Deferred: the callback typically
    // destroys this member.
    const bool evicted = !leave_requested_;
    stop();
    if (evicted && on_eviction_) {
      exec_.post([cb = on_eviction_] { cb(); });
    }
    return;
  }

  joined_ = true;
  for (auto it = suspects_.begin(); it != suspects_.end();) {
    it = view_.contains(*it) ? std::next(it) : suspects_.erase(it);
  }
  std::erase_if(pending_joiners_,
                [&](net::NodeId n) { return view_.contains(n); });
  std::erase_if(pending_leavers_,
                [&](net::NodeId n) { return !view_.contains(n); });
  std::erase_if(ack_matrix_, [&](const auto& kv) {
    return kv.first != self_ && !view_.contains(kv.first);
  });
  std::erase_if(sent_p2p_,
                [&](const auto& kv) { return !view_.contains(kv.first); });
  // Garbage-collect per-sender state of departed members. NodeIds are
  // never reused (a recovered process reincarnates under a fresh id), so
  // an ex-member's channels and failure-detector timestamps can never be
  // consulted again — without this, every crash/leave leaks its channel
  // buffers and `last_heard_` entry for the lifetime of the member.
  std::erase_if(last_heard_,
                [&](const auto& kv) { return !view_.contains(kv.first); });
  std::erase_if(mcast_in_,
                [&](const auto& kv) { return !view_.contains(kv.first); });
  std::erase_if(p2p_in_,
                [&](const auto& kv) { return !view_.contains(kv.first); });
  for (const net::NodeId m : view_.members) last_heard_[m] = exec_.now();

  heartbeat_task_->start();
  fd_task_->start();
  exec_.cancel(join_retry_);
  if (is_leader()) directory_.update(group_, self_);

  if (on_view_) on_view_(view_);

  // Replay sends queued during the flush, in order.
  std::deque<PendingSend> pending;
  pending.swap(pending_sends_);
  for (PendingSend& p : pending) {
    if (p.is_mcast) {
      multicast(std::move(p.payload));
    } else {
      send_to(p.dest, std::move(p.payload));
    }
  }

  // Membership work that accumulated during the change.
  if (is_leader() &&
      (!pending_joiners_.empty() || !pending_leavers_.empty() ||
       std::any_of(view_.members.begin(), view_.members.end(),
                   [&](net::NodeId m) { return suspects_.contains(m); }))) {
    start_view_change();
  }
}

}  // namespace aqueduct::gcs
