// Bootstrap name service mapping groups to their current coordinator.
//
// Stands in for Ensemble's process discovery: a joining process needs some
// way to find an existing member of the group. The directory is consulted
// only at join time (and join retry); all subsequent protocol state lives
// in the members themselves.
#pragma once

#include <optional>
#include <unordered_map>

#include "gcs/types.hpp"
#include "net/node.hpp"

namespace aqueduct::gcs {

class Directory {
 public:
  /// Atomically: if the group has no registered coordinator, claim it for
  /// `node` and return nullopt (caller bootstraps a singleton view);
  /// otherwise return the current coordinator to send a JoinMsg to.
  std::optional<net::NodeId> claim_or_get(GroupId group, net::NodeId node) {
    auto [it, inserted] = coordinator_.try_emplace(group, node);
    if (inserted) return std::nullopt;
    return it->second;
  }

  /// Called by a coordinator when it installs a view, and by failover
  /// coordinators taking over a group.
  void update(GroupId group, net::NodeId coordinator) {
    coordinator_[group] = coordinator;
  }

  /// Drops the entry for `group` iff it still names `node`. Used when a
  /// group's *last* member crashed while registered as coordinator: the
  /// stale entry would otherwise point joiners at a dead process forever.
  /// Must not be called while other members of the group are alive — their
  /// failover coordinator updates the entry itself, and erasing it under
  /// them would let a joiner bootstrap a second, disjoint view.
  void forget_if(GroupId group, net::NodeId node) {
    auto it = coordinator_.find(group);
    if (it != coordinator_.end() && it->second == node) coordinator_.erase(it);
  }

  std::optional<net::NodeId> lookup(GroupId group) const {
    auto it = coordinator_.find(group);
    if (it == coordinator_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::unordered_map<GroupId, net::NodeId> coordinator_;
};

}  // namespace aqueduct::gcs
