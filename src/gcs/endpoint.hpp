// Per-process attachment point to the group-communication substrate.
//
// One Endpoint per process. It owns the process's network identity,
// demultiplexes incoming messages to the process's group Members, and
// models fail-stop crashes.
#pragma once

#include <memory>
#include <unordered_map>

#include "gcs/config.hpp"
#include "gcs/directory.hpp"
#include "gcs/member.hpp"
#include "gcs/types.hpp"
#include "net/transport.hpp"
#include "runtime/executor.hpp"

namespace aqueduct::gcs {

class Endpoint final : public net::Endpoint {
 public:
  /// Attaches a new process to `transport`. All processes of one simulation
  /// share the same Directory (the bootstrap name service).
  Endpoint(runtime::Executor& exec, net::Transport& transport, Directory& directory,
           Config config = {});
  ~Endpoint() override;

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// The member object for `group`, creating it on first use. Call
  /// Member::join() to actually enter the group.
  Member& member(GroupId group);

  /// True if this process participates in `group` (join() was called).
  bool has_member(GroupId group) const { return members_.contains(group); }

  /// Fail-stop crash: detaches from the transport and stops all members.
  /// A crashed endpoint never resumes its old identity — recovery goes
  /// through reincarnate(), which makes it a *new* process.
  void crash();

  /// Rebirth after crash(): discards all group members of the dead
  /// incarnation, re-attaches to the transport under a fresh NodeId, and
  /// bumps the incarnation counter. The reborn process shares nothing with
  /// its predecessor but the Endpoint object itself — it must join its
  /// groups again, and the GCS garbage-collects the dead incarnation's
  /// heartbeat/suspect state once views merge. Returns the new id.
  ///
  /// Any raw Member pointers taken before the crash dangle after this
  /// call; destroy the protocol objects built on this endpoint first.
  net::NodeId reincarnate();

  bool crashed() const { return crashed_; }
  net::NodeId id() const { return id_; }
  /// Starts at 0; incremented by each reincarnate(). Together with id()
  /// this tags the incarnation (NodeIds are never reused, so id() alone is
  /// already unique per incarnation — the counter is for observability).
  std::uint32_t incarnation() const { return incarnation_; }
  runtime::Executor& executor() { return exec_; }
  net::Transport& transport() { return transport_; }
  /// The simulation-wide observability context (owned by the transport).
  obs::Observability& observability() { return transport_.observability(); }

  // net::Endpoint
  void on_message(net::NodeId from, net::MessagePtr msg) override;

 private:
  runtime::Executor& exec_;
  net::Transport& transport_;
  Directory& directory_;
  Config config_;
  net::NodeId id_;
  bool crashed_ = false;
  std::uint32_t incarnation_ = 0;
  std::unordered_map<GroupId, std::unique_ptr<Member>> members_;
};

}  // namespace aqueduct::gcs
