// Per-(process, group) protocol state machine.
//
// A Member provides, within one group, the guarantees AQuA obtains from
// Maestro/Ensemble (paper Section 3):
//   * reliable FIFO multicast: per-sender sequence numbers that persist
//     across views, receiver-side reordering, NACK-driven retransmission,
//     and stability-based garbage collection;
//   * reliable FIFO point-to-point sends within the group (used for
//     client->replica requests and replica->client replies);
//   * virtual synchrony: a coordinator-driven two-phase flush on every
//     membership change agrees on a delivery cut, redistributes unstable
//     messages, and installs the new view at all surviving members;
//   * rank-based leader election: the leader is the first member of the
//     view, and the first non-suspected member acts as view-change
//     coordinator, so leadership fails over automatically;
//   * failure detection by heartbeat timeout.
//
// Assumed failure model: fail-stop crashes (no Byzantine behaviour); the
// network may delay, reorder, and drop messages.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "gcs/config.hpp"
#include "gcs/directory.hpp"
#include "gcs/messages.hpp"
#include "gcs/types.hpp"
#include "net/message.hpp"
#include "net/node.hpp"
#include "obs/observability.hpp"
#include "runtime/executor.hpp"
#include "runtime/periodic_task.hpp"

namespace aqueduct::gcs {

/// Protocol statistics used by tests and traces.
struct MemberStats {
  std::uint64_t mcasts_sent = 0;
  std::uint64_t p2p_sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t flush_gaps = 0;  // messages lost despite flush (crash loss)
};

class Member {
 public:
  /// `send` transmits a raw message to a peer (provided by the Endpoint).
  using SendFn = std::function<void(net::NodeId to, net::MessagePtr msg)>;
  using DeliverFn =
      std::function<void(net::NodeId from, const net::MessagePtr& payload)>;
  using ViewFn = std::function<void(const View& view)>;
  using EvictionFn = std::function<void()>;

  /// `obs` is the simulation's observability context (aggregate "gcs.*"
  /// metrics are mirrored into its registry); pass nullptr to fall back to
  /// the process-wide scratch context (isolated unit tests).
  Member(runtime::Executor& exec, Directory& directory, Config config,
         GroupId group, net::NodeId self, SendFn send,
         obs::Observability* obs = nullptr);
  ~Member();

  Member(const Member&) = delete;
  Member& operator=(const Member&) = delete;

  /// Registers the application delivery callback (FIFO per sender).
  void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }

  /// Registers the view-change callback. Fired on every installed view,
  /// including the first one after join().
  void set_on_view(ViewFn fn) { on_view_ = std::move(fn); }

  /// Registers the eviction callback: fired (deferred, via the executor)
  /// when a view that *excludes* this still-running member is installed and
  /// leave() was never called — i.e. the group's failure detector ejected a
  /// live process it mistook for dead. Only reachable over intact links, so
  /// it signals a gray failure (slow or partially partitioned member), not
  /// a crash: a fully partitioned member never receives the install at all.
  /// The member has already stop()ped when the callback runs; the owner
  /// typically treats it as a crash and reincarnates the process.
  void set_on_eviction(EvictionFn fn) { on_eviction_ = std::move(fn); }

  /// Starts the join protocol. If the group is empty this member bootstraps
  /// a singleton view immediately; otherwise a view including this member
  /// is installed asynchronously.
  void join();

  /// Gracefully leaves the group (the coordinator excludes us from the next
  /// view). Local delivery stops immediately.
  void leave();

  /// Stops all activity (fail-stop crash or teardown). Idempotent.
  void stop();

  /// Reliable FIFO multicast of `payload` to the current view (including
  /// self-delivery). Requires an installed view; sends issued during a
  /// flush are queued and transmitted in order in the next view.
  void multicast(net::MessagePtr payload);

  /// Reliable FIFO point-to-point send to a group member.
  void send_to(net::NodeId dest, net::MessagePtr payload);

  /// send_to() each destination.
  void send_to_set(const std::vector<net::NodeId>& dests, const net::MessagePtr& payload);

  /// Dispatches a raw network message belonging to this group (called by
  /// the Endpoint demultiplexer).
  void handle(net::NodeId from, const net::MessagePtr& msg);

  bool joined() const { return joined_; }
  const View& view() const { return view_; }
  net::NodeId self() const { return self_; }
  GroupId group() const { return group_; }
  bool is_leader() const { return joined_ && view_.leader() == self_; }
  const MemberStats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  // ---- receive-side channel state, one per (sender, stream) ----
  struct InChannel {
    std::uint64_t delivered = 0;  // contiguous high-water mark
    std::map<std::uint64_t, DataMsgPtr> buffered;  // out-of-order holdbacks
    // Delivered-but-unstable copies kept for the flush protocol
    // (mcast stream only).
    std::map<std::uint64_t, DataMsgPtr> retained;
    std::optional<std::uint64_t> nack_pending_up_to;
  };

  // ---- message handlers ----
  void handle_data(net::NodeId from, const std::shared_ptr<const DataMsg>& msg);
  /// Dispatches membership control messages carried over the reliable p2p
  /// channels; returns false for application payloads.
  bool dispatch_control(net::NodeId from, const net::MessagePtr& payload);
  void handle_heartbeat(net::NodeId from, const HeartbeatMsg& msg);
  void handle_nack(net::NodeId from, const NackMsg& msg);
  void handle_join(net::NodeId from);
  void handle_leave(net::NodeId from);
  void handle_suspect(net::NodeId from, const SuspectMsg& msg);
  void handle_propose(net::NodeId from, const ProposeMsg& msg);
  void handle_flush(net::NodeId from, const std::shared_ptr<const FlushMsg>& msg);
  void handle_install(const std::shared_ptr<const InstallMsg>& msg);

  // ---- data path ----
  void send_p2p(net::NodeId dest, net::MessagePtr payload);
  void send_control(net::NodeId dest, net::MessagePtr payload);
  /// Delivers every contiguous buffered message on the sender's channel.
  /// Looks the channel up afresh each iteration — a delivered control
  /// message can install a view whose GC erases the channel.
  void deliver_ready(net::NodeId sender, bool is_mcast);
  void accept(net::NodeId sender, const DataMsgPtr& msg);
  void schedule_nack_check(net::NodeId sender, bool is_mcast, std::uint64_t up_to);
  void transmit_mcast(const DataMsgPtr& msg);
  void collect_stability();

  // ---- membership / flush ----
  void bootstrap_singleton();
  void send_join_request();
  void start_view_change();
  void finish_flush();
  void install_view(const std::shared_ptr<const InstallMsg>& msg);
  std::shared_ptr<FlushMsg> build_flush(std::uint64_t proposal) const;
  void suspect(net::NodeId node);
  net::NodeId acting_coordinator() const;
  void fd_tick();
  void send_heartbeat();

  runtime::Executor& exec_;
  Directory& directory_;
  Config config_;
  GroupId group_;
  net::NodeId self_;
  SendFn send_;
  DeliverFn on_deliver_;
  ViewFn on_view_;
  EvictionFn on_eviction_;

  /// Liveness token captured (weakly) by self-scheduled simulator events so
  /// they become no-ops if the member is destroyed before they fire — a
  /// reincarnated endpoint destroys the dead incarnation's members while
  /// such events may still be queued.
  std::shared_ptr<const bool> alive_ = std::make_shared<bool>(true);

  bool stopped_ = false;
  bool joined_ = false;
  bool join_requested_ = false;
  bool leave_requested_ = false;  // distinguishes leave() from eviction
  bool blocked_ = false;
  View view_;

  // send side
  std::uint64_t mcast_send_seq_ = 0;
  std::map<std::uint64_t, DataMsgPtr> sent_mcast_;  // unstable own multicasts
  std::map<net::NodeId, std::uint64_t> p2p_send_seq_;
  std::map<net::NodeId, std::map<std::uint64_t, DataMsgPtr>> sent_p2p_;
  struct PendingSend {
    bool is_mcast;
    net::NodeId dest;
    net::MessagePtr payload;
  };
  std::deque<PendingSend> pending_sends_;  // queued while blocked

  // receive side
  std::map<net::NodeId, InChannel> mcast_in_;
  std::map<net::NodeId, InChannel> p2p_in_;

  // stability: member -> (sender -> cumulative mcast ack)
  std::map<net::NodeId, std::map<net::NodeId, std::uint64_t>> ack_matrix_;

  // failure detection
  std::map<net::NodeId, sim::TimePoint> last_heard_;
  std::set<net::NodeId> suspects_;

  // membership coordination
  std::uint64_t last_proposal_seen_ = 0;
  std::set<net::NodeId> pending_joiners_;
  std::set<net::NodeId> pending_leavers_;
  bool coordinating_ = false;
  bool rerun_change_after_install_ = false;
  std::uint64_t my_proposal_ = 0;
  std::vector<net::NodeId> proposed_members_;
  std::set<net::NodeId> flush_waiting_;
  std::map<net::NodeId, std::shared_ptr<const FlushMsg>> flush_replies_;
  sim::EventHandle flush_timeout_;
  sim::EventHandle join_retry_;
  std::shared_ptr<const InstallMsg> last_install_;  // for lost-install repair

  std::unique_ptr<runtime::PeriodicTask> heartbeat_task_;
  std::unique_ptr<runtime::PeriodicTask> fd_task_;

  /// Per-member view (the `stats()` accessor); the same increments are
  /// mirrored into the registry-wide "gcs.*" aggregates below.
  MemberStats stats_;
  struct Instruments {
    explicit Instruments(obs::MetricsRegistry& reg);
    obs::Counter& mcasts_sent;
    obs::Counter& p2p_sent;
    obs::Counter& delivered;
    obs::Counter& duplicates_dropped;
    obs::Counter& nacks_sent;
    obs::Counter& retransmissions;
    obs::Counter& view_changes;
    obs::Counter& flush_gaps;
  };
  Instruments metrics_;
};

}  // namespace aqueduct::gcs
