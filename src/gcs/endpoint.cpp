#include "gcs/endpoint.hpp"

#include <utility>

#include "gcs/messages.hpp"
#include "sim/check.hpp"

namespace aqueduct::gcs {

namespace {

/// Every gcs wire message carries its GroupId; extract it for demux.
GroupId group_of(const net::MessagePtr& msg) {
  if (auto m = net::message_cast<DataMsg>(msg)) return m->group;
  if (auto m = net::message_cast<HeartbeatMsg>(msg)) return m->group;
  if (auto m = net::message_cast<NackMsg>(msg)) return m->group;
  if (auto m = net::message_cast<JoinMsg>(msg)) return m->group;
  if (auto m = net::message_cast<LeaveMsg>(msg)) return m->group;
  if (auto m = net::message_cast<SuspectMsg>(msg)) return m->group;
  if (auto m = net::message_cast<ProposeMsg>(msg)) return m->group;
  if (auto m = net::message_cast<FlushMsg>(msg)) return m->group;
  if (auto m = net::message_cast<InstallMsg>(msg)) return m->group;
  return GroupId{};
}

}  // namespace

Endpoint::Endpoint(runtime::Executor& exec, net::Transport& transport,
                   Directory& directory, Config config)
    : exec_(exec), transport_(transport), directory_(directory), config_(config) {
  id_ = transport_.attach(*this);
}

Endpoint::~Endpoint() {
  if (!crashed_) transport_.detach(id_);
}

Member& Endpoint::member(GroupId group) {
  // Allowed after crash() for post-mortem inspection: the member is
  // stopped, and the send callback below drops everything once crashed.
  auto it = members_.find(group);
  if (it == members_.end()) {
    auto member = std::make_unique<Member>(
        exec_, directory_, config_, group, id_,
        [this](net::NodeId to, net::MessagePtr msg) {
          if (!crashed_) transport_.send(id_, to, std::move(msg));
        },
        &transport_.observability());
    it = members_.emplace(group, std::move(member)).first;
  }
  return *it->second;
}

void Endpoint::crash() {
  if (crashed_) return;
  crashed_ = true;
  transport_.detach(id_);
  for (auto& [group, member] : members_) member->stop();
}

net::NodeId Endpoint::reincarnate() {
  AQUEDUCT_CHECK_MSG(crashed_, "reincarnate() requires a crashed endpoint");
  // The dead incarnation's members are unreachable from here on: their
  // PeriodicTasks are already stopped and their send callbacks would use
  // the *new* id, so they must not survive into the new incarnation.
  members_.clear();
  id_ = transport_.attach(*this);
  crashed_ = false;
  ++incarnation_;
  return id_;
}

void Endpoint::on_message(net::NodeId from, net::MessagePtr msg) {
  if (crashed_) return;
  const GroupId group = group_of(msg);
  AQUEDUCT_CHECK_MSG(group.valid(), "non-gcs message on gcs endpoint");
  auto it = members_.find(group);
  if (it == members_.end()) return;  // no member for this group (e.g. left)
  it->second->handle(from, msg);
}

}  // namespace aqueduct::gcs
