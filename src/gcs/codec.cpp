// Wire encode/decode of the gcs messages (see messages.hpp for the id
// block). Each encode() writes fields in declaration order; the decoders
// read them back symmetrically, so encode(decode(bytes)) == bytes.
#include <memory>

#include "gcs/messages.hpp"

namespace aqueduct::gcs {

namespace {

using net::Reader;
using net::Writer;

void encode_group(Writer& w, GroupId g) { w.u32(g.value()); }
GroupId decode_group(Reader& r) { return GroupId{r.u32()}; }

void encode_view(Writer& w, const View& v) {
  encode_group(w, v.group);
  w.u64(v.id);
  net::encode_node_vector(w, v.members);
}

View decode_view(Reader& r) {
  View v;
  v.group = decode_group(r);
  v.id = r.u64();
  v.members = net::decode_node_vector(r);
  return v;
}

// Held/resolution entries are complete DataMsg frames, so their nested
// payloads resolve through the registry like any other message.
void encode_data_vector(Writer& w, const std::vector<DataMsgPtr>& msgs) {
  w.u32(static_cast<std::uint32_t>(msgs.size()));
  for (const DataMsgPtr& m : msgs) net::encode_frame(*m, w);
}

std::vector<DataMsgPtr> decode_data_vector(Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<DataMsgPtr> msgs;
  msgs.reserve(std::min<std::size_t>(n, 1024));
  for (std::uint32_t i = 0; i < n; ++i) {
    net::MessagePtr m = net::decode_frame(r);
    DataMsgPtr data = net::message_cast<DataMsg>(m);
    if (!data) throw net::CodecError("flush/install entry is not gcs.data");
    msgs.push_back(std::move(data));
  }
  return msgs;
}

net::MessagePtr decode_data(Reader& r) {
  auto m = std::make_shared<DataMsg>();
  m->group = decode_group(r);
  m->is_mcast = r.boolean();
  m->sender = r.node();
  m->dest = r.node();
  m->seq = r.u64();
  m->view_sent = r.u64();
  m->payload = net::decode_nested(r);
  return m;
}

net::MessagePtr decode_heartbeat(Reader& r) {
  auto m = std::make_shared<HeartbeatMsg>();
  m->group = decode_group(r);
  m->view = r.u64();
  m->my_mcast_seq = r.u64();
  m->my_p2p_seq = net::decode_node_u64_map(r);
  m->mcast_acks = net::decode_node_u64_map(r);
  m->p2p_acks = net::decode_node_u64_map(r);
  return m;
}

net::MessagePtr decode_nack(Reader& r) {
  auto m = std::make_shared<NackMsg>();
  m->group = decode_group(r);
  m->is_mcast = r.boolean();
  m->from_seq = r.u64();
  m->to_seq = r.u64();
  return m;
}

net::MessagePtr decode_join(Reader& r) {
  auto m = std::make_shared<JoinMsg>();
  m->group = decode_group(r);
  return m;
}

net::MessagePtr decode_leave(Reader& r) {
  auto m = std::make_shared<LeaveMsg>();
  m->group = decode_group(r);
  return m;
}

net::MessagePtr decode_suspect(Reader& r) {
  auto m = std::make_shared<SuspectMsg>();
  m->group = decode_group(r);
  m->suspect = r.node();
  return m;
}

net::MessagePtr decode_propose(Reader& r) {
  auto m = std::make_shared<ProposeMsg>();
  m->group = decode_group(r);
  m->proposal = r.u64();
  m->members = net::decode_node_vector(r);
  return m;
}

net::MessagePtr decode_flush(Reader& r) {
  auto m = std::make_shared<FlushMsg>();
  m->group = decode_group(r);
  m->proposal = r.u64();
  m->delivered = net::decode_node_u64_map(r);
  m->held = decode_data_vector(r);
  return m;
}

net::MessagePtr decode_install(Reader& r) {
  auto m = std::make_shared<InstallMsg>();
  m->group = decode_group(r);
  m->proposal = r.u64();
  m->view = decode_view(r);
  m->deliver_up_to = net::decode_node_u64_map(r);
  m->resolution = decode_data_vector(r);
  return m;
}

}  // namespace

void DataMsg::encode(Writer& w) const {
  encode_group(w, group);
  w.boolean(is_mcast);
  w.node(sender);
  w.node(dest);
  w.u64(seq);
  w.u64(view_sent);
  net::encode_nested(w, payload);
}

void HeartbeatMsg::encode(Writer& w) const {
  encode_group(w, group);
  w.u64(view);
  w.u64(my_mcast_seq);
  net::encode_node_u64_map(w, my_p2p_seq);
  net::encode_node_u64_map(w, mcast_acks);
  net::encode_node_u64_map(w, p2p_acks);
}

void NackMsg::encode(Writer& w) const {
  encode_group(w, group);
  w.boolean(is_mcast);
  w.u64(from_seq);
  w.u64(to_seq);
}

void JoinMsg::encode(Writer& w) const { encode_group(w, group); }

void LeaveMsg::encode(Writer& w) const { encode_group(w, group); }

void SuspectMsg::encode(Writer& w) const {
  encode_group(w, group);
  w.node(suspect);
}

void ProposeMsg::encode(Writer& w) const {
  encode_group(w, group);
  w.u64(proposal);
  net::encode_node_vector(w, members);
}

void FlushMsg::encode(Writer& w) const {
  encode_group(w, group);
  w.u64(proposal);
  net::encode_node_u64_map(w, delivered);
  encode_data_vector(w, held);
}

void InstallMsg::encode(Writer& w) const {
  encode_group(w, group);
  w.u64(proposal);
  encode_view(w, view);
  net::encode_node_u64_map(w, deliver_up_to);
  encode_data_vector(w, resolution);
}

void register_wire_codecs() {
  auto& reg = net::CodecRegistry::global();
  reg.add(kWireData, "gcs.data", decode_data);
  reg.add(kWireHeartbeat, "gcs.heartbeat", decode_heartbeat);
  reg.add(kWireNack, "gcs.nack", decode_nack);
  reg.add(kWireJoin, "gcs.join", decode_join);
  reg.add(kWireLeave, "gcs.leave", decode_leave);
  reg.add(kWireSuspect, "gcs.suspect", decode_suspect);
  reg.add(kWirePropose, "gcs.propose", decode_propose);
  reg.add(kWireFlush, "gcs.flush", decode_flush);
  reg.add(kWireInstall, "gcs.install", decode_install);
}

}  // namespace aqueduct::gcs
