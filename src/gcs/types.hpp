// Group-communication identities and views.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "net/node.hpp"
#include "sim/check.hpp"

namespace aqueduct::gcs {

/// Identifies a process group (e.g. the primary replication group).
class GroupId {
 public:
  constexpr GroupId() = default;
  constexpr explicit GroupId(std::uint32_t value) : value_(value) {}
  constexpr std::uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }
  friend constexpr auto operator<=>(GroupId, GroupId) = default;

 private:
  std::uint32_t value_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, GroupId id) {
  return os << "g" << id.value();
}

/// Monotonically increasing view identifier within a group.
using ViewId = std::uint64_t;

/// A group view: the agreed membership at a point in the group's history.
/// Member order is significant — it defines rank, and the member at rank 0
/// is the leader (as with Ensemble's rank-based leader election).
struct View {
  GroupId group;
  ViewId id = 0;
  std::vector<net::NodeId> members;

  bool contains(net::NodeId node) const {
    return std::find(members.begin(), members.end(), node) != members.end();
  }

  /// Rank of `node` in this view; requires contains(node).
  std::size_t rank_of(net::NodeId node) const {
    auto it = std::find(members.begin(), members.end(), node);
    AQUEDUCT_CHECK_MSG(it != members.end(), "rank_of: node not in view");
    return static_cast<std::size_t>(it - members.begin());
  }

  /// The elected leader: the first member. Requires a non-empty view.
  net::NodeId leader() const {
    AQUEDUCT_CHECK(!members.empty());
    return members.front();
  }

  std::size_t size() const { return members.size(); }
  bool empty() const { return members.empty(); }
};

inline std::ostream& operator<<(std::ostream& os, const View& v) {
  os << v.group << "/v" << v.id << "{";
  for (std::size_t i = 0; i < v.members.size(); ++i) {
    if (i) os << ",";
    os << v.members[i];
  }
  return os << "}";
}

}  // namespace aqueduct::gcs

template <>
struct std::hash<aqueduct::gcs::GroupId> {
  std::size_t operator()(aqueduct::gcs::GroupId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
