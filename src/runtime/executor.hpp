// The runtime abstraction every protocol layer is written against.
//
// An Executor owns a clock, a timer queue, and a seeded random source. The
// protocol stack (net, gcs, replication, client, fault, harness) schedules
// all of its work through this interface and never names a concrete
// implementation, so the same gateway logic runs unmodified under
//
//   * SimExecutor (sim::Simulator) — the discrete-event simulator: virtual
//     time, deterministic event order, reproducible randomness. Used by
//     every experiment, bench, and test.
//   * RealTimeExecutor — a single-threaded event loop over
//     std::steady_clock: wall-clock timers, cross-thread post(), real
//     elapsed time. Used by live_cli and anything that serves real traffic.
//
// TimePoint is epoch-relative in both cases: kEpoch is the start of the
// simulation (SimExecutor) or the construction of the executor
// (RealTimeExecutor). Only the shared primitive headers (time, random,
// event queue) are pulled in here — never the concrete simulator; the
// layering lint (tools/check_layering.py) enforces that protocol code
// includes this header and not sim/simulator.hpp.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aqueduct::runtime {

// The time/randomness vocabulary of the runtime layer. These are the
// shared primitives from sim/{time,random,event_queue}.hpp — re-exported
// so code written against the Executor interface can spell them without
// naming the simulator namespace.
using Duration = sim::Duration;
using TimePoint = sim::TimePoint;
using Rng = sim::Rng;
/// Opaque handle to a scheduled callback, usable for cancellation.
using TaskHandle = sim::EventHandle;

/// The executor's origin: t = 0 of the simulation, or the construction
/// time of a RealTimeExecutor.
inline constexpr TimePoint kEpoch = sim::kEpoch;

/// Which Executor a composition root should build. The concrete types
/// live in sim_executor.hpp / realtime_executor.hpp; this tag lets
/// configuration structs express the choice without naming them.
enum class Kind {
  kSim,       // discrete-event simulation, deterministic per seed
  kRealTime,  // wall-clock event loop
};

inline const char* to_string(Kind kind) {
  return kind == Kind::kSim ? "sim" : "real-time";
}

/// Abstract clock + timer + randomness service.
///
/// Threading contract: SimExecutor is strictly single-threaded.
/// RealTimeExecutor runs callbacks on the thread inside run(); at(),
/// after(), post(), cancel(), and stop() may be called from any thread,
/// everything else only from the loop thread.
class Executor {
 public:
  using Callback = std::function<void()>;

  Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  virtual ~Executor() = default;

  /// Current time, relative to kEpoch.
  virtual TimePoint now() const = 0;

  /// Schedules `cb` at absolute time `t`. Under SimExecutor `t` must not
  /// be in the past; RealTimeExecutor clamps past times to "as soon as
  /// possible" (wall clocks cannot help but drift past a target).
  virtual TaskHandle at(TimePoint t, Callback cb) = 0;

  /// Schedules `cb` after delay `d` (>= 0) from now().
  virtual TaskHandle after(Duration d, Callback cb) = 0;

  /// Cancels a previously scheduled callback. Returns false if it already
  /// fired or was cancelled.
  virtual bool cancel(const TaskHandle& h) = 0;

  /// Schedules `cb` to run as soon as possible on the loop thread. The
  /// only scheduling entry point that is thread-safe on every executor.
  virtual void post(Callback cb) = 0;

  /// Requests the run loop to return after the current callback completes.
  virtual void stop() = 0;

  /// Shared random source; components should derive child streams with
  /// rng().split() at construction time so runs stay reproducible under
  /// SimExecutor.
  virtual Rng& rng() = 0;

  /// Drives the loop until the queue drains or stop() is called. Returns
  /// the number of callbacks executed.
  virtual std::size_t run() = 0;

  /// Drives the loop until `deadline`: SimExecutor executes events with
  /// time <= deadline and leaves now() == deadline; RealTimeExecutor
  /// blocks until the wall clock reaches it (or stop()).
  virtual std::size_t run_until(TimePoint deadline) = 0;

  /// Runs for `d` from now().
  std::size_t run_for(Duration d) { return run_until(now() + d); }

  /// Number of callbacks executed since construction.
  virtual std::uint64_t events_executed() const = 0;

  /// Number of callbacks currently scheduled.
  virtual std::size_t pending_events() const = 0;
};

}  // namespace aqueduct::runtime
