#include "runtime/realtime_executor.hpp"

#include <utility>

#include "sim/check.hpp"

namespace aqueduct::runtime {

TaskHandle RealTimeExecutor::at(TimePoint t, Callback cb) {
  const TimePoint current = now();
  if (t < current) t = current;  // wall clocks drift past targets; clamp
  TaskHandle h;
  {
    std::lock_guard<std::mutex> lock(mu_);
    h = queue_.schedule(t, std::move(cb));
  }
  // The new timer may be earlier than the one the loop is sleeping on.
  cv_.notify_all();
  return h;
}

TaskHandle RealTimeExecutor::after(Duration d, Callback cb) {
  AQUEDUCT_CHECK_MSG(d >= Duration::zero(), "negative delay");
  return at(now() + d, std::move(cb));
}

bool RealTimeExecutor::cancel(const TaskHandle& h) {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.cancel(h);
}

void RealTimeExecutor::post(Callback cb) {
  at(now(), std::move(cb));
}

void RealTimeExecutor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
}

std::size_t RealTimeExecutor::pending_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t RealTimeExecutor::run_loop(TimePoint deadline) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
  }
  std::size_t executed = 0;
  for (;;) {
    Callback cb;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_requested_) break;
      if (queue_.empty()) {
        // run(): a drained queue ends the loop. run_until(): sleep out
        // the deadline — timers may still arrive from other threads, and
        // callers use run_for() to pace polling loops.
        if (deadline == TimePoint::max()) break;
        if (now() >= deadline) break;
        cv_.wait_until(lock, to_wall(deadline));
        continue;
      }
      const TimePoint next = queue_.next_time();
      if (next > deadline) {
        if (now() >= deadline) break;
        cv_.wait_until(lock, to_wall(deadline));
        continue;
      }
      if (std::chrono::steady_clock::now() < to_wall(next)) {
        // Woken early by a new timer, a cancel, or a spurious wakeup —
        // re-evaluate the queue head either way.
        cv_.wait_until(lock, to_wall(next));
        continue;
      }
      auto [at, ready] = queue_.pop();
      static_cast<void>(at);
      cb = std::move(ready);
    }
    cb();  // unlocked: callbacks may schedule, cancel, or stop
    ++executed;
    events_executed_.fetch_add(1, std::memory_order_relaxed);
  }
  return executed;
}

}  // namespace aqueduct::runtime
