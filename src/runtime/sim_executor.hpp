// The deterministic Executor: the discrete-event simulator.
//
// sim::Simulator *is* the simulation-side implementation of
// runtime::Executor; this header gives composition roots (harness, CLIs,
// tests) the runtime-layer name for it plus a factory over both runtimes.
// Protocol code must not include this — it names the concrete simulator
// (tools/check_layering.py enforces it).
#pragma once

#include <cstdint>
#include <memory>

#include "runtime/realtime_executor.hpp"
#include "sim/simulator.hpp"

namespace aqueduct::runtime {

using SimExecutor = sim::Simulator;

inline std::unique_ptr<Executor> make_executor(Kind kind, std::uint64_t seed) {
  if (kind == Kind::kRealTime) {
    return std::make_unique<RealTimeExecutor>(seed);
  }
  return std::make_unique<SimExecutor>(seed);
}

}  // namespace aqueduct::runtime
