// Wall-clock implementation of runtime::Executor.
//
// A single-threaded event loop over std::steady_clock: run() pops timers
// in (time, scheduling-order) order, sleeping on a condition variable
// until the earliest deadline. at()/after()/post()/cancel()/stop() are
// thread-safe — a cross-thread post() wakes the loop immediately — while
// callbacks always execute on the thread inside run(), so protocol state
// needs no locking.
//
// Paired with net::LoopbackTransport this runs the stack in-process with
// real elapsed time: send() samples the configured latency model and
// delivery happens that many *wall-clock* nanoseconds later. Paired with
// net::UdpTransport it drives real sockets (the poll timer and protocol
// timers share this loop), one process per node. Determinism is NOT
// provided — the rng is seeded, but event interleaving follows the real
// clock. All experiments stay on SimExecutor; this runtime exists for
// live traffic (live_cli, single- or multi-process).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "runtime/executor.hpp"

namespace aqueduct::runtime {

class RealTimeExecutor final : public Executor {
 public:
  explicit RealTimeExecutor(std::uint64_t seed = 1)
      : origin_(std::chrono::steady_clock::now()), rng_(seed) {}

  /// Wall-clock time elapsed since construction (kEpoch = construction).
  TimePoint now() const override {
    return TimePoint(std::chrono::duration_cast<Duration>(
        std::chrono::steady_clock::now() - origin_));
  }

  /// Thread-safe. A `t` already in the past is clamped to "now" — the
  /// callback runs as soon as the loop gets to it.
  TaskHandle at(TimePoint t, Callback cb) override;

  /// Thread-safe. Negative delays are rejected like on the simulator.
  TaskHandle after(Duration d, Callback cb) override;

  /// Thread-safe.
  bool cancel(const TaskHandle& h) override;

  /// Thread-safe: schedules `cb` to run as soon as possible on the loop
  /// thread and wakes the loop if it is sleeping.
  void post(Callback cb) override;

  /// Thread-safe: the loop returns after the callback in flight (if any)
  /// completes.
  void stop() override;

  /// Loop thread only (callbacks and pre-run setup).
  Rng& rng() override { return rng_; }

  /// Runs until the timer queue drains or stop() is called.
  std::size_t run() override { return run_loop(TimePoint::max()); }

  /// Runs until the wall clock reaches `deadline` (sleeping through idle
  /// stretches, so cross-thread posts still get in) or stop() is called.
  /// Timers due after `deadline` stay queued.
  std::size_t run_until(TimePoint deadline) override {
    return run_loop(deadline);
  }

  std::uint64_t events_executed() const override {
    return events_executed_.load(std::memory_order_relaxed);
  }

  std::size_t pending_events() const override;

 private:
  std::size_t run_loop(TimePoint deadline);
  std::chrono::steady_clock::time_point to_wall(TimePoint t) const {
    return origin_ + t.time_since_epoch();
  }

  const std::chrono::steady_clock::time_point origin_;
  Rng rng_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  sim::EventQueue queue_;  // guarded by mu_
  bool stop_requested_ = false;  // guarded by mu_
  std::atomic<std::uint64_t> events_executed_{0};
};

}  // namespace aqueduct::runtime
