// Repeats a callback at a fixed period until stopped or destroyed.
// Used for heartbeats, lazy-update publication, and performance broadcast.
#pragma once

#include <functional>

#include "runtime/executor.hpp"

namespace aqueduct::runtime {

/// Drift-free periodic timer.
///
/// Firings are anchored to the grid `start + initial_delay + k * period`,
/// not to `last_fire + period`: a callback that runs long (or a loop that
/// wakes late) under RealTimeExecutor delays at most the next firing and
/// never skews the grid itself. Slots the clock has already passed when a
/// firing completes are skipped, so a callback slower than the period
/// degrades to "fire once per completed slot" instead of queueing a
/// backlog. Under SimExecutor callbacks take zero simulated time, so the
/// anchored schedule is indistinguishable from the naive one and event
/// traces are unchanged.
class PeriodicTask {
 public:
  /// The first firing happens `initial_delay` after start(); subsequent
  /// firings are `period` apart on the anchored grid.
  PeriodicTask(Executor& exec, Duration period, std::function<void()> fn);
  PeriodicTask(Executor& exec, Duration period, Duration initial_delay,
               std::function<void()> fn);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  /// Stops future firings. Safe to call from inside the callback: the
  /// next firing is already scheduled when the callback runs, and stop()
  /// cancels it.
  void stop();
  bool running() const { return running_; }
  Duration period() const { return period_; }

 private:
  void fire();

  Executor& exec_;
  Duration period_;
  Duration initial_delay_;
  std::function<void()> fn_;
  TimePoint next_time_{};
  TaskHandle next_;
  bool running_ = false;
};

}  // namespace aqueduct::runtime
