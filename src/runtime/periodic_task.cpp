#include "runtime/periodic_task.hpp"

#include <utility>

#include "sim/check.hpp"

namespace aqueduct::runtime {

PeriodicTask::PeriodicTask(Executor& exec, Duration period,
                           std::function<void()> fn)
    : PeriodicTask(exec, period, period, std::move(fn)) {}

PeriodicTask::PeriodicTask(Executor& exec, Duration period,
                           Duration initial_delay, std::function<void()> fn)
    : exec_(exec),
      period_(period),
      initial_delay_(initial_delay),
      fn_(std::move(fn)) {
  AQUEDUCT_CHECK(period_ > Duration::zero());
  AQUEDUCT_CHECK(initial_delay_ >= Duration::zero());
  AQUEDUCT_CHECK(fn_ != nullptr);
}

void PeriodicTask::start() {
  if (running_) return;
  running_ = true;
  next_time_ = exec_.now() + initial_delay_;
  next_ = exec_.at(next_time_, [this] { fire(); });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  exec_.cancel(next_);
}

void PeriodicTask::fire() {
  if (!running_) return;
  // Advance along the anchored grid; skip slots the clock already passed
  // (a real-time callback can overrun its period — never schedule into
  // the past, never build a backlog).
  next_time_ += period_;
  const TimePoint now = exec_.now();
  while (next_time_ <= now) next_time_ += period_;
  // Schedule before running the callback so the callback can stop() us.
  next_ = exec_.at(next_time_, [this] { fire(); });
  fn_();
}

}  // namespace aqueduct::runtime
