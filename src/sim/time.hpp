// Simulated-time primitives.
//
// All simulation components express time with std::chrono types bound to a
// dedicated SimClock, so durations and time points cannot be mixed up with
// wall-clock time and unit errors are caught at compile time.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace aqueduct::sim {

/// Resolution of the simulated clock. One tick = one nanosecond.
using Duration = std::chrono::nanoseconds;

/// Clock type for the discrete-event simulator. Never reads real time; the
/// current time point is advanced by the event loop only.
struct SimClock {
  using rep = Duration::rep;
  using period = Duration::period;
  using duration = Duration;
  using time_point = std::chrono::time_point<SimClock, Duration>;
  static constexpr bool is_steady = true;
};

using TimePoint = SimClock::time_point;

/// The simulation origin (t = 0).
inline constexpr TimePoint kEpoch{};

/// Converts a duration to fractional milliseconds (for reporting).
constexpr double to_ms(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Converts a duration to fractional microseconds (for reporting).
constexpr double to_us(Duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// Converts a duration to fractional seconds (for reporting).
constexpr double to_sec(Duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Builds a duration from fractional milliseconds.
constexpr Duration from_ms(double ms) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// Builds a duration from fractional seconds.
constexpr Duration from_sec(double sec) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(sec));
}

/// Time elapsed since the simulation origin.
constexpr Duration since_epoch(TimePoint t) { return t - kEpoch; }

/// Human-readable rendering, e.g. "12.500ms".
std::string format(Duration d);

/// Human-readable rendering of a time point as time since epoch.
std::string format(TimePoint t);

}  // namespace aqueduct::sim
