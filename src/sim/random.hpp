// Seeded random-number generation for the simulator.
//
// A single Rng owns a mt19937_64 engine; child components derive independent
// streams via split() so that adding a component does not perturb the draws
// seen by unrelated components (important for reproducible experiments).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "sim/check.hpp"
#include "sim/time.hpp"

namespace aqueduct::sim {

/// Deterministic random source with the distributions the experiments need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    AQUEDUCT_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    AQUEDUCT_CHECK(n > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p) {
    AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal draw.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Normal draw as a duration, truncated below at `floor` (service times
  /// and latencies must be non-negative).
  Duration normal_duration(Duration mean, Duration stddev,
                           Duration floor = Duration::zero()) {
    const double x = normal(static_cast<double>(mean.count()),
                            static_cast<double>(stddev.count()));
    const auto d = Duration(static_cast<Duration::rep>(x));
    return d < floor ? floor : d;
  }

  /// Exponential draw with the given rate (events per unit).
  double exponential(double rate) {
    AQUEDUCT_CHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Exponential duration with the given mean.
  Duration exponential_duration(Duration mean) {
    AQUEDUCT_CHECK(mean > Duration::zero());
    const double x = exponential(1.0 / static_cast<double>(mean.count()));
    return Duration(static_cast<Duration::rep>(x));
  }

  /// Poisson draw with the given mean.
  int poisson(double mean) {
    AQUEDUCT_CHECK(mean >= 0.0);
    if (mean == 0.0) return 0;
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Picks one element of a non-empty span uniformly at random.
  template <typename T>
  const T& pick(std::span<const T> items) {
    AQUEDUCT_CHECK(!items.empty());
    return items[uniform_int(items.size())];
  }

  /// Derives a seed for an independent child stream.
  std::uint64_t split() {
    return std::uniform_int_distribution<std::uint64_t>()(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Distribution over durations, sampled per call. Used for link latencies
/// and service times.
class DurationDistribution {
 public:
  virtual ~DurationDistribution() = default;
  virtual Duration sample(Rng& rng) = 0;
  /// Mean of the distribution (for reporting/validation).
  virtual Duration mean() const = 0;
};

/// Always returns the same value.
class FixedDuration final : public DurationDistribution {
 public:
  explicit FixedDuration(Duration value) : value_(value) {}
  Duration sample(Rng&) override { return value_; }
  Duration mean() const override { return value_; }

 private:
  Duration value_;
};

/// Truncated-at-zero normal distribution, matching the paper's simulated
/// background load (normal with mean 100 ms, variance 50 ms^2).
class NormalDuration final : public DurationDistribution {
 public:
  NormalDuration(Duration mean, Duration stddev) : mean_(mean), stddev_(stddev) {}
  Duration sample(Rng& rng) override {
    return rng.normal_duration(mean_, stddev_);
  }
  Duration mean() const override { return mean_; }

 private:
  Duration mean_;
  Duration stddev_;
};

/// Exponential distribution with the given mean.
class ExponentialDuration final : public DurationDistribution {
 public:
  explicit ExponentialDuration(Duration mean) : mean_(mean) {}
  Duration sample(Rng& rng) override { return rng.exponential_duration(mean_); }
  Duration mean() const override { return mean_; }

 private:
  Duration mean_;
};

/// Samples uniformly from a fixed set of recorded values (e.g. a measured
/// latency trace). Substitute for environments we cannot reproduce.
class EmpiricalDuration final : public DurationDistribution {
 public:
  explicit EmpiricalDuration(std::vector<Duration> samples)
      : samples_(std::move(samples)) {
    AQUEDUCT_CHECK(!samples_.empty());
  }
  Duration sample(Rng& rng) override {
    return samples_[rng.uniform_int(samples_.size())];
  }
  Duration mean() const override {
    Duration::rep total = 0;
    for (Duration d : samples_) total += d.count();
    return Duration(total / static_cast<Duration::rep>(samples_.size()));
  }

 private:
  std::vector<Duration> samples_;
};

}  // namespace aqueduct::sim
