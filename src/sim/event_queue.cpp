#include "sim/event_queue.hpp"

#include <utility>

#include "sim/check.hpp"

namespace aqueduct::sim {

EventHandle EventQueue::schedule(TimePoint at, Callback cb) {
  AQUEDUCT_CHECK(cb != nullptr);
  auto cancelled = std::make_shared<bool>(false);
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(cb), cancelled});
  ++live_;
  return EventHandle(seq, cancelled);
}

bool EventQueue::cancel(const EventHandle& handle) {
  auto flag = handle.cancelled_.lock();
  if (!flag || *flag) return false;
  *flag = true;
  AQUEDUCT_CHECK(live_ > 0);
  --live_;
  return true;
}

void EventQueue::skip_cancelled() const {
  // heap_ is mutable: discarding cancelled entries does not change the
  // observable live set.
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  skip_cancelled();
  return heap_.empty();
}

TimePoint EventQueue::next_time() const {
  skip_cancelled();
  AQUEDUCT_CHECK(!heap_.empty());
  return heap_.top().at;
}

std::pair<TimePoint, EventQueue::Callback> EventQueue::pop() {
  skip_cancelled();
  AQUEDUCT_CHECK(!heap_.empty());
  // priority_queue::top() returns const&; move out via const_cast is the
  // standard idiom but we copy the small parts and move the callback by
  // re-wrapping: take a copy of the entry, then pop.
  Entry top = heap_.top();
  heap_.pop();
  AQUEDUCT_CHECK(live_ > 0);
  --live_;
  // Mark fired so a handle held by the scheduler reports cancel() == false.
  *top.cancelled = true;
  return {top.at, std::move(top.cb)};
}

}  // namespace aqueduct::sim
