// The discrete-event simulator driving every experiment in this repo.
//
// Components schedule callbacks at simulated time points; run() advances the
// clock from event to event until the queue drains, a stop condition fires,
// or a time/event budget is exhausted. All randomness flows through the
// simulator's seeded Rng, so runs are reproducible.
//
// Simulator is the deterministic implementation of runtime::Executor
// (runtime::SimExecutor aliases it): the protocol stack is written against
// the interface, and experiments inject this class to get virtual time and
// bit-reproducible runs.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>

#include "runtime/executor.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aqueduct::sim {

class Simulator final : public runtime::Executor {
 public:
  using Callback = EventQueue::Callback;

  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  /// Current simulated time.
  TimePoint now() const override { return now_; }

  /// Schedules `cb` at absolute time `t`. `t` must not be in the past.
  EventHandle at(TimePoint t, Callback cb) override;

  /// Schedules `cb` after delay `d` (>= 0) from now.
  EventHandle after(Duration d, Callback cb) override;

  /// Cancels a previously scheduled event. Returns false if it already
  /// fired or was cancelled.
  bool cancel(const EventHandle& h) override { return queue_.cancel(h); }

  /// Schedules `cb` at the current simulated time (after events already
  /// queued for it). The simulator is single-threaded: unlike the
  /// real-time executor this is NOT safe to call from another thread.
  void post(Callback cb) override { after(Duration::zero(), std::move(cb)); }

  /// Runs until the queue is empty or stop() is called.
  /// Returns the number of events executed.
  std::size_t run() override { return run_until(TimePoint::max()); }

  /// Runs events with time <= `deadline`; afterwards now() == deadline
  /// unless the queue drained earlier or stop() was called.
  std::size_t run_until(TimePoint deadline) override;

  /// Requests the run loop to return after the current event completes.
  void stop() override { stop_requested_ = true; }

  /// Shared random source; components should derive child streams with
  /// rng().split() at construction time.
  Rng& rng() override { return rng_; }

  /// Number of events executed since construction.
  std::uint64_t events_executed() const override { return events_executed_; }

  /// Number of events currently pending.
  std::size_t pending_events() const override { return queue_.size(); }

 private:
  EventQueue queue_;
  TimePoint now_ = kEpoch;
  Rng rng_;
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace aqueduct::sim
