// The discrete-event simulator driving every experiment in this repo.
//
// Components schedule callbacks at simulated time points; run() advances the
// clock from event to event until the queue drains, a stop condition fires,
// or a time/event budget is exhausted. All randomness flows through the
// simulator's seeded Rng, so runs are reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aqueduct::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute time `t`. `t` must not be in the past.
  EventHandle at(TimePoint t, Callback cb);

  /// Schedules `cb` after delay `d` (>= 0) from now.
  EventHandle after(Duration d, Callback cb);

  /// Cancels a previously scheduled event. Returns false if it already
  /// fired or was cancelled.
  bool cancel(const EventHandle& h) { return queue_.cancel(h); }

  /// Runs until the queue is empty or stop() is called.
  /// Returns the number of events executed.
  std::size_t run() { return run_until(TimePoint::max()); }

  /// Runs events with time <= `deadline`; afterwards now() == deadline
  /// unless the queue drained earlier or stop() was called.
  std::size_t run_until(TimePoint deadline);

  /// Runs for `d` of simulated time from now().
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  /// Requests the run loop to return after the current event completes.
  void stop() { stop_requested_ = true; }

  /// Shared random source; components should derive child streams with
  /// rng().split() at construction time.
  Rng& rng() { return rng_; }

  /// Number of events executed since construction.
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of events currently pending.
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  TimePoint now_ = kEpoch;
  Rng rng_;
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
};

/// Repeats a callback at a fixed period until stopped or destroyed.
/// Used for heartbeats, lazy-update publication, and performance broadcast.
class PeriodicTask {
 public:
  /// The first firing happens `initial_delay` after start(); subsequent
  /// firings are `period` apart.
  PeriodicTask(Simulator& sim, Duration period, std::function<void()> fn);
  PeriodicTask(Simulator& sim, Duration period, Duration initial_delay,
               std::function<void()> fn);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }
  Duration period() const { return period_; }

 private:
  void fire();

  Simulator& sim_;
  Duration period_;
  Duration initial_delay_;
  std::function<void()> fn_;
  EventHandle next_;
  bool running_ = false;
};

}  // namespace aqueduct::sim
