#include "sim/simulator.hpp"

#include <utility>

#include "sim/check.hpp"

namespace aqueduct::sim {

EventHandle Simulator::at(TimePoint t, Callback cb) {
  AQUEDUCT_CHECK_MSG(t >= now_, "cannot schedule into the past");
  return queue_.schedule(t, std::move(cb));
}

EventHandle Simulator::after(Duration d, Callback cb) {
  AQUEDUCT_CHECK_MSG(d >= Duration::zero(), "negative delay");
  return at(now_ + d, std::move(cb));
}

std::size_t Simulator::run_until(TimePoint deadline) {
  stop_requested_ = false;
  std::size_t executed = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > deadline) break;
    auto [at, cb] = queue_.pop();
    AQUEDUCT_CHECK(at >= now_);
    now_ = at;
    cb();
    ++executed;
    ++events_executed_;
  }
  if (!stop_requested_ && deadline != TimePoint::max() && now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

}  // namespace aqueduct::sim
