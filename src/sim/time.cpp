#include "sim/time.hpp"

#include <cstdio>

namespace aqueduct::sim {

std::string format(Duration d) {
  char buf[64];
  const double ns = static_cast<double>(d.count());
  if (d < std::chrono::microseconds(10)) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (d < std::chrono::milliseconds(10)) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ns / 1e3);
  } else if (d < std::chrono::seconds(10)) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns / 1e9);
  }
  return buf;
}

std::string format(TimePoint t) { return format(since_epoch(t)); }

}  // namespace aqueduct::sim
