// Priority event queue for the discrete-event simulator.
//
// Events scheduled for the same time point fire in scheduling order
// (FIFO tie-break by sequence number) so simulations are fully
// deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace aqueduct::sim {

/// Opaque handle to a scheduled event, usable for cancellation.
class EventHandle {
 public:
  EventHandle() = default;
  /// True if this handle ever referred to an event (cancelled or not).
  bool valid() const { return id_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t id, std::weak_ptr<bool> cancelled)
      : id_(id), cancelled_(std::move(cancelled)) {}
  std::uint64_t id_ = 0;
  std::weak_ptr<bool> cancelled_;
};

/// Min-heap of timed callbacks with O(1) cancellation (lazy removal).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at time `at`.
  EventHandle schedule(TimePoint at, Callback cb);

  /// Cancels the event behind `handle`. Returns false if the event already
  /// fired, was already cancelled, or the handle is empty.
  bool cancel(const EventHandle& handle);

  /// True if no live (non-cancelled) events remain.
  bool empty() const;

  /// Time of the earliest live event. Requires !empty().
  TimePoint next_time() const;

  /// Pops the earliest live event and returns its (time, callback).
  /// Requires !empty().
  std::pair<TimePoint, Callback> pop();

  /// Number of live events currently queued.
  std::size_t size() const { return live_; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Discards cancelled entries at the head of the heap.
  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace aqueduct::sim
