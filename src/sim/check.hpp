// Lightweight invariant checking used across the library.
//
// AQUEDUCT_CHECK is active in all build types: these are distributed-protocol
// invariants (e.g. commit-order monotonicity) whose violation means the
// simulation result is meaningless, so we prefer to fail fast over
// continuing with corrupt state.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aqueduct {

/// Thrown when a library invariant is violated. Indicates a bug in the
/// library (or a misuse severe enough to corrupt protocol state).
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace aqueduct

#define AQUEDUCT_CHECK(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::aqueduct::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define AQUEDUCT_CHECK_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream aqueduct_check_os_;                              \
      aqueduct_check_os_ << msg;                                          \
      ::aqueduct::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                       aqueduct_check_os_.str());         \
    }                                                                     \
  } while (false)
