// Client-side shard router: multiplexes QoS-tagged requests across the
// per-shard gateway handlers of a sharded service.
//
// One application endpoint hosts one ClientHandler per shard (the paper's
// Figure 2 gateway, instantiated per replica group); the router consults
// the ShardMap to place each keyed operation and forwards it unchanged, so
// selection state, the information repository, retries, and SLA tracking
// all stay per-shard. With a single shard the router degenerates to a
// plain pass-through around today's one handler — same construction
// order, same RNG draws, same metric names — which is what keeps the
// 1-shard scenario bit-identical to the pre-shard stack.
//
// Layering: this directory is protocol-level — it sees only the abstract
// runtime::Executor and gcs::Endpoint interfaces, never a concrete
// executor, transport backend, or exporter (tools/check_layering.py
// enforces it).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "client/handler.hpp"
#include "gcs/endpoint.hpp"
#include "replication/service.hpp"
#include "runtime/executor.hpp"
#include "shard/shard_map.hpp"

namespace aqueduct::shard {

/// Per-shard routing tallies (mirrored to `shard<k>.*` counters when the
/// router spans more than one shard).
struct ShardRouteStats {
  std::uint64_t reads_routed = 0;
  std::uint64_t updates_routed = 0;
};

class ShardRouter {
 public:
  /// Builds `config(k)` for each shard k in [0, map.num_shards()) and a
  /// ClientHandler per shard on `endpoint` (one endpoint may host many
  /// handlers — each joins its service's QoS group independently).
  /// `groups[k]` names shard k's gcs groups. The factory runs once per
  /// shard, in shard order, so per-handler RNG splits stay deterministic.
  ShardRouter(runtime::Executor& exec, gcs::Endpoint& endpoint,
              const ShardMap& map,
              std::vector<replication::ServiceGroups> groups,
              std::function<client::ClientConfig(std::size_t)> config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Joins every shard's QoS group.
  void start();

  /// Routes a read for `key` to its shard's handler.
  void read(std::string_view key, net::MessagePtr op, const core::QoSSpec& qos,
            client::ClientHandler::ReadCallback done);

  /// Routes an update for `key` to its shard's handler.
  void update(std::string_view key, net::MessagePtr op,
              client::ClientHandler::UpdateCallback done);

  std::size_t shard_for(std::string_view key) const {
    return map_.shard_for(key);
  }
  std::size_t num_shards() const { return handlers_.size(); }

  client::ClientHandler& handler(std::size_t shard) {
    return *handlers_.at(shard);
  }
  const client::ClientHandler& handler(std::size_t shard) const {
    return *handlers_.at(shard);
  }

  /// Aggregate of every shard handler's stats.
  client::ClientStats stats() const;

  const ShardRouteStats& route_stats(std::size_t shard) const {
    return route_stats_.at(shard);
  }

 private:
  const ShardMap& map_;
  std::vector<std::unique_ptr<client::ClientHandler>> handlers_;
  std::vector<ShardRouteStats> route_stats_;
  // Registry mirrors; null in single-shard mode (no new metric names).
  std::vector<obs::Counter*> reads_routed_;
  std::vector<obs::Counter*> updates_routed_;
};

}  // namespace aqueduct::shard
