#include "shard/shard_map.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace aqueduct::shard {

namespace {

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ShardMap::ShardMap(std::uint64_t seed, std::size_t num_shards,
                   std::size_t vnodes_per_shard)
    : seed_(seed), vnodes_per_shard_(vnodes_per_shard) {
  AQUEDUCT_CHECK_MSG(num_shards > 0, "ShardMap needs at least one shard");
  AQUEDUCT_CHECK_MSG(vnodes_per_shard > 0, "ShardMap needs vnodes");
  ring_.reserve(num_shards * vnodes_per_shard);
  for (std::size_t s = 0; s < num_shards; ++s) add_shard();
}

std::uint64_t ShardMap::key_hash(std::string_view key) const {
  // Seed-mix the content hash so distinct seeds explore distinct placements
  // of the same key population.
  return mix64(fnv1a64(key) ^ seed_);
}

std::size_t ShardMap::shard_for(std::string_view key) const {
  return shard_for_hash(key_hash(key));
}

std::size_t ShardMap::shard_for_hash(std::uint64_t hash) const {
  AQUEDUCT_CHECK_MSG(!ring_.empty(), "ShardMap ring is empty");
  // First vnode at or after the hash; wrap to the ring start past the top.
  auto it = std::lower_bound(ring_.begin(), ring_.end(), hash,
                             [](const Vnode& v, std::uint64_t h) {
                               return v.point < h;
                             });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

void ShardMap::insert_shard(std::size_t shard) {
  for (std::size_t v = 0; v < vnodes_per_shard_; ++v) {
    Vnode node;
    // Vnode points derive from (seed, shard, vnode index) alone, so a
    // shard's points are identical whether it was present at construction
    // or joined later — the minimal-remap property depends on this.
    node.point = mix64(seed_ ^ mix64(shard * 0x10001ULL + v));
    node.shard = static_cast<std::uint32_t>(shard);
    const auto pos = std::lower_bound(
        ring_.begin(), ring_.end(), node.point,
        [](const Vnode& a, std::uint64_t p) { return a.point < p; });
    ring_.insert(pos, node);
  }
}

std::size_t ShardMap::add_shard() {
  const std::size_t shard = next_shard_id_++;
  insert_shard(shard);
  ++num_active_;
  return shard;
}

void ShardMap::remove_shard(std::size_t shard) {
  AQUEDUCT_CHECK_MSG(contains(shard), "removing a shard not on the ring");
  AQUEDUCT_CHECK_MSG(num_active_ > 1, "cannot remove the last shard");
  std::erase_if(ring_, [shard](const Vnode& v) { return v.shard == shard; });
  --num_active_;
}

bool ShardMap::contains(std::size_t shard) const {
  return std::any_of(ring_.begin(), ring_.end(),
                     [shard](const Vnode& v) { return v.shard == shard; });
}

std::vector<std::size_t> ShardMap::shards() const {
  std::vector<std::size_t> out;
  for (const Vnode& v : ring_) out.push_back(v.shard);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace aqueduct::shard
