#include "shard/router.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/check.hpp"

namespace aqueduct::shard {

ShardRouter::ShardRouter(
    runtime::Executor& exec, gcs::Endpoint& endpoint, const ShardMap& map,
    std::vector<replication::ServiceGroups> groups,
    std::function<client::ClientConfig(std::size_t)> config)
    : map_(map) {
  AQUEDUCT_CHECK_MSG(groups.size() == map.num_shards(),
                     "one ServiceGroups per shard required");
  const std::size_t shards = groups.size();
  handlers_.reserve(shards);
  route_stats_.resize(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    handlers_.push_back(std::make_unique<client::ClientHandler>(
        exec, endpoint, groups[k], config(k)));
  }
  if (shards > 1) {
    obs::MetricsRegistry& reg = endpoint.observability().metrics;
    for (std::size_t k = 0; k < shards; ++k) {
      const std::string prefix = "shard" + std::to_string(k) + ".";
      reads_routed_.push_back(&reg.counter(prefix + "reads_routed"));
      updates_routed_.push_back(&reg.counter(prefix + "updates_routed"));
    }
  }
}

ShardRouter::~ShardRouter() = default;

void ShardRouter::start() {
  for (auto& handler : handlers_) handler->start();
}

void ShardRouter::read(std::string_view key, net::MessagePtr op,
                       const core::QoSSpec& qos,
                       client::ClientHandler::ReadCallback done) {
  const std::size_t shard = map_.shard_for(key);
  ++route_stats_.at(shard).reads_routed;
  if (!reads_routed_.empty()) reads_routed_[shard]->inc();
  handlers_.at(shard)->read(std::move(op), qos, std::move(done));
}

void ShardRouter::update(std::string_view key, net::MessagePtr op,
                         client::ClientHandler::UpdateCallback done) {
  const std::size_t shard = map_.shard_for(key);
  ++route_stats_.at(shard).updates_routed;
  if (!updates_routed_.empty()) updates_routed_[shard]->inc();
  handlers_.at(shard)->update(std::move(op), std::move(done));
}

client::ClientStats ShardRouter::stats() const {
  client::ClientStats total;
  for (const auto& handler : handlers_) {
    const client::ClientStats& s = handler->stats();
    total.reads_issued += s.reads_issued;
    total.reads_completed += s.reads_completed;
    total.reads_abandoned += s.reads_abandoned;
    total.updates_issued += s.updates_issued;
    total.updates_completed += s.updates_completed;
    total.timing_failures += s.timing_failures;
    total.deferred_replies += s.deferred_replies;
    total.retries += s.retries;
    total.transmit_attempts += s.transmit_attempts;
    total.total_retry_backoff += s.total_retry_backoff;
    total.staleness_violations += s.staleness_violations;
    total.replicas_selected_total += s.replicas_selected_total;
    total.selection_attempts += s.selection_attempts;
    total.total_response_time += s.total_response_time;
    total.total_update_response_time += s.total_update_response_time;
  }
  return total;
}

}  // namespace aqueduct::shard
