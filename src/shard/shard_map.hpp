// Seeded consistent-hash ring mapping object keys onto shards.
//
// Each shard owns `vnodes_per_shard` points on a 64-bit ring; a key is
// served by the shard owning the first ring point at or after the key's
// hash (wrapping at the top). Placement is a pure function of
// (seed, shard set, key): no executor RNG is consumed, so a scenario can
// consult the map during construction without perturbing the simulated
// trajectory, and the same seed reproduces the same placement on any
// machine or thread count.
//
// Consistent hashing gives the minimal-remap property the rebalance
// scenarios rely on: adding a shard moves only the keys that now hash to
// the new shard's vnodes, and removing one moves only the keys it owned —
// every other key keeps its placement bit-for-bit.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace aqueduct::shard {

class ShardMap {
 public:
  /// Builds the ring for shards {0, ..., num_shards-1}. More vnodes tighten
  /// the load balance (relative spread ~ 1/sqrt(vnodes_per_shard)) at the
  /// cost of a larger ring to binary-search.
  explicit ShardMap(std::uint64_t seed, std::size_t num_shards,
                    std::size_t vnodes_per_shard = 128);

  /// The shard serving `key`.
  std::size_t shard_for(std::string_view key) const;

  /// Raw ring lookup by an already-computed key hash (for property tests).
  std::size_t shard_for_hash(std::uint64_t hash) const;

  /// Hash of `key` as used by shard_for (seed-mixed FNV-1a).
  std::uint64_t key_hash(std::string_view key) const;

  /// Adds the next shard id (= num_shards() before the call) to the ring.
  std::size_t add_shard();

  /// Removes `shard`'s vnodes from the ring; its keys redistribute to the
  /// ring survivors. The id is retired, not reused.
  void remove_shard(std::size_t shard);

  bool contains(std::size_t shard) const;

  /// Shards currently on the ring (not retired), ascending.
  std::vector<std::size_t> shards() const;
  std::size_t num_shards() const { return num_active_; }

  std::uint64_t seed() const { return seed_; }
  std::size_t vnodes_per_shard() const { return vnodes_per_shard_; }
  std::size_t ring_size() const { return ring_.size(); }

 private:
  struct Vnode {
    std::uint64_t point = 0;
    std::uint32_t shard = 0;
  };

  void insert_shard(std::size_t shard);

  std::uint64_t seed_;
  std::size_t vnodes_per_shard_;
  std::size_t next_shard_id_ = 0;  // ids are never reused
  std::size_t num_active_ = 0;
  std::vector<Vnode> ring_;  // sorted by point
};

}  // namespace aqueduct::shard
