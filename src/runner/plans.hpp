// Named bench plans for the sweep engine.
//
// A Plan packages one experiment's per-unit body — build a Scenario from
// (seed, config point), run it, distill a SeedRecord — together with its
// config-point labels and pooled-estimate declarations, so sweep_cli, the
// bench binaries, and the chaos test suites all fan the *same* run bodies
// across threads through runner::run_sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/sweep.hpp"

namespace aqueduct::runner {

struct Plan {
  std::string name;
  std::string description;
  /// Requests per client when the caller does not override.
  std::size_t default_requests = 0;
  /// Config-point labels; units are generated point-major over these.
  std::vector<std::string> points;
  std::vector<BinomialSpec> binomials;
  /// The per-unit body. Must be shared-nothing (see sweep.hpp).
  std::function<SeedRecord(const Unit&, std::size_t requests)> run;
};

/// All registered plans, in a stable order.
const std::vector<Plan>& plans();

/// nullptr when no plan has that name.
const Plan* find_plan(const std::string& name);

/// Builds the SweepSpec fanning `seed_count` consecutive seeds from
/// `seed_begin` across every config point of `plan` (point-major, so the
/// merged rows group by point). `requests` 0 keeps the plan default.
SweepSpec make_spec(const Plan& plan, std::uint64_t seed_begin,
                    std::size_t seed_count, std::size_t threads,
                    std::size_t requests = 0);

}  // namespace aqueduct::runner
