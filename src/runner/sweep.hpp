// Parallel multi-seed sweep engine.
//
// The paper's claims (Figs. 3-4, Tables 2-3) are probabilistic: a Pc(d)
// estimate is only trustworthy over many independent seeds. This engine
// fans N fully deterministic, shared-nothing simulation runs (distinct
// seeds and/or config points) across a thread pool and merges the results
// in spec order, so a sweep's output is byte-identical regardless of the
// thread count — a `threads = 1` run is the oracle for every other value.
//
// Shared-nothing invariant: the `run` callback builds everything a run
// needs (simulator, network, GCS, replicas, obs sinks) from the Unit alone
// and returns a plain-data SeedRecord. It must not touch mutable state
// outside its own frame. The one process-wide counter the simulation
// stack used to have (`Pmf::convolutions_performed`) is thread-local for
// exactly this reason; a worker's before/after delta is exact because a
// scenario runs entirely on one thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "harness/stats.hpp"
#include "obs/metrics.hpp"

namespace aqueduct::runner {

/// One independent unit of work: a (seed, config point) pair. Plans decide
/// what `point` indexes (a failure plan, a (Pc, LUI, deadline) cell, ...).
struct Unit {
  std::string label;      // row name in the merged output, e.g. "seed_7"
  std::uint64_t seed = 0;
  std::size_t point = 0;  // config-point index, plan-defined
};

/// What one unit's run reports back. Every field must be a deterministic
/// function of the Unit — no wall-clock, no thread ids — or merged sweep
/// output stops being thread-count invariant.
struct SeedRecord {
  bool ok = false;     // set by the engine: false iff the run threw
  std::string error;   // exception message when !ok

  /// Scalar results, reported per row (plan-chosen order).
  std::vector<std::pair<std::string, double>> values;
  /// Integer tallies, reported per row and summed across the pool.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Sample sets (e.g. read response times): summarized per row and pooled
  /// across rows for merged percentiles.
  std::vector<std::pair<std::string, std::vector<double>>> samples;
  /// String results (e.g. the per-unit telemetry digest), reported per row.
  std::vector<std::pair<std::string, std::string>> texts;

  void value(std::string name, double v) {
    values.emplace_back(std::move(name), v);
  }
  void counter(std::string name, std::uint64_t v) {
    counters.emplace_back(std::move(name), v);
  }
  void sample(std::string name, std::vector<double> v) {
    samples.emplace_back(std::move(name), std::move(v));
  }
  void text(std::string name, std::string v) {
    texts.emplace_back(std::move(name), std::move(v));
  }
  /// Counter lookup (0 when absent) — used by aggregation and tests.
  std::uint64_t counter_or_zero(const std::string& name) const;
  /// Scalar lookup (`fallback` when absent) — used by bench reporting.
  double value_or(const std::string& name, double fallback = 0.0) const;
};

/// Declares a pooled binomial estimate: failures/trials counters are summed
/// across rows and a 95% Wilson interval is reported under `label`.
struct BinomialSpec {
  std::string label;
  std::string failures;  // counter name
  std::string trials;    // counter name
};

struct SweepSpec {
  std::string name;
  /// 0 = one worker per hardware thread.
  std::size_t threads = 1;
  /// Merge order == this order, whatever the thread count.
  std::vector<Unit> units;
  /// Must be thread-safe by construction (shared-nothing; see file header).
  std::function<SeedRecord(const Unit&)> run;
  std::vector<BinomialSpec> binomials;
  /// Quantiles reported for pooled samples.
  std::vector<double> percentiles = {0.50, 0.95, 0.99};
};

struct PooledBinomial {
  std::string label;
  std::uint64_t failures = 0;
  std::uint64_t trials = 0;
  harness::ConfidenceInterval ci;  // 95% Wilson, failure probability
};

struct PooledSamples {
  std::string name;
  std::size_t count = 0;
  double mean = 0.0;
  std::vector<double> quantiles;  // parallel to SweepSpec::percentiles
};

struct SweepResult {
  /// In SweepSpec::units order — the deterministic merge.
  std::vector<SeedRecord> rows;
  std::size_t failed = 0;  // rows with !ok
  /// Counters summed across rows, in first-appearance order.
  std::vector<std::pair<std::string, std::uint64_t>> pooled_counters;
  std::vector<PooledBinomial> binomials;
  std::vector<PooledSamples> samples;

  /// Run metadata — excluded from write_json (it is not deterministic).
  double wall_seconds = 0.0;
  std::size_t threads_used = 1;

  bool all_ok() const { return failed == 0; }
  std::uint64_t pooled_counter_or_zero(const std::string& name) const;
};

/// Progress/observability hooks for a sweep. The engine publishes gauges
/// (`sweep_units_total`, `sweep_units_done`, `sweep_units_failed`,
/// `sweep_wall_seconds`) into `metrics` and invokes `on_progress` from the
/// coordinating thread only, so a plain MetricsRegistry is safe.
struct SweepOptions {
  obs::MetricsRegistry* metrics = nullptr;
  std::function<void(std::size_t done, std::size_t failed, std::size_t total)>
      on_progress;
  std::chrono::milliseconds progress_interval{200};
};

/// Runs every unit of `spec` across `spec.threads` workers and merges the
/// rows in unit order. A throwing run becomes a failed row (ok = false,
/// error = what()); the sweep itself always completes. With threads == 1
/// the calling thread does all the work itself (the oracle path).
SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opts = {});

/// Deterministic JSON for a finished sweep: per-row records then pooled
/// aggregates. Contains no wall-clock or thread-count fields, so the bytes
/// are identical for any `spec.threads` (the determinism suite asserts it).
void write_sweep_json(std::ostream& os, const SweepSpec& spec,
                      const SweepResult& result);

/// Convenience: write_sweep_json to a string.
std::string sweep_json(const SweepSpec& spec, const SweepResult& result);

/// Resolves a thread-count request: 0 means std::thread::hardware_concurrency
/// (at least 1), anything else is taken as-is.
std::size_t resolve_threads(std::size_t requested);

}  // namespace aqueduct::runner
