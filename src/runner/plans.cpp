#include "runner/plans.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <sstream>

#include "fault/schedule.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "obs/sinks.hpp"
#include "replication/objects.hpp"
#include "sim/random.hpp"

namespace aqueduct::runner {

namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

// ------------------------------------------------------ per-unit telemetry

/// Every plan unit runs with periodic telemetry streaming to an in-memory
/// JSONL sink; the series is rolled up into the row as a deterministic
/// digest plus snapshot/violation counters. Because the series is a pure
/// function of the unit's (seed, point), the digest is byte-identical for
/// any sweep thread count — the determinism suite asserts it.
class UnitTelemetry {
 public:
  explicit UnitTelemetry(harness::Scenario& scenario) : sink_(jsonl_) {
    scenario.enable_telemetry(milliseconds(250)).add_sink(&sink_);
  }

  void report(harness::Scenario& scenario, SeedRecord& rec) {
    const std::string series = jsonl_.str();
    std::ostringstream digest;
    digest << std::hex << std::setw(16) << std::setfill('0')
           << obs::digest_fnv1a64(series);
    rec.text("telemetry_digest", digest.str());
    rec.counter("telemetry_snapshots", scenario.telemetry()->snapshots());
    rec.counter("telemetry_bytes", series.size());
    rec.counter("sla_violations",
                scenario.observability().sla.total_violations());
  }

 private:
  std::ostringstream jsonl_;
  obs::JsonlSnapshotSink sink_;
};

// ---------------------------------------------------------------- recovery

constexpr std::size_t kRecoveryVictim = 1;  // a primary (0 = sequencer)
constexpr auto kRecoveryCrashAt = seconds(8);
constexpr auto kRecoveryRestartAt = seconds(14);

SeedRecord run_recovery(const Unit& unit, std::size_t requests) {
  harness::ScenarioConfig config;
  config.seed = unit.seed;
  config.num_primaries = 2;
  config.num_secondaries = 2;
  config.lazy_update_interval = seconds(2);
  for (int c = 0; c < 2; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 2,
                .deadline = milliseconds(250),
                .min_probability = 0.5},
        .request_delay = milliseconds(150),
        .num_requests = requests,
    });
  }
  harness::Scenario scenario(std::move(config));
  UnitTelemetry telemetry(scenario);

  fault::FaultSchedule plan;
  plan.crash_restart(kRecoveryVictim, kRecoveryCrashAt, kRecoveryRestartAt);
  scenario.apply_faults(plan);

  auto run = scenario.run();
  const auto& reborn = scenario.replica(kRecoveryVictim);

  SeedRecord rec;
  const double recovered_s =
      reborn.recovered_at() > sim::kEpoch
          ? sim::to_sec(reborn.recovered_at() - sim::kEpoch)
          : -1.0;
  const double restart_s = sim::to_sec(sim::Duration(kRecoveryRestartAt));
  const double rejoin =
      recovered_s < 0.0 ? -1.0 : recovered_s - restart_s;
  const double first_selection =
      reborn.first_read_request_at() > sim::kEpoch
          ? sim::to_sec(reborn.first_read_request_at() - sim::kEpoch) -
                restart_s
          : -1.0;
  rec.value("time_to_rejoin_s", rejoin);
  rec.value("time_to_first_selection_s", first_selection);
  if (rejoin >= 0.0) rec.sample("rejoin_s", {rejoin});
  if (first_selection >= 0.0) rec.sample("first_selection_s", {first_selection});

  // Attribute every completed read to the outage window or steady state.
  const double outage_from = sim::to_sec(sim::Duration(kRecoveryCrashAt));
  const double outage_until =
      recovered_s < 0.0 ? sim::to_sec(scenario.executor().now() - sim::kEpoch)
                        : recovered_s;
  std::uint64_t reads_completed = 0, reads_abandoned = 0;
  std::uint64_t outage_reads = 0, outage_failures = 0;
  std::uint64_t steady_reads = 0, steady_failures = 0;
  for (const auto& client : run) {
    reads_completed += client.stats.reads_completed;
    reads_abandoned += client.stats.reads_abandoned;
    for (std::size_t i = 0; i < client.read_completed_at.size(); ++i) {
      const bool in_outage = client.read_completed_at[i] >= outage_from &&
                             client.read_completed_at[i] < outage_until;
      const bool failed = client.read_timing_failures[i];
      (in_outage ? outage_reads : steady_reads) += 1;
      if (failed) (in_outage ? outage_failures : steady_failures) += 1;
    }
  }
  std::uint64_t conflicts = 0;
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    conflicts += scenario.replica(i).stats().gsn_conflicts;
  }
  rec.counter("reads_completed", reads_completed);
  rec.counter("reads_abandoned", reads_abandoned);
  rec.counter("outage_reads", outage_reads);
  rec.counter("outage_failures", outage_failures);
  rec.counter("steady_reads", steady_reads);
  rec.counter("steady_failures", steady_failures);
  rec.counter("gsn_conflicts", conflicts);
  rec.counter("recovered", rejoin >= 0.0 ? 1 : 0);
  rec.counter("selected", first_selection >= 0.0 ? 1 : 0);
  telemetry.report(scenario, rec);
  return rec;
}

// ------------------------------------------------------- failure injection

fault::FaultSchedule failure_schedule(std::size_t point) {
  fault::FaultSchedule schedule;
  switch (point) {
    case 0:  // baseline — no failures
      break;
    case 1:  // primary crash
      schedule.crash(2, seconds(100));
      break;
    case 2:  // two secondary crashes
      schedule.crash(6, seconds(100)).crash(8, seconds(100));
      break;
    case 3:  // sequencer crash
      schedule.crash(0, seconds(100));
      break;
    case 4:  // primary crash + recovery
      schedule.crash_restart(2, seconds(100), seconds(115));
      break;
  }
  return schedule;
}

SeedRecord run_failure_injection(const Unit& unit, std::size_t requests) {
  harness::ScenarioConfig config;
  config.seed = unit.seed;
  config.lazy_update_interval = seconds(2);
  for (int c = 0; c < 2; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = c == 0 ? 4u : 2u,
                .deadline = milliseconds(c == 0 ? 200 : 140),
                .min_probability = c == 0 ? 0.1 : 0.9},
        .request_delay = milliseconds(1000),
        .num_requests = requests,
    });
  }
  harness::Scenario scenario(std::move(config));
  UnitTelemetry telemetry(scenario);
  scenario.apply_faults(failure_schedule(unit.point));
  auto results = scenario.run();
  const auto& stats = results[1].stats;  // the tight-QoS client

  std::uint64_t conflicts = 0;
  std::uint64_t reborn = 0;  // restarted slots (fresh incarnations)
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    conflicts += scenario.replica(i).stats().gsn_conflicts;
    reborn += scenario.incarnation(i);
  }
  SeedRecord rec;
  rec.value("avg_replicas_selected", stats.avg_replicas_selected());
  rec.counter("reads_completed", stats.reads_completed);
  rec.counter("reads_abandoned", stats.reads_abandoned);
  rec.counter("timing_failures", stats.timing_failures);
  rec.counter("retries", stats.retries);
  rec.counter("staleness_violations", results[0].stats.staleness_violations +
                                          stats.staleness_violations);
  rec.counter("reborn", reborn);
  rec.counter("gsn_conflicts", conflicts);
  telemetry.report(scenario, rec);
  return rec;
}

// --------------------------------------------------------- fig4 adaptivity

struct Fig4Config {
  double pc;
  sim::Duration lui;
  std::string label() const {
    return "(prob: " + harness::Table::num(pc, 1) +
           ", LUI: " + harness::Table::num(sim::to_sec(lui), 0) + " secs)";
  }
};

const std::vector<Fig4Config>& fig4_configs() {
  static const std::vector<Fig4Config> configs = {
      {0.9, seconds(4)},
      {0.5, seconds(4)},
      {0.9, seconds(2)},
      {0.5, seconds(2)},
  };
  return configs;
}

const std::vector<int>& fig4_deadlines_ms() {
  static const std::vector<int> deadlines = {80,  100, 120, 140,
                                             160, 180, 200, 220};
  return deadlines;
}

SeedRecord run_fig4(const Unit& unit, std::size_t requests) {
  const auto& configs = fig4_configs();
  const auto& deadlines = fig4_deadlines_ms();
  const Fig4Config& c = configs[unit.point % configs.size()];
  const int deadline_ms = deadlines[unit.point / configs.size()];

  harness::ScenarioConfig config;
  config.seed = unit.seed;
  config.lazy_update_interval = c.lui;
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 4,
              .deadline = milliseconds(200),
              .min_probability = 0.1},
      .request_delay = milliseconds(1000),
      .num_requests = requests,
  });
  config.clients.push_back(harness::ClientSpec{
      .qos = {.staleness_threshold = 2,
              .deadline = milliseconds(deadline_ms),
              .min_probability = c.pc},
      .request_delay = milliseconds(1000),
      .num_requests = requests,
  });
  harness::Scenario scenario(std::move(config));
  UnitTelemetry telemetry(scenario);
  auto results = scenario.run();
  const auto& stats = results[1].stats;  // client 2 is the measured client

  SeedRecord rec;
  rec.value("deadline_ms", static_cast<double>(deadline_ms));
  rec.value("pc", c.pc);
  rec.value("lui_s", sim::to_sec(c.lui));
  rec.value("avg_replicas_selected", stats.avg_replicas_selected());
  rec.value("deferred_fraction",
            stats.reads_completed == 0
                ? 0.0
                : static_cast<double>(stats.deferred_replies) /
                      static_cast<double>(stats.reads_completed));
  rec.counter("reads_completed", stats.reads_completed);
  rec.counter("reads_abandoned", stats.reads_abandoned);
  rec.counter("timing_failures", stats.timing_failures);
  rec.counter("staleness_violations", stats.staleness_violations);
  rec.counter("deferred_replies", stats.deferred_replies);
  std::vector<double> read_ms;
  read_ms.reserve(results[1].read_response_times.size());
  for (const double s : results[1].read_response_times) {
    read_ms.push_back(s * 1000.0);
  }
  rec.sample("read_ms", std::move(read_ms));
  telemetry.report(scenario, rec);
  return rec;
}

// ------------------------------------------------------------ chaos suites

/// Shared invariant distillation: liveness, staleness, GSN uniqueness,
/// exactly-once commits, committed-prefix convergence. Violation counters
/// stay 0 on a healthy run; the chaos tests assert exactly that.
struct ChaosInvariants {
  std::uint64_t liveness_violations = 0;
  std::uint64_t staleness_violations = 0;
  std::uint64_t gsn_conflicts = 0;
  std::uint64_t csn_mismatches = 0;
  std::uint64_t divergences = 0;

  void report(SeedRecord& rec) const {
    rec.counter("liveness_violations", liveness_violations);
    rec.counter("staleness_violations", staleness_violations);
    rec.counter("gsn_conflicts", gsn_conflicts);
    rec.counter("csn_mismatches", csn_mismatches);
    rec.counter("divergences", divergences);
    rec.counter("violations", liveness_violations + staleness_violations +
                                  gsn_conflicts + csn_mismatches +
                                  divergences);
  }
};

harness::ScenarioConfig chaos_config(std::uint64_t seed,
                                     std::size_t num_primaries,
                                     std::size_t num_secondaries,
                                     std::size_t requests) {
  harness::ScenarioConfig config;
  config.seed = seed;
  config.num_primaries = num_primaries;
  config.num_secondaries = num_secondaries;
  config.lazy_update_interval = seconds(2);
  for (int c = 0; c < 2; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 2,
                .deadline = milliseconds(200),
                .min_probability = 0.5},
        .request_delay = milliseconds(200),
        .num_requests = requests,
    });
  }
  return config;
}

/// Randomized loss + crashes (no restarts): the original ChaosProperty
/// suite. Crash candidates avoid primary 1 and the last secondary so the
/// service always stays alive.
SeedRecord run_chaos(const Unit& unit, std::size_t requests) {
  harness::Scenario scenario(chaos_config(unit.seed, 3, 3, requests));
  UnitTelemetry telemetry(scenario);

  sim::Rng chaos(unit.seed * 7919 + 13);
  fault::FaultSchedule plan;
  plan.loss(0.10, seconds(5)).loss(0.0, seconds(25));
  const std::size_t crashes = 1 + chaos.uniform_int(2);
  std::vector<std::size_t> crashed;
  for (std::size_t i = 0; i < crashes; ++i) {
    const std::size_t candidates[] = {0, 2, 3, 4, 5};
    const std::size_t victim = candidates[chaos.uniform_int(5)];
    if (std::find(crashed.begin(), crashed.end(), victim) != crashed.end()) {
      continue;
    }
    crashed.push_back(victim);
    plan.crash(victim, seconds(8 + 10 * static_cast<int>(i)));
  }
  scenario.apply_faults(plan);

  auto results = scenario.run();

  ChaosInvariants inv;
  const std::uint64_t expected_reads = requests / 2;
  for (const auto& r : results) {
    if (r.stats.reads_completed + r.stats.reads_abandoned != expected_reads) {
      ++inv.liveness_violations;
    }
    inv.staleness_violations += r.stats.staleness_violations;
  }
  std::uint64_t max_csn = 0;
  for (std::size_t i = 0; i <= 3; ++i) {
    if (std::find(crashed.begin(), crashed.end(), i) != crashed.end()) continue;
    const auto& replica = scenario.replica(i);
    inv.gsn_conflicts += replica.stats().gsn_conflicts;
    const auto& store =
        dynamic_cast<const replication::KeyValueStore&>(replica.object());
    if (store.version() != replica.csn()) ++inv.csn_mismatches;
    max_csn = std::max(max_csn, replica.csn());
  }
  for (std::size_t i = 1; i <= 3; ++i) {
    if (std::find(crashed.begin(), crashed.end(), i) != crashed.end()) continue;
    if (scenario.replica(i).csn() + 2 < max_csn) ++inv.divergences;
  }
  SeedRecord rec;
  inv.report(rec);
  telemetry.report(scenario, rec);
  return rec;
}

/// Crash-then-recover chaos: every crash is followed by a seed-derived
/// restart, so the invariants must hold across reincarnations.
SeedRecord run_chaos_recovery(const Unit& unit, std::size_t requests) {
  harness::Scenario scenario(chaos_config(unit.seed, 2, 3, requests));
  UnitTelemetry telemetry(scenario);

  fault::RandomFaultParams params;
  params.crash_candidates = scenario.num_replicas();
  params.min_crashes = 1;
  params.max_crashes = 2;
  params.earliest_crash = seconds(6);
  params.crash_spacing = seconds(10);
  params.min_outage = seconds(4);
  params.max_outage = seconds(10);
  params.loss_probability = 0.05;
  params.loss_from = seconds(5);
  params.loss_until = seconds(20);
  scenario.apply_faults(
      fault::FaultSchedule::random(unit.seed * 7919 + 13, params));

  auto results = scenario.run();

  ChaosInvariants inv;
  const std::uint64_t expected_reads = requests / 2;
  for (const auto& r : results) {
    if (r.stats.reads_completed + r.stats.reads_abandoned != expected_reads) {
      ++inv.liveness_violations;
    }
    inv.staleness_violations += r.stats.staleness_violations;
  }
  std::uint64_t max_csn = 0;
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    const auto& replica = scenario.replica(i);
    inv.gsn_conflicts += replica.stats().gsn_conflicts;
    if (replica.crashed() || !replica.is_primary() || replica.recovering()) {
      continue;
    }
    const auto& store =
        dynamic_cast<const replication::KeyValueStore&>(replica.object());
    if (store.version() != replica.csn()) ++inv.csn_mismatches;
    max_csn = std::max(max_csn, replica.csn());
  }
  for (std::size_t i = 1; i <= 2; ++i) {
    const auto& replica = scenario.replica(i);
    if (replica.crashed() || replica.recovering()) continue;
    if (replica.csn() + 2 < max_csn) ++inv.divergences;
  }
  SeedRecord rec;
  inv.report(rec);
  telemetry.report(scenario, rec);
  return rec;
}

// ------------------------------------------------------------ gray failures

/// Invariant collection shared by the gray plans: no replica crashes in
/// them, so every replica is checked and primaries must agree on the
/// committed prefix.
ChaosInvariants collect_gray_invariants(
    harness::Scenario& scenario,
    const std::vector<harness::ClientResult>& results,
    std::uint64_t expected_reads) {
  ChaosInvariants inv;
  for (const auto& r : results) {
    if (r.stats.reads_completed + r.stats.reads_abandoned != expected_reads) {
      ++inv.liveness_violations;
    }
    inv.staleness_violations += r.stats.staleness_violations;
  }
  std::uint64_t max_csn = 0;
  const std::size_t num_primaries = 3;  // chaos_config(…, 3, 3, …) layout
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    inv.gsn_conflicts += scenario.replica(i).stats().gsn_conflicts;
  }
  for (std::size_t i = 0; i <= num_primaries; ++i) {
    const auto& replica = scenario.replica(i);
    const auto& store =
        dynamic_cast<const replication::KeyValueStore&>(replica.object());
    if (store.version() != replica.csn()) ++inv.csn_mismatches;
    max_csn = std::max(max_csn, replica.csn());
  }
  for (std::size_t i = 1; i <= num_primaries; ++i) {
    if (scenario.replica(i).csn() + 2 < max_csn) ++inv.divergences;
  }
  return inv;
}

constexpr auto kGrayOnset = seconds(5);
constexpr auto kGrayHealAt = seconds(18);

/// Severity ladder for the gray_failure plan. Each point layers more
/// degradation onto the same window [kGrayOnset, kGrayHealAt): reordering
/// and duplication first, then a slow-but-alive primary with lossy
/// sequencer links, then a partial partition plus a throttled link.
fault::FaultSchedule gray_severity_schedule(std::size_t point) {
  fault::FaultSchedule plan;
  const auto window = kGrayHealAt - kGrayOnset;
  switch (point) {
    case 0:  // baseline — no degradation
      break;
    case 1:  // mild
      plan.reorder(0.10, milliseconds(20), kGrayOnset)
          .duplicate_storm(0.05, kGrayOnset);
      break;
    case 2:  // moderate
      plan.reorder(0.20, milliseconds(30), kGrayOnset)
          .duplicate_storm(0.10, kGrayOnset)
          .latency_spike(2, milliseconds(3), milliseconds(1), kGrayOnset,
                         window)
          .degrade_link(0, 2, milliseconds(2), milliseconds(1), 0.05,
                        kGrayOnset)
          .degrade_link(2, 0, milliseconds(2), milliseconds(1), 0.05,
                        kGrayOnset);
      break;
    case 3:  // severe
      plan.reorder(0.30, milliseconds(40), kGrayOnset)
          .duplicate_storm(0.25, kGrayOnset)
          .latency_spike(2, milliseconds(4), milliseconds(2), kGrayOnset,
                         window)
          .degrade_link(0, 2, milliseconds(3), milliseconds(1), 0.10,
                        kGrayOnset)
          .degrade_link(2, 0, milliseconds(3), milliseconds(1), 0.10,
                        kGrayOnset)
          .throttle_link(0, 3, milliseconds(2), kGrayOnset)
          .partial_partition(2, 5, kGrayOnset + seconds(1), seconds(6));
      break;
  }
  plan.heal_gray(kGrayHealAt);
  return plan;
}

/// Severity ladder: timing-failure rate inside vs outside the degradation
/// window and time-to-detect (first deadline miss after onset), with the
/// safety counters that must pool to 0. The chaos decorator wraps the
/// loopback, so the whole trajectory stays a pure function of the seed.
SeedRecord run_gray_failure(const Unit& unit, std::size_t requests) {
  harness::ScenarioConfig config = chaos_config(unit.seed, 3, 3, requests);
  config.chaos = true;
  harness::Scenario scenario(std::move(config));
  UnitTelemetry telemetry(scenario);
  scenario.apply_faults(gray_severity_schedule(unit.point));

  auto results = scenario.run();

  const double onset_s = sim::to_sec(sim::Duration(kGrayOnset));
  const double heal_s = sim::to_sec(sim::Duration(kGrayHealAt));
  std::uint64_t degraded_reads = 0, degraded_failures = 0;
  std::uint64_t steady_reads = 0, steady_failures = 0;
  double detect_s = -1.0;
  for (const auto& client : results) {
    for (std::size_t i = 0; i < client.read_completed_at.size(); ++i) {
      const double t = client.read_completed_at[i];
      const bool degraded = unit.point > 0 && t >= onset_s && t < heal_s;
      const bool failed = client.read_timing_failures[i];
      (degraded ? degraded_reads : steady_reads) += 1;
      if (failed) {
        (degraded ? degraded_failures : steady_failures) += 1;
        if (degraded && (detect_s < 0.0 || t - onset_s < detect_s)) {
          detect_s = t - onset_s;
        }
      }
    }
  }

  SeedRecord rec;
  rec.value("severity", static_cast<double>(unit.point));
  rec.counter("degraded_reads", degraded_reads);
  rec.counter("degraded_failures", degraded_failures);
  rec.counter("steady_reads", steady_reads);
  rec.counter("steady_failures", steady_failures);
  rec.counter("detected", detect_s >= 0.0 ? 1 : 0);
  if (detect_s >= 0.0) rec.sample("time_to_detect_s", {detect_s});

  const net::TransportStats ts = scenario.transport_stats();
  rec.counter("messages_duplicated", ts.messages_duplicated);
  rec.counter("messages_reordered", ts.messages_reordered);
  rec.counter("messages_delayed", ts.messages_delayed);
  rec.counter("messages_dropped_loss", ts.messages_dropped_loss);

  collect_gray_invariants(scenario, results, requests / 2).report(rec);
  telemetry.report(scenario, rec);
  return rec;
}

/// Seed-randomized gray chaos: reordering + duplication + a degraded link
/// + a partial partition, all healed before the run ends. The gtest suite
/// fans this across 12 seeds and asserts the invariants pool to 0.
SeedRecord run_gray_chaos(const Unit& unit, std::size_t requests) {
  harness::ScenarioConfig config = chaos_config(unit.seed, 3, 3, requests);
  config.chaos = true;
  harness::Scenario scenario(std::move(config));
  UnitTelemetry telemetry(scenario);

  sim::Rng gray(unit.seed * 6271 + 17);
  const std::size_t num_replicas = scenario.num_replicas();
  fault::FaultSchedule plan;
  plan.reorder(0.05 + 0.25 * gray.uniform(),
               milliseconds(10 + gray.uniform_int(40)), seconds(4));
  plan.duplicate_storm(0.02 + 0.18 * gray.uniform(), seconds(4));
  plan.loss(0.05, seconds(4));
  const std::size_t from = gray.uniform_int(num_replicas);
  std::size_t to = gray.uniform_int(num_replicas);
  if (to == from) to = (to + 1) % num_replicas;
  plan.degrade_link(from, to, milliseconds(1 + gray.uniform_int(3)),
                    milliseconds(1), 0.05, seconds(5));
  // Partial partition between a primary and a secondary, healed after 5s.
  plan.partial_partition(1 + gray.uniform_int(3), 4 + gray.uniform_int(3),
                         seconds(6), seconds(5));
  plan.heal_gray(seconds(14));
  scenario.apply_faults(plan);

  auto results = scenario.run();

  SeedRecord rec;
  const net::TransportStats ts = scenario.transport_stats();
  rec.counter("messages_duplicated", ts.messages_duplicated);
  rec.counter("messages_reordered", ts.messages_reordered);
  rec.counter("messages_delayed", ts.messages_delayed);
  rec.counter("messages_dropped_loss", ts.messages_dropped_loss);
  collect_gray_invariants(scenario, results, requests / 2).report(rec);
  telemetry.report(scenario, rec);
  return rec;
}

// ------------------------------------------------------------ shard plans

/// Invariants of a sharded run. On top of the chaos counters (checked per
/// shard — groups are independent, so agreement is intra-shard), the
/// placement invariant: a replica's store may only ever hold keys its
/// shard owns. Any cross-shard GSN/key leakage pools into `violations`.
struct ShardInvariants {
  std::uint64_t liveness_violations = 0;
  std::uint64_t staleness_violations = 0;
  std::uint64_t gsn_conflicts = 0;
  std::uint64_t csn_mismatches = 0;
  std::uint64_t divergences = 0;
  /// Keys found in some replica's store that the ShardMap places on a
  /// different shard.
  std::uint64_t leaked_keys = 0;

  void report(SeedRecord& rec) const {
    rec.counter("liveness_violations", liveness_violations);
    rec.counter("staleness_violations", staleness_violations);
    rec.counter("gsn_conflicts", gsn_conflicts);
    rec.counter("csn_mismatches", csn_mismatches);
    rec.counter("divergences", divergences);
    rec.counter("leaked_keys", leaked_keys);
    rec.counter("violations", liveness_violations + staleness_violations +
                                  gsn_conflicts + csn_mismatches + divergences +
                                  leaked_keys);
  }
};

ShardInvariants collect_shard_invariants(
    harness::Scenario& scenario,
    const std::vector<harness::ClientResult>& results,
    std::uint64_t expected_reads) {
  ShardInvariants inv;
  for (const auto& r : results) {
    if (r.stats.reads_completed + r.stats.reads_abandoned != expected_reads) {
      ++inv.liveness_violations;
    }
    inv.staleness_violations += r.stats.staleness_violations;
  }
  const std::size_t sps = scenario.servers_per_shard();
  for (std::size_t shard = 0; shard < scenario.num_shards(); ++shard) {
    std::uint64_t max_csn = 0;
    for (std::size_t slot = 0; slot < sps; ++slot) {
      const auto& replica = scenario.replica(scenario.slot_index(shard, slot));
      inv.gsn_conflicts += replica.stats().gsn_conflicts;
      // Placement: every stored key must hash to this shard, crashed or
      // not — a misplaced key means an update crossed group boundaries.
      const auto& store =
          dynamic_cast<const replication::KeyValueStore&>(replica.object());
      for (const auto& [key, value] : store.entries()) {
        if (scenario.shard_map().shard_for(key) != shard) ++inv.leaked_keys;
      }
      if (replica.crashed() || !replica.is_primary() || replica.recovering()) {
        continue;
      }
      if (store.version() != replica.csn()) ++inv.csn_mismatches;
      max_csn = std::max(max_csn, replica.csn());
    }
    // Committed-prefix agreement inside the shard (slot 0 = sequencer).
    for (std::size_t slot = 1; slot < sps; ++slot) {
      const auto& replica = scenario.replica(scenario.slot_index(shard, slot));
      if (replica.crashed() || !replica.is_primary() || replica.recovering()) {
        continue;
      }
      if (replica.csn() + 2 < max_csn) ++inv.divergences;
    }
  }
  return inv;
}

harness::ScenarioConfig shard_config(std::uint64_t seed, std::size_t shards,
                                     std::size_t requests) {
  harness::ScenarioConfig config;
  config.seed = seed;
  config.num_shards = shards;
  config.num_primaries = 1;
  config.num_secondaries = 1;
  config.lazy_update_interval = seconds(2);
  for (int c = 0; c < 2; ++c) {
    config.clients.push_back(harness::ClientSpec{
        .qos = {.staleness_threshold = 2,
                .deadline = milliseconds(250),
                .min_probability = 0.5},
        .request_delay = milliseconds(200),
        .num_requests = requests,
        .num_keys = 64,
    });
  }
  return config;
}

/// Per-shard routed request tallies across every workload client.
std::vector<std::uint64_t> routed_per_shard(harness::Scenario& scenario) {
  std::vector<std::uint64_t> routed(scenario.num_shards(), 0);
  for (std::size_t w = 0; w < scenario.num_workloads(); ++w) {
    const auto& router = scenario.workload(w).router();
    for (std::size_t k = 0; k < routed.size(); ++k) {
      routed[k] += router.route_stats(k).reads_routed +
                   router.route_stats(k).updates_routed;
    }
  }
  return routed;
}

constexpr std::size_t kShardScalingCounts[] = {1, 4, 16};

/// Same substrate, same workload, 1 → 4 → 16 replica groups: routing
/// balance, intra-shard agreement, and the placement invariant must hold
/// at every width.
SeedRecord run_shard_scaling(const Unit& unit, std::size_t requests) {
  const std::size_t shards = kShardScalingCounts[unit.point % 3];
  harness::Scenario scenario(shard_config(unit.seed, shards, requests));
  UnitTelemetry telemetry(scenario);
  auto results = scenario.run();

  std::uint64_t reads_completed = 0, reads_abandoned = 0;
  std::uint64_t timing_failures = 0, retries = 0, updates_completed = 0;
  std::vector<double> read_ms;
  for (const auto& r : results) {
    reads_completed += r.stats.reads_completed;
    reads_abandoned += r.stats.reads_abandoned;
    timing_failures += r.stats.timing_failures;
    retries += r.stats.retries;
    updates_completed += r.stats.updates_completed;
    for (const double s : r.read_response_times) read_ms.push_back(s * 1000.0);
  }
  const std::vector<std::uint64_t> routed = routed_per_shard(scenario);
  std::uint64_t total_routed = 0, max_routed = 0;
  for (const std::uint64_t r : routed) {
    total_routed += r;
    max_routed = std::max(max_routed, r);
  }
  const double mean_routed =
      static_cast<double>(total_routed) / static_cast<double>(routed.size());

  SeedRecord rec;
  rec.value("shards", static_cast<double>(shards));
  // max/mean shard load: 1.0 = perfectly uniform routing.
  rec.value("balance_ratio",
            mean_routed == 0.0 ? 0.0
                               : static_cast<double>(max_routed) / mean_routed);
  // Simulated-time span of the run, for deterministic throughput trends
  // (ops per simulated second; wall time is excluded from sweep JSON).
  rec.value("sim_end_s", sim::to_sec(scenario.executor().now() - sim::kEpoch));
  rec.counter("reads_completed", reads_completed);
  rec.counter("reads_abandoned", reads_abandoned);
  rec.counter("updates_completed", updates_completed);
  rec.counter("timing_failures", timing_failures);
  rec.counter("retries", retries);
  rec.sample("read_ms", std::move(read_ms));
  collect_shard_invariants(scenario, results, requests / 2).report(rec);
  telemetry.report(scenario, rec);
  return rec;
}

constexpr std::size_t kHotShardShards = 16;
constexpr auto kShardFaultOnset = seconds(5);
constexpr auto kShardFaultHeal = seconds(16);

/// Cross-shard fault matrix on a 16-shard pool: a uniform baseline, one
/// overloaded (hot) replica group, and a correlated rack failure taking
/// the same slot from every shard at once. Faults on one shard must never
/// bleed into another's agreement or placement invariants.
SeedRecord run_hot_shard(const Unit& unit, std::size_t requests) {
  harness::Scenario scenario(
      shard_config(unit.seed, kHotShardShards, requests));
  UnitTelemetry telemetry(scenario);

  // The hot group is whichever shard owns the workload's first key, so the
  // fault always lands on shard that actually serves traffic.
  const std::size_t hot = scenario.shard_map().shard_for("k0");
  fault::FaultSchedule plan;
  switch (unit.point) {
    case 0:  // uniform — no faults
      break;
    case 1:  // one overloaded replica group: the spike has to clear the
             // 250 ms deadline, or the hot shard is invisible to the QoS
             // contract and the degraded window carries no signal
      plan.hot_shard(hot, scenario.servers_per_shard(), milliseconds(300),
                     milliseconds(80), kShardFaultOnset,
                     kShardFaultHeal - kShardFaultOnset);
      break;
    case 2:  // shared rack: every shard loses its secondary, then recovers
      plan.correlated_rack_failure(/*rack_slot=*/2, kHotShardShards,
                                   kShardFaultOnset + seconds(1),
                                   kShardFaultHeal - seconds(4));
      break;
  }
  scenario.apply_faults(plan);
  auto results = scenario.run();

  const double onset_s = sim::to_sec(sim::Duration(kShardFaultOnset));
  const double heal_s = sim::to_sec(sim::Duration(kShardFaultHeal));
  std::uint64_t degraded_reads = 0, degraded_failures = 0;
  std::uint64_t steady_reads = 0, steady_failures = 0;
  for (const auto& client : results) {
    for (std::size_t i = 0; i < client.read_completed_at.size(); ++i) {
      const double t = client.read_completed_at[i];
      const bool degraded = unit.point > 0 && t >= onset_s && t < heal_s;
      const bool failed = client.read_timing_failures[i];
      (degraded ? degraded_reads : steady_reads) += 1;
      if (failed) (degraded ? degraded_failures : steady_failures) += 1;
    }
  }
  std::uint64_t reborn = 0;
  for (std::size_t i = 0; i < scenario.num_replicas(); ++i) {
    reborn += scenario.incarnation(i);
  }
  const std::vector<std::uint64_t> routed = routed_per_shard(scenario);
  std::uint64_t total_routed = 0;
  for (const std::uint64_t r : routed) total_routed += r;

  SeedRecord rec;
  rec.value("hot_shard", static_cast<double>(hot));
  rec.value("hot_fraction",
            total_routed == 0 ? 0.0
                              : static_cast<double>(routed[hot]) /
                                    static_cast<double>(total_routed));
  rec.counter("degraded_reads", degraded_reads);
  rec.counter("degraded_failures", degraded_failures);
  rec.counter("steady_reads", steady_reads);
  rec.counter("steady_failures", steady_failures);
  rec.counter("reborn", reborn);
  collect_shard_invariants(scenario, results, requests / 2).report(rec);
  telemetry.report(scenario, rec);
  return rec;
}

std::vector<Plan> build_plans() {
  std::vector<Plan> all;

  {
    Plan p;
    p.name = "recovery";
    p.description =
        "primary crash at t=8s, restart at t=14s: time-to-rejoin, "
        "time-to-first-selection, outage vs steady timing failures";
    p.default_requests = 300;
    p.points = {"crash_restart_primary"};
    p.binomials = {
        {"outage_timing_failure", "outage_failures", "outage_reads"},
        {"steady_timing_failure", "steady_failures", "steady_reads"},
    };
    p.run = run_recovery;
    all.push_back(std::move(p));
  }
  {
    Plan p;
    p.name = "failure_injection";
    p.description =
        "adaptivity under replica crashes: baseline, primary, two "
        "secondaries, sequencer, crash+recovery";
    p.default_requests = 400;
    p.points = {"baseline", "primary_crash", "two_secondary_crashes",
                "sequencer_crash", "primary_crash_recovery"};
    p.binomials = {
        {"timing_failure", "timing_failures", "reads_completed"},
    };
    p.run = run_failure_injection;
    all.push_back(std::move(p));
  }
  {
    Plan p;
    p.name = "fig4_adaptivity";
    p.description =
        "Figure 4 grid: 4 (Pc, LUI) configs x 8 deadlines, client 2 measured";
    p.default_requests = 1000;
    for (const int d : fig4_deadlines_ms()) {
      for (const Fig4Config& c : fig4_configs()) {
        p.points.push_back("d=" + std::to_string(d) + "ms " + c.label());
      }
    }
    p.binomials = {
        {"timing_failure", "timing_failures", "reads_completed"},
    };
    p.run = run_fig4;
    all.push_back(std::move(p));
  }
  {
    Plan p;
    p.name = "chaos";
    p.description =
        "randomized loss + crashes; safety/liveness invariant violations "
        "(must pool to 0)";
    p.default_requests = 80;
    p.points = {"crash_loss"};
    p.run = run_chaos;
    all.push_back(std::move(p));
  }
  {
    Plan p;
    p.name = "gray_failure";
    p.description =
        "gray-failure severity ladder (reorder/duplication/slow links/"
        "partial partition) over the chaos transport: timing-failure rate "
        "and time-to-detect vs severity; safety counters must pool to 0";
    p.default_requests = 120;
    p.points = {"baseline", "mild", "moderate", "severe"};
    p.binomials = {
        {"degraded_timing_failure", "degraded_failures", "degraded_reads"},
        {"steady_timing_failure", "steady_failures", "steady_reads"},
    };
    p.run = run_gray_failure;
    all.push_back(std::move(p));
  }
  {
    Plan p;
    p.name = "gray_chaos";
    p.description =
        "randomized reorder+duplication+partial-partition gray chaos over "
        "the chaos transport; invariant violations must pool to 0";
    p.default_requests = 80;
    p.points = {"gray"};
    p.run = run_gray_chaos;
    all.push_back(std::move(p));
  }
  {
    Plan p;
    p.name = "shard_scaling";
    p.description =
        "sharded service at 1/4/16 replica groups (sequencer + 1 primary + "
        "1 secondary each) on one substrate: routing balance, intra-shard "
        "agreement, and key-placement invariants (must pool to 0)";
    p.default_requests = 120;
    p.points = {"shards_1", "shards_4", "shards_16"};
    p.binomials = {
        {"timing_failure", "timing_failures", "reads_completed"},
    };
    p.run = run_shard_scaling;
    all.push_back(std::move(p));
  }
  {
    Plan p;
    p.name = "hot_shard";
    p.description =
        "cross-shard fault matrix on a 16-shard pool: uniform baseline, one "
        "hot (overloaded) replica group, correlated rack failure; "
        "per-window failure rates plus agreement/placement invariants "
        "(must pool to 0)";
    p.default_requests = 120;
    p.points = {"uniform", "hot_shard", "correlated_rack"};
    p.binomials = {
        {"degraded_timing_failure", "degraded_failures", "degraded_reads"},
        {"steady_timing_failure", "steady_failures", "steady_reads"},
    };
    p.run = run_hot_shard;
    all.push_back(std::move(p));
  }
  {
    Plan p;
    p.name = "chaos_recovery";
    p.description =
        "randomized crash+restart chaos; invariants across reincarnations "
        "(must pool to 0)";
    p.default_requests = 80;
    p.points = {"crash_restart_loss"};
    p.run = run_chaos_recovery;
    all.push_back(std::move(p));
  }
  return all;
}

}  // namespace

const std::vector<Plan>& plans() {
  static const std::vector<Plan> all = build_plans();
  return all;
}

const Plan* find_plan(const std::string& name) {
  for (const Plan& p : plans()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

SweepSpec make_spec(const Plan& plan, std::uint64_t seed_begin,
                    std::size_t seed_count, std::size_t threads,
                    std::size_t requests) {
  const std::size_t effective_requests =
      requests == 0 ? plan.default_requests : requests;
  SweepSpec spec;
  spec.name = plan.name;
  spec.threads = threads;
  spec.binomials = plan.binomials;
  for (std::size_t point = 0; point < plan.points.size(); ++point) {
    for (std::uint64_t s = 0; s < seed_count; ++s) {
      Unit unit;
      unit.seed = seed_begin + s;
      unit.point = point;
      unit.label = plan.points.size() == 1
                       ? "seed_" + std::to_string(unit.seed)
                       : plan.points[point] + " seed_" + std::to_string(unit.seed);
      spec.units.push_back(std::move(unit));
    }
  }
  const auto run_body = plan.run;
  spec.run = [run_body, effective_requests](const Unit& unit) {
    return run_body(unit, effective_requests);
  };
  return spec;
}

}  // namespace aqueduct::runner
