#include "runner/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <ostream>
#include <sstream>
#include <thread>

#include "obs/json.hpp"
#include "sim/check.hpp"

namespace aqueduct::runner {

namespace {

/// Insertion-ordered accumulation keyed by name: deterministic pooled
/// output without depending on map iteration order.
template <typename T>
void accumulate(std::vector<std::pair<std::string, T>>& pool,
                const std::string& name, const T& v) {
  for (auto& [n, total] : pool) {
    if (n == name) {
      total += v;
      return;
    }
  }
  pool.emplace_back(name, v);
}

void write_row(obs::JsonWriter& w, const Unit& unit, const SeedRecord& row,
               const std::vector<double>& percentiles) {
  w.begin_object();
  w.field("name", unit.label);
  w.field("seed", unit.seed);
  w.field("point", static_cast<std::uint64_t>(unit.point));
  w.field("ok", row.ok);
  if (!row.ok) w.field("error", row.error);
  for (const auto& [name, v] : row.values) w.field(name, v);
  for (const auto& [name, v] : row.counters) w.field(name, v);
  for (const auto& [name, v] : row.texts) w.field(name, v);
  for (const auto& [name, samples] : row.samples) {
    w.key(name);
    w.begin_object();
    w.field("count", static_cast<std::uint64_t>(samples.size()));
    double sum = 0.0;
    for (const double s : samples) sum += s;
    w.field("mean", samples.empty() ? 0.0 : sum / static_cast<double>(samples.size()));
    for (const double q : percentiles) {
      std::ostringstream key;
      key << "p" << static_cast<int>(q * 100.0 + 0.5);
      w.field(key.str(), harness::percentile(samples, q));
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::uint64_t SeedRecord::counter_or_zero(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double SeedRecord::value_or(const std::string& name, double fallback) const {
  for (const auto& [n, v] : values) {
    if (n == name) return v;
  }
  return fallback;
}

std::uint64_t SweepResult::pooled_counter_or_zero(
    const std::string& name) const {
  for (const auto& [n, v] : pooled_counters) {
    if (n == name) return v;
  }
  return 0;
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opts) {
  AQUEDUCT_CHECK_MSG(static_cast<bool>(spec.run), "SweepSpec::run is empty");
  const std::size_t total = spec.units.size();
  SweepResult result;
  result.rows.resize(total);
  result.threads_used =
      std::max<std::size_t>(1, std::min(resolve_threads(spec.threads), total));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failed{0};

  // Workers pull the next unclaimed unit index and write into its dedicated
  // slot — no two threads ever touch the same row, and the merge below
  // reads rows strictly in unit order.
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      SeedRecord rec;
      try {
        rec = spec.run(spec.units[i]);
        rec.ok = true;
      } catch (const std::exception& e) {
        rec = SeedRecord{};
        rec.ok = false;
        rec.error = e.what();
        failed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        rec = SeedRecord{};
        rec.ok = false;
        rec.error = "unknown exception";
        failed.fetch_add(1, std::memory_order_relaxed);
      }
      result.rows[i] = std::move(rec);
      done.fetch_add(1, std::memory_order_release);
    }
  };

  const auto publish = [&](std::size_t d, std::size_t f) {
    if (opts.metrics != nullptr) {
      opts.metrics->gauge("sweep_units_total").set(static_cast<double>(total));
      opts.metrics->gauge("sweep_units_done").set(static_cast<double>(d));
      opts.metrics->gauge("sweep_units_failed").set(static_cast<double>(f));
    }
    if (opts.on_progress) opts.on_progress(d, f, total);
  };

  const auto t0 = std::chrono::steady_clock::now();
  publish(0, 0);
  if (result.threads_used == 1) {
    // Oracle path: everything on the calling thread, no pool at all.
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(result.threads_used);
    for (std::size_t t = 0; t < result.threads_used; ++t) {
      pool.emplace_back(worker);
    }
    // The coordinator owns all observable side effects while workers run:
    // metrics and progress callbacks fire only from this thread.
    while (done.load(std::memory_order_acquire) < total) {
      std::this_thread::sleep_for(opts.progress_interval);
      publish(done.load(std::memory_order_acquire),
              failed.load(std::memory_order_relaxed));
    }
    for (std::thread& t : pool) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.failed = failed.load(std::memory_order_relaxed);
  publish(total, result.failed);
  if (opts.metrics != nullptr) {
    opts.metrics->gauge("sweep_wall_seconds").set(result.wall_seconds);
  }

  // Deterministic merge: pooled aggregates walk rows in unit order.
  for (const SeedRecord& row : result.rows) {
    if (!row.ok) continue;
    for (const auto& [name, v] : row.counters) {
      accumulate(result.pooled_counters, name, v);
    }
  }
  for (const BinomialSpec& b : spec.binomials) {
    PooledBinomial pooled;
    pooled.label = b.label;
    for (const SeedRecord& row : result.rows) {
      if (!row.ok) continue;
      pooled.failures += row.counter_or_zero(b.failures);
      pooled.trials += row.counter_or_zero(b.trials);
    }
    pooled.ci = harness::binomial_ci_wilson(pooled.failures, pooled.trials);
    result.binomials.push_back(std::move(pooled));
  }
  // Pooled percentiles: concatenate per-row samples in unit order; the
  // percentile itself sorts, so this is order-insensitive anyway.
  std::vector<std::pair<std::string, std::vector<double>>> pooled_samples;
  for (const SeedRecord& row : result.rows) {
    if (!row.ok) continue;
    for (const auto& [name, samples] : row.samples) {
      bool found = false;
      for (auto& [n, all] : pooled_samples) {
        if (n == name) {
          all.insert(all.end(), samples.begin(), samples.end());
          found = true;
          break;
        }
      }
      if (!found) pooled_samples.emplace_back(name, samples);
    }
  }
  for (auto& [name, all] : pooled_samples) {
    PooledSamples p;
    p.name = name;
    p.count = all.size();
    double sum = 0.0;
    for (const double s : all) sum += s;
    p.mean = all.empty() ? 0.0 : sum / static_cast<double>(all.size());
    for (const double q : spec.percentiles) {
      p.quantiles.push_back(harness::percentile(all, q));
    }
    result.samples.push_back(std::move(p));
  }
  return result;
}

void write_sweep_json(std::ostream& os, const SweepSpec& spec,
                      const SweepResult& result) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("bench", spec.name);
  w.field("units", static_cast<std::uint64_t>(spec.units.size()));
  w.field("failed", static_cast<std::uint64_t>(result.failed));
  w.key("runs");
  w.begin_array();
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    write_row(w, spec.units[i], result.rows[i], spec.percentiles);
  }
  w.end_array();
  w.key("pooled");
  w.begin_object();
  for (const auto& [name, v] : result.pooled_counters) w.field(name, v);
  for (const PooledBinomial& b : result.binomials) {
    w.key(b.label);
    w.begin_object();
    w.field("failures", b.failures);
    w.field("trials", b.trials);
    w.field("rate", b.ci.point);
    w.field("ci_lower", b.ci.lower);
    w.field("ci_upper", b.ci.upper);
    w.end_object();
  }
  for (const PooledSamples& s : result.samples) {
    w.key(s.name);
    w.begin_object();
    w.field("count", static_cast<std::uint64_t>(s.count));
    w.field("mean", s.mean);
    for (std::size_t q = 0; q < s.quantiles.size(); ++q) {
      std::ostringstream key;
      key << "p" << static_cast<int>(spec.percentiles[q] * 100.0 + 0.5);
      w.field(key.str(), s.quantiles[q]);
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

std::string sweep_json(const SweepSpec& spec, const SweepResult& result) {
  std::ostringstream os;
  write_sweep_json(os, spec, result);
  return os.str();
}

}  // namespace aqueduct::runner
