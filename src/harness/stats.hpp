// Statistics helpers for the experiment harness.
//
// The paper reports 95% confidence intervals computed under the assumption
// that the number of timing failures follows a binomial distribution
// (Section 6, citing Johnson, Kotz & Kemp).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace aqueduct::harness {

struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;
};

/// Normal-approximation binomial CI: p ± z * sqrt(p(1-p)/n), clamped to
/// [0, 1]. z defaults to the 95% quantile.
ConfidenceInterval binomial_ci_normal(std::uint64_t successes,
                                      std::uint64_t trials, double z = 1.96);

/// Wilson score interval — better behaved for p near 0 or 1 and small n.
ConfidenceInterval binomial_ci_wilson(std::uint64_t successes,
                                      std::uint64_t trials, double z = 1.96);

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

Summary summarize(const std::vector<double>& values);

/// Percentile (0 <= q <= 1) of a copy-sorted sample; 0 for empty input.
double percentile(std::vector<double> values, double q);

}  // namespace aqueduct::harness
