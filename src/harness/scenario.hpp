// Experiment scenario: builds the full simulated testbed — transport, group
// communication, sequencer + primary + secondary replicas, and workload
// clients — and runs it to completion.
//
// The default configuration mirrors the paper's Section 6 setup: 10 server
// replicas plus a sequencer (4 primary, 6 secondary), service delay drawn
// from a normal distribution with mean 100 ms, two clients issuing 1000
// alternating write/read requests with a 1000 ms request delay.
//
// With `num_shards > 1` the scenario partitions the object space across
// that many independent replica groups (each with its own sequencer,
// primaries, and secondaries) sharing one transport, one directory, and one
// executor; clients route keyed requests through a shard::ShardRouter.
// `num_shards == 1` is byte-for-byte the pre-shard scenario: same
// construction order, same RNG draws, same metric names.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/handler.hpp"
#include "core/qos.hpp"
#include "core/selection.hpp"
#include "fault/dependability.hpp"
#include "fault/schedule.hpp"
#include "gcs/config.hpp"
#include "gcs/directory.hpp"
#include "gcs/endpoint.hpp"
#include "net/transport.hpp"
#include "obs/snapshot.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "replication/service.hpp"
#include "runtime/executor.hpp"
#include "shard/router.hpp"
#include "shard/shard_map.hpp"

namespace aqueduct::harness {

/// Factory so each client can use a different selection strategy.
using SelectorFactory = std::function<std::unique_ptr<core::ReplicaSelector>()>;

/// How a workload client paces its requests.
enum class Arrival {
  /// The paper's model: the next request is issued `request_delay` after
  /// the previous one *completes* (self-throttling).
  kClosedLoop,
  /// Open loop: requests arrive as a Poisson process with mean
  /// inter-arrival `request_delay`, regardless of completions — models
  /// external demand and exposes queueing behaviour.
  kOpenPoisson,
  /// Open loop with fixed inter-arrival `request_delay`.
  kOpenPeriodic,
};

struct ClientSpec {
  core::QoSSpec qos;
  /// Pacing parameter; meaning depends on `arrival`.
  sim::Duration request_delay = std::chrono::milliseconds(1000);
  /// Total requests issued, alternating write/read (even = write).
  std::size_t num_requests = 1000;
  /// Distinct keys the workload cycles over ("k0".."k<n-1>", request n
  /// touching key n % num_keys). In a sharded scenario the ShardMap
  /// spreads these keys across the replica groups.
  std::size_t num_keys = 16;
  /// Null = the paper's probabilistic selector (Algorithm 1).
  SelectorFactory selector;
  Arrival arrival = Arrival::kClosedLoop;
};

struct ScenarioConfig {
  std::uint64_t seed = 1;
  /// Which runtime drives the scenario. kSim (the default) reproduces the
  /// paper's discrete-event experiments deterministically; kRealTime runs
  /// the identical protocol stack against the wall clock (live_cli).
  runtime::Kind runtime = runtime::Kind::kSim;
  /// Independent replica groups the object space is partitioned across.
  /// Every shard gets its own sequencer + primaries + secondaries (the
  /// sizes below are per shard) on the shared substrate.
  std::size_t num_shards = 1;
  std::size_t num_primaries = 4;    // excluding the sequencer
  std::size_t num_secondaries = 6;
  /// Simulated background load: service delay ~ Normal(mean, std).
  sim::Duration service_mean = std::chrono::milliseconds(100);
  sim::Duration service_std = std::chrono::milliseconds(50);
  /// Lazy-update interval T_L.
  sim::Duration lazy_update_interval = std::chrono::seconds(4);
  /// LAN latency model: Normal(mean, std) truncated at 50 µs.
  sim::Duration net_latency_mean = std::chrono::microseconds(500);
  sim::Duration net_latency_std = std::chrono::microseconds(200);
  /// Sliding-window length l.
  std::size_t window_size = 20;
  /// Per-replica service-speed factors modelling a heterogeneous testbed
  /// (the paper's hosts ranged 300 MHz-1 GHz). Factor f scales the
  /// replica's service-time distribution by 1/f (2.0 = twice as fast).
  /// Indexed like replica(): flat over shards — shard s's sequencer is
  /// index s * (1 + primaries + secondaries), then its primaries, then its
  /// secondaries; missing entries default to 1.0.
  std::vector<double> speed_factors;
  gcs::Config gcs;
  std::vector<ClientSpec> clients;
  /// Safety cap on simulated (or, under kRealTime, wall-clock) time.
  sim::Duration max_sim_time = std::chrono::hours(24);
  /// Trailing run time after the workloads finish (or max_sim_time is
  /// reached) so late replies and final publications drain. Under
  /// kRealTime this is real seconds — live_cli shortens it.
  sim::Duration drain = std::chrono::seconds(2);
  /// Wraps the transport in the chaos decorator so fault schedules can
  /// script gray failures (degrade_link, partial_partition,
  /// duplicate_storm, reorder, throttle_link, WAN matrices) on top of the
  /// crash-era faults. Decisions are drawn from the run's seed.
  bool chaos = false;
  /// How long after a group evicts a still-running replica (gray failure:
  /// partial partition or slow link fooled the failure detector) the
  /// harness reincarnates the slot, modelling a process supervisor. The
  /// evicted server has already crash()ed itself; zero disables restarts.
  sim::Duration eviction_restart_delay = std::chrono::seconds(1);
};

/// Per-client results of a run.
struct ClientResult {
  client::ClientStats stats;
  /// Response times of completed reads (seconds), for percentiles.
  std::vector<double> read_response_times;
  /// Staleness values observed in read replies.
  std::vector<double> reply_staleness;
  /// Completion time of each read (seconds since the simulation epoch),
  /// parallel to read_response_times — lets benches attribute outcomes to
  /// an outage window.
  std::vector<double> read_completed_at;
  /// Whether each read missed its deadline, parallel to the above.
  std::vector<bool> read_timing_failures;
};

class WorkloadClient;

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Boots replicas and clients (staggered joins), then drives the
  /// simulation until every workload completed (or max_sim_time).
  /// Returns per-client results in ClientSpec order.
  std::vector<ClientResult> run();

  /// Schedules a fail-stop crash of the i-th replica at `at` (flat index:
  /// shard-major, slot 0 of each shard is its sequencer; see
  /// slot_index()).
  void schedule_crash(std::size_t replica_index, sim::TimePoint at);

  /// Schedules a restart (reincarnation + rejoin) of the i-th replica.
  void schedule_restart(std::size_t replica_index, sim::TimePoint at);

  /// Immediately crashes the i-th replica (no-op if already crashed).
  void crash_replica(std::size_t replica_index);

  /// Restarts the i-th replica slot now: crashes it if still live, destroys
  /// the dead server, reincarnates the endpoint under a fresh NodeId, and
  /// boots a new ReplicaServer that rejoins its shard's service groups and
  /// runs the state-transfer protocol. Callable any number of times per
  /// slot.
  void restart_replica(std::size_t replica_index);

  /// How many times the i-th replica slot has been reborn (0 = original).
  std::uint32_t incarnation(std::size_t replica_index) const;

  /// Current NodeId of the i-th replica slot (changes across restarts).
  net::NodeId replica_node(std::size_t replica_index) const;

  /// Live = started (or about to be, pre-run) and not crashed.
  bool replica_alive(std::size_t replica_index) const;

  /// Schedules every event of `schedule` onto this scenario's executor
  /// (crashes/restarts resolve against (shard, slot) replica slots;
  /// network faults against the current incarnations' NodeIds). Call
  /// before run().
  void apply_faults(const fault::FaultSchedule& schedule);

  /// Installs a dependability manager that polls the replication level and
  /// restarts crashed slots with bounded latency. Call before run().
  void enable_dependability(fault::DependabilityConfig config);
  const fault::DependabilityManager* dependability() const {
    return dependability_.get();
  }

  /// Shard 0's sequencer (the only one pre-shard code knew about).
  std::size_t index_sequencer() const { return 0; }
  /// Sequencer slot of shard `shard`.
  std::size_t index_sequencer(std::size_t shard) const {
    return shard * servers_per_shard();
  }
  std::size_t num_replicas() const { return replicas_.size(); }

  // ---- shard topology ----
  std::size_t num_shards() const { return config_.num_shards; }
  /// Server slots per shard: sequencer + primaries + secondaries.
  std::size_t servers_per_shard() const {
    return 1 + config_.num_primaries + config_.num_secondaries;
  }
  /// Flat replica index of shard `shard`'s `slot`-th server.
  std::size_t slot_index(std::size_t shard, std::size_t slot) const {
    return shard * servers_per_shard() + slot;
  }
  /// Shard that owns flat replica index `replica_index`.
  std::size_t shard_of(std::size_t replica_index) const {
    return replica_index / servers_per_shard();
  }
  /// The key-placement ring clients route by (seeded from config.seed).
  const shard::ShardMap& shard_map() const { return shard_map_; }
  /// Shard `shard`'s gcs group ids.
  const replication::ServiceGroups& groups(std::size_t shard = 0) const {
    return groups_.at(shard);
  }

  runtime::Executor& executor() { return *exec_; }
  replication::ReplicaServer& replica(std::size_t index) { return *replicas_.at(index); }
  std::size_t num_workloads() const { return workloads_.size(); }
  WorkloadClient& workload(std::size_t index) { return *workloads_.at(index); }
  /// Snapshot of the transport counters (assembled from the metrics
  /// registry).
  net::TransportStats transport_stats() const { return transport_->stats(); }
  /// The transport every scenario process is attached to (a loopback,
  /// chaos-wrapped when config.chaos is set).
  net::Transport& transport() { return *transport_; }
  /// The simulation-wide metrics registry + trace hub. Register trace
  /// sinks here before run().
  obs::Observability& observability() { return transport_->observability(); }

  /// Enables periodic telemetry: a MetricsSnapshotter on this scenario's
  /// executor capturing the registry every `period` (simulated time under
  /// kSim, wall time under kRealTime). Call before run(), then subscribe
  /// sinks on the returned snapshotter. run() starts it with the scenario
  /// and captures one final snapshot after the drain. Snapshot callbacks
  /// read metrics but never touch protocol state or the RNG, so enabling
  /// telemetry does not perturb the simulated trajectory.
  obs::MetricsSnapshotter& enable_telemetry(sim::Duration period);
  /// Null until enable_telemetry() is called.
  obs::MetricsSnapshotter* telemetry() { return snapshotter_.get(); }

 private:
  void build();
  /// Builds the ReplicaServer for flat slot `index` against `endpoint`
  /// (shard, role and speed factor derive from the index). Shared by
  /// build() and restart_replica().
  std::unique_ptr<replication::ReplicaServer> make_replica_server(
      std::size_t index, gcs::Endpoint& endpoint);
  /// Live servers of `index`'s shard, excluding `index` itself.
  std::size_t live_replicas_excluding(std::size_t index) const;
  std::size_t live_primaries_excluding(std::size_t index) const;
  /// Re-computes shard `shard`'s `shard<k>.replicas_live` gauge (no-op in
  /// single-shard mode, where the gauges are not registered).
  void refresh_live_gauge(std::size_t shard);

  ScenarioConfig config_;
  shard::ShardMap shard_map_;
  std::unique_ptr<runtime::Executor> exec_;
  std::unique_ptr<net::Transport> transport_;
  gcs::Directory directory_;
  /// groups_[k] = shard k's gcs group ids (service id 1 + k).
  std::vector<replication::ServiceGroups> groups_;
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints_;
  // Flat, shard-major: replicas_[slot_index(s, 0)] = shard s's sequencer,
  // then its primaries, then its secondaries.
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas_;
  std::vector<std::uint32_t> incarnations_;  // per replica slot
  std::vector<std::unique_ptr<WorkloadClient>> workloads_;
  std::vector<obs::Gauge*> live_gauges_;  // per shard; empty when 1 shard
  std::unique_ptr<fault::DependabilityManager> dependability_;
  std::unique_ptr<obs::MetricsSnapshotter> snapshotter_;
  bool ran_ = false;
};

/// Drives one client: issues `num_requests` alternating write/read
/// operations against the replicated key-value store (routed per key
/// through a ShardRouter), waiting `request_delay` after each completion
/// before issuing the next.
class WorkloadClient {
 public:
  WorkloadClient(runtime::Executor& exec, gcs::Endpoint& endpoint,
                 const shard::ShardMap& map,
                 std::vector<replication::ServiceGroups> groups,
                 ClientSpec spec, std::size_t window_size);

  void start();
  bool done() const { return completed_ >= spec_.num_requests; }
  /// Shard 0's handler — the only one in a single-shard scenario (kept so
  /// pre-shard tests and benches read repository/selector state as
  /// before).
  const client::ClientHandler& handler() const { return router_->handler(0); }
  client::ClientHandler& handler() { return router_->handler(0); }
  const shard::ShardRouter& router() const { return *router_; }
  shard::ShardRouter& router() { return *router_; }
  ClientResult result() const { return result_with_stats(); }

 private:
  ClientResult result_with_stats() const;
  void issue_next();
  void on_complete();
  void schedule_open_arrival();

  runtime::Executor& exec_;
  ClientSpec spec_;
  std::unique_ptr<shard::ShardRouter> router_;
  std::unique_ptr<sim::Rng> arrival_rng_;
  std::size_t issued_ = 0;
  std::size_t completed_ = 0;
  std::vector<double> read_response_times_;
  std::vector<double> reply_staleness_;
  std::vector<double> read_completed_at_;
  std::vector<bool> read_timing_failures_;
};

}  // namespace aqueduct::harness
