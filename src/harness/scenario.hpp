// Experiment scenario: builds the full simulated testbed — transport, group
// communication, sequencer + primary + secondary replicas, and workload
// clients — and runs it to completion.
//
// The default configuration mirrors the paper's Section 6 setup: 10 server
// replicas plus a sequencer (4 primary, 6 secondary), service delay drawn
// from a normal distribution with mean 100 ms, two clients issuing 1000
// alternating write/read requests with a 1000 ms request delay.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/handler.hpp"
#include "core/qos.hpp"
#include "core/selection.hpp"
#include "fault/dependability.hpp"
#include "fault/schedule.hpp"
#include "gcs/config.hpp"
#include "gcs/directory.hpp"
#include "gcs/endpoint.hpp"
#include "net/transport.hpp"
#include "obs/snapshot.hpp"
#include "replication/objects.hpp"
#include "replication/replica.hpp"
#include "replication/service.hpp"
#include "runtime/executor.hpp"

namespace aqueduct::harness {

/// Factory so each client can use a different selection strategy.
using SelectorFactory = std::function<std::unique_ptr<core::ReplicaSelector>()>;

/// How a workload client paces its requests.
enum class Arrival {
  /// The paper's model: the next request is issued `request_delay` after
  /// the previous one *completes* (self-throttling).
  kClosedLoop,
  /// Open loop: requests arrive as a Poisson process with mean
  /// inter-arrival `request_delay`, regardless of completions — models
  /// external demand and exposes queueing behaviour.
  kOpenPoisson,
  /// Open loop with fixed inter-arrival `request_delay`.
  kOpenPeriodic,
};

struct ClientSpec {
  core::QoSSpec qos;
  /// Pacing parameter; meaning depends on `arrival`.
  sim::Duration request_delay = std::chrono::milliseconds(1000);
  /// Total requests issued, alternating write/read (even = write).
  std::size_t num_requests = 1000;
  /// Null = the paper's probabilistic selector (Algorithm 1).
  SelectorFactory selector;
  Arrival arrival = Arrival::kClosedLoop;
};

struct ScenarioConfig {
  std::uint64_t seed = 1;
  /// Which runtime drives the scenario. kSim (the default) reproduces the
  /// paper's discrete-event experiments deterministically; kRealTime runs
  /// the identical protocol stack against the wall clock (live_cli).
  runtime::Kind runtime = runtime::Kind::kSim;
  std::size_t num_primaries = 4;    // excluding the sequencer
  std::size_t num_secondaries = 6;
  /// Simulated background load: service delay ~ Normal(mean, std).
  sim::Duration service_mean = std::chrono::milliseconds(100);
  sim::Duration service_std = std::chrono::milliseconds(50);
  /// Lazy-update interval T_L.
  sim::Duration lazy_update_interval = std::chrono::seconds(4);
  /// LAN latency model: Normal(mean, std) truncated at 50 µs.
  sim::Duration net_latency_mean = std::chrono::microseconds(500);
  sim::Duration net_latency_std = std::chrono::microseconds(200);
  /// Sliding-window length l.
  std::size_t window_size = 20;
  /// Per-replica service-speed factors modelling a heterogeneous testbed
  /// (the paper's hosts ranged 300 MHz-1 GHz). Factor f scales the
  /// replica's service-time distribution by 1/f (2.0 = twice as fast).
  /// Indexed like replica(): 0 = sequencer, then primaries, then
  /// secondaries; missing entries default to 1.0.
  std::vector<double> speed_factors;
  gcs::Config gcs;
  std::vector<ClientSpec> clients;
  /// Safety cap on simulated (or, under kRealTime, wall-clock) time.
  sim::Duration max_sim_time = std::chrono::hours(24);
  /// Trailing run time after the workloads finish (or max_sim_time is
  /// reached) so late replies and final publications drain. Under
  /// kRealTime this is real seconds — live_cli shortens it.
  sim::Duration drain = std::chrono::seconds(2);
  /// Wraps the transport in the chaos decorator so fault schedules can
  /// script gray failures (degrade_link, partial_partition,
  /// duplicate_storm, reorder, throttle_link, WAN matrices) on top of the
  /// crash-era faults. Decisions are drawn from the run's seed.
  bool chaos = false;
  /// How long after a group evicts a still-running replica (gray failure:
  /// partial partition or slow link fooled the failure detector) the
  /// harness reincarnates the slot, modelling a process supervisor. The
  /// evicted server has already crash()ed itself; zero disables restarts.
  sim::Duration eviction_restart_delay = std::chrono::seconds(1);
};

/// Per-client results of a run.
struct ClientResult {
  client::ClientStats stats;
  /// Response times of completed reads (seconds), for percentiles.
  std::vector<double> read_response_times;
  /// Staleness values observed in read replies.
  std::vector<double> reply_staleness;
  /// Completion time of each read (seconds since the simulation epoch),
  /// parallel to read_response_times — lets benches attribute outcomes to
  /// an outage window.
  std::vector<double> read_completed_at;
  /// Whether each read missed its deadline, parallel to the above.
  std::vector<bool> read_timing_failures;
};

class WorkloadClient;

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Boots replicas and clients (staggered joins), then drives the
  /// simulation until every workload completed (or max_sim_time).
  /// Returns per-client results in ClientSpec order.
  std::vector<ClientResult> run();

  /// Schedules a fail-stop crash of the i-th replica at `at` (0-based over
  /// primaries then secondaries; the sequencer is index_sequencer()).
  void schedule_crash(std::size_t replica_index, sim::TimePoint at);

  /// Schedules a restart (reincarnation + rejoin) of the i-th replica.
  void schedule_restart(std::size_t replica_index, sim::TimePoint at);

  /// Immediately crashes the i-th replica (no-op if already crashed).
  void crash_replica(std::size_t replica_index);

  /// Restarts the i-th replica slot now: crashes it if still live, destroys
  /// the dead server, reincarnates the endpoint under a fresh NodeId, and
  /// boots a new ReplicaServer that rejoins the service groups and runs the
  /// state-transfer protocol. Callable any number of times per slot.
  void restart_replica(std::size_t replica_index);

  /// How many times the i-th replica slot has been reborn (0 = original).
  std::uint32_t incarnation(std::size_t replica_index) const;

  /// Current NodeId of the i-th replica slot (changes across restarts).
  net::NodeId replica_node(std::size_t replica_index) const;

  /// Live = started (or about to be, pre-run) and not crashed.
  bool replica_alive(std::size_t replica_index) const;

  /// Schedules every event of `schedule` onto this scenario's executor
  /// (crashes/restarts resolve against replica slots; network faults
  /// against the current incarnations' NodeIds). Call before run().
  void apply_faults(const fault::FaultSchedule& schedule);

  /// Installs a dependability manager that polls the replication level and
  /// restarts crashed slots with bounded latency. Call before run().
  void enable_dependability(fault::DependabilityConfig config);
  const fault::DependabilityManager* dependability() const {
    return dependability_.get();
  }

  std::size_t index_sequencer() const { return 0; }
  std::size_t num_replicas() const { return replicas_.size(); }

  runtime::Executor& executor() { return *exec_; }
  replication::ReplicaServer& replica(std::size_t index) { return *replicas_.at(index); }
  /// Snapshot of the transport counters (assembled from the metrics
  /// registry).
  net::TransportStats transport_stats() const { return transport_->stats(); }
  /// The transport every scenario process is attached to (a loopback,
  /// chaos-wrapped when config.chaos is set).
  net::Transport& transport() { return *transport_; }
  /// The simulation-wide metrics registry + trace hub. Register trace
  /// sinks here before run().
  obs::Observability& observability() { return transport_->observability(); }

  /// Enables periodic telemetry: a MetricsSnapshotter on this scenario's
  /// executor capturing the registry every `period` (simulated time under
  /// kSim, wall time under kRealTime). Call before run(), then subscribe
  /// sinks on the returned snapshotter. run() starts it with the scenario
  /// and captures one final snapshot after the drain. Snapshot callbacks
  /// read metrics but never touch protocol state or the RNG, so enabling
  /// telemetry does not perturb the simulated trajectory.
  obs::MetricsSnapshotter& enable_telemetry(sim::Duration period);
  /// Null until enable_telemetry() is called.
  obs::MetricsSnapshotter* telemetry() { return snapshotter_.get(); }

 private:
  void build();
  /// Builds the ReplicaServer for slot `index` against `endpoint` (role and
  /// speed factor derive from the index). Shared by build() and
  /// restart_replica().
  std::unique_ptr<replication::ReplicaServer> make_replica_server(
      std::size_t index, gcs::Endpoint& endpoint);
  std::size_t live_replicas_excluding(std::size_t index) const;
  std::size_t live_primaries_excluding(std::size_t index) const;

  ScenarioConfig config_;
  std::unique_ptr<runtime::Executor> exec_;
  std::unique_ptr<net::Transport> transport_;
  gcs::Directory directory_;
  replication::ServiceGroups groups_ = replication::ServiceGroups::for_service(1);
  std::vector<std::unique_ptr<gcs::Endpoint>> endpoints_;
  // replicas_[0] = sequencer, then primaries, then secondaries.
  std::vector<std::unique_ptr<replication::ReplicaServer>> replicas_;
  std::vector<std::uint32_t> incarnations_;  // per replica slot
  std::vector<std::unique_ptr<WorkloadClient>> workloads_;
  std::unique_ptr<fault::DependabilityManager> dependability_;
  std::unique_ptr<obs::MetricsSnapshotter> snapshotter_;
  bool ran_ = false;
};

/// Drives one client: issues `num_requests` alternating write/read
/// operations against the replicated key-value store, waiting
/// `request_delay` after each completion before issuing the next.
class WorkloadClient {
 public:
  WorkloadClient(runtime::Executor& exec, gcs::Endpoint& endpoint,
                 replication::ServiceGroups groups, ClientSpec spec,
                 std::size_t window_size);

  void start();
  bool done() const { return completed_ >= spec_.num_requests; }
  const client::ClientHandler& handler() const { return *handler_; }
  client::ClientHandler& handler() { return *handler_; }
  ClientResult result() const { return result_with_stats(); }

 private:
  ClientResult result_with_stats() const;
  void issue_next();
  void on_complete();
  void schedule_open_arrival();

  runtime::Executor& exec_;
  ClientSpec spec_;
  std::unique_ptr<client::ClientHandler> handler_;
  std::unique_ptr<sim::Rng> arrival_rng_;
  std::size_t issued_ = 0;
  std::size_t completed_ = 0;
  std::vector<double> read_response_times_;
  std::vector<double> reply_staleness_;
  std::vector<double> read_completed_at_;
  std::vector<bool> read_timing_failures_;
};

}  // namespace aqueduct::harness
