#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>

#include "obs/sla.hpp"
#include "sim/check.hpp"

namespace aqueduct::harness {

ConfidenceInterval binomial_ci_normal(std::uint64_t successes,
                                      std::uint64_t trials, double z) {
  ConfidenceInterval ci;
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double half = z * std::sqrt(p * (1.0 - p) / n);
  ci.point = p;
  ci.lower = std::max(0.0, p - half);
  ci.upper = std::min(1.0, p + half);
  return ci;
}

ConfidenceInterval binomial_ci_wilson(std::uint64_t successes,
                                      std::uint64_t trials, double z) {
  // One Wilson formula in the repo: the live SlaMonitor and the offline
  // harness must agree bit-for-bit, so this delegates to the obs layer.
  const obs::WilsonInterval w = obs::wilson_interval(successes, trials, z);
  ConfidenceInterval ci;
  ci.lower = w.lower;
  ci.upper = w.upper;
  ci.point = w.point;
  return ci;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

double percentile(std::vector<double> values, double q) {
  AQUEDUCT_CHECK(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace aqueduct::harness
