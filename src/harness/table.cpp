#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/check.hpp"

namespace aqueduct::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  AQUEDUCT_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  AQUEDUCT_CHECK_MSG(row.size() == header_.size(), "row/header size mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace aqueduct::harness
