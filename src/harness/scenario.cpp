#include "harness/scenario.hpp"

#include "runtime/sim_executor.hpp"
#include <algorithm>
#include <string>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::harness {

// ---------------------------------------------------------------------------
// WorkloadClient
// ---------------------------------------------------------------------------

WorkloadClient::WorkloadClient(runtime::Executor& exec, gcs::Endpoint& endpoint,
                               const shard::ShardMap& map,
                               std::vector<replication::ServiceGroups> groups,
                               ClientSpec spec, std::size_t window_size)
    : exec_(exec), spec_(std::move(spec)) {
  // One handler per shard, constructed in shard order by the router so the
  // per-handler RNG splits are deterministic. The shard tag is only set in
  // a genuinely sharded run: the single-shard SLA gauges must keep their
  // pre-shard names bit-for-bit.
  const bool sharded = map.num_shards() > 1;
  router_ = std::make_unique<shard::ShardRouter>(
      exec, endpoint, map, std::move(groups),
      [this, window_size, sharded](std::size_t shard) {
        client::ClientConfig config;
        config.window_size = window_size;
        if (spec_.selector) config.selector = spec_.selector();
        if (sharded) config.shard = static_cast<std::int64_t>(shard);
        return config;
      });
}

void WorkloadClient::start() {
  router_->start();
  if (spec_.arrival == Arrival::kClosedLoop) {
    issue_next();
  } else {
    arrival_rng_ = std::make_unique<sim::Rng>(exec_.rng().split());
    schedule_open_arrival();
  }
}

void WorkloadClient::schedule_open_arrival() {
  if (issued_ >= spec_.num_requests) return;
  const sim::Duration gap =
      spec_.arrival == Arrival::kOpenPoisson
          ? arrival_rng_->exponential_duration(spec_.request_delay)
          : spec_.request_delay;
  exec_.after(gap, [this] {
    issue_next();
    schedule_open_arrival();
  });
}

void WorkloadClient::issue_next() {
  if (issued_ >= spec_.num_requests) return;
  const std::size_t n = issued_++;
  const std::string key = "k" + std::to_string(n % spec_.num_keys);
  if (n % 2 == 0) {
    // Write: put a fresh value.
    auto put = std::make_shared<replication::KvPut>();
    put->key = key;
    put->value = "v" + std::to_string(n);
    router_->update(key, put,
                    [this](const client::UpdateOutcome&) { on_complete(); });
  } else {
    auto get = std::make_shared<replication::KvGet>();
    get->key = key;
    router_->read(key, get, spec_.qos,
                  [this](const client::ReadOutcome& outcome) {
                    read_response_times_.push_back(
                        sim::to_sec(outcome.response_time));
                    reply_staleness_.push_back(
                        static_cast<double>(outcome.staleness));
                    read_completed_at_.push_back(
                        sim::to_sec(exec_.now() - sim::kEpoch));
                    read_timing_failures_.push_back(outcome.timing_failure);
                    on_complete();
                  });
  }
}

void WorkloadClient::on_complete() {
  ++completed_;
  if (spec_.arrival != Arrival::kClosedLoop) return;  // arrivals self-pace
  if (issued_ >= spec_.num_requests) return;
  exec_.after(spec_.request_delay, [this] { issue_next(); });
}

ClientResult WorkloadClient::result_with_stats() const {
  ClientResult r;
  r.stats = router_->stats();
  r.read_response_times = read_response_times_;
  r.reply_staleness = reply_staleness_;
  r.read_completed_at = read_completed_at_;
  r.read_timing_failures = read_timing_failures_;
  return r;
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)),
      shard_map_(config_.seed, config_.num_shards == 0 ? 1 : config_.num_shards) {
  build();
}

Scenario::~Scenario() = default;

void Scenario::build() {
  AQUEDUCT_CHECK_MSG(config_.num_shards >= 1, "num_shards must be >= 1");
  exec_ = runtime::make_executor(config_.runtime, config_.seed);
  transport_ = net::make_loopback_transport(
      *exec_, std::make_unique<sim::NormalDuration>(config_.net_latency_mean,
                                                    config_.net_latency_std));
  if (config_.chaos) {
    transport_ = net::make_chaos_transport(std::move(transport_));
  }

  // Shard k's groups live under service id 1 + k; all shards share the one
  // transport/directory substrate (gcs multiplexes by group id).
  groups_.reserve(config_.num_shards);
  for (std::size_t k = 0; k < config_.num_shards; ++k) {
    groups_.push_back(replication::ServiceGroups::for_service(
        static_cast<std::uint32_t>(1 + k)));
  }

  // Flat shard-major layout. Within a shard, the sequencer (slot 0) is the
  // first primary-group joiner (rank 0 = leader), then primaries, then
  // secondaries.
  const std::size_t num_servers = config_.num_shards * servers_per_shard();
  for (std::size_t index = 0; index < num_servers; ++index) {
    auto endpoint = std::make_unique<gcs::Endpoint>(*exec_, *transport_,
                                                    directory_, config_.gcs);
    replicas_.push_back(make_replica_server(index, *endpoint));
    endpoints_.push_back(std::move(endpoint));
  }
  incarnations_.assign(num_servers, 0);

  // Per-shard liveness gauges only exist in a genuinely sharded run: a new
  // metric name would change the single-shard telemetry digest.
  if (config_.num_shards > 1) {
    obs::MetricsRegistry& reg = observability().metrics;
    for (std::size_t k = 0; k < config_.num_shards; ++k) {
      live_gauges_.push_back(
          &reg.gauge("shard" + std::to_string(k) + ".replicas_live"));
      live_gauges_.back()->set(static_cast<double>(servers_per_shard()));
    }
  }

  for (const ClientSpec& spec : config_.clients) {
    auto endpoint = std::make_unique<gcs::Endpoint>(*exec_, *transport_,
                                                    directory_, config_.gcs);
    workloads_.push_back(std::make_unique<WorkloadClient>(
        *exec_, *endpoint, shard_map_, groups_, spec, config_.window_size));
    endpoints_.push_back(std::move(endpoint));
  }
}

obs::MetricsSnapshotter& Scenario::enable_telemetry(sim::Duration period) {
  AQUEDUCT_CHECK_MSG(!ran_, "enable_telemetry() must precede run()");
  AQUEDUCT_CHECK_MSG(!snapshotter_, "telemetry already enabled");
  snapshotter_ = std::make_unique<obs::MetricsSnapshotter>(
      *exec_, observability().metrics, period);
  return *snapshotter_;
}

std::vector<ClientResult> Scenario::run() {
  AQUEDUCT_CHECK_MSG(!ran_, "Scenario::run() called twice");
  ran_ = true;
  if (snapshotter_) snapshotter_->start();

  // Staggered start: each shard's sequencer boots before its followers so
  // it becomes that primary group's leader; replicas follow, then clients
  // after the groups have settled. Offsets are relative to now(): under
  // kSim now() is kEpoch here (identical schedule to an absolute one);
  // under kRealTime construction already consumed wall time, so relative
  // is the only correct choice.
  sim::Duration at = sim::Duration::zero();
  for (auto& replica : replicas_) {
    exec_->after(at, [r = replica.get()] { r->start(); });
    at += std::chrono::milliseconds(10);
  }
  at += std::chrono::milliseconds(500);
  for (auto& workload : workloads_) {
    exec_->after(at, [w = workload.get()] { w->start(); });
    at += std::chrono::milliseconds(10);
  }

  const sim::TimePoint deadline = exec_->now() + config_.max_sim_time;
  while (exec_->now() < deadline) {
    const bool all_done =
        std::all_of(workloads_.begin(), workloads_.end(),
                    [](const auto& w) { return w->done(); });
    if (all_done) break;
    exec_->run_for(std::chrono::seconds(1));
  }
  // Drain trailing protocol work (late replies, final publications).
  exec_->run_for(config_.drain);
  if (snapshotter_) {
    snapshotter_->stop();
    snapshotter_->capture_now();  // pick up the post-drain tail
  }

  std::vector<ClientResult> results;
  results.reserve(workloads_.size());
  for (const auto& workload : workloads_) results.push_back(workload->result());
  return results;
}

std::unique_ptr<replication::ReplicaServer> Scenario::make_replica_server(
    std::size_t index, gcs::Endpoint& endpoint) {
  const std::size_t shard = shard_of(index);
  const std::size_t slot = index % servers_per_shard();
  const bool is_primary = slot <= config_.num_primaries;  // slot 0 = sequencer
  double speed = 1.0;
  if (index < config_.speed_factors.size() &&
      config_.speed_factors[index] > 0.0) {
    speed = config_.speed_factors[index];
  }
  replication::ReplicaConfig rc;
  rc.service_time = std::make_shared<sim::NormalDuration>(
      std::chrono::duration_cast<sim::Duration>(config_.service_mean / speed),
      std::chrono::duration_cast<sim::Duration>(config_.service_std / speed));
  rc.lazy_update_interval = config_.lazy_update_interval;
  auto server = std::make_unique<replication::ReplicaServer>(
      *exec_, endpoint, groups_[shard], is_primary,
      std::make_unique<replication::KeyValueStore>(), std::move(rc));
  // A group that ejects a live-but-gray replica leaves the server crashed;
  // reincarnate the slot after a supervisor delay (the reborn process joins
  // under a fresh NodeId, escaping any identity-keyed blackhole).
  if (config_.eviction_restart_delay > sim::Duration::zero()) {
    server->set_on_evicted([this, index, shard] {
      refresh_live_gauge(shard);
      exec_->after(config_.eviction_restart_delay, [this, index] {
        if (replicas_[index]->crashed()) restart_replica(index);
      });
    });
  }
  return server;
}

void Scenario::schedule_crash(std::size_t replica_index, sim::TimePoint at) {
  AQUEDUCT_CHECK(replica_index < replicas_.size());
  // Capture the index, not the server: a restart may have replaced the
  // object by the time this fires.
  exec_->at(at, [this, replica_index] { crash_replica(replica_index); });
}

void Scenario::schedule_restart(std::size_t replica_index, sim::TimePoint at) {
  AQUEDUCT_CHECK(replica_index < replicas_.size());
  exec_->at(at, [this, replica_index] { restart_replica(replica_index); });
}

void Scenario::crash_replica(std::size_t replica_index) {
  AQUEDUCT_CHECK(replica_index < replicas_.size());
  if (!replicas_[replica_index]->crashed()) replicas_[replica_index]->crash();
  refresh_live_gauge(shard_of(replica_index));
}

std::size_t Scenario::live_replicas_excluding(std::size_t index) const {
  const std::size_t begin = shard_of(index) * servers_per_shard();
  const std::size_t end = begin + servers_per_shard();
  std::size_t live = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (i != index && !replicas_[i]->crashed()) ++live;
  }
  return live;
}

std::size_t Scenario::live_primaries_excluding(std::size_t index) const {
  const std::size_t begin = shard_of(index) * servers_per_shard();
  const std::size_t end = begin + servers_per_shard();
  std::size_t live = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (i != index && replicas_[i]->is_primary() && !replicas_[i]->crashed())
      ++live;
  }
  return live;
}

void Scenario::refresh_live_gauge(std::size_t shard) {
  if (live_gauges_.empty()) return;
  const std::size_t begin = shard * servers_per_shard();
  const std::size_t end = begin + servers_per_shard();
  std::size_t live = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (!replicas_[i]->crashed()) ++live;
  }
  live_gauges_[shard]->set(static_cast<double>(live));
}

void Scenario::restart_replica(std::size_t replica_index) {
  AQUEDUCT_CHECK(replica_index < replicas_.size());
  const replication::ServiceGroups& groups = groups_[shard_of(replica_index)];
  replication::ReplicaServer& old = *replicas_[replica_index];
  if (!old.crashed()) old.crash();
  const net::NodeId old_id = endpoints_[replica_index]->id();
  const bool was_primary = old.is_primary();

  // Destroy the dead server before reincarnating the endpoint — it holds
  // raw pointers into the endpoint's Member objects.
  replicas_[replica_index].reset();

  // Clear directory entries that still name the dead incarnation and have
  // no surviving member to fail over to (a joiner chasing such an entry
  // would retry against a dead process forever). When any other member is
  // alive its failover coordinator refreshes the entry itself, and erasing
  // it here could split the group into two disjoint views. Liveness is
  // judged within the slot's own shard: other shards' groups are disjoint.
  if (was_primary && live_primaries_excluding(replica_index) == 0) {
    directory_.forget_if(groups.primary, old_id);
  }
  if (live_replicas_excluding(replica_index) == 0) {
    directory_.forget_if(groups.replication, old_id);
    // Clients are QoS-group members too; only forget when none exist.
    if (workloads_.empty()) directory_.forget_if(groups.qos, old_id);
  }

  endpoints_[replica_index]->reincarnate();
  replicas_[replica_index] =
      make_replica_server(replica_index, *endpoints_[replica_index]);
  replicas_[replica_index]->start();
  ++incarnations_[replica_index];
  refresh_live_gauge(shard_of(replica_index));
}

std::uint32_t Scenario::incarnation(std::size_t replica_index) const {
  AQUEDUCT_CHECK(replica_index < incarnations_.size());
  return incarnations_[replica_index];
}

net::NodeId Scenario::replica_node(std::size_t replica_index) const {
  AQUEDUCT_CHECK(replica_index < endpoints_.size());
  return endpoints_[replica_index]->id();
}

bool Scenario::replica_alive(std::size_t replica_index) const {
  AQUEDUCT_CHECK(replica_index < replicas_.size());
  return !replicas_[replica_index]->crashed();
}

void Scenario::apply_faults(const fault::FaultSchedule& schedule) {
  fault::FaultTargets targets;
  targets.crash = [this](std::size_t i) { crash_replica(i); };
  targets.restart = [this](std::size_t i) { restart_replica(i); };
  targets.node_id = [this](std::size_t i) { return replica_node(i); };
  targets.network = transport_->fault_injection();
  targets.num_replicas = replicas_.size();
  targets.slot_index = [this](fault::SlotRef ref) {
    AQUEDUCT_CHECK_MSG(ref.shard < num_shards(),
                       "fault SlotRef names a shard this scenario lacks");
    AQUEDUCT_CHECK_MSG(ref.slot < servers_per_shard(),
                       "fault SlotRef slot out of range");
    return slot_index(ref.shard, ref.slot);
  };
  fault::apply(schedule, *exec_, std::move(targets));
}

void Scenario::enable_dependability(fault::DependabilityConfig config) {
  AQUEDUCT_CHECK_MSG(!dependability_, "dependability manager already enabled");
  fault::DependabilityManager::Hooks hooks;
  hooks.num_replicas = [this] { return replicas_.size(); };
  hooks.alive = [this](std::size_t i) { return replica_alive(i); };
  hooks.restart = [this](std::size_t i) { restart_replica(i); };
  dependability_ = std::make_unique<fault::DependabilityManager>(
      *exec_, observability(), config, std::move(hooks));
  dependability_->start();
}

}  // namespace aqueduct::harness
