#include "harness/scenario.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::harness {

// ---------------------------------------------------------------------------
// WorkloadClient
// ---------------------------------------------------------------------------

WorkloadClient::WorkloadClient(sim::Simulator& sim, gcs::Endpoint& endpoint,
                               replication::ServiceGroups groups,
                               ClientSpec spec, std::size_t window_size)
    : sim_(sim), spec_(std::move(spec)) {
  client::ClientConfig config;
  config.window_size = window_size;
  if (spec_.selector) config.selector = spec_.selector();
  handler_ = std::make_unique<client::ClientHandler>(sim, endpoint, groups,
                                                     std::move(config));
}

void WorkloadClient::start() {
  handler_->start();
  if (spec_.arrival == Arrival::kClosedLoop) {
    issue_next();
  } else {
    arrival_rng_ = std::make_unique<sim::Rng>(sim_.rng().split());
    schedule_open_arrival();
  }
}

void WorkloadClient::schedule_open_arrival() {
  if (issued_ >= spec_.num_requests) return;
  const sim::Duration gap =
      spec_.arrival == Arrival::kOpenPoisson
          ? arrival_rng_->exponential_duration(spec_.request_delay)
          : spec_.request_delay;
  sim_.after(gap, [this] {
    issue_next();
    schedule_open_arrival();
  });
}

void WorkloadClient::issue_next() {
  if (issued_ >= spec_.num_requests) return;
  const std::size_t n = issued_++;
  if (n % 2 == 0) {
    // Write: put a fresh value.
    auto put = std::make_shared<replication::KvPut>();
    put->key = "k" + std::to_string(n % 16);
    put->value = "v" + std::to_string(n);
    handler_->update(put, [this](const client::UpdateOutcome&) { on_complete(); });
  } else {
    auto get = std::make_shared<replication::KvGet>();
    get->key = "k" + std::to_string(n % 16);
    handler_->read(get, spec_.qos, [this](const client::ReadOutcome& outcome) {
      read_response_times_.push_back(sim::to_sec(outcome.response_time));
      reply_staleness_.push_back(static_cast<double>(outcome.staleness));
      on_complete();
    });
  }
}

void WorkloadClient::on_complete() {
  ++completed_;
  if (spec_.arrival != Arrival::kClosedLoop) return;  // arrivals self-pace
  if (issued_ >= spec_.num_requests) return;
  sim_.after(spec_.request_delay, [this] { issue_next(); });
}

ClientResult WorkloadClient::result_with_stats() const {
  ClientResult r;
  r.stats = handler_->stats();
  r.read_response_times = read_response_times_;
  r.reply_staleness = reply_staleness_;
  return r;
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)) {
  build();
}

Scenario::~Scenario() = default;

void Scenario::build() {
  sim_ = std::make_unique<sim::Simulator>(config_.seed);
  network_ = std::make_unique<net::Network>(
      *sim_, std::make_unique<sim::NormalDuration>(config_.net_latency_mean,
                                                   config_.net_latency_std));

  auto make_replica = [&](bool is_primary) {
    auto endpoint = std::make_unique<gcs::Endpoint>(*sim_, *network_,
                                                    directory_, config_.gcs);
    const std::size_t index = replicas_.size();
    double speed = 1.0;
    if (index < config_.speed_factors.size() &&
        config_.speed_factors[index] > 0.0) {
      speed = config_.speed_factors[index];
    }
    replication::ReplicaConfig rc;
    rc.service_time = std::make_shared<sim::NormalDuration>(
        std::chrono::duration_cast<sim::Duration>(config_.service_mean / speed),
        std::chrono::duration_cast<sim::Duration>(config_.service_std / speed));
    rc.lazy_update_interval = config_.lazy_update_interval;
    auto replica = std::make_unique<replication::ReplicaServer>(
        *sim_, *endpoint, groups_, is_primary,
        std::make_unique<replication::KeyValueStore>(), std::move(rc));
    endpoints_.push_back(std::move(endpoint));
    replicas_.push_back(std::move(replica));
  };

  // The sequencer is the first primary-group joiner (rank 0 = leader).
  make_replica(/*is_primary=*/true);
  for (std::size_t i = 0; i < config_.num_primaries; ++i) make_replica(true);
  for (std::size_t i = 0; i < config_.num_secondaries; ++i) make_replica(false);

  for (const ClientSpec& spec : config_.clients) {
    auto endpoint = std::make_unique<gcs::Endpoint>(*sim_, *network_,
                                                    directory_, config_.gcs);
    workloads_.push_back(std::make_unique<WorkloadClient>(
        *sim_, *endpoint, groups_, spec, config_.window_size));
    endpoints_.push_back(std::move(endpoint));
  }
}

std::vector<ClientResult> Scenario::run() {
  AQUEDUCT_CHECK_MSG(!ran_, "Scenario::run() called twice");
  ran_ = true;

  // Staggered start: the sequencer boots first so it becomes the
  // primary-group leader; replicas follow, then clients after the groups
  // have settled.
  sim::Duration at = sim::Duration::zero();
  for (auto& replica : replicas_) {
    sim_->at(sim::kEpoch + at, [r = replica.get()] { r->start(); });
    at += std::chrono::milliseconds(10);
  }
  at += std::chrono::milliseconds(500);
  for (auto& workload : workloads_) {
    sim_->at(sim::kEpoch + at, [w = workload.get()] { w->start(); });
    at += std::chrono::milliseconds(10);
  }

  const sim::TimePoint deadline = sim::kEpoch + config_.max_sim_time;
  while (sim_->now() < deadline) {
    const bool all_done =
        std::all_of(workloads_.begin(), workloads_.end(),
                    [](const auto& w) { return w->done(); });
    if (all_done) break;
    sim_->run_for(std::chrono::seconds(1));
  }
  // Drain trailing protocol work (late replies, final publications).
  sim_->run_for(std::chrono::seconds(2));

  std::vector<ClientResult> results;
  results.reserve(workloads_.size());
  for (const auto& workload : workloads_) results.push_back(workload->result());
  return results;
}

void Scenario::schedule_crash(std::size_t replica_index, sim::TimePoint at) {
  AQUEDUCT_CHECK(replica_index < replicas_.size());
  sim_->at(at, [r = replicas_[replica_index].get()] { r->crash(); });
}

}  // namespace aqueduct::harness
