// Minimal aligned-table and CSV printer for the benchmark binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace aqueduct::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; cell count must match the header.
  void add_row(std::vector<std::string> row);

  /// Fixed-precision formatting helper.
  static std::string num(double value, int precision = 3);

  /// Renders with aligned columns to `os`.
  void print(std::ostream& os = std::cout) const;

  /// Renders as CSV to `os`.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aqueduct::harness
