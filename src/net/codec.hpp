// Wire codec: byte-level serialization of net::Message frames.
//
// Everything on the wire is little-endian and length-prefixed. A frame is
//
//   u32  magic   0x41515746 ("AQWF")
//   u8   version kWireVersion (bumped on any incompatible layout change)
//   u32  type id (stable per concrete message type; see CodecRegistry)
//   u32  payload length in bytes
//   ...  payload (exactly `length` bytes, produced by Message::encode)
//
// Encoding needs no registry — a message that overrides wire_type() and
// encode() can always be framed. Decoding resolves the type id through the
// process-wide CodecRegistry, so a receiving composition root must first
// call its layers' register_wire_codecs() functions. Every decode failure
// (bad magic, unknown version or type, truncation, trailing bytes) throws
// CodecError; transports catch it, count net.decode_errors, and drop the
// datagram — malformed input can never reach protocol code.
//
// Round-trip guarantee: for every registered type, encode(decode(bytes))
// reproduces `bytes` exactly (tests/codec_test.cpp enforces it per type).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "net/node.hpp"
#include "sim/time.hpp"

namespace aqueduct::net {

inline constexpr std::uint32_t kWireMagic = 0x41515746u;  // "AQWF"
inline constexpr std::uint8_t kWireVersion = 1;
/// Frame header: magic + version + type id + payload length.
inline constexpr std::size_t kFrameHeaderSize = 4 + 1 + 4 + 4;

/// Thrown on any malformed input; also thrown when asked to encode a
/// message (or a nested payload) whose type is not codec-enabled.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian byte sink.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void node(NodeId id) { u32(id.value()); }
  void duration(sim::Duration d) { i64(d.count()); }
  void raw(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  /// Patches a previously written u32 at `offset` (for length back-fill).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.at(offset + i) = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

 private:
  template <typename T>
  void le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian byte source over a borrowed buffer.
/// Every accessor throws CodecError instead of reading past the end.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return le<std::uint16_t>(); }
  std::uint32_t u32() { return le<std::uint32_t>(); }
  std::uint64_t u64() { return le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(le<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw CodecError("bool byte out of range");
    return v == 1;
  }
  std::string str() {
    const std::uint32_t n = u32();
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  NodeId node() { return NodeId{u32()}; }
  sim::Duration duration() { return sim::Duration(i64()); }

  /// A sub-reader over the next `n` bytes (consumed from this reader).
  Reader sub(std::size_t n) {
    const std::uint8_t* p = take(n);
    return Reader(p, n);
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (n > remaining()) throw CodecError("truncated input");
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }
  template <typename T>
  T le() {
    const std::uint8_t* p = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(p[i]) << (8 * i)));
    }
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Maps stable wire type ids to their decoders. Process-wide: composition
/// roots that receive serialized frames call each protocol layer's
/// register_wire_codecs() before decoding (registration is idempotent).
class CodecRegistry {
 public:
  using DecodeFn = MessagePtr (*)(Reader&);

  static CodecRegistry& global();

  /// Registers `decode` for `id`. Re-registering the same id is a no-op
  /// if the decoder matches, and an error otherwise (two message types
  /// must never share a wire id).
  void add(WireTypeId id, std::string type_name, DecodeFn decode);

  bool contains(WireTypeId id) const { return entries_.contains(id); }
  /// nullptr when the id is unknown.
  DecodeFn find(WireTypeId id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : it->second.decode;
  }
  const std::string* type_name(WireTypeId id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second.type_name;
  }
  /// All registered ids, ascending (the codec round-trip suite iterates
  /// this to prove coverage).
  std::vector<WireTypeId> ids() const;
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string type_name;
    DecodeFn decode;
  };
  std::map<WireTypeId, Entry> entries_;
};

/// Frames `msg` into `w`: header + encode()d payload. Throws CodecError if
/// the message (or any nested payload) is not codec-enabled.
void encode_frame(const Message& msg, Writer& w);

/// Convenience: a freshly framed byte vector.
std::vector<std::uint8_t> encode_frame(const Message& msg);

/// Parses one frame from `r` and decodes it through `registry`. Throws
/// CodecError on bad magic/version/length, unknown type id, or a decoder
/// that does not consume exactly the payload.
MessagePtr decode_frame(Reader& r, const CodecRegistry& registry);
inline MessagePtr decode_frame(Reader& r) {
  return decode_frame(r, CodecRegistry::global());
}

/// Nested-payload helpers: protocol messages carry application payloads as
/// MessagePtr fields. On the wire these are a presence byte plus (when
/// present) a complete nested frame, so payload types resolve through the
/// registry exactly like top-level messages.
void encode_nested(Writer& w, const MessagePtr& msg);
MessagePtr decode_nested(Reader& r, const CodecRegistry& registry);
inline MessagePtr decode_nested(Reader& r) {
  return decode_nested(r, CodecRegistry::global());
}

// ---------------------------------------------------------------------------
// Aggregate helpers shared by the per-layer codecs
// ---------------------------------------------------------------------------

inline void encode_node_vector(Writer& w, const std::vector<NodeId>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (NodeId n : v) w.node(n);
}

inline std::vector<NodeId> decode_node_vector(Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<NodeId> v;
  v.reserve(std::min<std::size_t>(n, r.remaining() / 4 + 1));
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.node());
  return v;
}

inline void encode_node_u64_map(Writer& w,
                                const std::map<NodeId, std::uint64_t>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [node, seq] : m) {
    w.node(node);
    w.u64(seq);
  }
}

inline std::map<NodeId, std::uint64_t> decode_node_u64_map(Reader& r) {
  const std::uint32_t n = r.u32();
  std::map<NodeId, std::uint64_t> m;
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId node = r.node();
    m[node] = r.u64();
  }
  return m;
}

inline void encode_optional_str(Writer& w, const std::optional<std::string>& s) {
  w.boolean(s.has_value());
  if (s) w.str(*s);
}

inline std::optional<std::string> decode_optional_str(Reader& r) {
  if (!r.boolean()) return std::nullopt;
  return r.str();
}

}  // namespace aqueduct::net
