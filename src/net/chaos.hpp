// Chaos decorator over any net::Transport: a seeded-deterministic
// gray-failure layer on the send path.
//
// ChaosTransport wraps a backend (loopback or UDP) and intercepts every
// send() before it reaches the wire. Each message runs the same pipeline:
//
//   partition / partial-partition check  → drop
//   loss (per-link override, else max of outbound/inbound/global) → drop
//   duplication                          → one extra copy
//   extra delay (link dist → node dist → default dist)
//   reordering (extra uniform holdback in [0, window))
//   throttling (per directional link: serialize sends min_gap apart)
//   forward to the wrapped backend (immediately, or via exec.after)
//
// All randomness comes from one sim::Rng split off the executor's root
// RNG, so under a SimExecutor the drop/delay/duplicate decisions are a
// deterministic function of the seed and the send sequence — the same
// seed replays the same gray failures byte-identically. Over a
// RealTimeExecutor (UDP between processes) the same code injects real
// wall-clock delay on localhost links.
//
// Only composition roots may include this header; protocol layers and
// fault schedules reach the chaos knobs through net::FaultInjection on a
// transport built with net::make_chaos_transport()
// (tools/check_layering.py enforces this).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/transport.hpp"

namespace aqueduct::net {

class ChaosTransport final : public Transport, public FaultInjection {
 public:
  /// Takes ownership of the wrapped backend. The chaos RNG is split off
  /// `inner->executor().rng()` at construction.
  explicit ChaosTransport(std::unique_ptr<Transport> inner);
  ~ChaosTransport() override;

  /// The wrapped backend (for tests and composition roots).
  Transport& inner() { return *inner_; }

  // ---- Transport ----
  NodeId attach(Endpoint& endpoint) override { return inner_->attach(endpoint); }
  void detach(NodeId id) override { inner_->detach(id); }
  bool is_attached(NodeId id) const override { return inner_->is_attached(id); }
  void send(NodeId from, NodeId to, MessagePtr msg) override;
  TransportStats stats() const override;
  obs::Observability& observability() override { return inner_->observability(); }
  runtime::Executor& executor() override { return inner_->executor(); }
  FaultInjection* fault_injection() override { return this; }

  // ---- FaultInjection: crash-era core ----
  // set_link_latency / set_node_latency are interpreted as *extra*
  // injected delay on top of the backend's own delivery latency (the
  // decorator cannot shorten what the wire does underneath).
  void set_link_latency(
      NodeId a, NodeId b,
      std::shared_ptr<sim::DurationDistribution> latency) override;
  void set_node_latency(
      NodeId node, std::shared_ptr<sim::DurationDistribution> latency) override;
  void clear_node_latency(NodeId node) override;
  void set_loss_probability(double p) override;
  void set_link_loss(NodeId from, NodeId to, double p) override;
  void clear_link_loss(NodeId from, NodeId to) override;
  void set_inbound_loss(NodeId node, double p) override;
  void set_outbound_loss(NodeId node, double p) override;
  double loss_probability(NodeId from, NodeId to) const override;
  void partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b) override;
  void heal() override;

  // ---- FaultInjection: gray-failure surface ----
  bool supports_gray_faults() const override { return true; }
  void set_default_delay(
      std::shared_ptr<sim::DurationDistribution> extra) override;
  void set_link_delay(NodeId from, NodeId to,
                      std::shared_ptr<sim::DurationDistribution> extra) override;
  void clear_link_delay(NodeId from, NodeId to) override;
  void set_duplicate_probability(double p) override;
  void set_link_duplicate(NodeId from, NodeId to, double p) override;
  void clear_link_duplicate(NodeId from, NodeId to) override;
  void set_reorder_probability(double p) override;
  void set_reorder_window(sim::Duration window) override;
  void set_link_throttle(NodeId from, NodeId to, sim::Duration min_gap) override;
  void partial_partition(NodeId a, NodeId b) override;
  void heal_link(NodeId a, NodeId b) override;
  void heal_gray() override;

 private:
  using Link = std::pair<NodeId, NodeId>;
  struct LinkHash {
    std::size_t operator()(const Link& p) const noexcept {
      return std::hash<NodeId>{}(p.first) * 1000003u ^
             std::hash<NodeId>{}(p.second);
    }
  };

  bool partitioned(NodeId a, NodeId b) const;
  double duplicate_probability(NodeId from, NodeId to) const;
  /// Extra injected delay for one copy (link → node → default precedence),
  /// zero when no delay knob matches.
  sim::Duration sample_extra_delay(NodeId from, NodeId to);
  /// Delays (if needed) and forwards one copy to the wrapped backend.
  void forward_copy(NodeId from, NodeId to, MessagePtr msg);

  std::unique_ptr<Transport> inner_;
  runtime::Executor& exec_;
  sim::Rng rng_;

  // Loss / partition state (chaos-local; composes exactly like the
  // loopback: per-link override authoritative, else max of outbound,
  // inbound, and global).
  double loss_probability_ = 0.0;
  std::unordered_map<Link, double, LinkHash> link_loss_;
  std::unordered_map<NodeId, double> inbound_loss_;
  std::unordered_map<NodeId, double> outbound_loss_;
  std::unordered_set<NodeId> partition_a_;
  std::unordered_set<NodeId> partition_b_;
  std::unordered_set<Link, LinkHash> blackholes_;  // partial partitions

  // Extra-delay state.
  std::shared_ptr<sim::DurationDistribution> default_delay_;
  std::unordered_map<Link, std::shared_ptr<sim::DurationDistribution>, LinkHash>
      link_delay_;
  std::unordered_map<NodeId, std::shared_ptr<sim::DurationDistribution>>
      node_delay_;

  // Duplication / reordering / throttling state.
  double duplicate_probability_ = 0.0;
  std::unordered_map<Link, double, LinkHash> link_duplicate_;
  double reorder_probability_ = 0.0;
  sim::Duration reorder_window_ = std::chrono::milliseconds(50);
  std::unordered_map<Link, sim::Duration, LinkHash> throttle_gap_;
  std::unordered_map<Link, sim::TimePoint, LinkHash> throttle_next_free_;

  // Outlives-check token: delayed forwards scheduled on the executor may
  // fire after this decorator is destroyed (same pattern as gcs::Member).
  std::shared_ptr<const bool> alive_;

  // Chaos-layer tallies, mirrored into the wrapped backend's metrics
  // registry under fresh names (the backend already owns "net.*").
  obs::Counter& c_dropped_loss_;
  obs::Counter& c_dropped_partition_;
  obs::Counter& c_duplicated_;
  obs::Counter& c_reordered_;
  obs::Counter& c_delayed_;
};

}  // namespace aqueduct::net
