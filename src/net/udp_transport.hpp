// Real-socket backend of net::Transport: one non-blocking UDP socket per
// process, driven by the executor's timer loop.
//
// Each process is one node. The local identity and the peer address book
// are fixed configuration (live_cli assembles them from --listen/--peer):
// send() frames the message with the wire codec (net/codec.hpp), prefixes
// the (from, to) node ids, and writes one datagram to the peer's address;
// a self-rescheduling poll task drains the socket every `poll_interval`
// and delivers decoded messages to the attached endpoint. Datagrams that
// fail to decode are dropped and counted in net.decode_errors — malformed
// or mis-versioned input never reaches protocol code.
//
// Delivery guarantees match UDP: messages can be lost, reordered, and
// duplicated; the gcs layer's reliable FIFO machinery recovers, exactly
// as over the loopback's injected loss. There is no fault-injection
// surface (fault_injection() is nullptr) — failure experiments are
// DES-only, this backend is for real multi-process deployments.
//
// The receiving process must register the wire codecs of every layer
// whose messages it expects (gcs::register_wire_codecs(),
// replication::register_wire_codecs()) before messages arrive.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/codec.hpp"
#include "net/transport.hpp"

namespace aqueduct::net {

/// One address-book entry: where datagrams for `id` go.
struct UdpPeer {
  NodeId id;
  std::string host;  // IPv4 dotted quad or "localhost"
  std::uint16_t port = 0;
};

struct UdpConfig {
  /// This process's node identity; attach() hands it to the endpoint.
  NodeId local_id;
  /// Bind address. Port 0 binds an ephemeral port (see local_port()).
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  /// Peer address book; an entry for local_id is allowed and ignored on
  /// send (self-sends loop through the socket like any other datagram).
  std::vector<UdpPeer> peers;
  /// Cadence of the socket-drain poll task.
  runtime::Duration poll_interval = std::chrono::milliseconds(1);
};

class UdpTransport final : public Transport {
 public:
  /// Opens and binds the socket and starts the poll task on `exec`.
  /// Throws std::runtime_error if the socket cannot be created or bound.
  UdpTransport(runtime::Executor& exec, UdpConfig config);
  ~UdpTransport() override;

  // ---- Transport ----
  /// Returns the configured local id. One endpoint at a time; attach
  /// again after detach() to model a process restart.
  NodeId attach(Endpoint& endpoint) override;
  void detach(NodeId id) override;
  bool is_attached(NodeId id) const override {
    return endpoint_ != nullptr && id == config_.local_id;
  }
  void send(NodeId from, NodeId to, MessagePtr msg) override;
  TransportStats stats() const override;
  obs::Observability& observability() override { return obs_; }
  runtime::Executor& executor() override { return exec_; }

  /// The bound UDP port (useful when listen_port was 0).
  std::uint16_t local_port() const { return local_port_; }
  NodeId local_id() const { return config_.local_id; }
  /// Adds or replaces an address-book entry (tests wire two ephemeral
  /// transports together after both have bound).
  void add_peer(const UdpPeer& peer);

 private:
  void schedule_poll();
  void drain_socket();
  void tap(NodeId from, NodeId to, const MessagePtr& msg, const char* dropped);

  runtime::Executor& exec_;
  UdpConfig config_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::unordered_map<NodeId, std::uint64_t> peer_addrs_;  // packed ip:port
  Endpoint* endpoint_ = nullptr;
  runtime::TaskHandle poll_handle_;
  std::vector<std::uint8_t> recv_buf_;

  obs::Observability obs_;  // must precede the instrument references below
  obs::Counter& c_sent_;
  obs::Counter& c_delivered_;
  obs::Counter& c_dropped_detached_;
  obs::Counter& c_dropped_unroutable_;
  obs::Counter& c_decode_errors_;
  obs::Counter& c_bytes_sent_;
};

}  // namespace aqueduct::net
