// Base message type exchanged over the simulated network.
//
// Protocol layers define concrete messages by deriving from Message; the
// receiving layer recovers the concrete type with dynamic_pointer_cast.
// Messages are immutable after send (shared by sender-side retransmission
// buffers and receivers), hence they travel as shared_ptr<const Message>.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace aqueduct::net {

class Message {
 public:
  virtual ~Message() = default;

  /// Human-readable type tag used in logs and traces.
  virtual std::string type_name() const = 0;

  /// Approximate wire size in bytes. Purely informational: used for
  /// bandwidth accounting in traces; delivery latency is governed by the
  /// link's latency model.
  virtual std::size_t wire_size() const { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// Downcasts a received message to the expected concrete type.
/// Returns nullptr if the message is of a different type.
template <typename T>
std::shared_ptr<const T> message_cast(const MessagePtr& msg) {
  return std::dynamic_pointer_cast<const T>(msg);
}

}  // namespace aqueduct::net
