// Base message type exchanged over a net::Transport.
//
// Protocol layers define concrete messages by deriving from Message; the
// receiving layer recovers the concrete type with dynamic_pointer_cast.
// Messages are immutable after send (shared by sender-side retransmission
// buffers and receivers), hence they travel as shared_ptr<const Message>.
//
// Codec surface: a message that can cross a process boundary declares a
// stable wire type id (wire_type()) and a body encoder (encode()); its
// decoder is registered in the net::CodecRegistry by the owning layer's
// register_wire_codecs(). In-process transports never serialize — the
// codec is exercised only by socket transports and the round-trip tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace aqueduct::net {

class Writer;

/// Stable identifier of a concrete message type on the wire. 0 is
/// reserved for "not codec-enabled". Ids are assigned once per type and
/// never reused; see the kWire* constants in each layer's messages header.
using WireTypeId = std::uint32_t;

class Message {
 public:
  virtual ~Message() = default;

  /// Human-readable type tag used in logs and traces.
  virtual std::string type_name() const = 0;

  /// The type's stable wire id, or 0 if the message cannot be serialized
  /// (test-local and process-local types).
  virtual WireTypeId wire_type() const { return 0; }

  /// Appends the message body (no frame header) to `w`. The default
  /// throws CodecError; every type with a non-zero wire_type() overrides
  /// it. Must be the exact inverse of the decoder registered for
  /// wire_type().
  virtual void encode(Writer& w) const;

  /// Wire size in bytes, used for bandwidth accounting in traces and the
  /// protocol-overhead benches; delivery latency is governed by the
  /// link's latency model. For codec-enabled messages the default derives
  /// it from the real encoded frame length; types outside the codec fall
  /// back to a nominal 64 bytes.
  virtual std::size_t wire_size() const;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Downcasts a received message to the expected concrete type.
/// Returns nullptr if the message is of a different type.
template <typename T>
std::shared_ptr<const T> message_cast(const MessagePtr& msg) {
  return std::dynamic_pointer_cast<const T>(msg);
}

}  // namespace aqueduct::net
