// The transport abstraction every protocol layer is written against.
//
// A Transport moves immutable messages between attached endpoints. The
// protocol stack (gcs, replication, client, fault, harness) names only
// this interface — never a concrete backend — so the same gateway logic
// runs unmodified over
//
//   * LoopbackTransport (net/loopback.hpp) — in-process delivery through
//     the executor's timer queue with configurable latency models, loss,
//     partitions, and crashes. Under a SimExecutor this is the paper's
//     deterministic simulated LAN; under a RealTimeExecutor it is a
//     loopback with real injected latency.
//   * UdpTransport (net/udp_transport.hpp) — non-blocking UDP sockets
//     between OS processes, with a per-peer address book and the wire
//     codec (net/codec.hpp) for framing. Used by live_cli's multi-process
//     deployment.
//
// The layering lint (tools/check_layering.py) enforces that protocol code
// includes this header and not the concrete transport headers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/node.hpp"
#include "obs/observability.hpp"
#include "runtime/executor.hpp"
#include "sim/random.hpp"

namespace aqueduct::net {

/// Implemented by anything that can receive messages from a transport.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Invoked (on the executor's loop thread, at the delivery time) for
  /// each message addressed to this endpoint.
  virtual void on_message(NodeId from, MessagePtr msg) = 0;
};

/// Snapshot of the transport counters (assembled from the registry-backed
/// instruments; see metrics "net.*").
struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_loss = 0;
  std::uint64_t messages_dropped_partition = 0;
  std::uint64_t messages_dropped_detached = 0;
  /// Sends to a destination the transport has no route for (UDP: not in
  /// the address book). Always 0 on the loopback.
  std::uint64_t messages_dropped_unroutable = 0;
  /// Inbound frames rejected by the wire codec (bad magic/version/type,
  /// truncation, trailing bytes). Always 0 on the loopback, which never
  /// serializes.
  std::uint64_t decode_errors = 0;
  std::uint64_t bytes_sent = 0;
};

/// Fault-injection surface of a transport that can misbehave on demand.
/// Only the loopback implements it (failure-injection experiments are
/// DES-only); real-socket transports return nullptr from
/// Transport::fault_injection() and suffer only genuine faults.
class FaultInjection {
 public:
  virtual ~FaultInjection() = default;

  /// Overrides the latency model for the (a, b) pair, both directions.
  virtual void set_link_latency(
      NodeId a, NodeId b, std::shared_ptr<sim::DurationDistribution> latency) = 0;

  /// Overrides the latency model for every link touching `node` (both
  /// directions). Models a slow host/NIC, as in the paper's heterogeneous
  /// 300 MHz–1 GHz testbed.
  virtual void set_node_latency(
      NodeId node, std::shared_ptr<sim::DurationDistribution> latency) = 0;

  /// Removes a node-level latency override installed by set_node_latency()
  /// (links fall back to per-link overrides or the default model). Used by
  /// fault schedules to end a latency spike.
  virtual void clear_node_latency(NodeId node) = 0;

  /// Probability in [0, 1] that any given message is silently dropped.
  virtual void set_loss_probability(double p) = 0;

  /// Directional per-link loss: messages from `from` to `to` (and only in
  /// that direction) are dropped with probability `p`. Overrides node and
  /// global loss for that link.
  virtual void set_link_loss(NodeId from, NodeId to, double p) = 0;

  /// Removes a directional per-link loss override.
  virtual void clear_link_loss(NodeId from, NodeId to) = 0;

  /// Loss applied to every message *received* by `node` (unless a per-link
  /// override matches). Composes with outbound/global loss via max.
  virtual void set_inbound_loss(NodeId node, double p) = 0;

  /// Loss applied to every message *sent* by `node` (unless a per-link
  /// override matches). Composes with inbound/global loss via max.
  virtual void set_outbound_loss(NodeId node, double p) = 0;

  /// Effective drop probability the send path would use for (from, to).
  virtual double loss_probability(NodeId from, NodeId to) const = 0;

  /// Drops all traffic between the two sides until heal() is called.
  /// Nodes in neither set communicate normally with everyone.
  virtual void partition(std::vector<NodeId> side_a,
                         std::vector<NodeId> side_b) = 0;

  /// Removes any active partition.
  virtual void heal() = 0;
};

/// Abstract message mover: endpoint attach/detach, unreliable datagram
/// send/multicast, counters, and the per-process observability context
/// (metrics registry + multi-subscriber trace hub).
///
/// Delivery guarantees: none beyond best effort. Messages can be
/// reordered, dropped, and (over real sockets) duplicated; reliable
/// virtually synchronous FIFO delivery is built on top by the gcs layer,
/// exactly as AQuA builds on Maestro/Ensemble over a physical LAN.
class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  /// Registers an endpoint and returns its id. The loopback assigns fresh
  /// ids; socket transports return the process's configured identity. The
  /// endpoint must outlive the transport or call detach() first.
  virtual NodeId attach(Endpoint& endpoint) = 0;

  /// Removes the endpoint: all in-flight and future messages to or from it
  /// are dropped. Used to model fail-stop crashes.
  virtual void detach(NodeId id) = 0;

  virtual bool is_attached(NodeId id) const = 0;

  /// Sends `msg` from `from` to `to`. Sending to an unknown or detached
  /// node silently drops (the sender cannot know the destination crashed —
  /// that is the failure detector's job).
  virtual void send(NodeId from, NodeId to, MessagePtr msg) = 0;

  /// Sends to each destination individually (unreliable multicast).
  virtual void multicast(NodeId from, const std::vector<NodeId>& to,
                         const MessagePtr& msg) {
    for (NodeId dest : to) send(from, dest, msg);
  }

  virtual TransportStats stats() const = 0;

  /// Per-process observability context. The transport owns it because it
  /// is the one object every component of a deployment shares.
  virtual obs::Observability& observability() = 0;
  obs::MetricsRegistry& metrics() { return observability().metrics; }
  obs::TraceHub& tracing() { return observability().trace; }

  virtual runtime::Executor& executor() = 0;

  /// The transport's fault-injection surface, or nullptr if it cannot
  /// inject faults (real sockets).
  virtual FaultInjection* fault_injection() { return nullptr; }
};

/// Builds the in-process loopback backend (a LoopbackTransport) without
/// naming its header. `default_latency` is sampled independently per
/// message for every link without an explicit override. This is the
/// factory composition roots that must stay backend-agnostic (e.g.
/// harness::Scenario) construct through.
std::unique_ptr<Transport> make_loopback_transport(
    runtime::Executor& exec,
    std::unique_ptr<sim::DurationDistribution> default_latency);

}  // namespace aqueduct::net
